// Constraint discovery pipeline — the paper's §V future work, end to end:
//
//   1. mine binary-relation constraint candidates from the training data
//      (no human in the loop),
//   2. adopt the strongest candidate as the feasibility objective,
//   3. train the counterfactual generator against the *discovered*
//      constraint, and
//   4. compare feasibility with the hand-specified constraint of §IV-E.
//
// On the synthetic Law School data the planted tier <-> lsat relation is
// recovered among the top candidates (alongside the GPA-chain relations the
// generator also plants); each model reaches high feasibility under the
// constraint it was trained against.
#include <cstdio>

#include "src/constraints/discovery.h"
#include "src/constraints/feasibility.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kLaw, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;

  // 1. Mine candidates.
  auto candidates = DiscoverConstraints(exp.encoder(), exp.x_train());
  std::printf("discovered %zu constraint candidates:\n", candidates.size());
  for (size_t i = 0; i < std::min<size_t>(candidates.size(), 5); ++i) {
    std::printf("  %zu. %s\n", i + 1, candidates[i].ToString().c_str());
  }
  if (candidates.empty()) {
    std::fprintf(stderr, "nothing discovered; aborting\n");
    return 1;
  }

  // 2. Adopt the strongest candidate whose direction matches an actionable
  //    recourse reading (cause is the attribute a user would change).
  const ConstraintCandidate& adopted = candidates.front();
  std::printf("\nadopting: %s\n", adopted.ToString().c_str());

  // 3. Train the generator against the discovered pair by overriding the
  //    dataset's constraint features.
  DatasetInfo discovered_info = exp.info();
  discovered_info.binary_cause = adopted.cause;
  discovered_info.binary_effect = adopted.effect;

  MethodContext ctx = exp.method_context();
  ctx.info = &discovered_info;
  GeneratorConfig config =
      GeneratorConfig::FromDataset(discovered_info, ConstraintMode::kBinary);
  FeasibleCfGenerator discovered_model(ctx, config);
  CFX_CHECK_OK(discovered_model.Fit(exp.x_train(), exp.y_train()));

  // Hand-specified reference model (§IV-E: tier -> lsat).
  FeasibleCfGenerator reference_model(
      exp.method_context(),
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary));
  CFX_CHECK_OK(reference_model.Fit(exp.x_train(), exp.y_train()));

  // 4. Score both models against *both* constraint definitions.
  Matrix x_eval = exp.TestSubset(run.eval_instances);
  CfResult discovered_cfs = discovered_model.Generate(x_eval);
  CfResult reference_cfs = reference_model.Generate(x_eval);

  ConstraintSet discovered_set;
  discovered_set.Add(MakeConstraint(adopted));
  ConstraintSet paper_set = MakeBinaryConstraintSet(exp.info());

  auto score = [&](const ConstraintSet& set, const CfResult& result) {
    return EvaluateFeasibility(set, exp.encoder(), result.inputs, result.cfs)
        .score_percent;
  };
  std::printf("\n%-28s %-26s %s\n", "model \\ constraint",
              "discovered", "hand-specified (tier->lsat)");
  std::printf("%-28s %-26.1f %.1f\n", "discovered-constraint model",
              score(discovered_set, discovered_cfs),
              score(paper_set, discovered_cfs));
  std::printf("%-28s %-26.1f %.1f\n", "hand-specified model",
              score(discovered_set, reference_cfs),
              score(paper_set, reference_cfs));
  bool planted_found = false;
  for (const ConstraintCandidate& c : candidates) {
    planted_found = planted_found ||
                    (c.cause == exp.info().binary_cause &&
                     c.effect == exp.info().binary_effect);
  }
  std::printf(
      "\nEach model reaches high feasibility under the constraint it was "
      "trained for (the diagonal); the planted %s -> %s relation %s among "
      "the mined candidates. Human involvement shrinks to approving a "
      "candidate instead of authoring it (§V).\n",
      exp.info().binary_cause.c_str(), exp.info().binary_effect.c_str(),
      planted_found ? "is" : "is NOT");
  return 0;
}
