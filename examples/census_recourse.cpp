// Recourse at scale on the KDD Census-Income dataset (41 attributes, the
// paper's widest benchmark).
//
// Demonstrates (a) the copy-prior generator staying sparse even with 25
// low-signal census fields, (b) immutable attributes surviving generation,
// and (c) the feasibility/sparsity trade-off of the unary vs binary
// constraint models on the same inputs.
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/metrics/report.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kCensus, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  std::printf("Census: %zu train rows, %zu encoded dims, %.1f%% positive\n",
              exp.x_train().rows(), exp.encoder().encoded_width(),
              100.0 * [&] {
                double p = 0;
                for (int y : exp.y_train()) p += y;
                return p / exp.y_train().size();
              }());

  Matrix x_eval = exp.TestSubset(run.eval_instances);
  std::vector<MetricsRow> rows;
  for (ConstraintMode mode :
       {ConstraintMode::kUnary, ConstraintMode::kBinary}) {
    FeasibleCfGenerator generator(
        exp.method_context(), GeneratorConfig::FromDataset(exp.info(), mode));
    CFX_CHECK_OK(generator.Fit(exp.x_train(), exp.y_train()));
    CfResult result = generator.Generate(x_eval);

    // Count immutable violations (there must be none).
    size_t violations = 0;
    for (size_t fi : exp.schema().ImmutableIndices()) {
      for (size_t i = 0; i < result.size(); ++i) {
        violations += exp.encoder().FeatureValue(result.cfs.Row(i), fi) !=
                      exp.encoder().FeatureValue(result.inputs.Row(i), fi);
      }
    }
    std::printf("%s: immutable violations across %zu CFs: %zu\n",
                generator.name().c_str(), result.size(), violations);
    rows.push_back({EvaluateMethod(generator.name(), exp.encoder(),
                                   exp.info(), result),
                    mode == ConstraintMode::kUnary,
                    mode == ConstraintMode::kBinary});
  }
  std::printf("\n%s",
              RenderMetricsTable("Census recourse — constraint model "
                                 "comparison",
                                 rows)
                  .c_str());
  std::printf(
      "\nNote how sparsity stays below ~10 of 41 attributes: the copy-prior "
      "decoder (DESIGN.md §3) defaults every census field to 'unchanged'.\n");
  return 0;
}
