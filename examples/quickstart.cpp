// Quickstart: generate feasible counterfactuals on the Adult dataset.
//
// Walks the whole cfx pipeline in ~40 lines of user code: build the dataset
// and black box (Experiment), train the paper's unary-constraint generator,
// generate CFs for unseen test rows and print the evaluation metrics plus
// one human-readable example (the loan scenario of the paper's Figure 1).
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/metrics/report.h"

int main() {
  using namespace cfx;

  // 1. Dataset + preprocessing + black-box classifier (§III-C, §IV-C).
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  std::printf("Adult: %zu train rows, classifier accuracy %.1f%%\n",
              exp.x_train().rows(), 100.0 * exp.classifier_stats().train_accuracy);

  // 2. Train the paper's method with the unary constraint (age can only
  //    increase) and Table III hyperparameters.
  GeneratorConfig config =
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kUnary);
  FeasibleCfGenerator generator(exp.method_context(), config);
  CFX_CHECK_OK(generator.Fit(exp.x_train(), exp.y_train()));

  // 3. Generate counterfactuals for test individuals.
  Matrix x_eval = exp.TestSubset(run.eval_instances);
  CfResult result = generator.Generate(x_eval);

  // 4. Score them with the §IV-D metrics.
  MethodMetrics metrics = EvaluateMethod(generator.name(), exp.encoder(),
                                         exp.info(), result);
  std::printf("\n%s\n",
              RenderMetricsTable("Quickstart metrics (Adult, unary)",
                                 {{metrics, true, false}})
                  .c_str());

  // 5. Show one counterfactual as a feature table (like the paper's
  //    Table V).
  for (size_t i = 0; i < result.size(); ++i) {
    if (!result.IsValid(i)) continue;
    CfDisplay display = MakeDisplay(exp.encoder(), result, i);
    std::printf("Example counterfactual (test row %zu):\n", i);
    std::printf("  %-16s %-14s -> %s\n", "feature", "x_true", "x_cf");
    for (size_t f = 0; f < display.feature_names.size(); ++f) {
      std::printf("  %-16s %-14s -> %s\n", display.feature_names[f].c_str(),
                  display.x_true[f].c_str(), display.x_pred[f].c_str());
    }
    break;
  }
  return 0;
}
