// Bring-your-own-data: the full cfx pipeline on a *user-defined* schema,
// with no reliance on the built-in benchmark generators — the integration
// path for using the library on your own tabular data (see
// docs/TUTORIAL.md).
//
// Scenario: a small credit-risk model. Features: monthly income, current
// debt, years at current employer, has_collateral, and an immutable
// birth_region. Causal knowledge: seniority ("years_employed") can only
// grow, and paying down debt cannot *increase* income requirements — we
// encode "income up when debt-to-income must fall" as the binary pair
// (years_employed -> income): a longer tenure implies higher income.
#include <cstdio>

#include "src/constraints/feasibility.h"
#include "src/core/generator.h"
#include "src/data/encoder.h"
#include "src/data/preprocess.h"
#include "src/data/split.h"
#include "src/metrics/report.h"

using namespace cfx;

namespace {

/// A user-supplied schema: any mix of continuous/binary/categorical
/// features works; `immutable` marks attributes no recourse can act on.
Schema CreditSchema() {
  std::vector<FeatureSpec> features;
  features.push_back(
      {"income", FeatureType::kContinuous, {}, false, 500.0, 12000.0});
  features.push_back(
      {"debt", FeatureType::kContinuous, {}, false, 0.0, 50000.0});
  features.push_back(
      {"years_employed", FeatureType::kContinuous, {}, false, 0.0, 40.0});
  features.push_back({"has_collateral",
                      FeatureType::kBinary,
                      {"no", "yes"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"birth_region",
                      FeatureType::kCategorical,
                      {"north", "south", "east", "west"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  return Schema(std::move(features), "loan", {"denied", "approved"});
}

/// Stand-in for the user's real data: in practice, load with ReadTableCsv.
Table MakeCreditData(size_t n, Rng* rng) {
  Table table(CreditSchema());
  for (size_t i = 0; i < n; ++i) {
    const double years = rng->TruncatedNormal(8.0, 7.0, 0.0, 40.0);
    const double income =
        rng->TruncatedNormal(1800.0 + 180.0 * years, 900.0, 500.0, 12000.0);
    const double debt = rng->TruncatedNormal(12000.0, 9000.0, 0.0, 50000.0);
    const int collateral = rng->Bernoulli(0.35) ? 1 : 0;
    const int region = static_cast<int>(rng->UniformInt(4));
    const double z = 0.0009 * income - 0.00012 * debt + 0.05 * years +
                     0.9 * collateral - 2.2 + rng->Normal(0.0, 0.5);
    const int approved = rng->Bernoulli(1.0 / (1.0 + std::exp(-z))) ? 1 : 0;
    CFX_CHECK_OK(table.AppendRow({income, debt, years,
                                  static_cast<double>(collateral),
                                  static_cast<double>(region)},
                                 approved));
  }
  return table;
}

}  // namespace

int main() {
  Rng rng(2024);

  // 1. Your data (here synthesised; normally ReadTableCsv + DropMissingRows).
  Table data = MakeCreditData(4000, &rng);
  DataSplit split = StratifiedSplitTable(data, 0.8, 0.1, &rng);

  // 2. Fit the encoder on the training split; encode all partitions.
  TabularEncoder encoder(CreditSchema());
  CFX_CHECK_OK(encoder.Fit(split.train));
  Matrix x_train = *encoder.Transform(split.train);
  Matrix x_test = *encoder.Transform(split.test);

  // 3. Your black box (any model exposing logits works; here cfx's MLP).
  ClassifierConfig clf_config;
  BlackBoxClassifier black_box(encoder.encoded_width(), clf_config, &rng);
  TrainStats stats = black_box.Train(x_train, split.train.labels(), &rng);
  std::printf("black box: train accuracy %.1f%%\n",
              100.0 * stats.train_accuracy);

  // 4. Your causal knowledge, as a DatasetInfo the generator understands.
  DatasetInfo info;
  info.id = DatasetId::kAdult;  // Identity is irrelevant to the generator.
  info.name = "CreditRisk";
  info.target_class = "loan";
  info.unary_feature = "years_employed";  // Tenure only grows (Eq. 1).
  info.binary_cause = "years_employed";   // More tenure => more income (Eq. 2).
  info.binary_effect = "income";
  info.unary_hyper = {0.2f, 2048, 25};
  info.binary_hyper = {0.2f, 2048, 50};

  // 5. Train the explainer and generate recourse for denied applicants.
  MethodContext ctx;
  ctx.encoder = &encoder;
  ctx.classifier = &black_box;
  ctx.info = &info;
  ctx.seed = 2024;
  FeasibleCfGenerator generator(
      ctx, GeneratorConfig::FromDataset(info, ConstraintMode::kBinary));
  CFX_CHECK_OK(generator.Fit(x_train, split.train.labels()));

  Matrix x_eval = x_test.SliceRows(0, std::min<size_t>(150, x_test.rows()));
  CfResult result = generator.Generate(x_eval);
  MethodMetrics metrics =
      EvaluateMethod("credit recourse", encoder, info, result);
  std::printf("\n%s", RenderMetricsTable("Custom-dataset recourse",
                                         {{metrics, true, true}})
                          .c_str());

  // 6. Inspect one suggestion.
  for (size_t i = 0; i < result.size(); ++i) {
    if (!result.IsValid(i) || result.desired[i] != 1) continue;
    CfDisplay display = MakeDisplay(encoder, result, i);
    std::printf("\none denied applicant's path to approval:\n");
    for (size_t f = 0; f < display.feature_names.size(); ++f) {
      if (display.x_true[f] == display.x_pred[f]) continue;
      std::printf("  %-16s %s -> %s\n", display.feature_names[f].c_str(),
                  display.x_true[f].c_str(), display.x_pred[f].c_str());
    }
    break;
  }
  return 0;
}
