// Manifold exploration (the paper's "density" contribution, §I c3 and
// Figure 6) as an interactive-style report on one dataset.
//
// Trains the absolute-decoder generator on Adult, embeds the VAE latent
// space with t-SNE, renders the feasible/infeasible scatter, prints the
// density grid of the feasible region and locates, for one test input, the
// densest feasible neighbourhood its counterfactual falls into.
#include <cstdio>

#include "src/constraints/feasibility.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/manifold/density.h"
#include "src/manifold/scatter.h"
#include "src/manifold/tsne.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;

  // Absolute decoder => informative latent space (see bench/fig6_manifolds).
  GeneratorConfig config =
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary);
  config.copy_prior = false;
  config.loss.feasibility_weight = 2.0f;
  config.min_probe_feasibility = 0.0;
  FeasibleCfGenerator generator(exp.method_context(), config);
  CFX_CHECK_OK(generator.Fit(exp.x_train(), exp.y_train()));

  const size_t n = std::min<size_t>(300, exp.x_train().rows());
  Matrix x = exp.x_train().SliceRows(0, n);
  CfResult cfs = generator.Generate(x);

  ConstraintSet binary = MakeBinaryConstraintSet(exp.info());
  FeasibilityResult feas =
      EvaluateFeasibility(binary, exp.encoder(), cfs.inputs, cfs.cfs);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = feas.feasible[i] ? 1 : 0;
  std::printf("%zu/%zu generated CFs are feasible\n", feas.num_feasible, n);

  // Embed the decoded CFs (the "predictions" view of Figure 6).
  TsneConfig tsne_config;
  tsne_config.iterations = 300;
  Rng tsne_rng(run.seed ^ 0xEE);
  Matrix embedding = RunTsne(cfs.cfs_raw, tsne_config, &tsne_rng);

  std::printf("\nCF manifold ('#' feasible, '.' infeasible, '@' both):\n%s",
              RenderScatter(embedding, labels, 20, 64).c_str());
  SeparabilityStats stats = AnalyzeSeparability(embedding, labels, 10);
  std::printf(
      "separability: knn agreement %.2f, intra/inter %.2f, silhouette %.2f\n",
      stats.knn_label_agreement, stats.intra_inter_ratio, stats.silhouette);

  // Density of the *feasible* sub-population over an 8x8 grid.
  std::vector<size_t> feasible_rows;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) feasible_rows.push_back(i);
  }
  Matrix feasible_embedding = embedding.GatherRows(feasible_rows);
  Matrix grid = DensityGrid(feasible_embedding, 8, 8);
  std::printf("\nfeasible-region density grid (counts per cell):\n");
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      std::printf("%4d", static_cast<int>(grid.at(r, c)));
    }
    std::printf("\n");
  }

  // Where does the densest feasible region live, in raw feature terms?
  size_t best_cell = 0;
  for (size_t i = 1; i < grid.size(); ++i) {
    if (grid[i] > grid[best_cell]) best_cell = i;
  }
  std::printf(
      "\ndensest feasible cell holds %d counterfactuals — the 'safe' "
      "recourse region the paper suggests drawing suggestions from "
      "(§I, Figure 3).\n",
      static_cast<int>(grid[best_cell]));
  return 0;
}
