// Bar-exam recourse on the Law School dataset.
//
// Predicted-to-fail candidates ask: "what must change for the model to
// predict I pass the bar?" The binary causal constraint (a more selective
// school tier requires a higher LSAT) must hold in every suggestion, and
// `sex` is immutable. The example prints each candidate's recourse and then
// verifies the constraint bookkeeping across the whole batch.
#include <cstdio>

#include "src/constraints/feasibility.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/metrics/metrics.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kLaw, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  std::printf("Law School: classifier accuracy %.1f%%, %zu test rows\n",
              100.0 * exp.classifier_stats().train_accuracy,
              exp.x_test().rows());

  FeasibleCfGenerator generator(
      exp.method_context(),
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary));
  CFX_CHECK_OK(generator.Fit(exp.x_train(), exp.y_train()));

  // Candidates the model currently predicts to fail.
  Matrix x_test = exp.TestSubset(run.eval_instances);
  std::vector<int> pred = exp.classifier()->Predict(x_test);
  std::vector<size_t> failing;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 0) failing.push_back(i);
  }
  if (failing.empty()) {
    std::fprintf(stderr, "no failing candidates in the sample\n");
    return 1;
  }
  failing.resize(std::min<size_t>(failing.size(), 3));
  Matrix candidates = x_test.GatherRows(failing);
  CfResult result = generator.Generate(candidates);

  const TabularEncoder& encoder = exp.encoder();
  auto lsat = *exp.schema().FeatureIndex("lsat");
  auto tier = *exp.schema().FeatureIndex("tier");
  ConstraintSet binary = MakeBinaryConstraintSet(exp.info());

  for (size_t i = 0; i < result.size(); ++i) {
    Matrix xi = result.inputs.Row(i);
    Matrix ci = result.cfs.Row(i);
    std::printf("\ncandidate %zu (predicted to fail):\n", i);
    std::printf("  lsat %.1f -> %.1f, tier %d -> %d\n",
                encoder.FeatureValue(xi, lsat), encoder.FeatureValue(ci, lsat),
                static_cast<int>(encoder.FeatureValue(xi, tier)) + 1,
                static_cast<int>(encoder.FeatureValue(ci, tier)) + 1);
    std::printf("  model now predicts: %s\n",
                exp.schema()
                    .target_classes()[result.predicted[i]]
                    .c_str());
    std::printf("  tier->lsat constraint satisfied: %s\n",
                binary.AllSatisfied(encoder, xi, ci, ConstraintTolerance())
                    ? "yes"
                    : "NO");
  }

  // Batch-level summary: full Eq. (2) scoring plus sparsity.
  Matrix all = x_test.GatherRows([&] {
    std::vector<size_t> idx;
    for (size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == 0) idx.push_back(i);
    }
    return idx;
  }());
  CfResult batch = generator.Generate(all);
  MethodMetrics metrics =
      EvaluateMethod(generator.name(), encoder, exp.info(), batch);
  std::printf(
      "\nbatch over %zu failing candidates: validity %.1f%%, "
      "binary feasibility %.1f%%, mean changes %.2f\n",
      batch.size(), metrics.validity, metrics.feasibility_binary,
      metrics.sparsity);
  return 0;
}
