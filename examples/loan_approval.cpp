// Loan-approval recourse (the paper's running example, Figures 1-3).
//
// A bank's black-box model denies an applicant (income class <=50K). We ask
// three different explainers — the paper's feasible generator, DiCE-random
// and CEM — for counterfactuals, and contrast them: which suggestions are
// causally feasible (age may only increase, education up requires age up),
// how many changes each demands, and which would actually flip the model.
#include <cstdio>

#include "src/baselines/cem.h"
#include "src/baselines/dice_random.h"
#include "src/constraints/feasibility.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"

using namespace cfx;

namespace {

/// Prints one applicant's counterfactual with per-feature changes.
void PrintRecourse(const char* method, const Experiment& exp,
                   const CfResult& result, size_t i,
                   const ConstraintSet& constraints) {
  const TabularEncoder& encoder = exp.encoder();
  Matrix xi = result.inputs.Row(i);
  Matrix ci = result.cfs.Row(i);
  const bool valid = result.IsValid(i);
  const bool feasible =
      constraints.AllSatisfied(encoder, xi, ci, ConstraintTolerance());

  std::printf("\n[%s]  flips model: %s   causally feasible: %s\n", method,
              valid ? "yes" : "NO", feasible ? "yes" : "NO");
  size_t changes = 0;
  for (size_t f = 0; f < exp.schema().num_features(); ++f) {
    const double before = encoder.FeatureValue(xi, f);
    const double after = encoder.FeatureValue(ci, f);
    const FeatureSpec& spec = exp.schema().feature(f);
    bool changed;
    if (spec.type == FeatureType::kContinuous) {
      changed = std::fabs(after - before) >
                0.05 * (spec.upper - spec.lower);
    } else {
      changed = before != after;
    }
    if (!changed) continue;
    ++changes;
    if (spec.type == FeatureType::kCategorical) {
      std::printf("    %-16s %s -> %s\n", spec.name.c_str(),
                  spec.categories[static_cast<int>(before)].c_str(),
                  spec.categories[static_cast<int>(after)].c_str());
    } else {
      std::printf("    %-16s %.3g -> %.3g\n", spec.name.c_str(), before,
                  after);
    }
  }
  if (changes == 0) std::printf("    (no change found)\n");
  std::printf("    total changes: %zu\n", changes);
}

}  // namespace

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;

  // Find denied applicants in the test split (predicted <=50K).
  Matrix x_test = exp.TestSubset(run.eval_instances);
  std::vector<int> pred = exp.classifier()->Predict(x_test);
  std::vector<size_t> denied;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 0) denied.push_back(i);
  }
  if (denied.empty()) {
    std::fprintf(stderr, "no denied applicants in the sample\n");
    return 1;
  }
  Matrix applicants = x_test.GatherRows(
      {denied.begin(), denied.begin() + std::min<size_t>(denied.size(), 5)});
  std::printf("%zu denied applicants; asking three explainers for recourse\n",
              applicants.rows());

  // The three explainers.
  FeasibleCfGenerator ours(
      exp.method_context(),
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary));
  DiceRandomMethod dice(exp.method_context());
  CemMethod cem(exp.method_context());
  CFX_CHECK_OK(ours.Fit(exp.x_train(), exp.y_train()));
  CFX_CHECK_OK(dice.Fit(exp.x_train(), exp.y_train()));
  CFX_CHECK_OK(cem.Fit(exp.x_train(), exp.y_train()));

  CfResult r_ours = ours.Generate(applicants);
  CfResult r_dice = dice.Generate(applicants);
  CfResult r_cem = cem.Generate(applicants);

  ConstraintSet constraints = MakeBinaryConstraintSet(exp.info());
  std::printf("causal constraints: %s\n", constraints.Description().c_str());

  for (size_t i = 0; i < applicants.rows(); ++i) {
    std::printf("\n================ applicant %zu ================\n", i);
    RawRow row = exp.encoder().InverseTransformRow(applicants.Row(i));
    Table scratch(exp.schema());
    (void)scratch.AppendRow(row.values, 0);
    std::printf("profile: %s\n", scratch.RowToString(0).c_str());
    PrintRecourse("Our method (binary)", exp, r_ours, i, constraints);
    PrintRecourse("DiCE random", exp, r_dice, i, constraints);
    PrintRecourse("CEM", exp, r_cem, i, constraints);
  }
  return 0;
}
