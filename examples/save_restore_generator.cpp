// Persisting a trained explainer: train once, save the whole pipeline
// (dataset identity, schema + encoder statistics, classifier and VAE
// weights, generator config) as one versioned bundle, then cold-start a
// serving process from that single file and verify it produces
// byte-identical counterfactuals — the deployment workflow of a recourse
// service that must not retrain per request.
#include <cstdio>
#include <cstdlib>

#include "src/core/artifact.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  const std::string path = "adult_pipeline.cfxb";

  GeneratorConfig config =
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary);
  // CFX_GEN_EPOCHS trims VAE training for smoke runs (CI uses 2).
  if (const char* epochs = std::getenv("CFX_GEN_EPOCHS")) {
    config.epochs = static_cast<size_t>(std::atoi(epochs));
  }

  // --- training process ---------------------------------------------------
  FeasibleCfGenerator trained(exp.method_context(), config);
  CFX_CHECK_OK(trained.Fit(exp.x_train(), exp.y_train()));
  CFX_CHECK_OK(SavePipelineBundle(path, &exp, &trained));
  std::printf("trained and bundled pipeline -> %s\n", path.c_str());

  // --- serving process ----------------------------------------------------
  // Cold start from the bundle alone: the dataset is regenerated from the
  // stored (name, scale, seed), schema and encoder statistics are validated
  // byte-for-byte, and classifier + VAE weights are warm-loaded — no
  // retraining, no access to the training process's objects.
  auto restored = Experiment::Restore(path);
  CFX_CHECK_OK(restored.status());

  // Identical behaviour on unseen applicants.
  Matrix x = exp.TestSubset(50);
  CfResult a = trained.Generate(x);
  CfResult b = restored->generator->Generate(x);
  size_t identical = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    bool same = true;
    for (size_t c = 0; c < a.cfs.cols(); ++c) {
      same = same && a.cfs.at(i, c) == b.cfs.at(i, c);
    }
    identical += same;
  }
  std::printf("restored generator reproduces %zu/%zu counterfactuals "
              "bit-identically\n",
              identical, a.size());
  std::remove(path.c_str());
  return identical == a.size() ? 0 : 1;
}
