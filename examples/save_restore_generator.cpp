// Persisting a trained explainer: train once, save the VAE weights, restore
// them into a fresh generator in a (simulated) later process, and verify the
// restored model produces byte-identical counterfactuals — the deployment
// workflow of a recourse service that must not retrain per request.
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/nn/serialize.h"

using namespace cfx;

int main() {
  RunConfig run = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, run);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  const std::string path = "adult_generator.cfxw";

  GeneratorConfig config =
      GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary);

  // --- training process ---------------------------------------------------
  FeasibleCfGenerator trained(exp.method_context(), config);
  CFX_CHECK_OK(trained.Fit(exp.x_train(), exp.y_train()));
  CFX_CHECK_OK(nn::SaveParameters(trained.vae()->Parameters(), path));
  std::printf("trained and saved %zu parameters to %s\n",
              trained.vae()->ParameterCount(), path.c_str());

  // --- serving process ------------------------------------------------------
  // A fresh generator (different random init), then weights restored.
  MethodContext serving_ctx = exp.method_context();
  serving_ctx.seed ^= 0xDEAD;  // Provably different init...
  FeasibleCfGenerator restored(serving_ctx, config);
  CFX_CHECK_OK(nn::LoadParameters(restored.vae()->Parameters(), path));

  // Identical behaviour on unseen applicants.
  Matrix x = exp.TestSubset(50);
  CfResult a = trained.Generate(x);
  CfResult b = restored.Generate(x);
  size_t identical = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    bool same = true;
    for (size_t c = 0; c < a.cfs.cols(); ++c) {
      same = same && a.cfs.at(i, c) == b.cfs.at(i, c);
    }
    identical += same;
  }
  std::printf("restored generator reproduces %zu/%zu counterfactuals "
              "bit-identically\n",
              identical, a.size());
  std::remove(path.c_str());
  return identical == a.size() ? 0 : 1;
}
