#include "src/models/vae.h"

#include <cassert>

#include "src/nn/losses.h"
#include "src/nn/optimizer.h"

namespace cfx {
namespace {

enum class Head { kNone, kSigmoid, kTabular };

/// Stacks Linear+ReLU+Dropout blocks ending in a Linear (+activation) head.
void BuildMlp(nn::Sequential* net, size_t in_dim,
              const std::vector<size_t>& hidden, size_t out_dim, float dropout,
              Rng* rng, Head head,
              const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  size_t prev = in_dim;
  for (size_t width : hidden) {
    net->Add(std::make_unique<nn::Linear>(prev, width, rng));
    net->Add(std::make_unique<nn::ReluLayer>());
    if (dropout > 0.0f) net->Add(std::make_unique<nn::Dropout>(dropout, rng));
    prev = width;
  }
  net->Add(std::make_unique<nn::Linear>(prev, out_dim, rng,
                                        nn::Init::kXavierUniform));
  switch (head) {
    case Head::kNone:
      break;
    case Head::kSigmoid:
      net->Add(std::make_unique<nn::SigmoidLayer>());
      break;
    case Head::kTabular:
      net->Add(std::make_unique<nn::TabularHeadLayer>(softmax_blocks));
      break;
  }
}

}  // namespace

Vae::Vae(const VaeConfig& config, Rng* rng)
    : config_(config), eval_noise_(rng->Split(0x7AE)) {
  assert(config_.input_dim > 0);
  BuildMlp(&encoder_, config_.input_dim + config_.condition_dim,
           config_.encoder_hidden, 2 * config_.latent_dim, config_.dropout,
           rng, Head::kNone, {});
  const Head head = config_.linear_head
                        ? Head::kNone
                        : (config_.softmax_blocks.empty() ? Head::kSigmoid
                                                          : Head::kTabular);
  BuildMlp(&decoder_, config_.latent_dim + config_.condition_dim,
           config_.decoder_hidden, config_.input_dim, config_.dropout, rng,
           head, config_.softmax_blocks);

  // Bias the logvar head to -3 (posterior stddev ~0.22) so early training
  // is not drowned in reparameterisation noise — otherwise the KL term wins
  // the race and the posterior collapses (mu == const, logvar == 0).
  auto* enc_head = dynamic_cast<nn::Linear*>(
      encoder_.layer(encoder_.size() - 1));
  assert(enc_head != nullptr);
  for (size_t j = config_.latent_dim; j < 2 * config_.latent_dim; ++j) {
    enc_head->bias()->value.at(0, j) = -3.0f;
  }
}

Vae::Output Vae::Forward(const ag::Var& x, const Matrix& cond, Rng* noise_rng,
                         bool sample) {
  const bool conditional = config_.condition_dim > 0;
  assert(!conditional || (cond.rows() == x->value.rows() &&
                          cond.cols() == config_.condition_dim));
  ag::Var cond_var =
      conditional ? ag::Constant(cond) : ag::Constant(Matrix());
  ag::Var enc_in = conditional ? ag::ConcatCols(x, cond_var) : x;
  ag::Var enc_out = encoder_.Forward(enc_in);

  Output out;
  out.mu = ag::SliceCols(enc_out, 0, config_.latent_dim);
  out.logvar = ag::SliceCols(enc_out, config_.latent_dim,
                             2 * config_.latent_dim);

  if (sample) {
    // z = mu + exp(0.5 * logvar) * eps,  eps ~ N(0, I).
    Matrix eps = Matrix::RandomNormal(x->value.rows(), config_.latent_dim,
                                      0.0f, 1.0f, noise_rng);
    ag::Var stddev = ag::Exp(ag::Scale(out.logvar, 0.5f));
    out.z = ag::Add(out.mu, ag::Mul(stddev, ag::Constant(eps)));
  } else {
    out.z = out.mu;
  }

  ag::Var dec_in = conditional ? ag::ConcatCols(out.z, cond_var) : out.z;
  out.x_hat = decoder_.Forward(dec_in);
  return out;
}

std::pair<Matrix, Matrix> Vae::Encode(const Matrix& x, const Matrix& cond) {
  const bool was_training = encoder_.training();
  SetTraining(false);
  Output out = Forward(ag::Constant(x), cond, &eval_noise_, /*sample=*/false);
  SetTraining(was_training);
  return {out.mu->value, out.logvar->value};
}

Matrix Vae::Decode(const Matrix& z, const Matrix& cond) {
  const bool was_training = decoder_.training();
  SetTraining(false);
  ag::Var dec_in = config_.condition_dim > 0
                       ? ag::ConcatCols(ag::Constant(z), ag::Constant(cond))
                       : ag::Constant(z);
  Matrix result = decoder_.Forward(dec_in)->value;
  SetTraining(was_training);
  return result;
}

ag::Var Vae::DecodeVar(const ag::Var& z, const Matrix& cond) {
  ag::Var dec_in = config_.condition_dim > 0
                       ? ag::ConcatCols(z, ag::Constant(cond))
                       : z;
  return decoder_.Forward(dec_in);
}

Matrix Vae::Reconstruct(const Matrix& x, const Matrix& cond) {
  const bool was_training = encoder_.training();
  SetTraining(false);
  Output out = Forward(ag::Constant(x), cond, &eval_noise_, /*sample=*/false);
  SetTraining(was_training);
  return out.x_hat->value;
}

std::vector<ag::Var> Vae::Parameters() const {
  std::vector<ag::Var> params = encoder_.Parameters();
  for (const ag::Var& p : decoder_.Parameters()) params.push_back(p);
  return params;
}

void Vae::SetTraining(bool training) {
  encoder_.SetTraining(training);
  decoder_.SetTraining(training);
}

size_t Vae::ParameterCount() const {
  size_t n = 0;
  for (const ag::Var& p : Parameters()) n += p->value.size();
  return n;
}

void Vae::Freeze() {
  for (const ag::Var& p : Parameters()) p->requires_grad = false;
  SetTraining(false);
}

TrainStats Vae::TrainElbo(const Matrix& x, const Matrix& cond,
                          const VaeTrainConfig& train_config, Rng* rng) {
  SetTraining(true);
  nn::Adam opt(Parameters(), train_config.learning_rate);
  Rng noise = rng->Split(0xE1B0);

  TrainStats stats;
  const size_t n = x.rows();
  for (size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
    // KL annealing: ramp the weight over the first half of training so the
    // reconstruction pathway is established before regularising the latent.
    const float anneal = train_config.epochs > 1
                             ? std::min(1.0f, 2.0f * static_cast<float>(epoch) /
                                                  static_cast<float>(
                                                      train_config.epochs))
                             : 1.0f;
    const float kl_w = train_config.kl_weight * anneal;
    std::vector<size_t> perm = rng->Permutation(n);
    float epoch_loss = 0.0f;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += train_config.batch_size) {
      const size_t end = std::min(start + train_config.batch_size, n);
      std::vector<size_t> idx(perm.begin() + start, perm.begin() + end);
      Matrix xb = x.GatherRows(idx);
      Matrix cb = config_.condition_dim > 0 ? cond.GatherRows(idx) : Matrix();

      Output out = Forward(ag::Constant(xb), cb, &noise, /*sample=*/true);
      ag::Var recon = nn::MseLoss(out.x_hat, xb);
      ag::Var kl = nn::KlStandardNormal(out.mu, out.logvar);
      ag::Var loss = ag::Add(recon, ag::Scale(kl, kl_w));
      opt.ZeroGrad();
      ag::Backward(loss);
      opt.ClipGradNorm(5.0f);
      opt.Step();
      epoch_loss += loss->value.at(0, 0);
      ++batches;
    }
    stats.final_loss =
        batches > 0 ? epoch_loss / static_cast<float>(batches) : 0.0f;
  }
  stats.epochs = train_config.epochs;
  SetTraining(false);
  return stats;
}

}  // namespace cfx
