#include "src/models/vae.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/trace.h"
#include "src/nn/losses.h"
#include "src/nn/optimizer.h"
#include "src/tensor/kernels.h"

namespace cfx {
namespace {

/// Concatenates [a | b] row-wise into a workspace slot. Same memcpy layout
/// as Matrix::ConcatCols, so the tape and infer paths see identical bytes.
const Matrix& ConcatColsInto(const Matrix& a, const Matrix& b,
                             nn::InferWorkspace* ws) {
  Matrix& out = ws->Acquire(a.rows(), a.cols() + b.cols());
  // Disjoint per-row copies: parallel over row blocks, bitwise identical
  // regardless of chunking. Grain depends only on the column count.
  const size_t grain = std::max<size_t>(
      1, kernels::kElementwiseGrain / std::max<size_t>(out.cols(), 1));
  ParallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* dst = out.data() + r * out.cols();
      std::memcpy(dst, a.data() + r * a.cols(), a.cols() * sizeof(float));
      std::memcpy(dst + a.cols(), b.data() + r * b.cols(),
                  b.cols() * sizeof(float));
    }
  });
  return out;
}

enum class Head { kNone, kSigmoid, kTabular };

/// Stacks Linear+ReLU+Dropout blocks ending in a Linear (+activation) head.
void BuildMlp(nn::Sequential* net, size_t in_dim,
              const std::vector<size_t>& hidden, size_t out_dim, float dropout,
              Rng* rng, Head head,
              const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  size_t prev = in_dim;
  for (size_t width : hidden) {
    net->Add(std::make_unique<nn::Linear>(prev, width, rng));
    net->Add(std::make_unique<nn::ReluLayer>());
    if (dropout > 0.0f) net->Add(std::make_unique<nn::Dropout>(dropout, rng));
    prev = width;
  }
  net->Add(std::make_unique<nn::Linear>(prev, out_dim, rng,
                                        nn::Init::kXavierUniform));
  switch (head) {
    case Head::kNone:
      break;
    case Head::kSigmoid:
      net->Add(std::make_unique<nn::SigmoidLayer>());
      break;
    case Head::kTabular:
      net->Add(std::make_unique<nn::TabularHeadLayer>(softmax_blocks));
      break;
  }
}

}  // namespace

Vae::Vae(const VaeConfig& config, Rng* rng)
    : config_(config), eval_noise_(rng->Split(0x7AE)) {
  assert(config_.input_dim > 0);
  BuildMlp(&encoder_, config_.input_dim + config_.condition_dim,
           config_.encoder_hidden, 2 * config_.latent_dim, config_.dropout,
           rng, Head::kNone, {});
  const Head head = config_.linear_head
                        ? Head::kNone
                        : (config_.softmax_blocks.empty() ? Head::kSigmoid
                                                          : Head::kTabular);
  BuildMlp(&decoder_, config_.latent_dim + config_.condition_dim,
           config_.decoder_hidden, config_.input_dim, config_.dropout, rng,
           head, config_.softmax_blocks);

  // Bias the logvar head to -3 (posterior stddev ~0.22) so early training
  // is not drowned in reparameterisation noise — otherwise the KL term wins
  // the race and the posterior collapses (mu == const, logvar == 0).
  auto* enc_head = dynamic_cast<nn::Linear*>(
      encoder_.layer(encoder_.size() - 1));
  assert(enc_head != nullptr);
  for (size_t j = config_.latent_dim; j < 2 * config_.latent_dim; ++j) {
    enc_head->bias()->value.at(0, j) = -3.0f;
  }
}

Vae::Output Vae::Forward(const ag::Var& x, const Matrix& cond, Rng* noise_rng,
                         bool sample) {
  const bool conditional = config_.condition_dim > 0;
  assert(!conditional || (cond.rows() == x->value.rows() &&
                          cond.cols() == config_.condition_dim));
  ag::Var cond_var =
      conditional ? ag::Constant(cond) : ag::Constant(Matrix());
  ag::Var enc_in = conditional ? ag::ConcatCols(x, cond_var) : x;
  ag::Var enc_out = encoder_.Forward(enc_in);

  Output out;
  out.mu = ag::SliceCols(enc_out, 0, config_.latent_dim);
  out.logvar = ag::SliceCols(enc_out, config_.latent_dim,
                             2 * config_.latent_dim);

  if (sample) {
    // z = mu + exp(0.5 * logvar) * eps,  eps ~ N(0, I).
    Matrix eps = Matrix::RandomNormal(x->value.rows(), config_.latent_dim,
                                      0.0f, 1.0f, noise_rng);
    ag::Var stddev = ag::Exp(ag::Scale(out.logvar, 0.5f));
    out.z = ag::Add(out.mu, ag::Mul(stddev, ag::Constant(eps)));
  } else {
    out.z = out.mu;
  }

  ag::Var dec_in = conditional ? ag::ConcatCols(out.z, cond_var) : out.z;
  out.x_hat = decoder_.Forward(dec_in);
  return out;
}

std::pair<Matrix, Matrix> Vae::Encode(const Matrix& x, const Matrix& cond) {
  return Encode(x, cond, &infer_ws_);
}

std::pair<Matrix, Matrix> Vae::Encode(const Matrix& x, const Matrix& cond,
                                      nn::InferWorkspace* ws) {
  const bool conditional = config_.condition_dim > 0;
  assert(!conditional || (cond.rows() == x.rows() &&
                          cond.cols() == config_.condition_dim));
  const bool was_training = encoder_.training();
  if (was_training) SetTraining(false);
  ws->Reset();
  const Matrix& enc_in = conditional ? ConcatColsInto(x, cond, ws) : x;
  const Matrix& enc_out = encoder_.Infer(enc_in, ws);
  // Split the head: columns [0, latent) are mu, [latent, 2*latent) logvar.
  Matrix mu(x.rows(), config_.latent_dim);
  Matrix logvar(x.rows(), config_.latent_dim);
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* src = enc_out.data() + r * enc_out.cols();
    std::memcpy(mu.data() + r * config_.latent_dim, src,
                config_.latent_dim * sizeof(float));
    std::memcpy(logvar.data() + r * config_.latent_dim,
                src + config_.latent_dim, config_.latent_dim * sizeof(float));
  }
  if (was_training) SetTraining(true);
  return {std::move(mu), std::move(logvar)};
}

Matrix Vae::Decode(const Matrix& z, const Matrix& cond) {
  return Decode(z, cond, &infer_ws_);
}

Matrix Vae::Decode(const Matrix& z, const Matrix& cond,
                   nn::InferWorkspace* ws) {
  const bool was_training = decoder_.training();
  if (was_training) SetTraining(false);
  ws->Reset();
  const Matrix& dec_in =
      config_.condition_dim > 0 ? ConcatColsInto(z, cond, ws) : z;
  Matrix result = decoder_.Infer(dec_in, ws);
  if (was_training) SetTraining(true);
  return result;
}

ag::Var Vae::DecodeVar(const ag::Var& z, const Matrix& cond) {
  ag::Var dec_in = config_.condition_dim > 0
                       ? ag::ConcatCols(z, ag::Constant(cond))
                       : z;
  return decoder_.Forward(dec_in);
}

Matrix Vae::Reconstruct(const Matrix& x, const Matrix& cond) {
  return Reconstruct(x, cond, &infer_ws_);
}

Matrix Vae::Reconstruct(const Matrix& x, const Matrix& cond,
                        nn::InferWorkspace* ws) {
  const bool conditional = config_.condition_dim > 0;
  const bool was_training = encoder_.training();
  if (was_training) SetTraining(false);
  ws->Reset();
  const Matrix& enc_in = conditional ? ConcatColsInto(x, cond, ws) : x;
  const Matrix& enc_out = encoder_.Infer(enc_in, ws);
  // z = posterior mean: the first latent_dim columns of the encoder head.
  Matrix& mu = ws->Acquire(x.rows(), config_.latent_dim);
  for (size_t r = 0; r < x.rows(); ++r) {
    std::memcpy(mu.data() + r * config_.latent_dim,
                enc_out.data() + r * enc_out.cols(),
                config_.latent_dim * sizeof(float));
  }
  const Matrix& dec_in = conditional ? ConcatColsInto(mu, cond, ws) : mu;
  Matrix result = decoder_.Infer(dec_in, ws);
  if (was_training) SetTraining(true);
  return result;
}

std::vector<ag::Var> Vae::Parameters() const {
  std::vector<ag::Var> params = encoder_.Parameters();
  for (const ag::Var& p : decoder_.Parameters()) params.push_back(p);
  return params;
}

void Vae::SetTraining(bool training) {
  encoder_.SetTraining(training);
  decoder_.SetTraining(training);
}

size_t Vae::ParameterCount() const {
  size_t n = 0;
  for (const ag::Var& p : Parameters()) n += p->value.size();
  return n;
}

void Vae::Freeze() {
  for (const ag::Var& p : Parameters()) p->requires_grad = false;
  SetTraining(false);
}

TrainStats Vae::TrainElbo(const Matrix& x, const Matrix& cond,
                          const VaeTrainConfig& train_config, Rng* rng) {
  SetTraining(true);
  nn::Adam opt(Parameters(), train_config.learning_rate);
  Rng noise = rng->Split(0xE1B0);

  TrainStats stats;
  const size_t n = x.rows();
  for (size_t epoch = 0; epoch < train_config.epochs; ++epoch) {
    CFX_TRACE_SPAN("vae/epoch");
    // KL annealing: ramp the weight over the first half of training so the
    // reconstruction pathway is established before regularising the latent.
    const float anneal = train_config.epochs > 1
                             ? std::min(1.0f, 2.0f * static_cast<float>(epoch) /
                                                  static_cast<float>(
                                                      train_config.epochs))
                             : 1.0f;
    const float kl_w = train_config.kl_weight * anneal;
    std::vector<size_t> perm = rng->Permutation(n);
    float epoch_loss = 0.0f;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += train_config.batch_size) {
      const size_t end = std::min(start + train_config.batch_size, n);
      std::vector<size_t> idx(perm.begin() + start, perm.begin() + end);
      Matrix xb = x.GatherRows(idx);
      Matrix cb = config_.condition_dim > 0 ? cond.GatherRows(idx) : Matrix();

      Output out = Forward(ag::Constant(xb), cb, &noise, /*sample=*/true);
      ag::Var recon = nn::MseLoss(out.x_hat, xb);
      ag::Var kl = nn::KlStandardNormal(out.mu, out.logvar);
      ag::Var loss = ag::Add(recon, ag::Scale(kl, kl_w));
      opt.ZeroGrad();
      ag::Backward(loss);
      opt.ClipGradNorm(5.0f);
      opt.Step();
      epoch_loss += loss->value.at(0, 0);
      ++batches;
    }
    stats.final_loss =
        batches > 0 ? epoch_loss / static_cast<float>(batches) : 0.0f;
  }
  stats.epochs = train_config.epochs;
  SetTraining(false);
  return stats;
}

}  // namespace cfx
