// Conditional Variational Autoencoder — the generative backbone of the
// paper's method (§III-C, Table II).
//
// Architecture, following Table II:
//   encoder: (num_features + 1) -> 20 -> 16 -> 14 -> 12 -> 2 * latent
//   decoder: (latent + 1)       -> 12 -> 14 -> 16 -> 18 -> num_features
// ReLU activations and 30% dropout on every hidden layer; the decoder output
// passes through a sigmoid (all encoded features live in [0,1]). The "+1"
// input is the conditioning class label.
//
// Deviation from Table II, documented in DESIGN.md: the table routes the
// encoder's final layer through a sigmoid into a single latent vector; a
// VAE's encoder must emit an unconstrained mean and log-variance, so the
// final encoder layer here is linear with width 2*latent (mu ‖ logvar).
#ifndef CFX_MODELS_VAE_H_
#define CFX_MODELS_VAE_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/models/classifier.h"
#include "src/nn/layers.h"

namespace cfx {

/// VAE shape/regularisation settings (defaults = paper's Table II).
struct VaeConfig {
  size_t input_dim = 0;                          ///< Encoded feature width.
  size_t latent_dim = 10;                        ///< "Latent space vector".
  std::vector<size_t> encoder_hidden = {20, 16, 14, 12};
  std::vector<size_t> decoder_hidden = {12, 14, 16, 18};
  float dropout = 0.3f;
  /// The "+1" class input of Table II; 0 builds an unconditional VAE
  /// (REVISE's generative model).
  size_t condition_dim = 1;
  /// Categorical (offset, width) ranges of the encoded representation. When
  /// non-empty the decoder head applies a per-block softmax (keeping
  /// categorical mass on the simplex) instead of a plain sigmoid, which
  /// keeps decoded rows close to the hard one-hot vectors the black box was
  /// trained on. Populate from TabularEncoder::CategoricalBlockRanges().
  std::vector<std::pair<size_t, size_t>> softmax_blocks;
  /// When true the decoder ends in a bare Linear layer (raw logits); the
  /// caller applies its own output transform. Used by the copy-prior
  /// counterfactual decoder, which adds the input's logits before the
  /// tabular activation.
  bool linear_head = false;
};

/// Hyperparameters for plain ELBO pre-training (used by the REVISE and
/// C-CHVAE baselines, which need a generative model of the data rather than
/// a CF-specialised one).
struct VaeTrainConfig {
  float learning_rate = 2e-3f;
  size_t batch_size = 128;
  size_t epochs = 30;
  /// Low weight: with an MSE reconstruction on [0,1] features, a heavier KL
  /// term posterior-collapses the tiny decoder (output independent of z),
  /// which breaks latent-space CF search entirely.
  float kl_weight = 0.01f;
};

/// Class-conditional VAE over encoded tabular rows.
class Vae {
 public:
  Vae(const VaeConfig& config, Rng* rng);

  /// Differentiable outputs of one forward pass.
  struct Output {
    ag::Var mu;      ///< (n, latent).
    ag::Var logvar;  ///< (n, latent).
    ag::Var z;       ///< Reparameterised sample (n, latent).
    ag::Var x_hat;   ///< Decoded reconstruction (n, input_dim), in (0,1).
  };

  /// Full differentiable pass: encode [x | cond], reparameterise with noise
  /// from `noise_rng` (or use mu directly when `sample` is false), decode
  /// [z | cond].
  Output Forward(const ag::Var& x, const Matrix& cond, Rng* noise_rng,
                 bool sample = true);

  /// Eval-mode posterior mean/logvar for a constant batch. Tape-free: runs
  /// the encoder through Module::Infer on a reused workspace (no graph
  /// nodes, no decoder pass). Bitwise identical to the Forward route. Not
  /// safe for concurrent calls on the same instance (shared workspace).
  std::pair<Matrix, Matrix> Encode(const Matrix& x, const Matrix& cond);

  /// Eval-mode decode of latent codes. Tape-free (see Encode).
  Matrix Decode(const Matrix& z, const Matrix& cond);

  /// Batch-capable variants on a caller-provided workspace (the serving
  /// path keeps one per worker). On a model already in eval mode these only
  /// read the weights, so concurrent calls are safe as long as each caller
  /// brings its own workspace. Values are bitwise identical to the
  /// member-workspace overloads.
  std::pair<Matrix, Matrix> Encode(const Matrix& x, const Matrix& cond,
                                   nn::InferWorkspace* ws);
  Matrix Decode(const Matrix& z, const Matrix& cond, nn::InferWorkspace* ws);
  Matrix Reconstruct(const Matrix& x, const Matrix& cond,
                     nn::InferWorkspace* ws);

  /// Differentiable decode: builds the decoder graph over a latent Var so
  /// gradients can flow back into `z` (REVISE's latent search). Dropout
  /// follows the current training mode.
  ag::Var DecodeVar(const ag::Var& z, const Matrix& cond);

  /// Eval-mode reconstruction (z = posterior mean). Tape-free (see Encode).
  Matrix Reconstruct(const Matrix& x, const Matrix& cond);

  std::vector<ag::Var> Parameters() const;
  void SetTraining(bool training);
  /// Current train/eval mode (encoder and decoder always agree).
  bool training() const { return encoder_.training(); }
  size_t ParameterCount() const;

  /// Marks all weights non-trainable; gradients still flow through the
  /// decoder to latent inputs (used by REVISE's latent-space search).
  void Freeze();

  const VaeConfig& config() const { return config_; }

  /// Trains this VAE with the plain ELBO (MSE reconstruction + weighted KL)
  /// on (x, cond); cond may be empty (0 columns) for unconditional models.
  TrainStats TrainElbo(const Matrix& x, const Matrix& cond,
                       const VaeTrainConfig& config, Rng* rng);

 private:
  VaeConfig config_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
  /// Never drawn from (eval passes use z = mu), but the constructor's Split
  /// advances the weight-init RNG — kept so initialisation stays bitwise
  /// stable across revisions.
  Rng eval_noise_;
  nn::InferWorkspace infer_ws_;  ///< Reused activations for Encode/Decode.
};

}  // namespace cfx

#endif  // CFX_MODELS_VAE_H_
