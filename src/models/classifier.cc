#include "src/models/classifier.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/data/batcher.h"
#include "src/nn/losses.h"

namespace cfx {

BlackBoxClassifier::BlackBoxClassifier(size_t input_dim,
                                       const ClassifierConfig& config,
                                       Rng* rng)
    : input_dim_(input_dim), config_(config) {
  if (config.hidden_dim == 0) {
    // Logistic regression.
    net_.Add(std::make_unique<nn::Linear>(input_dim, 1, rng,
                                          nn::Init::kXavierUniform));
  } else {
    net_.Add(std::make_unique<nn::Linear>(input_dim, config.hidden_dim, rng));
    net_.Add(std::make_unique<nn::ReluLayer>());
    net_.Add(std::make_unique<nn::Linear>(config.hidden_dim, 1, rng,
                                          nn::Init::kXavierUniform));
  }
}

TrainStats BlackBoxClassifier::Train(const Matrix& x,
                                     const std::vector<int>& labels,
                                     Rng* rng) {
  net_.SetTraining(true);
  nn::Adam opt(net_.Parameters(), config_.learning_rate);
  // Keep a sensible number of update steps per epoch even on small inputs.
  const size_t batch_size =
      std::min(config_.batch_size, std::max<size_t>(32, x.rows() / 16));
  Batcher batcher(x, labels, batch_size, rng);

  TrainStats stats;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    CFX_TRACE_SPAN("classifier/epoch");
    float epoch_loss = 0.0f;
    size_t batches = 0;
    for (Batch& batch : batcher.Epoch()) {
      ag::Var input = ag::Constant(batch.x);
      ag::Var logits = net_.Forward(input);
      ag::Var loss = nn::BceWithLogits(logits, batch.y);
      opt.ZeroGrad();
      ag::Backward(loss);
      opt.Step();
      epoch_loss += loss->value.at(0, 0);
      ++batches;
    }
    stats.final_loss = batches > 0 ? epoch_loss / static_cast<float>(batches)
                                   : 0.0f;
  }
  stats.epochs = config_.epochs;
  Freeze();
  stats.train_accuracy = Accuracy(x, labels);
  CFX_LOG(Debug) << "classifier trained: loss=" << stats.final_loss
                 << " acc=" << stats.train_accuracy;
  return stats;
}

void BlackBoxClassifier::Freeze() {
  for (const ag::Var& p : net_.Parameters()) p->requires_grad = false;
  net_.SetTraining(false);
  frozen_ = true;
}

ag::Var BlackBoxClassifier::LogitsVar(const ag::Var& x) {
  return net_.Forward(x);
}

const Matrix& BlackBoxClassifier::InferLogits(const Matrix& x,
                                              nn::InferWorkspace* ws) {
  // Skip the mode walk entirely in the common serving case (frozen model
  // already in eval mode) — it shows up at batch-1 latency.
  const bool was_training = net_.training();
  if (was_training) net_.SetTraining(false);
  ws->Reset();
  const Matrix& out = net_.Infer(x, ws);
  if (was_training) net_.SetTraining(true);
  return out;
}

Matrix BlackBoxClassifier::Logits(const Matrix& x) {
  return Logits(x, &infer_ws_);
}

Matrix BlackBoxClassifier::Logits(const Matrix& x, nn::InferWorkspace* ws) {
  return InferLogits(x, ws);
}

std::vector<int> BlackBoxClassifier::Predict(const Matrix& x) {
  return Predict(x, &infer_ws_);
}

std::vector<int> BlackBoxClassifier::Predict(const Matrix& x,
                                             nn::InferWorkspace* ws) {
  const Matrix& logits = InferLogits(x, ws);
  std::vector<int> labels(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    labels[r] = logits.at(r, 0) > 0.0f ? 1 : 0;
  }
  return labels;
}

std::vector<float> BlackBoxClassifier::PredictProba(const Matrix& x) {
  return PredictProba(x, &infer_ws_);
}

std::vector<float> BlackBoxClassifier::PredictProba(const Matrix& x,
                                                    nn::InferWorkspace* ws) {
  const Matrix& logits = InferLogits(x, ws);
  std::vector<float> proba(logits.rows());
  if (logits.cols() == 1) {
    // Contiguous logit column: one dispatched sigmoid (the same
    // implementation every other sigmoid in the process uses).
    kernels::SigmoidTo(proba.data(), logits.data(), logits.rows());
  } else {
    for (size_t r = 0; r < logits.rows(); ++r) {
      proba[r] = 1.0f / (1.0f + std::exp(-logits.at(r, 0)));
    }
  }
  return proba;
}

double BlackBoxClassifier::Accuracy(const Matrix& x,
                                    const std::vector<int>& labels) {
  std::vector<int> pred = Predict(x);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += (pred[i] == labels[i]);
  return pred.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(pred.size());
}

}  // namespace cfx
