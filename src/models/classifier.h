// The black-box model of §III-C "Model Steps": two linear layers trained to
// classify the input into the two target classes. It is trained first and
// then frozen; the CF methods only query it (predictions) or differentiate
// *through* it (validity loss) without updating its weights.
#ifndef CFX_MODELS_CLASSIFIER_H_
#define CFX_MODELS_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"

namespace cfx {

/// Training hyperparameters for the classifier.
struct ClassifierConfig {
  /// Width of the hidden layer; 0 builds a plain logistic-regression model
  /// (single linear layer), demonstrating black-box-agnosticism of the CF
  /// methods.
  size_t hidden_dim = 16;
  float learning_rate = 5e-3f;
  size_t batch_size = 256;
  size_t epochs = 40;
};

/// Summary of a training run.
struct TrainStats {
  float final_loss = 0.0f;
  double train_accuracy = 0.0;
  size_t epochs = 0;
};

/// Two-linear-layer binary classifier emitting one logit per row.
class BlackBoxClassifier {
 public:
  /// `input_dim` is the encoded feature width.
  BlackBoxClassifier(size_t input_dim, const ClassifierConfig& config,
                     Rng* rng);

  /// Trains with BCE-with-logits on (x, labels); freezes the weights at the
  /// end so later graphs treat the model as a constant function.
  TrainStats Train(const Matrix& x, const std::vector<int>& labels, Rng* rng);

  /// Builds the logit graph for a (possibly differentiable) input. Gradients
  /// flow through to `x` but never into the frozen weights. This is the
  /// *tape* path — use it only when gradients w.r.t. `x` are needed.
  ag::Var LogitsVar(const ag::Var& x);

  /// Eval-mode logits for a constant batch — tape-free (no graph nodes;
  /// activations live in a reused workspace). Bitwise identical to
  /// LogitsVar(Constant(x))->value. Not safe for concurrent calls on the
  /// same instance (shared workspace).
  Matrix Logits(const Matrix& x);

  /// Hard 0/1 predictions (logit > 0). Tape-free.
  std::vector<int> Predict(const Matrix& x);

  /// P(class 1) per row: sigmoid of the logit. Tape-free.
  std::vector<float> PredictProba(const Matrix& x);

  /// Batch-capable variants on a caller-provided workspace (the serving
  /// path keeps one workspace per worker). On a *frozen* model these only
  /// read the weights, so concurrent calls are safe as long as each caller
  /// brings its own workspace. Values are bitwise identical to the
  /// member-workspace overloads.
  Matrix Logits(const Matrix& x, nn::InferWorkspace* ws);
  std::vector<int> Predict(const Matrix& x, nn::InferWorkspace* ws);
  std::vector<float> PredictProba(const Matrix& x, nn::InferWorkspace* ws);

  /// Fraction of rows where Predict matches `labels`.
  double Accuracy(const Matrix& x, const std::vector<int>& labels);

  size_t input_dim() const { return input_dim_; }
  bool frozen() const { return frozen_; }

  /// Marks weights as non-trainable (requires_grad = false).
  void Freeze();

  /// Trainable tensors in serialisation order (bundle save/restore).
  std::vector<ag::Var> Parameters() const { return net_.Parameters(); }

  const ClassifierConfig& config() const { return config_; }

 private:
  /// Tape-free eval logits into `ws`.
  const Matrix& InferLogits(const Matrix& x, nn::InferWorkspace* ws);

  size_t input_dim_;
  ClassifierConfig config_;
  nn::Sequential net_;
  nn::InferWorkspace infer_ws_;
  bool frozen_ = false;
};

}  // namespace cfx

#endif  // CFX_MODELS_CLASSIFIER_H_
