#include "src/causal/scm.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace cfx {

Status StructuralCausalModel::AddNode(ScmNode node) {
  for (const ScmNode& existing : nodes_) {
    if (existing.name == node.name) {
      return Status::AlreadyExists("duplicate SCM node '" + node.name + "'");
    }
  }
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status StructuralCausalModel::Validate(const Schema& schema) const {
  std::set<std::string> declared;
  for (const ScmNode& node : nodes_) {
    if (!schema.FeatureIndex(node.name).ok()) {
      return Status::NotFound("SCM node '" + node.name +
                              "' is not a schema feature");
    }
    declared.insert(node.name);
  }
  for (const ScmNode& node : nodes_) {
    for (const std::string& parent : node.parents) {
      if (!schema.FeatureIndex(parent).ok()) {
        return Status::NotFound("SCM parent '" + parent +
                                "' is not a schema feature");
      }
    }
    if (!node.parents.empty() && !node.mechanism) {
      return Status::InvalidArgument("node '" + node.name +
                                     "' has parents but no mechanism");
    }
  }
  // Cycle check via Kahn's algorithm over declared nodes (exogenous parents
  // that are not declared nodes have no incoming edges of their own).
  std::map<std::string, size_t> in_degree;
  std::map<std::string, std::vector<std::string>> children;
  for (const ScmNode& node : nodes_) in_degree[node.name] = 0;
  for (const ScmNode& node : nodes_) {
    for (const std::string& parent : node.parents) {
      if (declared.count(parent)) {
        ++in_degree[node.name];
        children[parent].push_back(node.name);
      }
    }
  }
  std::vector<std::string> frontier;
  for (const auto& [name, degree] : in_degree) {
    if (degree == 0) frontier.push_back(name);
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const std::string& child : children[current]) {
      if (--in_degree[child] == 0) frontier.push_back(child);
    }
  }
  if (visited != nodes_.size()) {
    return Status::InvalidArgument("SCM graph contains a cycle");
  }
  return Status::OK();
}

std::vector<const ScmNode*> StructuralCausalModel::TopologicalOrder() const {
  std::set<std::string> declared;
  for (const ScmNode& node : nodes_) declared.insert(node.name);
  std::map<std::string, size_t> in_degree;
  std::map<std::string, std::vector<std::string>> children;
  std::map<std::string, const ScmNode*> by_name;
  for (const ScmNode& node : nodes_) {
    in_degree[node.name] = 0;
    by_name[node.name] = &node;
  }
  for (const ScmNode& node : nodes_) {
    for (const std::string& parent : node.parents) {
      if (declared.count(parent)) {
        ++in_degree[node.name];
        children[parent].push_back(node.name);
      }
    }
  }
  std::vector<std::string> frontier;
  for (const auto& [name, degree] : in_degree) {
    if (degree == 0) frontier.push_back(name);
  }
  std::vector<const ScmNode*> order;
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    order.push_back(by_name[current]);
    for (const std::string& child : children[current]) {
      if (--in_degree[child] == 0) frontier.push_back(child);
    }
  }
  return order;
}

namespace {

/// Raw-domain value of a named feature within an encoded row.
double RawValue(const TabularEncoder& encoder, const Matrix& row,
                const std::string& name) {
  auto fi = encoder.schema().FeatureIndex(name);
  return encoder.FeatureValue(row, *fi);
}

}  // namespace

ScmConsistency StructuralCausalModel::CheckPair(const TabularEncoder& encoder,
                                                const Matrix& x,
                                                const Matrix& x_cf) const {
  ScmConsistency result;
  for (const ScmNode& node : nodes_) {
    if (!node.mechanism) continue;  // Exogenous: nothing to check.
    ++result.num_nodes_checked;

    std::vector<double> parents_x(node.parents.size());
    std::vector<double> parents_cf(node.parents.size());
    bool parents_changed = false;
    for (size_t p = 0; p < node.parents.size(); ++p) {
      parents_x[p] = RawValue(encoder, x, node.parents[p]);
      parents_cf[p] = RawValue(encoder, x_cf, node.parents[p]);
      parents_changed =
          parents_changed || std::fabs(parents_x[p] - parents_cf[p]) > 1e-9;
    }
    const double value_x = RawValue(encoder, x, node.name);
    const double value_cf = RawValue(encoder, x_cf, node.name);

    if (!parents_changed && std::fabs(value_x - value_cf) <= 1e-9) {
      continue;  // Untouched sub-graph.
    }
    // The CF's mechanism residual must not exceed the input's residual by
    // more than the noise band: changes must keep the pair at least as
    // consistent with the causal mechanism as the observed data was.
    const double residual_x = std::fabs(value_x - node.mechanism(parents_x));
    const double residual_cf =
        std::fabs(value_cf - node.mechanism(parents_cf));
    if (residual_cf > residual_x + node.tolerance) {
      ++result.num_violations;
      result.violated.push_back(node.name);
    }
  }
  return result;
}

ScmBatchConsistency StructuralCausalModel::CheckBatch(
    const TabularEncoder& encoder, const Matrix& x, const Matrix& x_cf) const {
  ScmBatchConsistency batch;
  batch.num_pairs = x.rows();
  std::map<std::string, size_t> by_node;
  for (size_t r = 0; r < x.rows(); ++r) {
    ScmConsistency pair = CheckPair(encoder, x.Row(r), x_cf.Row(r));
    batch.num_consistent += pair.consistent();
    for (const std::string& name : pair.violated) ++by_node[name];
  }
  batch.score_percent =
      batch.num_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(batch.num_consistent) /
                static_cast<double>(batch.num_pairs);
  for (const auto& [name, count] : by_node) {
    batch.violations_by_node.emplace_back(name, count);
  }
  std::sort(batch.violations_by_node.begin(), batch.violations_by_node.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return batch;
}

StructuralCausalModel MakeGroundTruthScm(DatasetId id) {
  StructuralCausalModel scm;
  switch (id) {
    case DatasetId::kAdult:
    case DatasetId::kCensus: {
      // age (exogenous) -> education; education -> hours/wage-style effort.
      const double age_lo = id == DatasetId::kAdult ? 17.0 : 16.0;
      const double span = id == DatasetId::kAdult ? 18.0 : 19.0;
      const double base = id == DatasetId::kAdult ? 1.0 : 0.9;
      const double gain = id == DatasetId::kAdult ? 3.2 : 3.1;
      CFX_CHECK_OK(scm.AddNode({"age", {}, nullptr, 0.0}));
      CFX_CHECK_OK(scm.AddNode(
          {"education",
           {"age"},
           [age_lo, span, base, gain](const std::vector<double>& p) {
             const double factor = std::min(1.0, (p[0] - age_lo) / span);
             return base + gain * factor;
           },
           // Education is sampled with stddev ~1.1-1.2 around the mean.
           2.4}));
      if (id == DatasetId::kAdult) {
        CFX_CHECK_OK(scm.AddNode(
            {"hours_per_week",
             {"education"},
             [](const std::vector<double>& p) { return 38.0 + 1.5 * p[0]; },
             // hours stddev is 9; allow two sigma.
             18.0}));
      } else {
        CFX_CHECK_OK(scm.AddNode(
            {"wage_per_hour",
             {"education"},
             [](const std::vector<double>& p) { return 8.0 + 4.0 * p[0]; },
             // wage stddev 6 plus the not-employed zero mass.
             14.0}));
      }
      break;
    }
    case DatasetId::kLaw: {
      // lsat (exogenous via aptitude) -> tier; zgpa -> decile.
      CFX_CHECK_OK(scm.AddNode({"lsat", {}, nullptr, 0.0}));
      CFX_CHECK_OK(scm.AddNode(
          {"tier",
           {"lsat"},
           [](const std::vector<double>& p) {
             const double score = (p[0] - 10.0) / 38.0 * 5.0;
             return std::min(5.0, std::max(0.0, score));
           },
           // tier noise stddev 0.7; allow two sigma.
           1.5}));
      CFX_CHECK_OK(scm.AddNode(
          {"decile",
           {"zgpa"},
           [](const std::vector<double>& p) {
             return std::min(10.0, std::max(1.0, 5.5 + 2.0 * p[0]));
           },
           3.0}));
      break;
    }
  }
  return scm;
}

}  // namespace cfx
