// Structural causal models over dataset features.
//
// The paper's feasibility Definition (§III) requires that "all variables
// that conduct a causal model (i.e. a structure that depicts all possible
// relations between the variables of a dataset) lie within the input
// domain", and grounds the constraints of §III-A in such a model. cfx makes
// the causal model a first-class object: a DAG of feature nodes, each with a
// deterministic *mechanism* mapping its parents' (raw-domain) values to the
// node's expected value, plus a tolerance describing the mechanism's noise
// band.
//
// Two uses:
//   * Consistency scoring of counterfactuals (§ScmConsistency): a CF that
//     changes a cause should move its effects along the mechanism — or at
//     least not move them *against* it. For every node whose parents
//     changed, the CF's mechanism residual |value − f(parents)| must not
//     exceed the input's residual by more than the tolerance. Unchanged-
//     parent nodes must not drift against their mechanism either.
//   * Ground-truth documentation: each dataset generator's planted causal
//     structure (DESIGN.md §4) is exported as an SCM so tests and benches
//     can verify the synthesis and the discovery module against it.
#ifndef CFX_CAUSAL_SCM_H_
#define CFX_CAUSAL_SCM_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/encoder.h"
#include "src/datasets/spec.h"

namespace cfx {

/// One endogenous node of the causal graph.
struct ScmNode {
  std::string name;                       ///< Feature name (must exist in schema).
  std::vector<std::string> parents;       ///< Feature names of direct causes.
  /// Expected raw-domain value given the parents' raw-domain values (in
  /// `parents` order). Null for exogenous nodes.
  std::function<double(const std::vector<double>&)> mechanism;
  /// Acceptable |value - mechanism(parents)| band, in raw units.
  double tolerance = 0.0;
};

/// Per-pair consistency verdict.
struct ScmConsistency {
  size_t num_nodes_checked = 0;
  size_t num_violations = 0;
  /// Names of violated nodes (for reports).
  std::vector<std::string> violated;

  bool consistent() const { return num_violations == 0; }
};

/// Aggregate over a CF batch.
struct ScmBatchConsistency {
  size_t num_pairs = 0;
  size_t num_consistent = 0;
  double score_percent = 0.0;  ///< % of pairs with no violation.
  /// Violation counts per node name, summed over pairs.
  std::vector<std::pair<std::string, size_t>> violations_by_node;
};

/// A directed acyclic causal model over schema features.
class StructuralCausalModel {
 public:
  /// Adds a node; returns an error for duplicate names.
  Status AddNode(ScmNode node);

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<ScmNode>& nodes() const { return nodes_; }

  /// Validates the model against a schema: every node and parent must be a
  /// schema feature, every parent must itself be declared (as a node or
  /// implicitly exogenous), and the parent relation must be acyclic.
  Status Validate(const Schema& schema) const;

  /// Checks one (input, counterfactual) pair of *encoded* rows. For every
  /// node with a mechanism:
  ///   residual_cf <= residual_input + tolerance
  /// where residual = |raw value − mechanism(raw parents)|. Nodes whose
  /// mechanism inputs are identical in both rows and whose own value is
  /// unchanged are trivially consistent.
  ScmConsistency CheckPair(const TabularEncoder& encoder, const Matrix& x,
                           const Matrix& x_cf) const;

  /// Scores a whole batch.
  ScmBatchConsistency CheckBatch(const TabularEncoder& encoder,
                                 const Matrix& x, const Matrix& x_cf) const;

  /// Nodes in parent-before-child order. Requires a validated model.
  std::vector<const ScmNode*> TopologicalOrder() const;

 private:
  std::vector<ScmNode> nodes_;
};

/// The planted ground-truth causal model of a synthetic dataset (matching
/// the generator's sampling process and the §IV-E constraints).
StructuralCausalModel MakeGroundTruthScm(DatasetId id);

}  // namespace cfx

#endif  // CFX_CAUSAL_SCM_H_
