#include "src/data/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/tensor/kernels.h"

namespace cfx {

TabularEncoder::TabularEncoder(Schema schema) : schema_(std::move(schema)) {
  size_t offset = 0;
  blocks_.reserve(schema_.num_features());
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    const FeatureSpec& spec = schema_.feature(i);
    EncodedBlock block;
    block.feature_index = i;
    block.offset = offset;
    block.width = spec.EncodedWidth();
    block.type = spec.type;
    offset += block.width;
    blocks_.push_back(block);
  }
  width_ = offset;
  min_.assign(schema_.num_features(), 0.0);
  max_.assign(schema_.num_features(), 1.0);
}

Status TabularEncoder::Fit(const Table& table) {
  if (table.num_features() != schema_.num_features()) {
    return Status::InvalidArgument("table schema width mismatch");
  }
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    if (schema_.feature(i).type != FeatureType::kContinuous) continue;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    const Column& col = table.column(i);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (col.IsMissing(r)) continue;
      lo = std::min(lo, col.value(r));
      hi = std::max(hi, col.value(r));
    }
    if (!std::isfinite(lo)) {
      return Status::FailedPrecondition(
          "continuous feature '" + schema_.feature(i).name +
          "' has no observed values to fit");
    }
    min_[i] = lo;
    max_[i] = hi;
  }
  fitted_ = true;
  return Status::OK();
}

double TabularEncoder::Normalize(size_t fi, double raw) const {
  const double range = max_[fi] - min_[fi];
  if (range <= 0.0) return 0.5;
  return (raw - min_[fi]) / range;
}

double TabularEncoder::Denormalize(size_t fi, double normalized) const {
  const double range = max_[fi] - min_[fi];
  if (range <= 0.0) return min_[fi];
  return min_[fi] + normalized * range;
}

StatusOr<Matrix> TabularEncoder::Transform(const Table& table) const {
  auto columnar = TransformColumnar(table);
  if (!columnar.ok()) return columnar.status();
  // Transpose is a pure element move, so this is value-identical to the
  // historical row-by-row encode.
  return columnar->ToMatrix();
}

StatusOr<ColumnBatch> TabularEncoder::TransformColumnar(
    const Table& table) const {
  if (!fitted_) return Status::FailedPrecondition("encoder not fitted");
  if (table.num_features() != schema_.num_features()) {
    return Status::InvalidArgument("table schema width mismatch");
  }
  const size_t rows = table.num_rows();
  for (size_t r = 0; r < rows; ++r) {
    if (table.RowHasMissing(r)) {
      return Status::InvalidArgument(StrFormat(
          "row %zu has missing cells; run DropMissingRows first", r));
    }
  }
  ColumnBatch out(rows, width_);
  for (const EncodedBlock& block : blocks_) {
    const Column& col = table.column(block.feature_index);
    switch (block.type) {
      case FeatureType::kContinuous: {
        float* dst = out.column(block.offset);
        for (size_t r = 0; r < rows; ++r) {
          dst[r] =
              static_cast<float>(Normalize(block.feature_index, col.value(r)));
        }
        break;
      }
      case FeatureType::kBinary: {
        float* dst = out.column(block.offset);
        for (size_t r = 0; r < rows; ++r) {
          dst[r] = col.value(r) >= 0.5 ? 1.0f : 0.0f;
        }
        break;
      }
      case FeatureType::kCategorical: {
        for (size_t r = 0; r < rows; ++r) {
          int idx = static_cast<int>(col.value(r));
          // Hard validation, not assert: a corrupted category code in a
          // Release build used to write the one-hot past this block into
          // the neighbouring column (or off the end of the batch).
          if (idx < 0 || static_cast<size_t>(idx) >= block.width) {
            return Status::InvalidArgument(StrFormat(
                "categorical feature '%s' row %zu: code %d outside [0, %zu)",
                schema_.feature(block.feature_index).name.c_str(), r, idx,
                block.width));
          }
          out.at(r, block.offset + static_cast<size_t>(idx)) = 1.0f;
        }
        break;
      }
    }
  }
  return out;
}

Matrix TabularEncoder::TransformRow(const RawRow& row) const {
  assert(fitted_);
  Matrix out(1, width_);
  for (const EncodedBlock& block : blocks_) {
    const double raw = row.values[block.feature_index];
    switch (block.type) {
      case FeatureType::kContinuous:
        out.at(0, block.offset) =
            static_cast<float>(Normalize(block.feature_index, raw));
        break;
      case FeatureType::kBinary:
        out.at(0, block.offset) = raw >= 0.5 ? 1.0f : 0.0f;
        break;
      case FeatureType::kCategorical: {
        int idx = static_cast<int>(raw);
        // No Status channel here; abort in every build rather than write
        // out of bounds (matching the Batcher validation contract).
        if (idx < 0 || static_cast<size_t>(idx) >= block.width) {
          CFX_LOG(Error) << "TransformRow: categorical feature '"
                         << schema_.feature(block.feature_index).name
                         << "' code " << idx << " outside [0, " << block.width
                         << ")";
          std::abort();
        }
        out.at(0, block.offset + static_cast<size_t>(idx)) = 1.0f;
        break;
      }
    }
  }
  return out;
}

RawRow TabularEncoder::InverseTransformRow(const Matrix& encoded_row,
                                           int label) const {
  assert(encoded_row.rows() == 1 && encoded_row.cols() == width_);
  RawRow row;
  row.values.resize(schema_.num_features());
  row.label = label;
  for (const EncodedBlock& block : blocks_) {
    switch (block.type) {
      case FeatureType::kContinuous:
        row.values[block.feature_index] =
            Denormalize(block.feature_index, encoded_row.at(0, block.offset));
        break;
      case FeatureType::kBinary:
        row.values[block.feature_index] =
            encoded_row.at(0, block.offset) >= 0.5f ? 1.0 : 0.0;
        break;
      case FeatureType::kCategorical: {
        size_t best = 0;
        float best_v = encoded_row.at(0, block.offset);
        for (size_t j = 1; j < block.width; ++j) {
          if (encoded_row.at(0, block.offset + j) > best_v) {
            best_v = encoded_row.at(0, block.offset + j);
            best = j;
          }
        }
        row.values[block.feature_index] = static_cast<double>(best);
        break;
      }
    }
  }
  return row;
}

Matrix TabularEncoder::ProjectRow(const Matrix& encoded_row) const {
  assert(encoded_row.rows() == 1 && encoded_row.cols() == width_);
  Matrix out(1, width_);
  for (const EncodedBlock& block : blocks_) {
    switch (block.type) {
      case FeatureType::kContinuous: {
        float v = encoded_row.at(0, block.offset);
        out.at(0, block.offset) = std::clamp(v, 0.0f, 1.0f);
        break;
      }
      case FeatureType::kBinary:
        out.at(0, block.offset) =
            encoded_row.at(0, block.offset) >= 0.5f ? 1.0f : 0.0f;
        break;
      case FeatureType::kCategorical: {
        size_t best = 0;
        float best_v = encoded_row.at(0, block.offset);
        for (size_t j = 1; j < block.width; ++j) {
          if (encoded_row.at(0, block.offset + j) > best_v) {
            best_v = encoded_row.at(0, block.offset + j);
            best = j;
          }
        }
        out.at(0, block.offset + best) = 1.0f;
        break;
      }
    }
  }
  return out;
}

void TabularEncoder::ProjectBatch(const ColumnBatch& raw,
                                  const ColumnBatch* inputs,
                                  ColumnBatch* out) const {
  assert(raw.cols() == width_);
  assert(inputs == nullptr ||
         (inputs->rows() == raw.rows() && inputs->cols() == width_));
  const size_t rows = raw.rows();
  if (out->rows() != rows || out->cols() != width_) {
    *out = ColumnBatch(rows, width_);
  }
  std::vector<size_t> best;   // Categorical argmax scratch, reused per block.
  std::vector<float> best_v;
  for (const EncodedBlock& block : blocks_) {
    if (inputs != nullptr && schema_.feature(block.feature_index).immutable) {
      for (size_t j = 0; j < block.width; ++j) {
        std::copy_n(inputs->column(block.offset + j), rows,
                    out->column(block.offset + j));
      }
      continue;
    }
    switch (block.type) {
      case FeatureType::kContinuous:
        kernels::ClampTo(out->column(block.offset), raw.column(block.offset),
                         rows, 0.0f, 1.0f);
        break;
      case FeatureType::kBinary: {
        const float* src = raw.column(block.offset);
        float* dst = out->column(block.offset);
        for (size_t r = 0; r < rows; ++r) {
          dst[r] = src[r] >= 0.5f ? 1.0f : 0.0f;
        }
        break;
      }
      case FeatureType::kCategorical: {
        // Column-sweeping first-strict-max argmax: ascending j with a strict
        // '>' reproduces ProjectRow's scan order for every row at once.
        const float* c0 = raw.column(block.offset);
        best.assign(rows, 0);
        best_v.assign(c0, c0 + rows);
        for (size_t j = 1; j < block.width; ++j) {
          const float* cj = raw.column(block.offset + j);
          for (size_t r = 0; r < rows; ++r) {
            if (cj[r] > best_v[r]) {
              best_v[r] = cj[r];
              best[r] = j;
            }
          }
        }
        for (size_t j = 0; j < block.width; ++j) {
          std::fill_n(out->column(block.offset + j), rows, 0.0f);
        }
        for (size_t r = 0; r < rows; ++r) {
          out->at(r, block.offset + best[r]) = 1.0f;
        }
        break;
      }
    }
  }
}

Matrix TabularEncoder::ProjectBatch(const Matrix& cfs_raw,
                                    const Matrix* inputs) const {
  if (cfs_raw.rows() < 8) {
    // Small batches (serving batch-1 latency path): the columnar pivot
    // costs two transposes and an allocation with no streaming win. The
    // per-row path is bitwise identical (tests/simd_test.cc pins it).
    Matrix out(cfs_raw.rows(), width_);
    for (size_t r = 0; r < cfs_raw.rows(); ++r) {
      const Matrix row = ProjectRow(cfs_raw.Row(r));
      float* dst = out.data() + r * width_;
      std::copy_n(row.data(), width_, dst);
      if (inputs != nullptr) {
        for (const EncodedBlock& block : blocks_) {
          if (!schema_.feature(block.feature_index).immutable) continue;
          for (size_t j = 0; j < block.width; ++j) {
            dst[block.offset + j] = inputs->at(r, block.offset + j);
          }
        }
      }
    }
    return out;
  }
  ColumnBatch raw = ColumnBatch::FromMatrix(cfs_raw);
  ColumnBatch out(cfs_raw.rows(), width_);
  ProjectBatch(raw, nullptr, &out);
  if (inputs != nullptr) {
    // Restore immutable features straight from the row-major input: a
    // strided gather over just those columns beats transposing the whole
    // input batch.
    const size_t rows = cfs_raw.rows();
    for (const EncodedBlock& block : blocks_) {
      if (!schema_.feature(block.feature_index).immutable) continue;
      for (size_t j = 0; j < block.width; ++j) {
        const size_t c = block.offset + j;
        float* dst = out.column(c);
        for (size_t r = 0; r < rows; ++r) dst[r] = inputs->at(r, c);
      }
    }
  }
  return out.ToMatrix();
}

StatusOr<size_t> TabularEncoder::ScalarOffset(const std::string& name) const {
  auto fi = schema_.FeatureIndex(name);
  if (!fi.ok()) return fi.status();
  const EncodedBlock& block = blocks_[*fi];
  if (block.type == FeatureType::kCategorical) {
    return Status::InvalidArgument("feature '" + name +
                                   "' is categorical; use block()");
  }
  return block.offset;
}

double TabularEncoder::FeatureValue(const Matrix& encoded_row,
                                    size_t fi) const {
  const EncodedBlock& block = blocks_[fi];
  switch (block.type) {
    case FeatureType::kContinuous:
      return Denormalize(fi, encoded_row.at(0, block.offset));
    case FeatureType::kBinary:
      return encoded_row.at(0, block.offset) >= 0.5f ? 1.0 : 0.0;
    case FeatureType::kCategorical: {
      size_t best = 0;
      float best_v = encoded_row.at(0, block.offset);
      for (size_t j = 1; j < block.width; ++j) {
        if (encoded_row.at(0, block.offset + j) > best_v) {
          best_v = encoded_row.at(0, block.offset + j);
          best = j;
        }
      }
      return static_cast<double>(best);
    }
  }
  return 0.0;
}

std::vector<std::pair<size_t, size_t>>
TabularEncoder::CategoricalBlockRanges() const {
  std::vector<std::pair<size_t, size_t>> ranges;
  for (const EncodedBlock& block : blocks_) {
    if (block.type == FeatureType::kCategorical) {
      ranges.emplace_back(block.offset, block.width);
    }
  }
  return ranges;
}

Matrix TabularEncoder::MutableMask() const {
  Matrix mask(1, width_, 1.0f);
  for (const EncodedBlock& block : blocks_) {
    if (!schema_.feature(block.feature_index).immutable) continue;
    for (size_t j = 0; j < block.width; ++j) mask.at(0, block.offset + j) = 0.0f;
  }
  return mask;
}

}  // namespace cfx
