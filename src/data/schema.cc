#include "src/data/schema.h"

namespace cfx {

StatusOr<size_t> Schema::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) return i;
  }
  return Status::NotFound("no feature named '" + name + "'");
}

TypeCounts Schema::CountByType() const {
  TypeCounts counts;
  for (const FeatureSpec& f : features_) {
    switch (f.type) {
      case FeatureType::kCategorical: ++counts.categorical; break;
      case FeatureType::kBinary: ++counts.binary; break;
      case FeatureType::kContinuous: ++counts.continuous; break;
    }
  }
  return counts;
}

std::vector<size_t> Schema::ImmutableIndices() const {
  std::vector<size_t> idx;
  for (size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].immutable) idx.push_back(i);
  }
  return idx;
}

size_t Schema::EncodedWidth() const {
  size_t w = 0;
  for (const FeatureSpec& f : features_) w += f.EncodedWidth();
  return w;
}

}  // namespace cfx
