#include "src/data/column_batch.h"

#include <cassert>

#include "src/tensor/simd.h"

namespace cfx {

ColumnBatch::ColumnBatch(size_t rows, size_t cols)
    : rows_(rows),
      cols_(cols),
      stride_(simd::PaddedLength(rows)),
      data_(stride_ * cols, 0.0f) {}

ColumnBatch ColumnBatch::FromRowMajor(const float* data, size_t rows,
                                      size_t cols) {
  ColumnBatch batch(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      batch.data_[c * batch.stride_ + r] = row[c];
    }
  }
  return batch;
}

ColumnBatch ColumnBatch::FromMatrix(const Matrix& m) {
  return FromRowMajor(m.data(), m.rows(), m.cols());
}

void ColumnBatch::ToRowMajor(float* out) const {
  for (size_t c = 0; c < cols_; ++c) {
    const float* col = data_.data() + c * stride_;
    for (size_t r = 0; r < rows_; ++r) {
      out[r * cols_ + c] = col[r];
    }
  }
}

Matrix ColumnBatch::ToMatrix() const {
  Matrix out(rows_, cols_);
  ToRowMajor(out.data());
  return out;
}

std::pair<float, float> ColumnBatch::ColumnMinMax(size_t c) const {
  assert(c < cols_);
  if (rows_ == 0) return {0.0f, 0.0f};
  const float* col = column(c);
  float lo = col[0];
  float hi = col[0];
  for (size_t r = 1; r < rows_; ++r) {
    lo = col[r] < lo ? col[r] : lo;
    hi = col[r] > hi ? col[r] : hi;
  }
  return {lo, hi};
}

}  // namespace cfx
