#include "src/data/preprocess.h"

namespace cfx {

Table DropMissingRows(const Table& table, CleaningReport* report) {
  std::vector<size_t> keep;
  keep.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!table.RowHasMissing(r)) keep.push_back(r);
  }
  if (report != nullptr) {
    report->rows_before = table.num_rows();
    report->rows_after = keep.size();
    report->rows_dropped = table.num_rows() - keep.size();
  }
  return table.Select(keep);
}

}  // namespace cfx
