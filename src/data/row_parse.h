// Strict CSV cell/row parsing shared by the batch reader (ReadTableCsv) and
// the streaming row framer (src/stream/framer.h).
//
// Both ingest paths MUST produce bitwise-identical tables from identical
// input bytes — the streaming-vs-batch equivalence contract in
// tests/stream_test.cc. Centralising the per-cell strtod/strtol validation
// here makes that equivalence hold by construction instead of by keeping
// two copies in sync.
#ifndef CFX_DATA_ROW_PARSE_H_
#define CFX_DATA_ROW_PARSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/data/schema.h"

namespace cfx {

/// Parses one raw cell for the given spec. Empty -> missing (NaN).
///
/// Continuous cells are strict: the whole cell must be consumed ("3.5abc"
/// is an error) and the value must be finite ("inf"/"nan"/"1e999" are
/// rejected). Underflow to a subnormal or to zero is accepted — glibc's
/// strtod flags ERANGE for gradual underflow, but the result is still the
/// nearest representable double, and rejecting it would make write->read
/// round trips of legitimate tiny values fail.
StatusOr<double> ParseCell(const FeatureSpec& spec, const std::string& text);

/// Strict whole-string base-10 label parse ("1x", "", "2.5" are errors).
StatusOr<int> ParseLabel(const std::string& text);

/// Validates a raw CSV header line against the schema: feature names in
/// exact schema order followed by the target name. Returns InvalidArgument
/// naming the first mismatching column (or the count mismatch when the
/// names agree up to the shorter length). Cells are trimmed, so CRLF
/// line endings and padded headers validate cleanly.
Status ValidateHeaderLine(const Schema& schema, std::string_view line);

/// Parses one data line into per-feature values plus the label. `values`
/// is resized to schema.num_features(). Errors name the offending cell but
/// not the source location — callers wrap with their file:row / stream:row
/// context. The line must not contain the newline terminator.
Status ParseRowLine(const Schema& schema, std::string_view line,
                    std::vector<double>* values, int* label);

}  // namespace cfx

#endif  // CFX_DATA_ROW_PARSE_H_
