#include "src/data/column.h"

#include "src/common/string_util.h"

namespace cfx {

const char* FeatureTypeName(FeatureType type) {
  switch (type) {
    case FeatureType::kContinuous: return "continuous";
    case FeatureType::kBinary: return "binary";
    case FeatureType::kCategorical: return "categorical";
  }
  return "unknown";
}

std::string Column::CellToString(size_t i) const {
  if (IsMissing(i)) return "?";
  switch (spec_.type) {
    case FeatureType::kContinuous:
      return StrFormat("%.4g", values_[i]);
    case FeatureType::kBinary: {
      int idx = CategoryIndex(i);
      if (spec_.categories.size() == 2) return spec_.categories[idx];
      return idx == 0 ? "0" : "1";
    }
    case FeatureType::kCategorical: {
      int idx = CategoryIndex(i);
      if (idx >= 0 && static_cast<size_t>(idx) < spec_.categories.size()) {
        return spec_.categories[idx];
      }
      return StrFormat("cat_%d", idx);
    }
  }
  return "?";
}

}  // namespace cfx
