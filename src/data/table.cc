#include "src/data/table.h"

#include "src/common/string_util.h"

namespace cfx {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_features());
  for (const FeatureSpec& spec : schema_.features()) {
    columns_.emplace_back(spec);
  }
}

StatusOr<const Column*> Table::ColumnByName(const std::string& name) const {
  auto idx = schema_.FeatureIndex(name);
  if (!idx.ok()) return idx.status();
  return &columns_[*idx];
}

Status Table::AppendRow(const std::vector<double>& values, int label) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, schema has %zu features", values.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) columns_[i].Append(values[i]);
  labels_.push_back(label);
  ++num_rows_;
  return Status::OK();
}

bool Table::RowHasMissing(size_t row) const {
  for (const Column& col : columns_) {
    if (col.IsMissing(row)) return true;
  }
  return false;
}

RawRow Table::GetRow(size_t row) const {
  RawRow r;
  r.values.reserve(columns_.size());
  for (const Column& col : columns_) r.values.push_back(col.value(row));
  r.label = labels_[row];
  return r;
}

double Table::PositiveRate() const {
  if (num_rows_ == 0) return 0.0;
  size_t pos = 0;
  for (int y : labels_) pos += (y == 1);
  return static_cast<double>(pos) / static_cast<double>(num_rows_);
}

Table Table::Select(const std::vector<size_t>& rows) const {
  Table out(schema_);
  for (size_t r : rows) {
    std::vector<double> values;
    values.reserve(columns_.size());
    for (const Column& col : columns_) values.push_back(col.value(r));
    // AppendRow cannot fail here: the row width matches by construction.
    (void)out.AppendRow(values, labels_[r]);
  }
  return out;
}

std::string Table::RowToString(size_t row) const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size() + 1);
  for (const Column& col : columns_) {
    parts.push_back(col.name() + "=" + col.CellToString(row));
  }
  parts.push_back(schema_.target_name() + "=" +
                  (labels_[row] >= 0 &&
                   static_cast<size_t>(labels_[row]) < schema_.target_classes().size()
                       ? schema_.target_classes()[labels_[row]]
                       : "?"));
  return Join(parts, ", ");
}

}  // namespace cfx
