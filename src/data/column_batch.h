// Columnar (structure-of-arrays) float batch.
//
// Design notes:
//  * A ColumnBatch stores an (rows x cols) batch column-major: column c is
//    the contiguous span [column(c), column(c) + rows). Per-feature passes —
//    encoder projection/stats, constraint level extraction, the generator's
//    copy-prior bias — stream over contiguous memory instead of row-strided
//    gathers, which is what the SIMD span kernels want.
//  * Columns are padded to a 64-byte (16-float) leading dimension
//    (simd::PaddedLength) on 64-byte-aligned storage, so every column
//    starts on a cache line and a vector load never straddles two columns.
//    Padding floats are zero and stay zero through FromRowMajor/resize;
//    kernels run on exact-length spans, so padding never leaks into values.
//  * Conversions to/from row-major are pure element moves (no arithmetic),
//    so a row-major -> columnar -> row-major round trip is bitwise lossless.
#ifndef CFX_DATA_COLUMN_BATCH_H_
#define CFX_DATA_COLUMN_BATCH_H_

#include <cstddef>
#include <utility>

#include "src/common/aligned.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// Column-major float batch with padded, cache-line-aligned columns.
class ColumnBatch {
 public:
  /// Empty 0x0 batch.
  ColumnBatch() = default;

  /// rows x cols batch, zero-initialised (padding included).
  ColumnBatch(size_t rows, size_t cols);

  /// Transposes a tight row-major buffer into columns.
  static ColumnBatch FromRowMajor(const float* data, size_t rows,
                                  size_t cols);

  /// Transposes a Matrix into columns (value-exact).
  static ColumnBatch FromMatrix(const Matrix& m);

  /// Transposes back into a tight row-major buffer of rows*cols floats.
  void ToRowMajor(float* out) const;

  /// Transposes back into a Matrix (value-exact).
  Matrix ToMatrix() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Leading dimension: floats between consecutive column starts (>= rows,
  /// multiple of 16).
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float* column(size_t c) { return data_.data() + c * stride_; }
  const float* column(size_t c) const { return data_.data() + c * stride_; }

  float& at(size_t r, size_t c) { return data_[c * stride_ + r]; }
  float at(size_t r, size_t c) const { return data_[c * stride_ + r]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// (min, max) over column c — the streaming per-feature stat pass.
  /// Returns (0, 0) for an empty batch.
  std::pair<float, float> ColumnMinMax(size_t c) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  FloatBuffer data_;
};

}  // namespace cfx

#endif  // CFX_DATA_COLUMN_BATCH_H_
