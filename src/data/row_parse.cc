#include "src/data/row_parse.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "src/common/string_util.h"

namespace cfx {

StatusOr<double> ParseCell(const FeatureSpec& spec, const std::string& text) {
  if (text.empty()) return std::nan("");
  switch (spec.type) {
    case FeatureType::kContinuous: {
      // Strict parse: the whole cell must be consumed ("3.5abc" used to load
      // silently as 3.5) and the value must be finite — "inf"/"nan" parse
      // fine under strtod but poison the encoder's min/max scaling.
      // ERANGE alone is not a verdict: glibc raises it for gradual
      // underflow too, where strtod still returns the nearest double
      // (a subnormal, or zero for values below the subnormal range).
      // Overflow is what must be rejected, and it is caught by the
      // isfinite check on the returned HUGE_VAL.
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' ||
          (errno != 0 && errno != ERANGE)) {
        return Status::InvalidArgument("bad numeric cell '" + text + "'");
      }
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite numeric cell '" + text +
                                       "'");
      }
      return v;
    }
    case FeatureType::kBinary: {
      if (spec.categories.size() == 2) {
        if (text == spec.categories[0]) return 0.0;
        if (text == spec.categories[1]) return 1.0;
      }
      if (text == "0") return 0.0;
      if (text == "1") return 1.0;
      return Status::InvalidArgument("bad binary cell '" + text + "' for " +
                                     spec.name);
    }
    case FeatureType::kCategorical: {
      for (size_t i = 0; i < spec.categories.size(); ++i) {
        if (spec.categories[i] == text) return static_cast<double>(i);
      }
      return Status::InvalidArgument("unknown category '" + text + "' for " +
                                     spec.name);
    }
  }
  return Status::Internal("unreachable");
}

StatusOr<int> ParseLabel(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long label = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0' ||
      errno == ERANGE || label < INT_MIN || label > INT_MAX) {
    return Status::InvalidArgument("bad label cell '" + text + "'");
  }
  return static_cast<int>(label);
}

Status ValidateHeaderLine(const Schema& schema, std::string_view line) {
  const std::vector<std::string> cells = Split(line, ',');
  const size_t expected = schema.num_features() + 1;
  const size_t common = std::min(cells.size(), expected);
  for (size_t i = 0; i < common; ++i) {
    const std::string got = Trim(cells[i]);
    const std::string& want = i < schema.num_features()
                                  ? schema.feature(i).name
                                  : schema.target_name();
    if (got != want) {
      return Status::InvalidArgument(
          StrFormat("header column %zu: expected '%s', got '%s'", i + 1,
                    want.c_str(), got.c_str()));
    }
  }
  if (cells.size() != expected) {
    if (cells.size() < expected) {
      const std::string& missing = cells.size() < schema.num_features()
                                       ? schema.feature(cells.size()).name
                                       : schema.target_name();
      return Status::InvalidArgument(
          StrFormat("header has %zu columns, expected %zu (missing '%s')",
                    cells.size(), expected, missing.c_str()));
    }
    return Status::InvalidArgument(
        StrFormat("header has %zu columns, expected %zu (first extra: '%s')",
                  cells.size(), expected,
                  Trim(cells[expected]).c_str()));
  }
  return Status::OK();
}

Status ParseRowLine(const Schema& schema, std::string_view line,
                    std::vector<double>* values, int* label) {
  const std::vector<std::string> cells = Split(line, ',');
  if (cells.size() != schema.num_features() + 1) {
    return Status::InvalidArgument(StrFormat("expected %zu cells, got %zu",
                                             schema.num_features() + 1,
                                             cells.size()));
  }
  values->resize(schema.num_features());
  for (size_t i = 0; i < schema.num_features(); ++i) {
    auto v = ParseCell(schema.feature(i), Trim(cells[i]));
    if (!v.ok()) return v.status();
    (*values)[i] = *v;
  }
  auto parsed_label = ParseLabel(Trim(cells.back()));
  if (!parsed_label.ok()) return parsed_label.status();
  *label = *parsed_label;
  return Status::OK();
}

}  // namespace cfx
