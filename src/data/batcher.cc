#include "src/data/batcher.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace cfx {

Batcher::Batcher(const Matrix& x, const std::vector<int>& labels,
                 size_t batch_size, Rng* rng)
    : x_(x), labels_(labels), batch_size_(batch_size), rng_(rng->Split(0xBA)) {
  // Unconditional (not assert-only): in NDEBUG builds batch_size == 0 made
  // Epoch()'s `start += batch_size_` loop forever, and a rows/labels
  // mismatch read labels out of bounds.
  if (x_.rows() != labels_.size()) {
    CFX_LOG(Error) << "Batcher: rows/labels mismatch (" << x_.rows()
                   << " rows vs " << labels_.size() << " labels)";
    std::abort();
  }
  if (batch_size_ == 0) {
    CFX_LOG(Error) << "Batcher: batch_size must be positive";
    std::abort();
  }
}

size_t Batcher::NumBatches() const {
  return (x_.rows() + batch_size_ - 1) / batch_size_;
}

std::vector<Batch> Batcher::Epoch() {
  std::vector<size_t> perm = rng_.Permutation(x_.rows());
  std::vector<Batch> batches;
  batches.reserve(NumBatches());
  for (size_t start = 0; start < perm.size(); start += batch_size_) {
    const size_t end = std::min(start + batch_size_, perm.size());
    Batch b;
    b.indices.assign(perm.begin() + start, perm.begin() + end);
    b.x = x_.GatherRows(b.indices);
    b.y = Matrix(b.indices.size(), 1);
    for (size_t i = 0; i < b.indices.size(); ++i) {
      b.y.at(i, 0) = static_cast<float>(labels_[b.indices[i]]);
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

}  // namespace cfx
