// Mini-batch iteration over an encoded dataset.
#ifndef CFX_DATA_BATCHER_H_
#define CFX_DATA_BATCHER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// One mini-batch: features and aligned labels.
struct Batch {
  Matrix x;           ///< batch_size x d.
  Matrix y;           ///< batch_size x 1, 0/1 labels as float.
  std::vector<size_t> indices;  ///< Source row indices.
};

/// Reshuffling mini-batch producer over an encoded matrix + labels.
class Batcher {
 public:
  /// `x` is (n x d); `labels` has n entries. The final short batch of each
  /// epoch is emitted (never dropped).
  Batcher(const Matrix& x, const std::vector<int>& labels, size_t batch_size,
          Rng* rng);

  /// Number of batches per epoch.
  size_t NumBatches() const;

  /// Reshuffles and materialises the batches of one epoch.
  std::vector<Batch> Epoch();

  size_t num_rows() const { return x_.rows(); }

 private:
  Matrix x_;
  std::vector<int> labels_;
  size_t batch_size_;
  Rng rng_;
};

}  // namespace cfx

#endif  // CFX_DATA_BATCHER_H_
