// Dataset schema: ordered feature specs plus the binary target definition.
#ifndef CFX_DATA_SCHEMA_H_
#define CFX_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/column.h"

namespace cfx {

/// Per-type attribute counts, as reported in the paper's Table I
/// ("#Categorical/#Binary/#Numerical").
struct TypeCounts {
  size_t categorical = 0;
  size_t binary = 0;
  size_t continuous = 0;
};

/// Ordered collection of feature specs and the target description.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<FeatureSpec> features, std::string target_name,
         std::vector<std::string> target_classes)
      : features_(std::move(features)),
        target_name_(std::move(target_name)),
        target_classes_(std::move(target_classes)) {}

  const std::vector<FeatureSpec>& features() const { return features_; }
  size_t num_features() const { return features_.size(); }
  const FeatureSpec& feature(size_t i) const { return features_[i]; }

  const std::string& target_name() const { return target_name_; }
  /// Class labels; index 1 is the favourable/target class.
  const std::vector<std::string>& target_classes() const {
    return target_classes_;
  }

  /// Index of the feature with the given name.
  StatusOr<size_t> FeatureIndex(const std::string& name) const;

  /// Attribute counts by type (Table I's "#Attributes" column).
  TypeCounts CountByType() const;

  /// Indices of features flagged immutable.
  std::vector<size_t> ImmutableIndices() const;

  /// Total width of the one-hot encoded representation.
  size_t EncodedWidth() const;

 private:
  std::vector<FeatureSpec> features_;
  std::string target_name_;
  std::vector<std::string> target_classes_;
};

}  // namespace cfx

#endif  // CFX_DATA_SCHEMA_H_
