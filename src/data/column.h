// Typed feature columns for tabular data.
//
// Storage convention: every cell is a double. Continuous features store the
// raw value; binary features store 0.0/1.0; categorical features store the
// index into the feature's category list. Missing cells are NaN, mirroring
// how the paper's preprocessing drops incomplete rows before encoding.
#ifndef CFX_DATA_COLUMN_H_
#define CFX_DATA_COLUMN_H_

#include <cmath>
#include <string>
#include <vector>

namespace cfx {

/// The three attribute kinds in the paper's Table I.
enum class FeatureType { kContinuous, kBinary, kCategorical };

/// Canonical name of a FeatureType ("continuous" | "binary" | "categorical").
const char* FeatureTypeName(FeatureType type);

/// Static description of one feature.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kContinuous;
  /// Category labels; used only for kCategorical (kBinary is implicitly
  /// {"0","1"} unless labels are given).
  std::vector<std::string> categories;
  /// Immutable attributes are frozen during CF generation (paper §III-C).
  bool immutable = false;
  /// Plausible range for continuous features (used by the generators and by
  /// input-domain feasibility checks).
  double lower = 0.0;
  double upper = 1.0;

  /// Number of one-hot slots this feature occupies after encoding.
  size_t EncodedWidth() const {
    return type == FeatureType::kCategorical ? categories.size() : 1;
  }
};

/// One column of cell data plus its spec.
class Column {
 public:
  explicit Column(FeatureSpec spec) : spec_(std::move(spec)) {}

  const FeatureSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  FeatureType type() const { return spec_.type; }

  size_t size() const { return values_.size(); }

  void Append(double value) { values_.push_back(value); }
  void AppendMissing() { values_.push_back(std::nan("")); }

  double value(size_t i) const { return values_[i]; }
  void set_value(size_t i, double v) { values_[i] = v; }
  bool IsMissing(size_t i) const { return std::isnan(values_[i]); }

  /// Category index of cell i (categorical/binary columns only).
  int CategoryIndex(size_t i) const { return static_cast<int>(values_[i]); }

  /// Human-readable rendering of cell i ("?" when missing, the category
  /// label for categorical features, the numeric value otherwise).
  std::string CellToString(size_t i) const;

  const std::vector<double>& values() const { return values_; }

  void Reserve(size_t n) { values_.reserve(n); }

 private:
  FeatureSpec spec_;
  std::vector<double> values_;
};

}  // namespace cfx

#endif  // CFX_DATA_COLUMN_H_
