#include "src/data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>

#include "src/common/string_util.h"
#include "src/data/row_parse.h"

namespace cfx {
namespace {

/// Lossless rendering of one raw cell for CSV export. Continuous cells are
/// emitted at max_digits10 so a write->read round trip reproduces the exact
/// double (CellToString's %.4g is for human-readable reports and used to
/// leak into the CSV path, silently truncating values); categorical and
/// binary cells keep their label rendering, which is exact by nature.
std::string CellToCsv(const Column& col, size_t row) {
  if (col.type() != FeatureType::kContinuous) return col.CellToString(row);
  return StrFormat("%.*g", std::numeric_limits<double>::max_digits10,
                   col.value(row));
}

}  // namespace

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  std::vector<std::string> header;
  for (const FeatureSpec& f : table.schema().features()) header.push_back(f.name);
  header.push_back(table.schema().target_name());
  out << Join(header, ",") << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(table.num_features() + 1);
    for (size_t c = 0; c < table.num_features(); ++c) {
      const Column& col = table.column(c);
      cells.push_back(col.IsMissing(r) ? "" : CellToCsv(col, r));
    }
    cells.push_back(StrFormat("%d", table.label(r)));
    out << Join(cells, ",") << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

StatusOr<Table> ReadTableCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty csv '" + path + "'");
  }
  // The header used to be read and discarded, so a file with reordered or
  // renamed columns loaded silently into the wrong features. Require the
  // exact schema order.
  if (Status header = ValidateHeaderLine(schema, line); !header.ok()) {
    return Status(header.code(),
                  StrFormat("%s:1: %s", path.c_str(),
                            header.message().c_str()));
  }
  Table table(schema);
  size_t line_no = 1;
  std::vector<double> values;
  int label = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    if (Status row = ParseRowLine(schema, line, &values, &label); !row.ok()) {
      // Name the offending file:row for every cell/label diagnostic.
      return Status(row.code(), StrFormat("%s:%zu: %s", path.c_str(), line_no,
                                          row.message().c_str()));
    }
    CFX_RETURN_IF_ERROR(table.AppendRow(values, label));
  }
  return table;
}

Status WriteMatrixCsv(const Matrix& m, const std::vector<std::string>& header,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  // max_digits10 keeps float round trips exact; defaultfloat still trims
  // trailing zeros, so simple values render as before ("1.5", not
  // "1.50000000").
  out.precision(std::numeric_limits<float>::max_digits10);
  if (!header.empty()) {
    if (header.size() != m.cols()) {
      return Status::InvalidArgument("header width mismatch");
    }
    out << Join(header, ",") << "\n";
  }
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << ",";
      out << m.at(r, c);
    }
    out << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

}  // namespace cfx
