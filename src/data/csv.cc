#include "src/data/csv.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "src/common/string_util.h"

namespace cfx {
namespace {

/// Parses one raw cell for the given spec. Empty -> missing (NaN).
StatusOr<double> ParseCell(const FeatureSpec& spec, const std::string& text) {
  if (text.empty()) return std::nan("");
  switch (spec.type) {
    case FeatureType::kContinuous: {
      // Strict parse: the whole cell must be consumed ("3.5abc" used to load
      // silently as 3.5) and the value must be finite — "inf"/"nan" parse
      // fine under strtod but poison the encoder's min/max scaling.
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad numeric cell '" + text + "'");
      }
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite numeric cell '" + text +
                                       "'");
      }
      return v;
    }
    case FeatureType::kBinary: {
      if (spec.categories.size() == 2) {
        if (text == spec.categories[0]) return 0.0;
        if (text == spec.categories[1]) return 1.0;
      }
      if (text == "0") return 0.0;
      if (text == "1") return 1.0;
      return Status::InvalidArgument("bad binary cell '" + text + "' for " +
                                     spec.name);
    }
    case FeatureType::kCategorical: {
      for (size_t i = 0; i < spec.categories.size(); ++i) {
        if (spec.categories[i] == text) return static_cast<double>(i);
      }
      return Status::InvalidArgument("unknown category '" + text + "' for " +
                                     spec.name);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  std::vector<std::string> header;
  for (const FeatureSpec& f : table.schema().features()) header.push_back(f.name);
  header.push_back(table.schema().target_name());
  out << Join(header, ",") << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(table.num_features() + 1);
    for (size_t c = 0; c < table.num_features(); ++c) {
      const Column& col = table.column(c);
      cells.push_back(col.IsMissing(r) ? "" : col.CellToString(r));
    }
    cells.push_back(StrFormat("%d", table.label(r)));
    out << Join(cells, ",") << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

StatusOr<Table> ReadTableCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty csv '" + path + "'");
  }
  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != schema.num_features() + 1) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected %zu cells, got %zu", path.c_str(),
                    line_no, schema.num_features() + 1, cells.size()));
    }
    std::vector<double> values(schema.num_features());
    for (size_t i = 0; i < schema.num_features(); ++i) {
      auto v = ParseCell(schema.feature(i), Trim(cells[i]));
      if (!v.ok()) {
        // Name the offending file:row, matching the label-cell diagnostics.
        return Status(v.status().code(),
                      StrFormat("%s:%zu: %s", path.c_str(), line_no,
                                v.status().message().c_str()));
      }
      values[i] = *v;
    }
    const std::string label_cell = Trim(cells.back());
    errno = 0;
    char* end = nullptr;
    const long label = std::strtol(label_cell.c_str(), &end, 10);
    if (label_cell.empty() || end == label_cell.c_str() || *end != '\0' ||
        errno == ERANGE || label < INT_MIN || label > INT_MAX) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: bad label cell '%s'", path.c_str(), line_no,
                    label_cell.c_str()));
    }
    CFX_RETURN_IF_ERROR(table.AppendRow(values, static_cast<int>(label)));
  }
  return table;
}

Status WriteMatrixCsv(const Matrix& m, const std::vector<std::string>& header,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  if (!header.empty()) {
    if (header.size() != m.cols()) {
      return Status::InvalidArgument("header width mismatch");
    }
    out << Join(header, ",") << "\n";
  }
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << ",";
      out << m.at(r, c);
    }
    out << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

}  // namespace cfx
