// In-memory tabular dataset: schema + columns + binary labels.
#ifndef CFX_DATA_TABLE_H_
#define CFX_DATA_TABLE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/column.h"
#include "src/data/schema.h"

namespace cfx {

/// One raw (unencoded) row, used for human-readable CF reporting (Table V).
struct RawRow {
  /// One cell per feature, in schema order (same encoding as Column).
  std::vector<double> values;
  int label = -1;  ///< 0/1, or -1 when unknown.
};

/// Column-major dataset with row-level helpers.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return schema_.num_features(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Column by feature name.
  StatusOr<const Column*> ColumnByName(const std::string& name) const;

  /// Appends a row. `values` must have one cell per feature (NaN = missing).
  Status AppendRow(const std::vector<double>& values, int label);

  int label(size_t row) const { return labels_[row]; }
  const std::vector<int>& labels() const { return labels_; }
  void set_label(size_t row, int label) { labels_[row] = label; }

  /// True if any cell of the row is missing.
  bool RowHasMissing(size_t row) const;

  /// Extracts one row in RawRow form.
  RawRow GetRow(size_t row) const;

  /// Fraction of rows with label 1.
  double PositiveRate() const;

  /// New table containing only the selected rows (in the given order).
  Table Select(const std::vector<size_t>& rows) const;

  /// Renders row `row` as "name=value, ..." for logs and reports.
  std::string RowToString(size_t row) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  std::vector<int> labels_;
  size_t num_rows_ = 0;
};

}  // namespace cfx

#endif  // CFX_DATA_TABLE_H_
