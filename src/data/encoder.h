// Encoding between raw tabular rows and the [0,1] float vectors the models
// consume, following the paper's §IV-C preprocessing:
//   * continuous features -> min-max normalised to [0,1];
//   * categorical features -> one-hot;
//   * binary features -> a single 0/1 slot.
//
// The encoder also exposes the block layout (which encoded columns belong to
// which feature), which the constraint system, the metrics and several
// baselines rely on, and it can invert an encoded vector back to a raw row
// for human-readable CF reporting (Table V).
#ifndef CFX_DATA_ENCODER_H_
#define CFX_DATA_ENCODER_H_

#include <vector>

#include "src/common/status.h"
#include "src/data/column_batch.h"
#include "src/data/table.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// Location of one feature inside the encoded vector.
struct EncodedBlock {
  size_t feature_index = 0;  ///< Index into the schema.
  size_t offset = 0;         ///< First encoded column.
  size_t width = 1;          ///< Number of encoded columns.
  FeatureType type = FeatureType::kContinuous;
};

/// Fitted, invertible tabular encoder.
class TabularEncoder {
 public:
  explicit TabularEncoder(Schema schema);

  /// Learns min/max statistics of continuous features. Must be called on the
  /// training split before Transform; refit replaces the statistics.
  Status Fit(const Table& table);
  bool fitted() const { return fitted_; }

  /// Encodes every row of `table` into an (n x encoded_width) matrix.
  /// Requires a fitted encoder and no missing cells. Thin row-major wrapper
  /// over TransformColumnar (same per-cell arithmetic, transposed out).
  StatusOr<Matrix> Transform(const Table& table) const;

  /// Canonical columnar encode: one contiguous span per encoded column.
  /// Continuous and binary features fill their column in a single streaming
  /// pass over the table column; categorical features scatter one-hots.
  StatusOr<ColumnBatch> TransformColumnar(const Table& table) const;

  /// Encodes a single raw row into a (1 x encoded_width) matrix.
  Matrix TransformRow(const RawRow& row) const;

  /// Decodes a (1 x encoded_width) vector back into a raw row: continuous
  /// slots are de-normalised, categorical blocks take their argmax,
  /// binary slots threshold at 0.5.
  RawRow InverseTransformRow(const Matrix& encoded_row, int label = -1) const;

  /// Projects an arbitrary encoded vector onto the valid manifold: clips
  /// continuous slots to [0,1], snaps categorical blocks to pure one-hot and
  /// binary slots to {0,1}. Used when evaluating/reporting CF examples.
  Matrix ProjectRow(const Matrix& encoded_row) const;

  /// Columnar batch projection: the whole-batch counterpart of ProjectRow.
  /// Continuous columns clamp through the dispatched span kernel, binary
  /// columns threshold, categorical blocks snap to first-strict-max one-hot
  /// (ascending scan with a strict '>', exactly ProjectRow's order). When
  /// `inputs` is non-null, columns of immutable features are copied from it
  /// verbatim — equivalent to the historical MutableMask slot restore, since
  /// the mask zeroes whole immutable blocks. `out` is resized as needed.
  /// Bitwise identical to ProjectRow + per-slot restore, row by row.
  void ProjectBatch(const ColumnBatch& raw, const ColumnBatch* inputs,
                    ColumnBatch* out) const;

  /// Row-major convenience wrapper: transpose in, project, transpose out.
  Matrix ProjectBatch(const Matrix& cfs_raw, const Matrix* inputs) const;

  const Schema& schema() const { return schema_; }
  const std::vector<EncodedBlock>& blocks() const { return blocks_; }
  size_t encoded_width() const { return width_; }

  /// Block for feature index `fi`.
  const EncodedBlock& block(size_t fi) const { return blocks_[fi]; }

  /// Offset of the (single-slot) encoded column of a named continuous or
  /// binary feature; errors for categorical features (use block()).
  StatusOr<size_t> ScalarOffset(const std::string& name) const;

  /// Raw-domain value of feature `fi` within an encoded row: de-normalised
  /// value for continuous, category index for categorical, 0/1 for binary.
  double FeatureValue(const Matrix& encoded_row, size_t fi) const;

  /// Min-max normalisation of a raw continuous value of feature `fi`.
  double Normalize(size_t fi, double raw) const;
  /// Inverse of Normalize.
  double Denormalize(size_t fi, double normalized) const;

  /// 1 x encoded_width mask with 0 in slots of immutable features, 1
  /// elsewhere. Used to freeze immutables during CF generation (§III-C).
  Matrix MutableMask() const;

  /// (offset, width) of every categorical block — the softmax groups of a
  /// tabular decoder head.
  std::vector<std::pair<size_t, size_t>> CategoricalBlockRanges() const;

  /// Fitted per-feature minima/maxima (meaningful for continuous features).
  /// Serialised into pipeline bundles and validated on restore.
  const std::vector<double>& feature_min() const { return min_; }
  const std::vector<double>& feature_max() const { return max_; }

 private:
  Schema schema_;
  std::vector<EncodedBlock> blocks_;
  size_t width_ = 0;
  bool fitted_ = false;
  std::vector<double> min_;  ///< Per feature (continuous only meaningful).
  std::vector<double> max_;
};

}  // namespace cfx

#endif  // CFX_DATA_ENCODER_H_
