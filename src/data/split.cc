#include "src/data/split.h"

#include <cassert>

namespace cfx {

DataSplit SplitTable(const Table& table, double train_fraction,
                     double validation_fraction, Rng* rng) {
  assert(train_fraction >= 0.0 && validation_fraction >= 0.0);
  assert(train_fraction + validation_fraction <= 1.0 + 1e-9);
  const size_t n = table.num_rows();
  std::vector<size_t> perm = rng->Permutation(n);
  const size_t n_train = static_cast<size_t>(train_fraction * n);
  const size_t n_val = static_cast<size_t>(validation_fraction * n);

  std::vector<size_t> train_idx(perm.begin(), perm.begin() + n_train);
  std::vector<size_t> val_idx(perm.begin() + n_train,
                              perm.begin() + n_train + n_val);
  std::vector<size_t> test_idx(perm.begin() + n_train + n_val, perm.end());

  return DataSplit(table.Select(train_idx), table.Select(val_idx),
                   table.Select(test_idx));
}

DataSplit StratifiedSplitTable(const Table& table, double train_fraction,
                               double validation_fraction, Rng* rng) {
  assert(train_fraction >= 0.0 && validation_fraction >= 0.0);
  assert(train_fraction + validation_fraction <= 1.0 + 1e-9);

  // Partition row ids by label, shuffle each class independently.
  std::vector<std::vector<size_t>> by_class(2);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int y = table.label(r);
    assert(y == 0 || y == 1);
    by_class[y].push_back(r);
  }
  std::vector<size_t> train_idx, val_idx, test_idx;
  for (std::vector<size_t>& rows : by_class) {
    std::vector<size_t> perm = rng->Permutation(rows.size());
    const size_t n_train = static_cast<size_t>(train_fraction * rows.size());
    const size_t n_val =
        static_cast<size_t>(validation_fraction * rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t row = rows[perm[i]];
      if (i < n_train) {
        train_idx.push_back(row);
      } else if (i < n_train + n_val) {
        val_idx.push_back(row);
      } else {
        test_idx.push_back(row);
      }
    }
  }
  // Re-shuffle the merged partitions so class blocks do not stay contiguous.
  auto shuffle = [&](std::vector<size_t>* idx) {
    std::vector<size_t> perm = rng->Permutation(idx->size());
    std::vector<size_t> out(idx->size());
    for (size_t i = 0; i < idx->size(); ++i) out[i] = (*idx)[perm[i]];
    *idx = std::move(out);
  };
  shuffle(&train_idx);
  shuffle(&val_idx);
  shuffle(&test_idx);

  return DataSplit(table.Select(train_idx), table.Select(val_idx),
                   table.Select(test_idx));
}

}  // namespace cfx
