// CSV serialisation for tables (fixtures, exporting synthetic datasets) and
// for numeric series (the Figure 6 embeddings written by the benches).
#ifndef CFX_DATA_CSV_H_
#define CFX_DATA_CSV_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/table.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// Writes `table` to `path` with a header row. Missing cells are written as
/// empty fields; categorical cells as their labels.
Status WriteTableCsv(const Table& table, const std::string& path);

/// Reads a CSV written by WriteTableCsv back into a table with the given
/// schema. Unknown category labels and unparsable numerics are errors;
/// empty fields become missing cells.
StatusOr<Table> ReadTableCsv(const Schema& schema, const std::string& path);

/// Writes a numeric matrix (optionally with column names) to CSV.
Status WriteMatrixCsv(const Matrix& m, const std::vector<std::string>& header,
                      const std::string& path);

}  // namespace cfx

#endif  // CFX_DATA_CSV_H_
