// Row-level cleaning, mirroring the paper's §IV-C: rows with any missing
// value are deleted before encoding.
#ifndef CFX_DATA_PREPROCESS_H_
#define CFX_DATA_PREPROCESS_H_

#include "src/data/table.h"

namespace cfx {

/// Statistics of a cleaning pass.
struct CleaningReport {
  size_t rows_before = 0;
  size_t rows_after = 0;
  size_t rows_dropped = 0;
};

/// Returns a copy of `table` without rows containing missing cells; fills
/// `report` (if non-null) with before/after counts (Table I's "# Instances
/// (cleaned)").
Table DropMissingRows(const Table& table, CleaningReport* report = nullptr);

}  // namespace cfx

#endif  // CFX_DATA_PREPROCESS_H_
