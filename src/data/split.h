// Shuffled train/validation/test splitting (80%:10%:10% in the paper).
#ifndef CFX_DATA_SPLIT_H_
#define CFX_DATA_SPLIT_H_

#include "src/common/rng.h"
#include "src/data/table.h"

namespace cfx {

/// The three dataset partitions.
struct DataSplit {
  Table train;
  Table validation;
  Table test;

  DataSplit(Table train, Table validation, Table test)
      : train(std::move(train)),
        validation(std::move(validation)),
        test(std::move(test)) {}
};

/// Shuffles rows with `rng` and splits by the given fractions (the remainder
/// after train+validation goes to test). Fractions must be non-negative and
/// sum to at most 1.
DataSplit SplitTable(const Table& table, double train_fraction,
                     double validation_fraction, Rng* rng);

/// Label-stratified variant: each class is shuffled and split by the same
/// fractions independently, so every partition preserves the class balance
/// (important for KDD-Census, whose positive class is a small minority that
/// a plain random 10% validation split can nearly miss).
DataSplit StratifiedSplitTable(const Table& table, double train_fraction,
                               double validation_fraction, Rng* rng);

}  // namespace cfx

#endif  // CFX_DATA_SPLIT_H_
