// End-to-end experiment preparation shared by every bench and example:
// generate the synthetic dataset, clean it (§IV-C), split 80/10/10 (§IV-A),
// fit the encoder on the training split, and train the black-box classifier
// (§III-C "Model Steps").
#ifndef CFX_CORE_EXPERIMENT_H_
#define CFX_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/common/config.h"
#include "src/data/encoder.h"
#include "src/data/preprocess.h"
#include "src/data/split.h"
#include "src/datasets/registry.h"
#include "src/metrics/classification.h"
#include "src/models/classifier.h"

namespace cfx {

struct RestoredPipeline;

/// A fully prepared dataset + black box, ready for CF methods.
class Experiment {
 public:
  /// Builds the pipeline for `id` at the configured scale/seed.
  static StatusOr<std::unique_ptr<Experiment>> Create(DatasetId id,
                                                      const RunConfig& config);

  /// Cold-starts a trained pipeline from a versioned artifact bundle written
  /// by SavePipelineBundle (src/core/artifact.h): the dataset is regenerated
  /// deterministically from the stored seed/scale, the schema and encoder
  /// statistics are validated exactly against the bundle, and classifier +
  /// VAE weights are warm-loaded instead of retrained. Defined in
  /// src/core/artifact.cc.
  static StatusOr<RestoredPipeline> Restore(const std::string& path);

  const DatasetInfo& info() const { return *info_; }
  DatasetId dataset_id() const { return dataset_id_; }
  const RunConfig& run_config() const { return run_config_; }
  const CleaningReport& cleaning() const { return cleaning_; }
  const Schema& schema() const { return encoder_.schema(); }
  const TabularEncoder& encoder() const { return encoder_; }
  BlackBoxClassifier* classifier() { return classifier_.get(); }
  const TrainStats& classifier_stats() const { return classifier_stats_; }
  /// Validation-split quality diagnostics of the black box.
  const ClassificationReport& classifier_report() const {
    return classifier_report_;
  }

  const Matrix& x_train() const { return x_train_; }
  const Matrix& x_validation() const { return x_validation_; }
  const Matrix& x_test() const { return x_test_; }
  const std::vector<int>& y_train() const { return y_train_; }
  const std::vector<int>& y_validation() const { return y_validation_; }
  const std::vector<int>& y_test() const { return y_test_; }

  /// First min(|test|, max_rows) encoded test rows — the evaluation inputs
  /// for CF generation.
  Matrix TestSubset(size_t max_rows) const;

  /// Context handed to CF methods. Carries the shared PredictionCache
  /// (sharded + bloom-fronted, safe under concurrent method evaluation) so
  /// every method evaluated against this experiment reuses black-box
  /// predictions on identical batches.
  MethodContext method_context();

 private:
  friend StatusOr<RestoredPipeline> RestorePipelineBundle(
      const std::string& path);

  Experiment(DatasetId id, const DatasetInfo* info, RunConfig run_config,
             CleaningReport cleaning, TabularEncoder encoder);

  /// Shared by Create and Restore: dataset generation, cleaning, split,
  /// encoder fit and split transforms. Leaves `*rng` in the post-split state
  /// so both paths derive the classifier RNG identically.
  static StatusOr<std::unique_ptr<Experiment>> PrepareData(
      DatasetId id, const RunConfig& config, Rng* rng);

  DatasetId dataset_id_;
  const DatasetInfo* info_;
  RunConfig run_config_;
  CleaningReport cleaning_;
  TabularEncoder encoder_;
  Matrix x_train_, x_validation_, x_test_;
  std::vector<int> y_train_, y_validation_, y_test_;
  std::unique_ptr<BlackBoxClassifier> classifier_;
  std::unique_ptr<PredictionCache> prediction_cache_;
  TrainStats classifier_stats_;
  ClassificationReport classifier_report_;
};

}  // namespace cfx

#endif  // CFX_CORE_EXPERIMENT_H_
