#include "src/core/cf_example.h"

#include <cassert>

namespace cfx {

CfDisplay MakeDisplay(const TabularEncoder& encoder, const CfResult& result,
                      size_t i) {
  assert(i < result.size());
  CfDisplay display;
  const Schema& schema = encoder.schema();

  RawRow x_row = encoder.InverseTransformRow(result.inputs.Row(i));
  RawRow cf_row = encoder.InverseTransformRow(result.cfs.Row(i));

  Table scratch_x(schema);
  (void)scratch_x.AppendRow(x_row.values, 0);
  Table scratch_cf(schema);
  (void)scratch_cf.AppendRow(cf_row.values, 0);

  for (size_t f = 0; f < schema.num_features(); ++f) {
    display.feature_names.push_back(schema.feature(f).name);
    display.x_true.push_back(scratch_x.column(f).CellToString(0));
    display.x_pred.push_back(scratch_cf.column(f).CellToString(0));
  }
  return display;
}

}  // namespace cfx
