#include "src/core/artifact.h"

#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/metrics/classification.h"
#include "src/nn/bundle.h"

namespace cfx {
namespace {

constexpr char kPipelineFormat[] = "cfx.pipeline";

StatusOr<Scale> ScaleFromName(const std::string& name) {
  if (name == "small") return Scale::kSmall;
  if (name == "paper") return Scale::kPaper;
  return Status::InvalidArgument("bundle has unknown scale '" + name + "'");
}

StatusOr<DatasetId> DatasetFromName(const std::string& name) {
  for (DatasetId id : {DatasetId::kAdult, DatasetId::kCensus, DatasetId::kLaw}) {
    if (name == DatasetName(id)) return id;
  }
  return Status::InvalidArgument("bundle names unknown dataset '" + name +
                                 "'");
}

}  // namespace

std::string SchemaFingerprint(const Schema& schema) {
  std::ostringstream out;
  for (const FeatureSpec& f : schema.features()) {
    out << f.name << '|' << FeatureTypeName(f.type) << '|'
        << (f.immutable ? 1 : 0) << '|'
        << StrFormat("%.17g|%.17g", f.lower, f.upper);
    for (const std::string& category : f.categories) out << '|' << category;
    out << ';';
  }
  out << "target:" << schema.target_name();
  for (const std::string& cls : schema.target_classes()) out << '|' << cls;
  return out.str();
}

namespace {

std::vector<Matrix> ParameterValues(const std::vector<ag::Var>& params) {
  std::vector<Matrix> values;
  values.reserve(params.size());
  for (const ag::Var& p : params) values.push_back(p->value);
  return values;
}

/// Validates every shape first, then assigns — a mismatch anywhere leaves
/// the model untouched (no partial loads).
Status AssignWeights(const std::vector<ag::Var>& params,
                     const std::vector<Matrix>& tensors,
                     const std::string& what) {
  if (params.size() != tensors.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: bundle holds %zu tensors, model has %zu parameters",
        what.c_str(), tensors.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (tensors[i].rows() != params[i]->value.rows() ||
        tensors[i].cols() != params[i]->value.cols()) {
      return Status::InvalidArgument(StrFormat(
          "%s: tensor %zu shape mismatch (bundle %zux%zu vs model %zux%zu)",
          what.c_str(), i, tensors[i].rows(), tensors[i].cols(),
          params[i]->value.rows(), params[i]->value.cols()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = tensors[i];
  }
  return Status::OK();
}

std::vector<double> PackLossConfig(const CfLossConfig& loss) {
  return {loss.validity_weight,
          loss.proximity_weight,
          loss.feasibility_weight,
          loss.sparsity_weight,
          loss.kl_weight,
          loss.hinge_margin,
          loss.smooth_l0_k,
          loss.smooth_l0_eps,
          loss.sparsity_l1_mix,
          static_cast<double>(static_cast<int>(loss.mode)),
          loss.use_linear_binary ? 1.0 : 0.0,
          loss.linear_c1,
          loss.linear_c2,
          loss.strict_margin};
}

Status UnpackLossConfig(const std::vector<double>& packed,
                        CfLossConfig* loss) {
  if (packed.size() != 14) {
    return Status::InvalidArgument(
        StrFormat("generator.loss holds %zu values, expected 14",
                  packed.size()));
  }
  loss->validity_weight = static_cast<float>(packed[0]);
  loss->proximity_weight = static_cast<float>(packed[1]);
  loss->feasibility_weight = static_cast<float>(packed[2]);
  loss->sparsity_weight = static_cast<float>(packed[3]);
  loss->kl_weight = static_cast<float>(packed[4]);
  loss->hinge_margin = static_cast<float>(packed[5]);
  loss->smooth_l0_k = static_cast<float>(packed[6]);
  loss->smooth_l0_eps = static_cast<float>(packed[7]);
  loss->sparsity_l1_mix = static_cast<float>(packed[8]);
  const int mode = static_cast<int>(packed[9]);
  if (mode < 0 || mode > static_cast<int>(ConstraintMode::kBinary)) {
    return Status::InvalidArgument(
        StrFormat("generator.loss has invalid constraint mode %d", mode));
  }
  loss->mode = static_cast<ConstraintMode>(mode);
  loss->use_linear_binary = packed[10] != 0.0;
  loss->linear_c1 = static_cast<float>(packed[11]);
  loss->linear_c2 = static_cast<float>(packed[12]);
  loss->strict_margin = static_cast<float>(packed[13]);
  return Status::OK();
}

std::vector<double> PackGeneratorConfig(const GeneratorConfig& config) {
  return {config.learning_rate,
          static_cast<double>(config.batch_size),
          static_cast<double>(config.epochs),
          config.copy_prior ? 1.0 : 0.0,
          config.copy_bias,
          config.min_probe_validity,
          config.min_probe_feasibility,
          static_cast<double>(config.max_restarts)};
}

Status UnpackGeneratorConfig(const std::vector<double>& packed,
                             GeneratorConfig* config) {
  if (packed.size() != 8) {
    return Status::InvalidArgument(
        StrFormat("generator.config holds %zu values, expected 8",
                  packed.size()));
  }
  config->learning_rate = static_cast<float>(packed[0]);
  config->batch_size = static_cast<size_t>(packed[1]);
  config->epochs = static_cast<size_t>(packed[2]);
  config->copy_prior = packed[3] != 0.0;
  config->copy_bias = static_cast<float>(packed[4]);
  config->min_probe_validity = packed[5];
  config->min_probe_feasibility = packed[6];
  config->max_restarts = static_cast<size_t>(packed[7]);
  return Status::OK();
}

}  // namespace

Status SavePipelineBundle(const std::string& path, Experiment* experiment,
                          FeasibleCfGenerator* generator) {
  if (experiment == nullptr || generator == nullptr) {
    return Status::InvalidArgument("experiment and generator must be non-null");
  }
  BlackBoxClassifier* classifier = experiment->classifier();
  if (classifier == nullptr || !classifier->frozen()) {
    return Status::FailedPrecondition(
        "cannot bundle an untrained (unfrozen) classifier");
  }

  const RunConfig& run = experiment->run_config();
  nn::BundleWriter writer;
  writer.PutString("pipeline.format", kPipelineFormat);
  writer.PutString("pipeline.dataset", DatasetName(experiment->dataset_id()));
  writer.PutString("pipeline.scale", ScaleName(run.scale));
  writer.PutString("pipeline.seed",
                   StrFormat("%llu",
                             static_cast<unsigned long long>(run.seed)));
  writer.PutScalar("pipeline.eval_instances",
                   static_cast<double>(run.eval_instances));

  writer.PutString("schema.fingerprint",
                   SchemaFingerprint(experiment->schema()));
  const TabularEncoder& encoder = experiment->encoder();
  writer.PutScalar("encoder.width",
                   static_cast<double>(encoder.encoded_width()));
  writer.PutF64Array("encoder.min", encoder.feature_min());
  writer.PutF64Array("encoder.max", encoder.feature_max());

  const ClassifierConfig& clf = classifier->config();
  writer.PutScalar("classifier.hidden_dim",
                   static_cast<double>(clf.hidden_dim));
  writer.PutScalar("classifier.learning_rate", clf.learning_rate);
  writer.PutScalar("classifier.batch_size",
                   static_cast<double>(clf.batch_size));
  writer.PutScalar("classifier.epochs", static_cast<double>(clf.epochs));
  const TrainStats& stats = experiment->classifier_stats();
  writer.PutScalar("classifier.final_loss", stats.final_loss);
  writer.PutScalar("classifier.train_accuracy", stats.train_accuracy);
  writer.PutScalar("classifier.epochs_trained",
                   static_cast<double>(stats.epochs));
  writer.PutTensors("classifier.weights",
                    ParameterValues(classifier->Parameters()));

  const GeneratorConfig& gen = generator->config();
  writer.PutF64Array("generator.config", PackGeneratorConfig(gen));
  writer.PutF64Array("generator.loss", PackLossConfig(gen.loss));
  std::vector<double> costs(gen.loss.feature_costs.begin(),
                            gen.loss.feature_costs.end());
  writer.PutF64Array("generator.feature_costs", costs);
  writer.PutTensors("vae.weights",
                    ParameterValues(generator->vae()->Parameters()));

  return writer.WriteFile(path);
}

StatusOr<RestoredPipeline> RestorePipelineBundle(const std::string& path) {
  auto bundle_or = nn::Bundle::ReadFile(path);
  if (!bundle_or.ok()) return bundle_or.status();
  const nn::Bundle& bundle = *bundle_or;

  auto format = bundle.GetString("pipeline.format");
  if (!format.ok()) return format.status();
  if (*format != kPipelineFormat) {
    return Status::InvalidArgument("'" + path + "' is a bundle of kind '" +
                                   *format + "', not a pipeline");
  }

  auto dataset_name = bundle.GetString("pipeline.dataset");
  if (!dataset_name.ok()) return dataset_name.status();
  auto id = DatasetFromName(*dataset_name);
  if (!id.ok()) return id.status();

  auto scale_name = bundle.GetString("pipeline.scale");
  if (!scale_name.ok()) return scale_name.status();
  auto scale = ScaleFromName(*scale_name);
  if (!scale.ok()) return scale.status();

  auto seed_str = bundle.GetString("pipeline.seed");
  if (!seed_str.ok()) return seed_str.status();
  auto eval_n = bundle.GetScalar("pipeline.eval_instances");
  if (!eval_n.ok()) return eval_n.status();

  RunConfig run;
  run.scale = *scale;
  run.seed = std::strtoull(seed_str->c_str(), nullptr, 10);
  run.eval_instances = static_cast<size_t>(*eval_n);

  // Regenerate the deterministic data pipeline from the stored seed. This
  // reruns dataset synthesis + encoder fitting but skips every training
  // loop — the expensive part of Create.
  Rng rng(run.seed);
  auto prepared = Experiment::PrepareData(*id, run, &rng);
  if (!prepared.ok()) return prepared.status();
  std::unique_ptr<Experiment> experiment = std::move(*prepared);

  // Validate the environment against the bundle before loading any weights:
  // trained tensors are only meaningful over the exact encoder that produced
  // their training matrix.
  auto fingerprint = bundle.GetString("schema.fingerprint");
  if (!fingerprint.ok()) return fingerprint.status();
  if (*fingerprint != SchemaFingerprint(experiment->schema())) {
    return Status::FailedPrecondition(
        "bundle schema does not match this build's '" + *dataset_name +
        "' schema (version skew)");
  }
  auto width = bundle.GetScalar("encoder.width");
  if (!width.ok()) return width.status();
  if (static_cast<size_t>(*width) != experiment->encoder().encoded_width()) {
    return Status::FailedPrecondition(StrFormat(
        "bundle encoded width %zu != rebuilt width %zu (version skew)",
        static_cast<size_t>(*width), experiment->encoder().encoded_width()));
  }
  auto enc_min = bundle.GetF64Array("encoder.min");
  if (!enc_min.ok()) return enc_min.status();
  auto enc_max = bundle.GetF64Array("encoder.max");
  if (!enc_max.ok()) return enc_max.status();
  if (*enc_min != experiment->encoder().feature_min() ||
      *enc_max != experiment->encoder().feature_max()) {
    return Status::FailedPrecondition(
        "bundle encoder statistics do not match the regenerated dataset "
        "(seed or generator drift)");
  }

  // Classifier: same construction path as Create (identical RNG splits),
  // weights warm-loaded instead of trained.
  auto hidden = bundle.GetScalar("classifier.hidden_dim");
  if (!hidden.ok()) return hidden.status();
  auto clf_lr = bundle.GetScalar("classifier.learning_rate");
  if (!clf_lr.ok()) return clf_lr.status();
  auto clf_bs = bundle.GetScalar("classifier.batch_size");
  if (!clf_bs.ok()) return clf_bs.status();
  auto clf_epochs = bundle.GetScalar("classifier.epochs");
  if (!clf_epochs.ok()) return clf_epochs.status();

  ClassifierConfig clf_config;
  clf_config.hidden_dim = static_cast<size_t>(*hidden);
  clf_config.learning_rate = static_cast<float>(*clf_lr);
  clf_config.batch_size = static_cast<size_t>(*clf_bs);
  clf_config.epochs = static_cast<size_t>(*clf_epochs);

  Rng clf_rng = rng.Split(0xC1F);
  experiment->classifier_ = std::make_unique<BlackBoxClassifier>(
      experiment->encoder().encoded_width(), clf_config, &clf_rng);
  auto clf_weights = bundle.GetTensors("classifier.weights");
  if (!clf_weights.ok()) return clf_weights.status();
  CFX_RETURN_IF_ERROR(AssignWeights(experiment->classifier_->Parameters(),
                                    *clf_weights, "classifier.weights"));
  experiment->classifier_->Freeze();

  auto final_loss = bundle.GetScalar("classifier.final_loss");
  if (!final_loss.ok()) return final_loss.status();
  auto train_acc = bundle.GetScalar("classifier.train_accuracy");
  if (!train_acc.ok()) return train_acc.status();
  auto epochs_trained = bundle.GetScalar("classifier.epochs_trained");
  if (!epochs_trained.ok()) return epochs_trained.status();
  experiment->classifier_stats_.final_loss = static_cast<float>(*final_loss);
  experiment->classifier_stats_.train_accuracy = *train_acc;
  experiment->classifier_stats_.epochs =
      static_cast<size_t>(*epochs_trained);

  if (experiment->x_validation().rows() > 0) {
    experiment->classifier_report_ = EvaluateClassifier(
        experiment->classifier_->Logits(experiment->x_validation()),
        experiment->y_validation());
  }

  // Generator: rebuild from the saved config, then warm-load VAE weights.
  auto gen_packed = bundle.GetF64Array("generator.config");
  if (!gen_packed.ok()) return gen_packed.status();
  auto loss_packed = bundle.GetF64Array("generator.loss");
  if (!loss_packed.ok()) return loss_packed.status();
  auto costs = bundle.GetF64Array("generator.feature_costs");
  if (!costs.ok()) return costs.status();

  GeneratorConfig gen_config;
  CFX_RETURN_IF_ERROR(UnpackGeneratorConfig(*gen_packed, &gen_config));
  CFX_RETURN_IF_ERROR(UnpackLossConfig(*loss_packed, &gen_config.loss));
  gen_config.loss.feature_costs.assign(costs->begin(), costs->end());

  auto generator = std::make_unique<FeasibleCfGenerator>(
      experiment->method_context(), gen_config);
  auto vae_weights = bundle.GetTensors("vae.weights");
  if (!vae_weights.ok()) return vae_weights.status();
  CFX_RETURN_IF_ERROR(AssignWeights(generator->vae()->Parameters(),
                                    *vae_weights, "vae.weights"));
  generator->vae()->Freeze();

  CFX_LOG(Info) << "restored pipeline from '" << path << "': "
                << *dataset_name << " @ " << *scale_name << ", seed "
                << run.seed;

  RestoredPipeline restored;
  restored.experiment = std::move(experiment);
  restored.generator = std::move(generator);
  return restored;
}

StatusOr<PipelineBundleInfo> ProbePipelineBundle(const std::string& path) {
  auto bundle_or = nn::Bundle::ProbeFile(
      path, {"pipeline.format", "pipeline.dataset", "pipeline.scale",
             "pipeline.seed", "schema.fingerprint", "encoder.width"});
  if (!bundle_or.ok()) return bundle_or.status();
  const nn::Bundle& bundle = *bundle_or;

  auto format = bundle.GetString("pipeline.format");
  if (!format.ok()) return format.status();
  if (*format != kPipelineFormat) {
    return Status::InvalidArgument("'" + path + "' is a bundle of kind '" +
                                   *format + "', not a pipeline");
  }

  auto dataset_name = bundle.GetString("pipeline.dataset");
  if (!dataset_name.ok()) return dataset_name.status();
  auto id = DatasetFromName(*dataset_name);
  if (!id.ok()) return id.status();
  auto scale_name = bundle.GetString("pipeline.scale");
  if (!scale_name.ok()) return scale_name.status();
  auto scale = ScaleFromName(*scale_name);
  if (!scale.ok()) return scale.status();
  auto seed_str = bundle.GetString("pipeline.seed");
  if (!seed_str.ok()) return seed_str.status();
  auto fingerprint = bundle.GetString("schema.fingerprint");
  if (!fingerprint.ok()) return fingerprint.status();
  auto width = bundle.GetScalar("encoder.width");
  if (!width.ok()) return width.status();

  // The schema is pure metadata — building it costs microseconds, no data
  // synthesis — so the probe can reject cross-build skew up front instead
  // of burning a cold start on a bundle Restore would refuse anyway.
  const Schema schema = CreateGenerator(*id)->MakeSchema();
  if (*fingerprint != SchemaFingerprint(schema)) {
    return Status::FailedPrecondition(
        "bundle schema does not match this build's '" + *dataset_name +
        "' schema (version skew)");
  }

  PipelineBundleInfo info;
  info.id = *id;
  info.dataset = *dataset_name;
  info.scale = *scale_name;
  info.seed = std::strtoull(seed_str->c_str(), nullptr, 10);
  info.schema_fingerprint = *fingerprint;
  info.encoded_width = static_cast<size_t>(*width);
  return info;
}

StatusOr<RestoredPipeline> Experiment::Restore(const std::string& path) {
  return RestorePipelineBundle(path);
}

}  // namespace cfx
