// Pipeline-level artifact bundles: one versioned file (src/nn/bundle.h)
// carrying everything needed to serve a trained counterfactual pipeline —
// dataset identity (name/scale/seed), schema fingerprint, encoder min/max
// statistics, classifier config + weights, VAE weights and the full
// GeneratorConfig.
//
// Save with SavePipelineBundle after training; cold-start with
// Experiment::Restore(path) (equivalently RestorePipelineBundle), which
// regenerates the deterministic dataset from the stored seed, validates the
// schema and encoder statistics byte-for-byte against the bundle, and
// warm-loads classifier + VAE weights instead of retraining. A restored
// generator's Generate output is bitwise identical to the saved one's.
#ifndef CFX_CORE_ARTIFACT_H_
#define CFX_CORE_ARTIFACT_H_

#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/core/generator.h"

namespace cfx {

/// A pipeline rebuilt from a bundle, ready to serve counterfactuals.
struct RestoredPipeline {
  std::unique_ptr<Experiment> experiment;
  std::unique_ptr<FeasibleCfGenerator> generator;
};

/// Writes the trained pipeline (experiment's classifier + the generator) to
/// `path` as one versioned bundle. The classifier must be frozen and the
/// generator fitted against this experiment.
Status SavePipelineBundle(const std::string& path, Experiment* experiment,
                          FeasibleCfGenerator* generator);

/// Rebuilds experiment + generator from a bundle written by
/// SavePipelineBundle. Fails with a clear Status on truncated or corrupted
/// files, version skew, unknown datasets, and any schema/encoder/weight
/// shape mismatch — never with a partially initialised pipeline.
StatusOr<RestoredPipeline> RestorePipelineBundle(const std::string& path);

}  // namespace cfx

#endif  // CFX_CORE_ARTIFACT_H_
