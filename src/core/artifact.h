// Pipeline-level artifact bundles: one versioned file (src/nn/bundle.h)
// carrying everything needed to serve a trained counterfactual pipeline —
// dataset identity (name/scale/seed), schema fingerprint, encoder min/max
// statistics, classifier config + weights, VAE weights and the full
// GeneratorConfig.
//
// Save with SavePipelineBundle after training; cold-start with
// Experiment::Restore(path) (equivalently RestorePipelineBundle), which
// regenerates the deterministic dataset from the stored seed, validates the
// schema and encoder statistics byte-for-byte against the bundle, and
// warm-loads classifier + VAE weights instead of retraining. A restored
// generator's Generate output is bitwise identical to the saved one's.
#ifndef CFX_CORE_ARTIFACT_H_
#define CFX_CORE_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/core/generator.h"

namespace cfx {

/// A pipeline rebuilt from a bundle, ready to serve counterfactuals.
struct RestoredPipeline {
  std::unique_ptr<Experiment> experiment;
  std::unique_ptr<FeasibleCfGenerator> generator;
};

/// Canonical textual fingerprint of a schema: feature names, types,
/// immutability flags, ranges, category sets and target classes in order.
/// Stored in every pipeline bundle and compared byte-for-byte on restore
/// and registry registration, so any schema drift is caught as skew.
std::string SchemaFingerprint(const Schema& schema);

/// Identity metadata read from a pipeline bundle's header by
/// ProbePipelineBundle — everything a model registry needs to admit or
/// reject a bundle, none of the weights.
struct PipelineBundleInfo {
  DatasetId id = DatasetId::kAdult;
  std::string dataset;             ///< e.g. "adult".
  std::string scale;               ///< "small" or "paper".
  uint64_t seed = 0;
  std::string schema_fingerprint;  ///< Matches this build (validated).
  size_t encoded_width = 0;
};

/// Validates `path` as a servable pipeline bundle without loading weights:
/// walks the full section table (so truncation/corruption/version skew
/// anywhere still fails), materialises only the small identity sections,
/// checks the format tag, dataset and scale names, and compares the stored
/// schema fingerprint against the one this build computes for that dataset.
/// Costs a schema construction, not a dataset synthesis or a weight load.
StatusOr<PipelineBundleInfo> ProbePipelineBundle(const std::string& path);

/// Writes the trained pipeline (experiment's classifier + the generator) to
/// `path` as one versioned bundle. The classifier must be frozen and the
/// generator fitted against this experiment.
Status SavePipelineBundle(const std::string& path, Experiment* experiment,
                          FeasibleCfGenerator* generator);

/// Rebuilds experiment + generator from a bundle written by
/// SavePipelineBundle. Fails with a clear Status on truncated or corrupted
/// files, version skew, unknown datasets, and any schema/encoder/weight
/// shape mismatch — never with a partially initialised pipeline.
StatusOr<RestoredPipeline> RestorePipelineBundle(const std::string& path);

}  // namespace cfx

#endif  // CFX_CORE_ARTIFACT_H_
