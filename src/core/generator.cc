#include "src/core/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/constraints/feasibility.h"
#include "src/data/column_batch.h"
#include "src/core/descent.h"
#include "src/data/batcher.h"
#include "src/nn/optimizer.h"
#include "src/tensor/kernels.h"

namespace cfx {

GeneratorConfig GeneratorConfig::FromDataset(const DatasetInfo& info,
                                             ConstraintMode mode) {
  GeneratorConfig config;
  config.loss.mode = mode;
  const DatasetInfo::Hyper& hyper =
      mode == ConstraintMode::kBinary ? info.binary_hyper : info.unary_hyper;
  config.learning_rate = hyper.learning_rate;
  config.batch_size = hyper.batch_size;
  config.epochs = hyper.epochs;
  return config;
}

FeasibleCfGenerator::FeasibleCfGenerator(const MethodContext& ctx,
                                         const GeneratorConfig& config)
    : CfMethod(ctx),
      config_(config),
      penalties_(ctx.encoder),
      rng_(ctx.seed ^ 0xFCF) {
  VaeConfig vae_config;
  vae_config.input_dim = ctx.encoder->encoded_width();
  vae_config.softmax_blocks = ctx.encoder->CategoricalBlockRanges();
  vae_config.linear_head = config_.copy_prior;
  vae_ = std::make_unique<Vae>(vae_config, &rng_);
}

Matrix FeasibleCfGenerator::InputLogits(const Matrix& x) const {
  Matrix bias(x.rows(), x.cols());
  // Continuous/binary slots: logit(x) so that sigmoid(bias) == x.
  // Categorical slots: log(x + eps), making the input category win the
  // softmax by ~log(1/eps) unless the decoder pushes against it.
  std::vector<uint8_t> categorical(x.cols(), 0);
  for (const auto& [offset, width] : ctx_.encoder->CategoricalBlockRanges()) {
    for (size_t j = 0; j < width; ++j) categorical[offset + j] = 1;
  }
  // kEps trades copy strength against trainability: the softmax gradients
  // scale with the non-winning probabilities, so the bias must stay sharp
  // enough that "unchanged" is the default (sparsity on wide datasets) yet
  // leave enough probability mass off the input category for the validity
  // gradient to act on. 0.02 (inactive logit ~ -3.9) works once the class
  // conditioning is informative (+-1 encoding, see TrainOnce).
  constexpr float kEps = 0.02f;
  // Batch path: transpose once and run one full-lane span kernel per
  // encoded column (n = batch rows) over contiguous per-feature memory.
  // The kernels are position-independent, so the bits match the row-segment
  // formulation below exactly; the cutover is pure call-overhead tuning
  // (at batch 1 the transpose + per-column calls cost more than they save).
  if (x.rows() >= 8) {
    const ColumnBatch x_cols = ColumnBatch::FromMatrix(x);
    ColumnBatch bias_cols(x.rows(), x.cols());
    for (size_t c = 0; c < x.cols(); ++c) {
      if (categorical[c]) {
        kernels::LogShiftTo(bias_cols.column(c), x_cols.column(c), x.rows(),
                            kEps);
      } else {
        kernels::LogitTo(bias_cols.column(c), x_cols.column(c), x.rows(),
                         0.01f, 0.99f);
      }
    }
    bias_cols.ToRowMajor(bias.data());
    kernels::ScaleInPlace(bias.data(), config_.copy_bias, bias.size());
    return bias;
  }
  // Run-length encode the flags: adjacent same-kind slots form contiguous
  // segments, so each row becomes a handful of span-kernel calls (one log
  // implementation per dispatch level, shared with every other log in the
  // process) instead of a per-element branch around libm.
  struct Segment {
    size_t start;
    size_t len;
    bool categorical;
  };
  std::vector<Segment> segments;
  for (size_t c = 0; c < x.cols();) {
    size_t end = c + 1;
    while (end < x.cols() && categorical[end] == categorical[c]) ++end;
    segments.push_back({c, end - c, categorical[c] != 0});
    c = end;
  }
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* src = x.data() + r * x.cols();
    float* dst = bias.data() + r * x.cols();
    for (const Segment& seg : segments) {
      if (seg.categorical) {
        kernels::LogShiftTo(dst + seg.start, src + seg.start, seg.len, kEps);
      } else {
        kernels::LogitTo(dst + seg.start, src + seg.start, seg.len, 0.01f,
                         0.99f);
      }
    }
  }
  kernels::ScaleInPlace(bias.data(), config_.copy_bias, bias.size());
  return bias;
}

ag::Var FeasibleCfGenerator::SoftCf(const ag::Var& decoder_out,
                                    const Matrix& x) const {
  if (!config_.copy_prior) return decoder_out;
  ag::Var logits = ag::Add(decoder_out, ag::Constant(InputLogits(x)));
  return ag::TabularActivation(logits,
                               ctx_.encoder->CategoricalBlockRanges());
}

Matrix FeasibleCfGenerator::SoftCfValue(const Matrix& decoder_out,
                                        const Matrix& x) const {
  if (!config_.copy_prior) return decoder_out;
  // logits = decoder deltas + copy-prior bias, same addition order as the
  // tape's ag::Add(decoder_out, input_logits).
  Matrix logits = InputLogits(x);
  kernels::AddInPlace(logits.data(), decoder_out.data(), logits.size());
  const std::vector<std::pair<size_t, size_t>> blocks =
      ctx_.encoder->CategoricalBlockRanges();
  std::vector<uint8_t> in_softmax(logits.cols(), 0);
  for (const auto& [offset, width] : blocks) {
    for (size_t j = 0; j < width; ++j) in_softmax[offset + j] = 1;
  }
  Matrix out(logits.rows(), logits.cols());
  kernels::TabularActivationForward(logits.data(), out.data(), logits.rows(),
                                    logits.cols(), blocks, in_softmax);
  return out;
}

Matrix FeasibleCfGenerator::DesiredCond(const std::vector<int>& desired) {
  // Condition encoded as +-1, NOT 0/1: a zero conditioning input contributes
  // nothing to the first-layer activations, leaving the decoder blind to
  // "desired class 0" (see TrainOnce).
  Matrix cond(desired.size(), 1);
  for (size_t r = 0; r < desired.size(); ++r) {
    cond.at(r, 0) = desired[r] == 1 ? 1.0f : -1.0f;
  }
  return cond;
}

std::string FeasibleCfGenerator::name() const {
  switch (config_.loss.mode) {
    case ConstraintMode::kUnary: return "Our method (a) Unary";
    case ConstraintMode::kBinary: return "Our method (b) Binary";
    case ConstraintMode::kNone: return "Our method (no constraints)";
  }
  return "Our method";
}

ag::Var FeasibleCfGenerator::MaskedCf(const ag::Var& x_hat,
                                      const Matrix& x) const {
  // x_cf = x + mask * (x_hat - x): gradients only flow through mutable
  // slots; immutables stay at their input values during training (§III-C).
  const Matrix mask_row = ctx_.encoder->MutableMask();
  Matrix mask(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) mask.at(r, c) = mask_row.at(0, c);
  }
  ag::Var delta = ag::Sub(x_hat, ag::Constant(x));
  return ag::Add(ag::Constant(x), ag::MulConstMask(delta, mask));
}

Status FeasibleCfGenerator::Fit(const Matrix& x_train,
                                const std::vector<int>& labels) {
  if (x_train.rows() != labels.size()) {
    return Status::InvalidArgument("x_train/labels size mismatch");
  }
  if (!ctx_.classifier->frozen()) {
    return Status::FailedPrecondition(
        "black-box classifier must be trained before fitting the generator");
  }

  const Matrix probe =
      x_train.SliceRows(0, std::min<size_t>(512, x_train.rows()));
  // Across restarts, keep the *best* attempt (min-margin score over both
  // probe criteria), not merely the last one: when no attempt clears the
  // thresholds the final model should still be the strongest seen.
  std::vector<Matrix> best_weights;
  double best_score = -1.0;
  auto snapshot_if_best = [&](double validity, double feasibility) {
    const double score =
        std::min(validity / std::max(config_.min_probe_validity, 1e-9),
                 feasibility / std::max(config_.min_probe_feasibility, 1e-9));
    if (score <= best_score) return;
    best_score = score;
    best_weights.clear();
    for (const ag::Var& p : vae_->Parameters()) {
      best_weights.push_back(p->value);
    }
  };

  for (size_t attempt = 0;; ++attempt) {
    TrainOnce(x_train, labels);
    const auto [validity, feasibility] = ProbeQuality(probe);
    snapshot_if_best(validity, feasibility);
    const bool good = validity >= config_.min_probe_validity &&
                      feasibility >= config_.min_probe_feasibility;
    if (good || attempt >= config_.max_restarts) {
      if (!good) {
        CFX_LOG(Warning) << name() << ": probe validity " << validity
                         << " / feasibility " << feasibility
                         << " below target after " << attempt + 1
                         << " runs; keeping the best attempt";
        std::vector<ag::Var> params = vae_->Parameters();
        for (size_t i = 0; i < params.size(); ++i) {
          params[i]->value = best_weights[i];
        }
      }
      break;
    }
    // The dominant failure mode is a decoder that never flips one desired
    // class while the auxiliary terms hold it at the copy-prior fixed
    // point. Escalate the validity emphasis and *continue* training the
    // same weights (attempt 1) — more steps with a harder validity push —
    // before falling back to a fresh initialisation (attempt 2+).
    validity_boost_ *= 2.0f;
    if (attempt >= 1) {
      CFX_LOG(Info) << name() << ": probe validity " << validity
                    << " / feasibility " << feasibility
                    << ", re-initialising with validity boost "
                    << validity_boost_ << " (attempt " << attempt + 1 << ")";
      VaeConfig vae_config = vae_->config();
      Rng reinit = rng_.Split(0xA77E + attempt);
      vae_ = std::make_unique<Vae>(vae_config, &reinit);
    } else {
      CFX_LOG(Info) << name() << ": probe validity " << validity
                    << " / feasibility " << feasibility
                    << ", continuing with validity boost "
                    << validity_boost_ << " (attempt " << attempt + 1 << ")";
    }
  }
  validity_boost_ = 1.0f;
  return Status::OK();
}

void FeasibleCfGenerator::TrainOnce(const Matrix& x_train,
                                    const std::vector<int>& labels) {
  vae_->SetTraining(true);
  // Table III reports SGD-scale learning rates (0.1-0.2); with Adam the
  // equivalent step scale is ~1e-2 of that, hence the 0.05 factor.
  nn::Adam opt(vae_->Parameters(), config_.learning_rate * 0.05f);
  // Table III's batch size (2048) assumes the paper-scale row counts. At
  // reduced scale, cap the batch so each epoch still takes >= ~12 steps —
  // otherwise 25 epochs degenerate to a few dozen updates.
  const size_t batch_size = std::min(
      config_.batch_size, std::max<size_t>(64, x_train.rows() / 12));
  Batcher batcher(x_train, labels, batch_size, &rng_);
  Rng noise = rng_.Split(0x401);

  // The black box is frozen here, so its labels on x_train never change:
  // predict the full split once and gather per batch, instead of re-running
  // inference on every batch of every epoch. Per-row kernel independence
  // (each output row accumulates its own dot products in a fixed order)
  // makes the gathered labels bitwise identical to a per-batch Predict.
  const std::vector<int> pred_train = Predictions(x_train);

  // Per-epoch descent through the shared driver; `opt` lives outside so the
  // Adam moments persist across epochs.
  descent::Config dconfig;
  dconfig.grad_clip_norm = 5.0f;
  dconfig.optimizer = &opt;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    CfLossConfig loss_config = config_.loss;
    loss_config.validity_weight *= validity_boost_;

    std::vector<Batch> epoch_batches = batcher.Epoch();
    dconfig.max_iterations = epoch_batches.size();

    std::vector<double> sums(6, 0.0);
    size_t batches = 0;
    CfLossTerms terms;  // Terms of the current batch, shared with the hook.

    descent::Hooks hooks;
    hooks.before_update = [&](const descent::StepInfo&) {
      sums[0] += terms.total->value.at(0, 0);
      sums[1] += terms.validity->value.at(0, 0);
      sums[2] += terms.proximity->value.at(0, 0);
      sums[3] += terms.feasibility->value.at(0, 0);
      sums[4] += terms.sparsity->value.at(0, 0);
      sums[5] += terms.kl->value.at(0, 0);
      ++batches;
      return descent::Control::kContinue;
    };

    descent::RunDescent(
        vae_->Parameters(), dconfig,
        [&](size_t b) {
          Batch& batch = epoch_batches[b];
          // Desired class: the opposite of the black box's (precomputed)
          // prediction, gathered through the batch's source-row indices.
          Matrix cond(batch.x.rows(), 1);
          Matrix desired_pm1(batch.x.rows(), 1);
          for (size_t r = 0; r < batch.x.rows(); ++r) {
            const int desired = 1 - pred_train[batch.indices[r]];
            // Condition encoded as +-1, NOT 0/1: a zero conditioning input
            // contributes nothing to the first-layer activations, leaving
            // the decoder blind to "desired class 0" and prone to a
            // class-agnostic mode that only ever flips toward the majority
            // desired class.
            cond.at(r, 0) = desired == 1 ? 1.0f : -1.0f;
            desired_pm1.at(r, 0) = desired == 1 ? 1.0f : -1.0f;
          }

          ag::Var x_var = ag::Constant(batch.x);
          Vae::Output out =
              vae_->Forward(x_var, cond, &noise, /*sample=*/true);
          ag::Var x_cf = MaskedCf(SoftCf(out.x_hat, batch.x), batch.x);

          terms = BuildCfLoss(loss_config, penalties_, *ctx_.info,
                              ctx_.classifier, x_cf, batch.x, desired_pm1,
                              out);
          return terms.total;
        },
        hooks);

    last_epoch_terms_.assign(6, 0.0f);
    for (size_t i = 0; i < 6; ++i) {
      last_epoch_terms_[i] =
          batches > 0 ? static_cast<float>(sums[i] / batches) : 0.0f;
    }
    CFX_LOG(Debug) << name() << " epoch " << epoch
                   << " total=" << last_epoch_terms_[0]
                   << " validity=" << last_epoch_terms_[1]
                   << " feas=" << last_epoch_terms_[3];
  }
  vae_->SetTraining(false);
}

std::pair<double, double> FeasibleCfGenerator::ProbeQuality(
    const Matrix& x_probe) {
  CfResult result = Generate(x_probe);
  if (result.size() == 0) return {0.0, 0.0};
  size_t valid = 0;
  for (size_t i = 0; i < result.size(); ++i) valid += result.IsValid(i);
  const double validity =
      static_cast<double>(valid) / static_cast<double>(result.size());

  double feasibility = 1.0;
  if (config_.loss.mode != ConstraintMode::kNone) {
    ConstraintSet set = config_.loss.mode == ConstraintMode::kUnary
                            ? MakeUnaryConstraintSet(*ctx_.info)
                            : MakeBinaryConstraintSet(*ctx_.info);
    feasibility = EvaluateFeasibility(set, *ctx_.encoder, result.inputs,
                                      result.cfs)
                      .score_percent /
                  100.0;
  }
  return {validity, feasibility};
}

CfResult FeasibleCfGenerator::GenerateImpl(const Matrix& x) {
  vae_->SetTraining(false);
  std::vector<int> desired = DesiredClasses(x);
  Matrix cond = DesiredCond(desired);
  // Historical quirk kept on purpose: the tape-era Generate split a noise
  // stream it never drew from (z = posterior mean). Split advances rng_, so
  // dropping it would shift every later rng_ draw (restart seeds, batchers).
  (void)rng_.Split(0x402);
  Matrix x_hat = vae_->Reconstruct(x, cond);
  return FinishResult(x, SoftCfValue(x_hat, x), std::move(desired));
}

CfResult FeasibleCfGenerator::GenerateMany(const Matrix& x,
                                           nn::InferWorkspace* ws) {
  // Mirrors GenerateImpl minus the shared mutable state: no SetTraining
  // flip unless needed (serving models are already eval-mode), no rng_
  // Split (it never affected the output — see GenerateImpl), desired
  // classes and the final predictions on the caller's workspace rather
  // than the mutex-serialised cache.
  if (vae_->training()) vae_->SetTraining(false);
  std::vector<int> desired;
  Matrix x_hat;
  {
    trace::ScopedSpan span("generate/desired");
    desired = DesiredClasses(x, ws);
  }
  {
    trace::ScopedSpan span("generate/reconstruct");
    Matrix cond = DesiredCond(desired);
    x_hat = ws != nullptr ? vae_->Reconstruct(x, cond, ws)
                          : vae_->Reconstruct(x, cond);
  }
  Matrix soft;
  {
    trace::ScopedSpan span("generate/soft_cf");
    soft = SoftCfValue(x_hat, x);
  }
  trace::ScopedSpan span("generate/finish");
  return FinishResult(x, std::move(soft), std::move(desired), ws);
}

CfResult FeasibleCfGenerator::GenerateTape(const Matrix& x) {
  vae_->SetTraining(false);
  std::vector<int> desired = DesiredClasses(x);
  Matrix cond = DesiredCond(desired);
  Rng noise = rng_.Split(0x402);
  Vae::Output out =
      vae_->Forward(ag::Constant(x), cond, &noise, /*sample=*/false);
  return FinishResult(x, SoftCf(out.x_hat, x)->value, std::move(desired));
}

CfResult FeasibleCfGenerator::GenerateSampled(const Matrix& x,
                                              float stddev_scale,
                                              Rng* noise) {
  vae_->SetTraining(false);
  std::vector<int> desired = DesiredClasses(x);
  Matrix cond = DesiredCond(desired);
  auto [mu, logvar] = vae_->Encode(x, cond);
  Matrix z = std::move(mu);
  for (size_t r = 0; r < z.rows(); ++r) {
    for (size_t c = 0; c < z.cols(); ++c) {
      z.at(r, c) += stddev_scale * std::exp(0.5f * logvar.at(r, c)) *
                    static_cast<float>(noise->Normal());
    }
  }
  Matrix decoded = vae_->Decode(z, cond);
  return FinishResult(x, SoftCfValue(decoded, x), std::move(desired));
}

}  // namespace cfx
