// Counterfactual result containers shared by the core method, the baselines
// and the metrics.
#ifndef CFX_CORE_CF_EXAMPLE_H_
#define CFX_CORE_CF_EXAMPLE_H_

#include <string>
#include <vector>

#include "src/data/encoder.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// A batch of counterfactuals aligned row-by-row with their inputs.
struct CfResult {
  Matrix inputs;   ///< (n x d) encoded originals.
  Matrix cfs;      ///< (n x d) encoded CFs, projected onto the data manifold
                   ///< (one-hot categoricals, clipped continuous).
  Matrix cfs_raw;  ///< (n x d) unprojected generator outputs (density/Fig. 6).
  std::vector<int> desired;    ///< Desired (opposite) class per row.
  std::vector<int> predicted;  ///< Black-box prediction on `cfs`.

  size_t size() const { return inputs.rows(); }

  /// True if the black-box assigns row i its desired class.
  bool IsValid(size_t i) const { return predicted[i] == desired[i]; }
};

/// One (input, CF) pair decoded to raw feature values for display — the
/// paper's Table V.
struct CfDisplay {
  std::vector<std::string> feature_names;
  std::vector<std::string> x_true;  ///< Raw input values, formatted.
  std::vector<std::string> x_pred;  ///< Raw CF values, formatted.
};

/// Decodes pair i of `result` into display form.
CfDisplay MakeDisplay(const TabularEncoder& encoder, const CfResult& result,
                      size_t i);

}  // namespace cfx

#endif  // CFX_CORE_CF_EXAMPLE_H_
