// The paper's method: a class-conditional VAE trained with the four-part
// loss to emit feasible, sparse counterfactuals (§III-C).
//
// Training: for every batch the desired class is the opposite of the black
// box's prediction; the VAE encodes [x | y'], reparameterises, decodes
// [z | y'] and the decoded batch — with immutable attributes masked back to
// their input values — is scored by the four-part loss.
//
// Generation: deterministic pass (z = posterior mean), projection onto the
// one-hot manifold, immutables restored verbatim.
#ifndef CFX_CORE_GENERATOR_H_
#define CFX_CORE_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/core/loss.h"

namespace cfx {

/// Training hyperparameters of the generator (Table III defaults are filled
/// in from the DatasetInfo by FromDataset).
struct GeneratorConfig {
  CfLossConfig loss;
  float learning_rate = 0.2f;   ///< Table III; scaled onto Adam internally.
  size_t batch_size = 2048;
  size_t epochs = 25;
  /// Copy-prior decoder: the decoder emits logit *deltas* added to the
  /// input's own logits before the tabular activation, so a zero output
  /// reproduces the input exactly. This makes sparsity the architectural
  /// default rather than something the loss must fight for (essential on
  /// wide datasets like KDD-Census whose noise fields a 10-d latent cannot
  /// memorise).
  bool copy_prior = true;
  /// Sharpness of the input logits in the copy prior: larger values make
  /// the input harder to overwrite.
  float copy_bias = 1.0f;
  /// The four-part objective has class-conditional local optima (a decoder
  /// mode that never flips one desired class). After training, validity is
  /// probed on training rows; below this threshold the VAE is re-initialised
  /// and retrained, up to `max_restarts` times.
  double min_probe_validity = 0.92;
  /// Same idea for the trained constraint: restart when the probe's
  /// feasibility score (under this model's own constraint set) is poor.
  double min_probe_feasibility = 0.80;
  size_t max_restarts = 2;

  /// Builds the §IV-E configuration for a dataset and constraint mode,
  /// using the paper's Table III learning rate / batch size / epochs.
  static GeneratorConfig FromDataset(const DatasetInfo& info,
                                     ConstraintMode mode);
};

/// Feasible counterfactual generator — "Our method" in Table IV.
class FeasibleCfGenerator : public CfMethod {
 public:
  FeasibleCfGenerator(const MethodContext& ctx, const GeneratorConfig& config);

  std::string name() const override;
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

  /// The deterministic generation pass (z = posterior mean, frozen models)
  /// is row-local end to end, so coalescing rows is safe and row i of a
  /// batched pass is bitwise identical to a single-row Generate.
  bool SupportsBatchedGenerate() const override { return true; }

  /// Batched generation on a caller-provided workspace. Unlike GenerateImpl
  /// this never touches the member RNG (its Split was a stream-preserving
  /// quirk, not a draw) or the shared prediction cache, so concurrent calls
  /// with distinct workspaces are safe once the models are frozen and in
  /// eval mode.
  CfResult GenerateMany(const Matrix& x, nn::InferWorkspace* ws) override;

  /// Reference implementation of Generate through the autodiff tape. Kept
  /// for the bitwise tape-vs-infer equivalence tests and the inference
  /// bench; serving code should call Generate (tape-free, allocation-lean).
  CfResult GenerateTape(const Matrix& x);

  /// Stochastic variant of Generate: decodes one *reparameterised* latent
  /// sample per row (z = mu + scale * sigma * eps) instead of the posterior
  /// mean. Repeated calls with an advancing `noise` stream yield different
  /// counterfactual candidates for the same inputs — the substrate of
  /// diverse generation (src/core/diverse.h).
  CfResult GenerateSampled(const Matrix& x, float stddev_scale, Rng* noise);

  /// Mean loss-term values of the last training epoch, for diagnostics and
  /// the ablation bench: {total, validity, proximity, feasibility, sparsity,
  /// kl}.
  const std::vector<float>& last_epoch_terms() const {
    return last_epoch_terms_;
  }

  Vae* vae() { return vae_.get(); }
  const GeneratorConfig& config() const { return config_; }

 private:
  /// Decoded batch with immutables restored, as a differentiable Var.
  ag::Var MaskedCf(const ag::Var& x_hat, const Matrix& x) const;

  /// Turns decoder output into the soft counterfactual batch: with the copy
  /// prior, activation(input_logits + decoder_deltas); otherwise the decoder
  /// output directly.
  ag::Var SoftCf(const ag::Var& decoder_out, const Matrix& x) const;

  /// Tape-free SoftCf over plain matrices; bitwise identical to
  /// SoftCf(Constant(decoder_out), x)->value.
  Matrix SoftCfValue(const Matrix& decoder_out, const Matrix& x) const;

  /// Shared +-1 conditioning column for the desired classes (see TrainOnce).
  static Matrix DesiredCond(const std::vector<int>& desired);

  /// Per-slot logits of an encoded batch (the copy prior's bias).
  Matrix InputLogits(const Matrix& x) const;

  /// One full training run over the current VAE weights.
  void TrainOnce(const Matrix& x_train, const std::vector<int>& labels);

  /// Fraction of probe rows whose generated CF reaches its desired class,
  /// and the feasibility score under the trained constraint mode (1.0 when
  /// mode == kNone).
  std::pair<double, double> ProbeQuality(const Matrix& x_probe);

  GeneratorConfig config_;
  std::unique_ptr<Vae> vae_;
  PenaltyBuilder penalties_;
  Rng rng_;
  std::vector<float> last_epoch_terms_;
  /// Escalating validity emphasis across probe-failed attempts (reset by
  /// Fit; applied multiplicatively in TrainOnce).
  float validity_boost_ = 1.0f;
};

}  // namespace cfx

#endif  // CFX_CORE_GENERATOR_H_
