// Diverse counterfactual generation — the multiplicity the paper's Figure 2
// illustrates ("three feasible counterfactual examples that suggest three
// different ways an individual can take a loan") and the diversity emphasis
// of DiCE [11] discussed in §II.
//
// The trained generator is stochastic through its latent space: decoding
// multiple reparameterised posterior samples yields multiple candidate CFs
// per input. DiverseCfGenerator draws `num_samples` candidates, keeps the
// valid (and optionally feasible) ones, and greedily selects `k` that
// maximise the minimum pairwise L1 distance — a simple max-min diversity
// criterion — always seeding the selection with the candidate closest to
// the input (Figure 2's "fewest changes" pick comes first).
#ifndef CFX_CORE_DIVERSE_H_
#define CFX_CORE_DIVERSE_H_

#include <vector>

#include "src/core/generator.h"

namespace cfx {

/// Options for diverse generation.
struct DiverseConfig {
  size_t k = 3;              ///< Counterfactuals returned per input.
  size_t num_samples = 32;   ///< Latent samples drawn per input.
  bool require_feasible = true;  ///< Drop candidates violating constraints.
  /// Posterior widening. Hard one-hot projection collapses nearby latent
  /// samples onto the same counterfactual, so diversity needs draws well
  /// outside one posterior stddev.
  float latent_stddev_scale = 3.0f;
  /// Minimum encoded-L1 distance between selected alternatives: candidates
  /// closer than this to an already-selected CF are near-duplicates a user
  /// could not distinguish, not genuine options.
  float min_separation = 0.15f;
};

/// A set of alternative counterfactuals for one input.
struct DiverseCfSet {
  Matrix input;              ///< (1 x d) encoded input.
  int desired = 0;           ///< Target class.
  Matrix cfs;                ///< (m x d), m <= k, projected CFs.
  std::vector<bool> feasible;  ///< Per-CF constraint verdict.
  /// Mean pairwise L1 distance between the selected CFs (0 when m < 2) —
  /// the diversity score.
  double diversity = 0.0;
};

/// Generates up to `config.k` diverse counterfactuals per row of `x` using a
/// *fitted* generator. Rows for which no valid candidate is found get an
/// empty set.
std::vector<DiverseCfSet> GenerateDiverse(FeasibleCfGenerator* generator,
                                          const Matrix& x,
                                          const DiverseConfig& config,
                                          Rng* rng);

/// Mean diversity score across non-empty sets.
double MeanDiversity(const std::vector<DiverseCfSet>& sets);

}  // namespace cfx

#endif  // CFX_CORE_DIVERSE_H_
