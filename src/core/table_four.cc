#include "src/core/table_four.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cfx {

StatusOr<TableFourCellOutput> RunTableFourCell(Experiment& exp,
                                               MethodKind kind) {
  std::unique_ptr<CfMethod> method = CreateMethod(kind, exp.method_context());
  if (method == nullptr) return Status::Internal("null method");
  CFX_LOG(Info) << "fitting " << method->name();
  CFX_RETURN_IF_ERROR(method->Fit(exp.x_train(), exp.y_train()));
  Matrix x_eval = exp.TestSubset(exp.run_config().eval_instances);
  CfResult cfs = method->Generate(x_eval);
  MethodMetrics metrics =
      EvaluateMethod(method->name(), exp.encoder(), exp.info(), cfs);
  CFX_LOG(Info) << method->name() << ": validity=" << metrics.validity
                << " feas_u=" << metrics.feasibility_unary
                << " feas_b=" << metrics.feasibility_binary
                << " sparsity=" << metrics.sparsity;
  TableFourCellOutput out;
  out.row = {metrics, ShowsUnaryColumn(kind), ShowsBinaryColumn(kind)};
  out.eval_rows = x_eval.rows();
  return out;
}

std::string TableFourTitle(DatasetId dataset, const RunConfig& config,
                           size_t eval_rows) {
  return StrFormat("Table IV — %s dataset (scale=%s, %zu eval rows)",
                   DatasetName(dataset), ScaleName(config.scale), eval_rows);
}

StatusOr<TableFourResult> RunTableFour(DatasetId dataset,
                                       const RunConfig& config,
                                       const std::vector<MethodKind>& kinds) {
  auto experiment = Experiment::Create(dataset, config);
  if (!experiment.ok()) return experiment.status();
  Experiment& exp = **experiment;

  TableFourResult result;
  result.dataset = dataset;
  size_t eval_rows = exp.TestSubset(config.eval_instances).rows();
  for (MethodKind kind : kinds) {
    auto cell = RunTableFourCell(exp, kind);
    if (!cell.ok()) return cell.status();
    result.rows.push_back(cell->row);
    eval_rows = cell->eval_rows;
  }
  result.rendered =
      RenderMetricsTable(TableFourTitle(dataset, config, eval_rows),
                         result.rows);
  return result;
}

}  // namespace cfx
