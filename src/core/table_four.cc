#include "src/core/table_four.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cfx {

StatusOr<TableFourResult> RunTableFour(DatasetId dataset,
                                       const RunConfig& config,
                                       const std::vector<MethodKind>& kinds) {
  auto experiment = Experiment::Create(dataset, config);
  if (!experiment.ok()) return experiment.status();
  Experiment& exp = **experiment;

  Matrix x_eval = exp.TestSubset(config.eval_instances);

  TableFourResult result;
  result.dataset = dataset;
  for (MethodKind kind : kinds) {
    std::unique_ptr<CfMethod> method = CreateMethod(kind, exp.method_context());
    if (method == nullptr) return Status::Internal("null method");
    CFX_LOG(Info) << "fitting " << method->name();
    CFX_RETURN_IF_ERROR(method->Fit(exp.x_train(), exp.y_train()));
    CfResult cfs = method->Generate(x_eval);
    MethodMetrics metrics =
        EvaluateMethod(method->name(), exp.encoder(), exp.info(), cfs);
    result.rows.push_back(
        {metrics, ShowsUnaryColumn(kind), ShowsBinaryColumn(kind)});
    CFX_LOG(Info) << method->name() << ": validity=" << metrics.validity
                  << " feas_u=" << metrics.feasibility_unary
                  << " feas_b=" << metrics.feasibility_binary
                  << " sparsity=" << metrics.sparsity;
  }
  result.rendered = RenderMetricsTable(
      StrFormat("Table IV — %s dataset (scale=%s, %zu eval rows)",
                DatasetName(dataset), ScaleName(config.scale), x_eval.rows()),
      result.rows);
  return result;
}

}  // namespace cfx
