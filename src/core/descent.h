// Shared gradient-descent driver for counterfactual search and generator
// training.
//
// Every gradient-based method in cfx runs the same skeleton: rebuild a loss
// graph, backward, maybe clip, apply an update, maybe project / snapshot /
// early-stop. RunDescent owns that skeleton once; methods supply a loss
// builder plus hooks for the parts that differ:
//
//  * REVISE      — latent-z Adam descent, per-row flip snapshots, early stop.
//  * CEM         — custom proximal (ISTA) update instead of the optimiser.
//  * DiCE (grad) — Adam over k candidate sets, box projection after a step.
//  * Our method  — per-epoch VAE training with an external long-lived Adam
//    (Mahajan et al. rides the same path through FeasibleCfGenerator).
//
// The driver never changes the numerical order of operations relative to a
// hand-rolled loop: ZeroGrad -> Backward -> [clip] -> before_update ->
// update -> after_update.
#ifndef CFX_CORE_DESCENT_H_
#define CFX_CORE_DESCENT_H_

#include <functional>
#include <vector>

#include "src/nn/optimizer.h"
#include "src/tensor/autodiff.h"

namespace cfx {
namespace descent {

/// Hook verdict: keep iterating or finish now.
enum class Control { kContinue, kStop };

struct Config {
  size_t max_iterations = 100;
  /// Learning rate for the internally owned Adam. Ignored when `optimizer`
  /// is set or the update is custom.
  float step_size = 1e-2f;
  /// Global L2 gradient-norm clip applied after Backward; <= 0 disables.
  float grad_clip_norm = 0.0f;
  /// Optional external optimiser (not owned). Use when optimiser state must
  /// outlive a single RunDescent call (e.g. Adam moments across epochs).
  nn::Optimizer* optimizer = nullptr;
};

/// State handed to hooks each iteration.
struct StepInfo {
  size_t iteration;          ///< 0-based.
  ag::Var loss;              ///< Graph root built this iteration.
  nn::Optimizer* optimizer;  ///< Null when the update is custom.
};

struct Hooks {
  /// Runs after Backward, before the update. Returning kStop finishes the
  /// descent *without* applying the pending update (the "snapshot then
  /// stop" pattern of REVISE and CEM).
  std::function<Control(const StepInfo&)> before_update;
  /// Replaces the optimiser step entirely (CEM's proximal/ISTA update).
  std::function<void(const StepInfo&)> apply_update;
  /// Runs after the update — projection to the feasible box, logging.
  std::function<Control(const StepInfo&)> after_update;
};

/// Builds the loss graph for one iteration. Returning null stops the
/// descent before the iteration runs.
using LossBuilder = std::function<ag::Var(size_t iteration)>;

/// Runs up to config.max_iterations of: build loss, ZeroGrad(params),
/// Backward, optional clip, hooks, update. Returns the number of loss
/// evaluations performed.
size_t RunDescent(const std::vector<ag::Var>& params, const Config& config,
                  const LossBuilder& build_loss, const Hooks& hooks = {});

}  // namespace descent
}  // namespace cfx

#endif  // CFX_CORE_DESCENT_H_
