#include "src/core/descent.h"

#include <memory>

#include "src/common/trace.h"

namespace cfx {
namespace descent {

size_t RunDescent(const std::vector<ag::Var>& params, const Config& config,
                  const LossBuilder& build_loss, const Hooks& hooks) {
  std::unique_ptr<nn::Adam> owned;
  nn::Optimizer* opt = config.optimizer;
  if (opt == nullptr && !hooks.apply_update) {
    owned = std::make_unique<nn::Adam>(params, config.step_size);
    opt = owned.get();
  }

  size_t evaluated = 0;
  for (size_t it = 0; it < config.max_iterations; ++it) {
    CFX_TRACE_SPAN("descent/iteration");
    ag::Var loss = build_loss(it);
    if (loss == nullptr) break;
    ++evaluated;

    ag::ZeroGrad(params);
    ag::Backward(loss);
    if (config.grad_clip_norm > 0.0f && opt != nullptr) {
      opt->ClipGradNorm(config.grad_clip_norm);
    }

    StepInfo info{it, loss, hooks.apply_update ? nullptr : opt};
    if (hooks.before_update &&
        hooks.before_update(info) == Control::kStop) {
      break;
    }
    if (hooks.apply_update) {
      hooks.apply_update(info);
    } else {
      opt->Step();
    }
    if (hooks.after_update && hooks.after_update(info) == Control::kStop) {
      break;
    }
  }
  return evaluated;
}

}  // namespace descent
}  // namespace cfx
