#include "src/core/loss.h"

#include "src/nn/losses.h"

namespace cfx {

const char* ConstraintModeName(ConstraintMode mode) {
  switch (mode) {
    case ConstraintMode::kNone: return "none";
    case ConstraintMode::kUnary: return "unary";
    case ConstraintMode::kBinary: return "binary";
  }
  return "unknown";
}

CfLossTerms BuildCfLoss(const CfLossConfig& config,
                        const PenaltyBuilder& penalties,
                        const DatasetInfo& info,
                        BlackBoxClassifier* classifier, const ag::Var& x_cf,
                        const Matrix& x, const Matrix& desired_pm1,
                        const Vae::Output& vae_out) {
  CfLossTerms terms;

  // Validity: hinge between the black-box logit of x^cf and the desired
  // class y' (first term of Eq. 3).
  ag::Var logits = classifier->LogitsVar(x_cf);
  terms.validity = nn::HingeLoss(logits, desired_pm1, config.hinge_margin);

  // Proximity: L1 distance d(x, x') (second term of Eq. 3); optionally
  // weighted by per-feature actionability costs.
  ag::Var delta = ag::Sub(x_cf, ag::Constant(x));
  if (config.feature_costs.empty()) {
    terms.proximity = ag::Mean(ag::Abs(delta));
  } else {
    // Expand per-feature costs to the encoded slot layout.
    const TabularEncoder& encoder = penalties.encoder();
    Matrix cost_mask(x.rows(), x.cols());
    for (const EncodedBlock& block : encoder.blocks()) {
      const float cost =
          block.feature_index < config.feature_costs.size()
              ? config.feature_costs[block.feature_index]
              : 1.0f;
      for (size_t j = 0; j < block.width; ++j) {
        for (size_t r = 0; r < x.rows(); ++r) {
          cost_mask.at(r, block.offset + j) = cost;
        }
      }
    }
    terms.proximity = ag::Mean(ag::MulConstMask(ag::Abs(delta), cost_mask));
  }

  // Feasibility: the constraint relaxations of §III-A / §III-C.
  switch (config.mode) {
    case ConstraintMode::kNone:
      terms.feasibility = ag::Constant(Matrix(1, 1));
      break;
    case ConstraintMode::kUnary:
      terms.feasibility = penalties.UnaryPenalty(info.unary_feature, x_cf, x);
      break;
    case ConstraintMode::kBinary:
      if (config.use_linear_binary) {
        terms.feasibility = penalties.BinaryLinearPenalty(
            info.binary_cause, info.binary_effect, x_cf, config.linear_c1,
            config.linear_c2);
      } else {
        terms.feasibility = penalties.BinaryImplicationPenalty(
            info.binary_cause, info.binary_effect, x_cf, x,
            config.strict_margin);
      }
      break;
  }

  // Sparsity: g(x' - x), a mix of L1 and smoothed-L0 (§III-B).
  ag::Var l1 = ag::Mean(ag::Abs(delta));
  ag::Var l0 = nn::SmoothL0(delta, config.smooth_l0_k, config.smooth_l0_eps);
  terms.sparsity = ag::Add(ag::Scale(l1, config.sparsity_l1_mix),
                           ag::Scale(l0, 1.0f - config.sparsity_l1_mix));

  // Latent regulariser.
  terms.kl = nn::KlStandardNormal(vae_out.mu, vae_out.logvar);

  terms.total = ag::Add(
      ag::Add(ag::Add(ag::Scale(terms.validity, config.validity_weight),
                      ag::Scale(terms.proximity, config.proximity_weight)),
              ag::Add(ag::Scale(terms.feasibility, config.feasibility_weight),
                      ag::Scale(terms.sparsity, config.sparsity_weight))),
      ag::Scale(terms.kl, config.kl_weight));
  return terms;
}

}  // namespace cfx
