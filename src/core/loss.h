// The paper's four-part counterfactual loss (§III-C, Eq. 3):
//
//   L = w_v * Hinge(h(x^cf), y')            (validity)
//     + w_p * ||x^cf - x||_1                (proximity)
//     + w_f * feasibility penalties         (Eq. 1 / Eq. 2 relaxations)
//     + w_s * g(x^cf - x)                   (sparsity, smoothed L0 + L1)
//     [+ w_kl * KL(q(z|x) || N(0,I))]       (latent regulariser)
//
// The KL term is not spelled out in Eq. (3) but is required for the VAE
// latent space to form the smooth manifold the paper's Figure 6 visualises;
// it defaults to a small weight and is ablated in bench/ablation_loss_terms.
#ifndef CFX_CORE_LOSS_H_
#define CFX_CORE_LOSS_H_

#include <vector>

#include "src/constraints/penalty.h"
#include "src/datasets/spec.h"
#include "src/models/classifier.h"
#include "src/models/vae.h"

namespace cfx {

/// Which feasibility constraint the trained model enforces (§IV-E trains one
/// model per mode).
enum class ConstraintMode { kNone, kUnary, kBinary };

const char* ConstraintModeName(ConstraintMode mode);

/// Weights and shape parameters of the four-part loss.
struct CfLossConfig {
  float validity_weight = 6.0f;
  float proximity_weight = 1.0f;
  float feasibility_weight = 15.0f;
  float sparsity_weight = 0.8f;
  float kl_weight = 0.02f;

  float hinge_margin = 1.0f;      ///< Margin of the validity hinge.
  float smooth_l0_k = 50.0f;      ///< Sharpness of the smoothed L0.
  float smooth_l0_eps = 0.05f;    ///< Dead-zone under which a delta is "no change".
  float sparsity_l1_mix = 0.5f;   ///< g = mix * L1 + (1-mix) * smoothed L0.

  /// Optional per-feature actionability costs (schema order). When
  /// non-empty, the proximity term becomes a *weighted* L1: changing
  /// feature f costs feature_costs[f] per unit of normalised delta, so
  /// hard-to-act-on attributes (e.g. relocating vs working an extra hour)
  /// are changed last. Empty = uniform cost 1.
  std::vector<float> feature_costs;

  ConstraintMode mode = ConstraintMode::kUnary;
  /// Use the paper's linear-relation binary penalty instead of the logical
  /// implication hinge (ablation).
  bool use_linear_binary = false;
  float linear_c1 = 0.0f;   ///< c1 of the linear form.
  float linear_c2 = 1.0f;   ///< c2 of the linear form.
  float strict_margin = 0.02f;  ///< Required effect increase when cause rises.
};

/// The individual loss terms of one batch (all 1x1 Vars).
struct CfLossTerms {
  ag::Var total;
  ag::Var validity;
  ag::Var proximity;
  ag::Var feasibility;  ///< Zero-valued constant when mode == kNone.
  ag::Var sparsity;
  ag::Var kl;
};

/// Assembles the four-part loss for one batch.
///
/// `x_cf` is the (differentiable) counterfactual batch, `x` the constant
/// input batch, `desired_pm1` the target classes as ±1 (n x 1), `vae_out`
/// the forward pass that produced x_cf (for the KL term), and `classifier`
/// the frozen black box for the validity hinge.
CfLossTerms BuildCfLoss(const CfLossConfig& config,
                        const PenaltyBuilder& penalties,
                        const DatasetInfo& info,
                        BlackBoxClassifier* classifier, const ag::Var& x_cf,
                        const Matrix& x, const Matrix& desired_pm1,
                        const Vae::Output& vae_out);

}  // namespace cfx

#endif  // CFX_CORE_LOSS_H_
