#include "src/core/diverse.h"

#include <cmath>
#include <limits>

#include "src/constraints/feasibility.h"

namespace cfx {
namespace {

float L1Distance(const Matrix& a, size_t ra, const Matrix& b, size_t rb) {
  float acc = 0.0f;
  for (size_t c = 0; c < a.cols(); ++c) {
    acc += std::fabs(a.at(ra, c) - b.at(rb, c));
  }
  return acc;
}

}  // namespace

std::vector<DiverseCfSet> GenerateDiverse(FeasibleCfGenerator* generator,
                                          const Matrix& x,
                                          const DiverseConfig& config,
                                          Rng* rng) {
  const DatasetInfo& info = *generator->context().info;
  const TabularEncoder& encoder = *generator->context().encoder;
  ConstraintSet constraints =
      generator->config().loss.mode == ConstraintMode::kBinary
          ? MakeBinaryConstraintSet(info)
          : MakeUnaryConstraintSet(info);

  // Candidate pool: num_samples stochastic decodings of the whole batch.
  std::vector<CfResult> draws;
  draws.reserve(config.num_samples);
  for (size_t s = 0; s < config.num_samples; ++s) {
    draws.push_back(
        generator->GenerateSampled(x, config.latent_stddev_scale, rng));
  }

  std::vector<DiverseCfSet> sets(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    DiverseCfSet& set = sets[r];
    set.input = x.Row(r);
    set.desired = draws[0].desired[r];

    // Collect acceptable candidates (valid; optionally feasible) and their
    // distance to the input.
    struct Candidate {
      const CfResult* draw;
      bool feasible;
      float input_distance;
    };
    std::vector<Candidate> pool;
    for (const CfResult& draw : draws) {
      if (!draw.IsValid(r)) continue;
      Matrix row = draw.cfs.Row(r);
      const bool feasible = constraints.AllSatisfied(
          encoder, set.input, row, ConstraintTolerance());
      if (config.require_feasible && !feasible) continue;
      pool.push_back({&draw, feasible, L1Distance(draw.cfs, r, x, r)});
    }
    if (pool.empty()) {
      set.cfs = Matrix(0, x.cols());
      continue;
    }

    // Greedy max-min selection, seeded by the closest-to-input candidate.
    std::vector<size_t> selected;
    std::vector<bool> used(pool.size(), false);
    size_t first = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].input_distance < pool[first].input_distance) first = i;
    }
    selected.push_back(first);
    used[first] = true;
    while (selected.size() < config.k) {
      size_t best = pool.size();
      float best_minimum = -1.0f;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (used[i]) continue;
        float minimum = std::numeric_limits<float>::infinity();
        for (size_t j : selected) {
          minimum = std::min(minimum,
                             L1Distance(pool[i].draw->cfs, r,
                                        pool[j].draw->cfs, r));
        }
        if (minimum > best_minimum) {
          best_minimum = minimum;
          best = i;
        }
      }
      if (best == pool.size() || best_minimum < config.min_separation) {
        break;  // Only near-duplicates remain.
      }
      selected.push_back(best);
      used[best] = true;
    }

    // Materialise the set.
    set.cfs = Matrix(selected.size(), x.cols());
    set.feasible.resize(selected.size());
    for (size_t i = 0; i < selected.size(); ++i) {
      const Candidate& candidate = pool[selected[i]];
      for (size_t c = 0; c < x.cols(); ++c) {
        set.cfs.at(i, c) = candidate.draw->cfs.at(r, c);
      }
      set.feasible[i] = candidate.feasible;
    }
    if (selected.size() >= 2) {
      double total = 0.0;
      size_t pairs = 0;
      for (size_t i = 0; i < selected.size(); ++i) {
        for (size_t j = i + 1; j < selected.size(); ++j) {
          total += L1Distance(set.cfs, i, set.cfs, j);
          ++pairs;
        }
      }
      set.diversity = total / static_cast<double>(pairs);
    }
  }
  return sets;
}

double MeanDiversity(const std::vector<DiverseCfSet>& sets) {
  double total = 0.0;
  size_t counted = 0;
  for (const DiverseCfSet& set : sets) {
    if (set.cfs.rows() >= 2) {
      total += set.diversity;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace cfx
