// The Table IV experiment: run every CF method on one dataset and score the
// §IV-D metrics. Shared by bench/table4_{adult,census,law} and by the
// integration tests.
#ifndef CFX_CORE_TABLE_FOUR_H_
#define CFX_CORE_TABLE_FOUR_H_

#include <string>
#include <vector>

#include "src/baselines/registry.h"
#include "src/core/experiment.h"
#include "src/metrics/report.h"

namespace cfx {

/// Result of the full method sweep on one dataset.
struct TableFourResult {
  DatasetId dataset;
  std::vector<MetricsRow> rows;   ///< Table IV row order.
  std::string rendered;           ///< Ready-to-print table.
};

/// Runs the sweep. `kinds` defaults to the paper's nine rows; pass a subset
/// for quicker runs. `eval_rows` caps the number of test instances.
StatusOr<TableFourResult> RunTableFour(
    DatasetId dataset, const RunConfig& config,
    const std::vector<MethodKind>& kinds = AllMethodKinds());

}  // namespace cfx

#endif  // CFX_CORE_TABLE_FOUR_H_
