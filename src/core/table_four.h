// The Table IV experiment: run every CF method on one dataset and score the
// §IV-D metrics. Shared by bench/table4_{adult,census,law}, the integration
// tests, and the sharded evaluation harness (src/eval/), whose unit of
// distribution is exactly one RunTableFourCell call.
#ifndef CFX_CORE_TABLE_FOUR_H_
#define CFX_CORE_TABLE_FOUR_H_

#include <string>
#include <vector>

#include "src/baselines/registry.h"
#include "src/core/experiment.h"
#include "src/metrics/report.h"

namespace cfx {

/// Result of the full method sweep on one dataset.
struct TableFourResult {
  DatasetId dataset;
  std::vector<MetricsRow> rows;   ///< Table IV row order.
  std::string rendered;           ///< Ready-to-print table.
};

/// One method row evaluated on a prepared experiment.
struct TableFourCellOutput {
  MetricsRow row;
  size_t eval_rows = 0;  ///< Test instances actually evaluated.
};

/// Evaluates one (experiment, method) cell: fit the method on the training
/// split, generate counterfactuals for the eval subset, score the §IV-D
/// metrics. Deterministic in (dataset, config) — a cell computes the same
/// bits whether its Experiment is shared across methods (single-process
/// sweep) or freshly created per worker (sharded sweep); the eval_shard
/// tests pin that equivalence.
StatusOr<TableFourCellOutput> RunTableFourCell(Experiment& exp,
                                               MethodKind kind);

/// The rendered table's title line — shared with the sharded coordinator so
/// a merged table is byte-identical to the single-process rendering.
std::string TableFourTitle(DatasetId dataset, const RunConfig& config,
                           size_t eval_rows);

/// Runs the sweep. `kinds` defaults to the paper's nine rows; pass a subset
/// for quicker runs. `eval_rows` caps the number of test instances.
StatusOr<TableFourResult> RunTableFour(
    DatasetId dataset, const RunConfig& config,
    const std::vector<MethodKind>& kinds = AllMethodKinds());

}  // namespace cfx

#endif  // CFX_CORE_TABLE_FOUR_H_
