#include "src/core/experiment.h"

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/metrics/classification.h"

namespace cfx {

Experiment::Experiment(DatasetId id, const DatasetInfo* info,
                       RunConfig run_config, CleaningReport cleaning,
                       TabularEncoder encoder)
    : dataset_id_(id),
      info_(info),
      run_config_(run_config),
      cleaning_(cleaning),
      encoder_(std::move(encoder)) {}

StatusOr<std::unique_ptr<Experiment>> Experiment::PrepareData(
    DatasetId id, const RunConfig& config, Rng* rng) {
  CFX_TRACE_SPAN("experiment/prepare_data");
  std::unique_ptr<DatasetGenerator> generator = CreateGenerator(id);
  if (generator == nullptr) return Status::InvalidArgument("unknown dataset");

  Table raw = generator->GenerateAtScale(config.scale, rng);
  CleaningReport cleaning;
  Table clean = DropMissingRows(raw, &cleaning);

  // 80/10/10 (§IV-A), stratified so the minority class (census: ~12%
  // positive) is represented proportionally in every partition.
  DataSplit split = StratifiedSplitTable(clean, 0.8, 0.1, rng);

  TabularEncoder encoder(generator->MakeSchema());
  CFX_RETURN_IF_ERROR(encoder.Fit(split.train));

  auto experiment = std::unique_ptr<Experiment>(new Experiment(
      id, &GetDatasetInfo(id), config, cleaning, std::move(encoder)));

  auto x_train = experiment->encoder_.Transform(split.train);
  if (!x_train.ok()) return x_train.status();
  auto x_val = experiment->encoder_.Transform(split.validation);
  if (!x_val.ok()) return x_val.status();
  auto x_test = experiment->encoder_.Transform(split.test);
  if (!x_test.ok()) return x_test.status();

  experiment->x_train_ = std::move(*x_train);
  experiment->x_validation_ = std::move(*x_val);
  experiment->x_test_ = std::move(*x_test);
  experiment->y_train_ = split.train.labels();
  experiment->y_validation_ = split.validation.labels();
  experiment->y_test_ = split.test.labels();
  return experiment;
}

StatusOr<std::unique_ptr<Experiment>> Experiment::Create(
    DatasetId id, const RunConfig& config) {
  Rng rng(config.seed);
  auto prepared = PrepareData(id, config, &rng);
  if (!prepared.ok()) return prepared.status();
  std::unique_ptr<Experiment> experiment = std::move(*prepared);

  ClassifierConfig classifier_config;
  Rng clf_rng = rng.Split(0xC1F);
  experiment->classifier_ = std::make_unique<BlackBoxClassifier>(
      experiment->encoder_.encoded_width(), classifier_config, &clf_rng);
  {
    CFX_TRACE_SPAN("experiment/train_classifier");
    experiment->classifier_stats_ = experiment->classifier_->Train(
        experiment->x_train_, experiment->y_train_, &clf_rng);
  }

  // Full classifier diagnostics on the held-out validation split.
  if (experiment->x_validation_.rows() > 0) {
    experiment->classifier_report_ = EvaluateClassifier(
        experiment->classifier_->Logits(experiment->x_validation_),
        experiment->y_validation_);
  }

  CFX_LOG(Info) << DatasetName(id) << ": "
                << experiment->cleaning_.rows_after << "/"
                << experiment->cleaning_.rows_before
                << " rows after cleaning, "
                << experiment->encoder_.encoded_width()
                << " encoded dims; black box (validation): "
                << experiment->classifier_report_.ToString();
  return experiment;
}

Matrix Experiment::TestSubset(size_t max_rows) const {
  const size_t n = std::min(max_rows, x_test_.rows());
  return x_test_.SliceRows(0, n);
}

MethodContext Experiment::method_context() {
  // Built lazily, only once the classifier is frozen (caching an unfrozen
  // model would serve stale labels). The cache is mutex-striped with a
  // lock-free bloom front, so handing the same instance to every method —
  // including ones queried from ParallelFor workers — is safe.
  if (prediction_cache_ == nullptr && classifier_ != nullptr &&
      classifier_->frozen()) {
    prediction_cache_ = std::make_unique<PredictionCache>(classifier_.get());
  }
  MethodContext ctx;
  ctx.encoder = &encoder_;
  ctx.classifier = classifier_.get();
  ctx.info = info_;
  ctx.seed = run_config_.seed;
  ctx.predictions = prediction_cache_.get();
  return ctx;
}

}  // namespace cfx
