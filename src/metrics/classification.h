// Binary-classification quality metrics for the black-box model.
//
// The CF experiments stand on the classifier's quality (the paper attributes
// its census feasibility win to "our classifier was better trained", §IV-E),
// so cfx reports the standard diagnostics alongside plain accuracy:
// confusion counts, precision/recall/F1, balanced accuracy and ROC-AUC
// (exact, via the rank statistic).
#ifndef CFX_METRICS_CLASSIFICATION_H_
#define CFX_METRICS_CLASSIFICATION_H_

#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace cfx {

/// Standard binary classification report.
struct ClassificationReport {
  size_t true_positives = 0;
  size_t true_negatives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double accuracy = 0.0;
  double precision = 0.0;          ///< TP / (TP + FP); 0 when undefined.
  double recall = 0.0;             ///< TP / (TP + FN); 0 when undefined.
  double f1 = 0.0;                 ///< Harmonic mean; 0 when undefined.
  double balanced_accuracy = 0.0;  ///< (TPR + TNR) / 2.
  double auc = 0.0;                ///< ROC-AUC from the logit ranking.

  size_t total() const {
    return true_positives + true_negatives + false_positives +
           false_negatives;
  }

  /// One-line rendering for logs and benches.
  std::string ToString() const;
};

/// Computes the report from raw logits (n x 1) and 0/1 labels. Ties in the
/// AUC ranking are handled by midrank averaging.
ClassificationReport EvaluateClassifier(const Matrix& logits,
                                        const std::vector<int>& labels);

}  // namespace cfx

#endif  // CFX_METRICS_CLASSIFICATION_H_
