#include "src/metrics/report.h"

#include <sstream>

#include "src/common/string_util.h"

namespace cfx {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line;
  };
  std::ostringstream os;
  os << render_row(headers_) << "\n|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) os << render_row(row) << "\n";
  return os.str();
}

std::string FormatMetric(double v) {
  std::string s = StrFormat("%.2f", v);
  // Trim "100.00" -> "100", "-2.40" stays.
  if (s.size() > 3 && s.substr(s.size() - 3) == ".00") {
    s = s.substr(0, s.size() - 3);
  }
  return s;
}

std::string RenderMetricsTable(const std::string& title,
                               const std::vector<MetricsRow>& rows) {
  TablePrinter printer({"Methods", "Validity", "Feasibility/Unary",
                        "Feasibility/Binary", "Cont. proximity",
                        "Cat. proximity", "Sparsity"});
  for (const MetricsRow& row : rows) {
    const MethodMetrics& m = row.metrics;
    printer.AddRow({m.method_name, FormatMetric(m.validity),
                    row.show_unary ? FormatMetric(m.feasibility_unary) : "-",
                    row.show_binary ? FormatMetric(m.feasibility_binary) : "-",
                    FormatMetric(m.continuous_proximity),
                    FormatMetric(m.categorical_proximity),
                    FormatMetric(m.sparsity)});
  }
  return title + "\n" + printer.Render();
}

}  // namespace cfx
