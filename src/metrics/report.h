// ASCII table rendering for the bench harnesses (Table I, Table IV, ...).
#ifndef CFX_METRICS_REPORT_H_
#define CFX_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "src/metrics/metrics.h"

namespace cfx {

/// Fixed-width, pipe-separated table builder.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders headers, a separator and all rows with aligned columns.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a Table IV-style block for one dataset. Rows appear in insertion
/// order; `unary_only`/`binary_only` rows print "-" in the other
/// feasibility column, mirroring the paper's layout.
struct MetricsRow {
  MethodMetrics metrics;
  bool show_unary = true;
  bool show_binary = true;
};

std::string RenderMetricsTable(const std::string& title,
                               const std::vector<MetricsRow>& rows);

/// Formats a double with the paper's 2-decimal convention; integers (100)
/// lose the trailing zeros.
std::string FormatMetric(double v);

}  // namespace cfx

#endif  // CFX_METRICS_REPORT_H_
