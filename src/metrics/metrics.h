// The five evaluation metrics of §IV-D: validity, feasibility score,
// continuous proximity, categorical proximity and sparsity.
#ifndef CFX_METRICS_METRICS_H_
#define CFX_METRICS_METRICS_H_

#include <string>

#include "src/constraints/feasibility.h"
#include "src/core/cf_example.h"
#include "src/datasets/spec.h"

namespace cfx {

/// Metric knobs.
struct MetricsConfig {
  /// A continuous feature counts as "changed" when its normalised delta
  /// exceeds this (also the sparsity dead-zone of the loss).
  double change_threshold = 0.05;
  ConstraintTolerance tolerance;
};

/// One Table IV row.
struct MethodMetrics {
  std::string method_name;
  double validity = 0.0;             ///< % of CFs hitting the desired class.
  double feasibility_unary = 0.0;    ///< % satisfying Eq. (1).
  double feasibility_binary = 0.0;   ///< % satisfying Eq. (2).
  double continuous_proximity = 0.0; ///< -(mean L1 over continuous feats).
  double categorical_proximity = 0.0;///< -(mean # categorical/binary changes).
  double sparsity = 0.0;             ///< Mean # changed features.
};

/// Scores a CF batch against both constraint models of the dataset.
MethodMetrics EvaluateMethod(const std::string& method_name,
                             const TabularEncoder& encoder,
                             const DatasetInfo& info, const CfResult& result,
                             const MetricsConfig& config = MetricsConfig());

/// Number of features whose value differs between the encoded rows `a` and
/// `b` (continuous: normalised delta > threshold; categorical: different
/// argmax; binary: flipped) — the per-pair sparsity of §IV-D.
size_t CountChangedFeatures(const TabularEncoder& encoder, const Matrix& a,
                            const Matrix& b, double change_threshold);

}  // namespace cfx

#endif  // CFX_METRICS_METRICS_H_
