#include "src/metrics/faithfulness.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/manifold/knn.h"

namespace cfx {

FaithfulnessResult EvaluateFaithfulness(
    const Matrix& x_train, const std::vector<int>& train_predictions,
    const CfResult& result, const FaithfulnessConfig& config) {
  assert(x_train.rows() == train_predictions.size());
  FaithfulnessResult out;
  out.num_cfs = result.size();
  if (result.size() == 0 || x_train.rows() <= config.k_neighbors) return out;

  // Deterministic strided subsample of the reference rows.
  Matrix reference = x_train;
  std::vector<int> reference_pred = train_predictions;
  if (x_train.rows() > config.max_reference_rows) {
    const size_t stride = x_train.rows() / config.max_reference_rows + 1;
    std::vector<size_t> keep;
    for (size_t i = 0; i < x_train.rows(); i += stride) keep.push_back(i);
    reference = x_train.GatherRows(keep);
    reference_pred.clear();
    for (size_t i : keep) reference_pred.push_back(train_predictions[i]);
  }

  // Exact VP-tree index over the reference rows.
  Rng index_rng(0xFA17);
  KnnIndex index(reference, &index_rng);

  // Baseline: each reference row's k-NN distance to the *other* rows.
  std::vector<double> self_dists(reference.rows());
  for (size_t i = 0; i < reference.rows(); ++i) {
    std::vector<Neighbor> hits = index.QuerySelf(i, config.k_neighbors);
    self_dists[i] = hits.empty() ? 0.0 : hits.back().distance;
  }
  std::vector<double> sorted = self_dists;
  std::sort(sorted.begin(), sorted.end());
  const size_t qi = std::min(
      sorted.size() - 1,
      static_cast<size_t>(config.outlier_quantile * sorted.size()));
  const double threshold = std::max(sorted[qi], 1e-9);
  double typical = sorted[sorted.size() / 2];
  if (typical <= 1e-12) typical = threshold;

  out.on_manifold.resize(result.size());
  out.connected.resize(result.size());
  size_t on_manifold = 0, connected = 0;
  double score_sum = 0.0;
  for (size_t i = 0; i < result.size(); ++i) {
    std::vector<Neighbor> hits =
        index.Query(result.cfs.Row(i), config.k_neighbors);
    const double kdist = hits.empty() ? 0.0 : hits.back().distance;
    const size_t nearest = hits.empty() ? 0 : hits.front().index;
    out.on_manifold[i] = kdist <= threshold;
    on_manifold += out.on_manifold[i];
    score_sum += kdist / typical;
    out.connected[i] = reference_pred[nearest] == result.predicted[i];
    connected += out.connected[i];
  }
  out.on_manifold_percent = 100.0 * on_manifold / result.size();
  out.connected_percent = 100.0 * connected / result.size();
  out.mean_outlier_score = score_sum / result.size();
  return out;
}

}  // namespace cfx
