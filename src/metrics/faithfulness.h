// Faithfulness — the counterfactual quality notion of Pawelczyk et al. [13]
// discussed in the paper's §II: a good counterfactual should (a) not be a
// local outlier of the data distribution (proximity to the manifold) and
// (b) be *connected* — reachable from observed data through a chain of
// nearby examples.
//
// cfx measures both against the training set:
//   * outlier score: distance to the k-th nearest training row, normalised
//     by the training set's own typical k-NN distance; a CF is "on-manifold"
//     when its normalised score <= outlier_quantile's value;
//   * connectedness: the CF's nearest training row is itself predicted as
//     the CF's class (the CF lands inside an observed region of its target
//     class, not across the boundary in no-man's land).
#ifndef CFX_METRICS_FAITHFULNESS_H_
#define CFX_METRICS_FAITHFULNESS_H_

#include <vector>

#include "src/core/cf_example.h"
#include "src/models/classifier.h"

namespace cfx {

/// Faithfulness settings.
struct FaithfulnessConfig {
  size_t k_neighbors = 5;
  /// Quantile of the training self k-NN distances used as the on-manifold
  /// threshold (0.95 = a CF may be as far out as the 95th percentile of
  /// real rows).
  double outlier_quantile = 0.95;
  /// Bound on training rows used as references (subsampled determin-
  /// istically by striding when exceeded).
  size_t max_reference_rows = 2000;
};

/// Aggregate faithfulness of a CF batch.
struct FaithfulnessResult {
  size_t num_cfs = 0;
  /// % of CFs within the on-manifold distance threshold.
  double on_manifold_percent = 0.0;
  /// % of CFs whose nearest training neighbour shares their predicted class.
  double connected_percent = 0.0;
  /// Mean normalised outlier score (1.0 = like a typical training row).
  double mean_outlier_score = 0.0;
  /// Per-CF flags, aligned with the batch.
  std::vector<bool> on_manifold;
  std::vector<bool> connected;
};

/// Scores `result.cfs` against the (encoded) training data.
FaithfulnessResult EvaluateFaithfulness(
    const Matrix& x_train, const std::vector<int>& train_predictions,
    const CfResult& result,
    const FaithfulnessConfig& config = FaithfulnessConfig());

}  // namespace cfx

#endif  // CFX_METRICS_FAITHFULNESS_H_
