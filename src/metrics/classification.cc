#include "src/metrics/classification.h"

#include <algorithm>
#include <cassert>

#include "src/common/string_util.h"

namespace cfx {

std::string ClassificationReport::ToString() const {
  return StrFormat(
      "acc=%.3f prec=%.3f rec=%.3f f1=%.3f bal_acc=%.3f auc=%.3f "
      "(tp=%zu tn=%zu fp=%zu fn=%zu)",
      accuracy, precision, recall, f1, balanced_accuracy, auc, true_positives,
      true_negatives, false_positives, false_negatives);
}

ClassificationReport EvaluateClassifier(const Matrix& logits,
                                        const std::vector<int>& labels) {
  assert(logits.rows() == labels.size() && logits.cols() == 1);
  ClassificationReport report;
  const size_t n = labels.size();
  if (n == 0) return report;

  for (size_t i = 0; i < n; ++i) {
    const bool predicted = logits.at(i, 0) > 0.0f;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++report.true_positives;
    else if (!predicted && !actual) ++report.true_negatives;
    else if (predicted && !actual) ++report.false_positives;
    else ++report.false_negatives;
  }
  report.accuracy =
      static_cast<double>(report.true_positives + report.true_negatives) / n;
  const size_t predicted_pos = report.true_positives + report.false_positives;
  const size_t actual_pos = report.true_positives + report.false_negatives;
  const size_t actual_neg = report.true_negatives + report.false_positives;
  if (predicted_pos > 0) {
    report.precision =
        static_cast<double>(report.true_positives) / predicted_pos;
  }
  if (actual_pos > 0) {
    report.recall = static_cast<double>(report.true_positives) / actual_pos;
  }
  if (report.precision + report.recall > 0) {
    report.f1 = 2.0 * report.precision * report.recall /
                (report.precision + report.recall);
  }
  const double tpr = actual_pos > 0 ? report.recall : 0.0;
  const double tnr =
      actual_neg > 0 ? static_cast<double>(report.true_negatives) / actual_neg
                     : 0.0;
  report.balanced_accuracy = (tpr + tnr) / 2.0;

  // Exact AUC via the Mann-Whitney rank statistic with midranks for ties:
  // AUC = (rank_sum(positives) - n_pos (n_pos + 1) / 2) / (n_pos * n_neg).
  if (actual_pos > 0 && actual_neg > 0) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return logits.at(a, 0) < logits.at(b, 0);
    });
    std::vector<double> rank(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n &&
             logits.at(order[j + 1], 0) == logits.at(order[i], 0)) {
        ++j;
      }
      const double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
      for (size_t t = i; t <= j; ++t) rank[order[t]] = midrank;
      i = j + 1;
    }
    double positive_rank_sum = 0.0;
    for (size_t t = 0; t < n; ++t) {
      if (labels[t] == 1) positive_rank_sum += rank[t];
    }
    const double np = static_cast<double>(actual_pos);
    const double nn = static_cast<double>(actual_neg);
    report.auc = (positive_rank_sum - np * (np + 1) / 2.0) / (np * nn);
  }
  return report;
}

}  // namespace cfx
