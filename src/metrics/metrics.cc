#include "src/metrics/metrics.h"

#include <cassert>
#include <cmath>

namespace cfx {
namespace {

/// L1 distance over continuous features only (normalised units).
double ContinuousL1(const TabularEncoder& encoder, const Matrix& a,
                    const Matrix& b) {
  double total = 0.0;
  for (const EncodedBlock& block : encoder.blocks()) {
    if (block.type != FeatureType::kContinuous) continue;
    total += std::fabs(a.at(0, block.offset) - b.at(0, block.offset));
  }
  return total;
}

/// Number of categorical/binary features whose value differs.
size_t CategoricalChanges(const TabularEncoder& encoder, const Matrix& a,
                          const Matrix& b) {
  size_t changes = 0;
  for (const EncodedBlock& block : encoder.blocks()) {
    if (block.type == FeatureType::kContinuous) continue;
    const size_t fi = block.feature_index;
    changes += encoder.FeatureValue(a, fi) != encoder.FeatureValue(b, fi);
  }
  return changes;
}

}  // namespace

size_t CountChangedFeatures(const TabularEncoder& encoder, const Matrix& a,
                            const Matrix& b, double change_threshold) {
  size_t changed = 0;
  for (const EncodedBlock& block : encoder.blocks()) {
    const size_t fi = block.feature_index;
    if (block.type == FeatureType::kContinuous) {
      changed += std::fabs(a.at(0, block.offset) - b.at(0, block.offset)) >
                 change_threshold;
    } else {
      changed += encoder.FeatureValue(a, fi) != encoder.FeatureValue(b, fi);
    }
  }
  return changed;
}

MethodMetrics EvaluateMethod(const std::string& method_name,
                             const TabularEncoder& encoder,
                             const DatasetInfo& info, const CfResult& result,
                             const MetricsConfig& config) {
  MethodMetrics metrics;
  metrics.method_name = method_name;
  const size_t n = result.size();
  if (n == 0) return metrics;

  // Validity (§IV-D i).
  size_t valid = 0;
  for (size_t i = 0; i < n; ++i) valid += result.IsValid(i);
  metrics.validity = 100.0 * static_cast<double>(valid) / n;

  // Feasibility scores (§IV-D ii) against both constraint models.
  ConstraintSet unary = MakeUnaryConstraintSet(info);
  ConstraintSet binary = MakeBinaryConstraintSet(info);
  metrics.feasibility_unary =
      EvaluateFeasibility(unary, encoder, result.inputs, result.cfs,
                          config.tolerance)
          .score_percent;
  metrics.feasibility_binary =
      EvaluateFeasibility(binary, encoder, result.inputs, result.cfs,
                          config.tolerance)
          .score_percent;

  // Proximities (Eq. 4, Eq. 5) and sparsity (§IV-D v).
  double cont_sum = 0.0;
  double cat_sum = 0.0;
  double sparsity_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Matrix xi = result.inputs.Row(i);
    const Matrix ci = result.cfs.Row(i);
    cont_sum += ContinuousL1(encoder, ci, xi);
    cat_sum += static_cast<double>(CategoricalChanges(encoder, ci, xi));
    sparsity_sum += static_cast<double>(
        CountChangedFeatures(encoder, xi, ci, config.change_threshold));
  }
  metrics.continuous_proximity = -cont_sum / static_cast<double>(n);
  metrics.categorical_proximity = -cat_sum / static_cast<double>(n);
  metrics.sparsity = sparsity_sum / static_cast<double>(n);
  return metrics;
}

}  // namespace cfx
