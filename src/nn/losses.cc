#include "src/nn/losses.h"

#include <cassert>
#include <cmath>

namespace cfx {
namespace nn {

ag::Var BceWithLogits(const ag::Var& logits, const Matrix& targets01) {
  assert(logits->value.SameShape(targets01));
  // max(z,0) - z*y + log(1 + exp(-|z|)), built from primitive ops so the
  // gradient is exact: relu(z) - z*y + softplus(-|z|).
  ag::Var y = ag::Constant(targets01);
  ag::Var zy = ag::Mul(logits, y);
  ag::Var relu_z = ag::Relu(logits);
  // softplus(-|z|) = log(1 + exp(-|z|))
  ag::Var abs_z = ag::Abs(logits);
  ag::Var exp_term = ag::Exp(ag::Neg(abs_z));
  Matrix ones(logits->value.rows(), logits->value.cols(), 1.0f);
  ag::Var log1p = ag::Log(ag::Add(exp_term, ag::Constant(ones)));
  return ag::Mean(ag::Add(ag::Sub(relu_z, zy), log1p));
}

ag::Var HingeLoss(const ag::Var& logits, const Matrix& targets_pm1,
                  float margin) {
  assert(logits->value.SameShape(targets_pm1));
  ag::Var yz = ag::Mul(logits, ag::Constant(targets_pm1));
  Matrix m(logits->value.rows(), logits->value.cols(), margin);
  return ag::Mean(ag::Relu(ag::Sub(ag::Constant(m), yz)));
}

ag::Var MseLoss(const ag::Var& pred, const Matrix& target) {
  assert(pred->value.SameShape(target));
  return ag::Mean(ag::Square(ag::Sub(pred, ag::Constant(target))));
}

ag::Var L1Loss(const ag::Var& pred, const Matrix& target) {
  assert(pred->value.SameShape(target));
  return ag::Mean(ag::Abs(ag::Sub(pred, ag::Constant(target))));
}

ag::Var KlStandardNormal(const ag::Var& mu, const ag::Var& logvar) {
  assert(mu->value.SameShape(logvar->value));
  Matrix ones(mu->value.rows(), mu->value.cols(), 1.0f);
  // 1 + logvar - mu^2 - exp(logvar)
  ag::Var inner = ag::Sub(
      ag::Sub(ag::Add(ag::Constant(ones), logvar), ag::Square(mu)),
      ag::Exp(logvar));
  // -0.5 * mean over all (batch, latent) entries.
  const float scale =
      -0.5f / static_cast<float>(std::max<size_t>(mu->value.size(), 1));
  return ag::Scale(ag::Sum(inner), scale);
}

ag::Var SmoothL0(const ag::Var& delta, float k, float eps) {
  ag::Var indicators = ag::SmoothIndicator(delta, k, eps);
  // Sum per sample, mean over batch == Sum / batch.
  const float inv_batch =
      1.0f / static_cast<float>(std::max<size_t>(delta->value.rows(), 1));
  return ag::Scale(ag::Sum(indicators), inv_batch);
}

}  // namespace nn
}  // namespace cfx
