// Versioned binary artifact bundle: one file carrying every piece of a
// trained pipeline (dataset identity, encoder statistics, classifier and
// VAE weights, generator config) as named, typed sections.
//
// Format (little-endian):
//   magic "CFXB" | uint32 version | uint32 section_count |
//   per section: uint32 key_len | key bytes | uint8 type |
//                uint64 payload_len | payload bytes |
//   end marker "BXFC"
//
// Section payloads:
//   kString   raw bytes
//   kScalar   one float64
//   kF64Array uint64 count | count float64
//   kTensors  uint64 count | per tensor: uint64 rows | uint64 cols |
//             rows*cols float32
//
// Reading is strict and all-or-nothing: the whole file is parsed (with
// bounds checks) before any section is exposed, so a truncated, corrupted
// or wrong-magic file yields a Status and never a partially loaded bundle.
// Files written by a newer format revision are rejected as version skew.
#ifndef CFX_NN_BUNDLE_H_
#define CFX_NN_BUNDLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/matrix.h"

namespace cfx {
namespace nn {

/// Current bundle format revision.
inline constexpr uint32_t kBundleVersion = 1;

/// Accumulates typed sections and writes them as one bundle file.
class BundleWriter {
 public:
  void PutString(const std::string& key, const std::string& value);
  void PutScalar(const std::string& key, double value);
  void PutF64Array(const std::string& key, const std::vector<double>& values);
  void PutTensors(const std::string& key, const std::vector<Matrix>& tensors);

  /// Serialises every section added so far. Duplicate keys are an error.
  Status WriteFile(const std::string& path) const;

 private:
  struct Section {
    std::string key;
    uint8_t type;
    std::string payload;
  };

  void Add(const std::string& key, uint8_t type, std::string payload);

  std::vector<Section> sections_;
};

/// A fully parsed, validated bundle. Get* accessors also check the section's
/// type, so reading a tensor list as a string is an error, not garbage.
class Bundle {
 public:
  /// Parses `path` completely; any structural problem (short file, bad
  /// magic, newer version, overrunning section) fails without partial state.
  static StatusOr<Bundle> ReadFile(const std::string& path);

  /// Header-only view of `path`: walks the full section table — magic,
  /// version, every section header and the end marker are validated with
  /// the same strictness as ReadFile — but materialises payloads only for
  /// the keys in `keep`; every other payload (notably multi-megabyte
  /// weight sections) is seeked over, never read into memory. Truncation,
  /// corruption and version skew anywhere in the structure still fail with
  /// a clear Status, because section lengths are checked against the file
  /// size before each seek. Get* on a skipped section returns an error
  /// naming the probe, never stale bytes.
  static StatusOr<Bundle> ProbeFile(const std::string& path,
                                    const std::vector<std::string>& keep);

  bool Has(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<double> GetScalar(const std::string& key) const;
  StatusOr<std::vector<double>> GetF64Array(const std::string& key) const;
  StatusOr<std::vector<Matrix>> GetTensors(const std::string& key) const;

  /// Format revision the file was written with (<= kBundleVersion).
  uint32_t version() const { return version_; }
  size_t num_sections() const { return sections_.size(); }

 private:
  struct Section {
    uint8_t type;
    std::string payload;
    /// False for a section ProbeFile seeked over without reading; Get* on
    /// such a section is an error rather than an empty payload.
    bool materialised = true;
  };

  StatusOr<const Section*> Find(const std::string& key, uint8_t type) const;

  uint32_t version_ = kBundleVersion;
  std::unordered_map<std::string, Section> sections_;
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_BUNDLE_H_
