// Concrete layers: Linear, activations, Dropout and Sequential container.
#ifndef CFX_NN_LAYERS_H_
#define CFX_NN_LAYERS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"

namespace cfx {
namespace nn {

/// Weight-initialisation schemes.
enum class Init {
  kXavierUniform,  ///< U(±sqrt(6/(fan_in+fan_out))) — default for sigmoid/tanh.
  kHeNormal,       ///< N(0, sqrt(2/fan_in)) — preferred before ReLU.
};

/// Fully connected layer: y = x W + b, W is (in x out), b is (1 x out).
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng,
         Init init = Init::kHeNormal);

  ag::Var Forward(const ag::Var& x) override;
  std::vector<ag::Var> Parameters() const override { return {weight_, bias_}; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  ag::Var weight_;
  ag::Var bias_;
};

/// Stateless ReLU activation module.
class ReluLayer : public Module {
 public:
  ag::Var Forward(const ag::Var& x) override { return ag::Relu(x); }
};

/// Stateless sigmoid activation module.
class SigmoidLayer : public Module {
 public:
  ag::Var Forward(const ag::Var& x) override { return ag::Sigmoid(x); }
};

/// Mixed tabular output head: softmax within the given (offset, width)
/// column blocks, sigmoid elsewhere (see ag::TabularActivation).
class TabularHeadLayer : public Module {
 public:
  explicit TabularHeadLayer(
      std::vector<std::pair<size_t, size_t>> softmax_blocks)
      : softmax_blocks_(std::move(softmax_blocks)) {}

  ag::Var Forward(const ag::Var& x) override {
    return ag::TabularActivation(x, softmax_blocks_);
  }

 private:
  std::vector<std::pair<size_t, size_t>> softmax_blocks_;
};

/// Inverted dropout: in training, zeroes each activation with probability p
/// and scales survivors by 1/(1-p); identity in eval mode.
class Dropout : public Module {
 public:
  Dropout(float p, Rng* rng);

  ag::Var Forward(const ag::Var& x) override;

  float p() const { return p_; }

 private:
  float p_;
  Rng rng_;
};

/// Ordered container applying child modules in sequence.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> layer);

  ag::Var Forward(const ag::Var& x) override;
  std::vector<ag::Var> Parameters() const override;
  void SetTraining(bool training) override;

  size_t size() const { return layers_.size(); }
  Module* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_LAYERS_H_
