// Concrete layers: Linear, activations, Dropout and Sequential container.
#ifndef CFX_NN_LAYERS_H_
#define CFX_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"
#include "src/tensor/kernels.h"

namespace cfx {
namespace nn {

/// Weight-initialisation schemes.
enum class Init {
  kXavierUniform,  ///< U(±sqrt(6/(fan_in+fan_out))) — default for sigmoid/tanh.
  kHeNormal,       ///< N(0, sqrt(2/fan_in)) — preferred before ReLU.
};

/// Fully connected layer: y = x W + b, W is (in x out), b is (1 x out).
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng,
         Init init = Init::kHeNormal);

  ag::Var Forward(const ag::Var& x) override;
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;
  /// Infer with the following elementwise activation folded into the matmul
  /// epilogue (Sequential's Linear+activation peephole). Bitwise identical
  /// to Infer followed by that activation.
  const Matrix& InferFused(const Matrix& x, InferWorkspace* ws,
                           kernels::Epilogue epilogue);
  std::vector<ag::Var> Parameters() const override { return {weight_, bias_}; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  ag::Var weight_;
  ag::Var bias_;
};

/// Stateless ReLU activation module.
class ReluLayer : public Module {
 public:
  ag::Var Forward(const ag::Var& x) override { return ag::Relu(x); }
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;
  bool InferInPlace(Matrix* h) override;
};

/// Stateless sigmoid activation module.
class SigmoidLayer : public Module {
 public:
  ag::Var Forward(const ag::Var& x) override { return ag::Sigmoid(x); }
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;
  bool InferInPlace(Matrix* h) override;
};

/// Mixed tabular output head: softmax within the given (offset, width)
/// column blocks, sigmoid elsewhere (see ag::TabularActivation).
class TabularHeadLayer : public Module {
 public:
  explicit TabularHeadLayer(
      std::vector<std::pair<size_t, size_t>> softmax_blocks)
      : softmax_blocks_(std::move(softmax_blocks)) {}

  ag::Var Forward(const ag::Var& x) override {
    return ag::TabularActivation(x, softmax_blocks_);
  }
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;

 private:
  std::vector<std::pair<size_t, size_t>> softmax_blocks_;
  std::vector<uint8_t> in_softmax_;  ///< Column mask, built on first Infer.
};

/// Inverted dropout: in training, zeroes each activation with probability p
/// and scales survivors by 1/(1-p); identity in eval mode.
class Dropout : public Module {
 public:
  Dropout(float p, Rng* rng);

  ag::Var Forward(const ag::Var& x) override;
  /// Identity in eval mode (no copy, no tape). In training mode this falls
  /// back to the Forward route so the mask RNG stream advances exactly as a
  /// tape pass would.
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;

  float p() const { return p_; }

 private:
  float p_;
  Rng rng_;
};

/// Ordered container applying child modules in sequence.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> layer);

  ag::Var Forward(const ag::Var& x) override;
  const Matrix& Infer(const Matrix& x, InferWorkspace* ws) override;
  std::vector<ag::Var> Parameters() const override;
  void SetTraining(bool training) override;

  size_t size() const { return layers_.size(); }
  Module* layer(size_t i) { return layers_[i].get(); }

 private:
  /// One step of the precomputed Infer schedule: either a Linear with the
  /// following activation folded into its matmul epilogue, or a plain layer
  /// dispatch. Rebuilt lazily after Add (type tests are hoisted out of the
  /// per-call path — they showed up at batch-1 latency).
  struct InferStep {
    Linear* fused_linear = nullptr;  ///< non-null: fused Linear+activation
    kernels::Epilogue epilogue = kernels::Epilogue::kNone;
    Module* layer = nullptr;  ///< plain dispatch when fused_linear is null
  };

  std::vector<std::unique_ptr<Module>> layers_;
  std::vector<InferStep> infer_plan_;
  bool infer_plan_stale_ = true;
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_LAYERS_H_
