#include "src/nn/optimizer.h"

#include <cmath>

#include "src/tensor/kernels.h"

namespace cfx {
namespace nn {

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (const ag::Var& p : params_) {
    p->EnsureGrad();
    total += p->grad.SquaredNorm();
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const ag::Var& p : params_) p->grad *= scale;
  }
  return norm;
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const ag::Var& p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    p->EnsureGrad();
    const size_t size = p->value.size();
    if (momentum_ > 0.0f) {
      // v = momentum * v + g; value -= lr * v — fused, no temporaries.
      kernels::ScaleInPlace(velocity_[i].data(), momentum_, size);
      kernels::AddInPlace(velocity_[i].data(), p->grad.data(), size);
      kernels::AxpyInPlace(p->value.data(), -lr_, velocity_[i].data(), size);
    } else {
      kernels::AxpyInPlace(p->value.data(), -lr_, p->grad.data(), size);
    }
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Var& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    p->EnsureGrad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    const Matrix& g = p->grad;
    kernels::AdamUpdate(p->value.data(), m.data(), v.data(), g.data(),
                        g.size(), beta1_, beta2_, lr_, bc1, bc2, eps_);
  }
}

}  // namespace nn
}  // namespace cfx
