// Binary weight (de)serialisation for trained models.
//
// Format (little-endian, version-tagged):
//   magic "CFXW" | uint32 version | uint64 num_tensors |
//   per tensor: uint64 rows | uint64 cols | rows*cols float32
//
// Serialisation covers the *parameters* only; the architecture must be
// reconstructed by the caller (construct the same Module shape, then load).
// Shape mismatches are reported, never silently truncated.
#ifndef CFX_NN_SERIALIZE_H_
#define CFX_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/autodiff.h"

namespace cfx {
namespace nn {

/// Writes the given parameter tensors to `path`.
Status SaveParameters(const std::vector<ag::Var>& params,
                      const std::string& path);

/// Loads tensors from `path` into the given parameters. The count and every
/// tensor's shape must match exactly.
Status LoadParameters(const std::vector<ag::Var>& params,
                      const std::string& path);

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_SERIALIZE_H_
