// Base class for trainable components (layers and whole networks).
#ifndef CFX_NN_MODULE_H_
#define CFX_NN_MODULE_H_

#include <vector>

#include "src/tensor/autodiff.h"

namespace cfx {
namespace nn {

/// A trainable component: owns parameter leaves and defines a forward pass
/// that builds an autodiff graph over them.
class Module {
 public:
  virtual ~Module() = default;

  /// Builds the forward graph for a batch `x` (shape: batch x in_features).
  virtual ag::Var Forward(const ag::Var& x) = 0;

  /// All trainable parameter leaves, in a stable order (required by
  /// stateful optimisers such as Adam).
  virtual std::vector<ag::Var> Parameters() const { return {}; }

  /// Switches train/eval behaviour (dropout only samples masks in training).
  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Total number of scalar parameters.
  size_t ParameterCount() const;

 protected:
  bool training_ = true;
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_MODULE_H_
