// Base class for trainable components (layers and whole networks).
#ifndef CFX_NN_MODULE_H_
#define CFX_NN_MODULE_H_

#include <atomic>
#include <deque>
#include <vector>

#include "src/tensor/autodiff.h"

namespace cfx {
namespace nn {

/// Reusable activation storage for the tape-free inference path.
///
/// Infer calls acquire their output buffers from a workspace arena instead
/// of allocating graph nodes: slots are handed out in call order and reused
/// verbatim on the next batch (Reset rewinds the cursor without touching
/// the storage), so a steady-state serving loop performs zero heap
/// allocations once the first batch has sized every slot. Slots live in a
/// deque so previously returned references stay valid while later layers
/// acquire theirs.
///
/// A workspace is single-threaded state: share one per model instance, not
/// across concurrent callers.
class InferWorkspace {
 public:
  /// Returns the next slot shaped rows x cols. Contents are unspecified —
  /// every producer must fully overwrite its slot. Reuses the slot's
  /// existing storage when the element count allows.
  Matrix& Acquire(size_t rows, size_t cols);

  /// Rewinds the arena for the next batch; storage is kept.
  void Reset() { cursor_ = 0; }

  /// Number of slots materialised so far (diagnostics/tests).
  size_t slots() const { return slots_.size(); }

 private:
  std::deque<Matrix> slots_;
  size_t cursor_ = 0;
};

/// A trainable component: owns parameter leaves and defines a forward pass
/// that builds an autodiff graph over them.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  // The atomic mode flag deletes the implicit copies; modules are still
  // value-copyable (layers are moved into Sequential at build time) — the
  // flag's current value carries over, unsynchronised like any other copy.
  Module(const Module& other)
      : training_(other.training_.load(std::memory_order_relaxed)) {}
  Module& operator=(const Module& other) {
    training_.store(other.training_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  /// Builds the forward graph for a batch `x` (shape: batch x in_features).
  virtual ag::Var Forward(const ag::Var& x) = 0;

  /// Tape-free forward pass for inference: no graph nodes, no backward
  /// closures, output written into a workspace slot (or, for identity
  /// layers, `x` itself is returned). Results are bitwise identical to
  /// Forward(Constant(x))->value for every CFX_THREADS setting.
  ///
  /// The default implementation routes through Forward (backward-compat for
  /// external Module subclasses); the built-in layers override it with
  /// fused, allocation-lean kernels.
  virtual const Matrix& Infer(const Matrix& x, InferWorkspace* ws);

  /// Elementwise fast path: mutate `h` in place instead of writing a fresh
  /// workspace slot, returning true if handled. Only stateless elementwise
  /// layers (ReLU, sigmoid) implement this; callers may only pass buffers
  /// they own (a workspace slot — never the original input). The in-place
  /// result must be bitwise identical to Infer on the same values.
  virtual bool InferInPlace(Matrix* h) {
    (void)h;
    return false;
  }

  /// All trainable parameter leaves, in a stable order (required by
  /// stateful optimisers such as Adam).
  virtual std::vector<ag::Var> Parameters() const { return {}; }

  /// Switches train/eval behaviour (dropout only samples masks in training).
  /// The flag is a relaxed atomic: a serving worker inside a batched Infer
  /// may race a direct Generate call that toggles eval mode on the shared
  /// model, and the unsynchronised bool was a formal data race (TSan).
  /// Relaxed is enough — the flag carries no other state, and callers who
  /// need a *consistent* mode across a whole pass must still serialise
  /// (the serve path never calls SetTraining after warm-up).
  virtual void SetTraining(bool training) {
    training_.store(training, std::memory_order_relaxed);
  }
  bool training() const { return training_.load(std::memory_order_relaxed); }

  /// Total number of scalar parameters.
  size_t ParameterCount() const;

 protected:
  std::atomic<bool> training_{true};
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_MODULE_H_
