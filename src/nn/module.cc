#include "src/nn/module.h"

namespace cfx {
namespace nn {

size_t Module::ParameterCount() const {
  size_t n = 0;
  for (const ag::Var& p : Parameters()) n += p->value.size();
  return n;
}

}  // namespace nn
}  // namespace cfx
