#include "src/nn/module.h"

namespace cfx {
namespace nn {

Matrix& InferWorkspace::Acquire(size_t rows, size_t cols) {
  if (cursor_ == slots_.size()) {
    slots_.emplace_back(rows, cols);
    return slots_[cursor_++];
  }
  Matrix& slot = slots_[cursor_++];
  if (slot.rows() != rows || slot.cols() != cols) {
    slot = Matrix::FromStorage(rows, cols, slot.ReleaseStorage());
  }
  return slot;
}

const Matrix& Module::Infer(const Matrix& x, InferWorkspace* ws) {
  // Reference path: build the tape and keep only the value. Overridden by
  // every built-in layer; kept as the backward-compat default so external
  // Module subclasses work unchanged.
  ag::Var out = Forward(ag::Constant(x));
  Matrix& slot = ws->Acquire(out->value.rows(), out->value.cols());
  slot = std::move(out->value);
  return slot;
}

size_t Module::ParameterCount() const {
  size_t n = 0;
  for (const ag::Var& p : Parameters()) n += p->value.size();
  return n;
}

}  // namespace nn
}  // namespace cfx
