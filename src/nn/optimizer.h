// First-order optimisers operating on autodiff parameter leaves.
#ifndef CFX_NN_OPTIMIZER_H_
#define CFX_NN_OPTIMIZER_H_

#include <vector>

#include "src/tensor/autodiff.h"

namespace cfx {
namespace nn {

/// Common optimiser interface: bound to a fixed parameter list at
/// construction (stateful optimisers key their slots by position).
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// Clears accumulated gradients.
  void ZeroGrad() { ag::ZeroGrad(params_); }

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<ag::Var>& params() const { return params_; }

 protected:
  std::vector<ag::Var> params_;
};

/// Plain SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_OPTIMIZER_H_
