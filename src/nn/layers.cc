#include "src/nn/layers.h"

#include <cmath>

namespace cfx {
namespace nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng, Init init)
    : in_features_(in_features), out_features_(out_features) {
  Matrix w;
  switch (init) {
    case Init::kXavierUniform: {
      float bound = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
      w = Matrix::RandomUniform(in_features, out_features, -bound, bound, rng);
      break;
    }
    case Init::kHeNormal: {
      float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
      w = Matrix::RandomNormal(in_features, out_features, 0.0f, stddev, rng);
      break;
    }
  }
  weight_ = ag::Param(std::move(w));
  bias_ = ag::Param(Matrix(1, out_features));
}

ag::Var Linear::Forward(const ag::Var& x) {
  return ag::AddRowBroadcast(ag::MatMul(x, weight_), bias_);
}

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng->Split(0xD0)) {}

ag::Var Dropout::Forward(const ag::Var& x) {
  if (!training_ || p_ <= 0.0f) return x;
  const float keep = 1.0f - p_;
  Matrix mask(x->value.rows(), x->value.cols());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return ag::MulConstMask(x, mask);
}

Sequential& Sequential::Add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

ag::Var Sequential::Forward(const ag::Var& x) {
  ag::Var h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

std::vector<ag::Var> Sequential::Parameters() const {
  std::vector<ag::Var> params;
  for (const auto& layer : layers_) {
    for (const ag::Var& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& layer : layers_) layer->SetTraining(training);
}

}  // namespace nn
}  // namespace cfx
