#include "src/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/kernels.h"

namespace cfx {
namespace nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng, Init init)
    : in_features_(in_features), out_features_(out_features) {
  Matrix w;
  switch (init) {
    case Init::kXavierUniform: {
      float bound = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
      w = Matrix::RandomUniform(in_features, out_features, -bound, bound, rng);
      break;
    }
    case Init::kHeNormal: {
      float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
      w = Matrix::RandomNormal(in_features, out_features, 0.0f, stddev, rng);
      break;
    }
  }
  weight_ = ag::Param(std::move(w));
  bias_ = ag::Param(Matrix(1, out_features));
}

ag::Var Linear::Forward(const ag::Var& x) {
  return ag::AddRowBroadcast(ag::MatMul(x, weight_), bias_);
}

const Matrix& Linear::Infer(const Matrix& x, InferWorkspace* ws) {
  return InferFused(x, ws, kernels::Epilogue::kNone);
}

const Matrix& Linear::InferFused(const Matrix& x, InferWorkspace* ws,
                                 kernels::Epilogue epilogue) {
  Matrix& out = ws->Acquire(x.rows(), out_features_);
  // One pass: matmul + bias broadcast (+ activation) per output row while
  // it is cache-hot. Each element sees the exact value history of the
  // tape's MatMul / AddRowBroadcast / activation ops — bitwise identical.
  kernels::MatMulBias(x.data(), weight_->value.data(), bias_->value.data(),
                      out.data(), x.rows(), in_features_, out_features_,
                      epilogue);
  return out;
}

const Matrix& ReluLayer::Infer(const Matrix& x, InferWorkspace* ws) {
  Matrix& out = ws->Acquire(x.rows(), x.cols());
  kernels::ReluTo(out.data(), x.data(), x.size());
  return out;
}

bool ReluLayer::InferInPlace(Matrix* h) {
  kernels::ReluInPlace(h->data(), h->size());
  return true;
}

const Matrix& SigmoidLayer::Infer(const Matrix& x, InferWorkspace* ws) {
  Matrix& out = ws->Acquire(x.rows(), x.cols());
  kernels::SigmoidTo(out.data(), x.data(), x.size());
  return out;
}

bool SigmoidLayer::InferInPlace(Matrix* h) {
  kernels::SigmoidInPlace(h->data(), h->size());
  return true;
}

const Matrix& TabularHeadLayer::Infer(const Matrix& x, InferWorkspace* ws) {
  if (in_softmax_.size() != x.cols()) {
    in_softmax_.assign(x.cols(), 0);
    for (const auto& [offset, width] : softmax_blocks_) {
      for (size_t j = 0; j < width; ++j) in_softmax_[offset + j] = 1;
    }
  }
  Matrix& out = ws->Acquire(x.rows(), x.cols());
  kernels::TabularActivationForward(x.data(), out.data(), x.rows(), x.cols(),
                                    softmax_blocks_, in_softmax_);
  return out;
}

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng->Split(0xD0)) {}

ag::Var Dropout::Forward(const ag::Var& x) {
  if (!training_.load(std::memory_order_relaxed) || p_ <= 0.0f) return x;
  const float keep = 1.0f - p_;
  Matrix mask(x->value.rows(), x->value.cols());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return ag::MulConstMask(x, mask);
}

const Matrix& Dropout::Infer(const Matrix& x, InferWorkspace* ws) {
  // Relaxed load on the serving hot path (see Module::training_).
  if (!training_.load(std::memory_order_relaxed) || p_ <= 0.0f) return x;
  return Module::Infer(x, ws);  // Training: keep the mask RNG stream exact.
}

Sequential& Sequential::Add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  infer_plan_stale_ = true;
  return *this;
}

ag::Var Sequential::Forward(const ag::Var& x) {
  ag::Var h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

const Matrix& Sequential::Infer(const Matrix& x, InferWorkspace* ws) {
  // Peephole schedule: Linear immediately followed by a stateless
  // activation folds the activation into the matmul epilogue (bitwise
  // identical — see kernels::MatMulBias). Structure is static per layer
  // list, so the type tests run once, not per batch.
  if (infer_plan_stale_) {
    infer_plan_.clear();
    for (size_t i = 0; i < layers_.size(); ++i) {
      InferStep step;
      if (auto* linear = dynamic_cast<Linear*>(layers_[i].get());
          linear != nullptr && i + 1 < layers_.size()) {
        Module* next = layers_[i + 1].get();
        if (dynamic_cast<ReluLayer*>(next) != nullptr) {
          step.epilogue = kernels::Epilogue::kRelu;
        } else if (dynamic_cast<SigmoidLayer*>(next) != nullptr) {
          step.epilogue = kernels::Epilogue::kSigmoid;
        }
        if (step.epilogue != kernels::Epilogue::kNone) {
          step.fused_linear = linear;
          infer_plan_.push_back(step);
          ++i;
          continue;
        }
      }
      step.layer = layers_[i].get();
      infer_plan_.push_back(step);
    }
    infer_plan_stale_ = false;
  }

  const Matrix* h = &x;
  // `owned` tracks whether *h is a workspace slot we may mutate (true after
  // any layer materialises a fresh output; identity layers pass ownership
  // through). Stateless elementwise layers then run in place — same values,
  // one less full read/write pass and no extra slot.
  bool owned = false;
  for (const InferStep& step : infer_plan_) {
    if (step.fused_linear != nullptr) {
      h = &step.fused_linear->InferFused(*h, ws, step.epilogue);
      owned = true;
      continue;
    }
    if (owned && step.layer->InferInPlace(const_cast<Matrix*>(h))) continue;
    const Matrix& out = step.layer->Infer(*h, ws);
    if (&out != h) owned = true;
    h = &out;
  }
  return *h;
}

std::vector<ag::Var> Sequential::Parameters() const {
  std::vector<ag::Var> params;
  for (const auto& layer : layers_) {
    for (const ag::Var& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& layer : layers_) layer->SetTraining(training);
}

}  // namespace nn
}  // namespace cfx
