// Differentiable loss functions used across the classifier, the VAEs and the
// counterfactual objectives.
//
// All losses return a 1x1 Var (mean over the batch unless noted).
#ifndef CFX_NN_LOSSES_H_
#define CFX_NN_LOSSES_H_

#include "src/tensor/autodiff.h"

namespace cfx {
namespace nn {

/// Binary cross-entropy on raw logits against 0/1 targets.
/// Numerically stable form: max(z,0) - z*y + log(1+exp(-|z|)).
ag::Var BceWithLogits(const ag::Var& logits, const Matrix& targets01);

/// Hinge loss on logits against ±1 targets: mean(relu(margin - y * z)).
/// This is the validity term of the paper's Eq. (3).
ag::Var HingeLoss(const ag::Var& logits, const Matrix& targets_pm1,
                  float margin = 1.0f);

/// Mean squared error against a constant target.
ag::Var MseLoss(const ag::Var& pred, const Matrix& target);

/// Mean absolute (L1) error against a constant target — the proximity term
/// d(x, x') of the paper's Eq. (3).
ag::Var L1Loss(const ag::Var& pred, const Matrix& target);

/// KL(q(z|x) || N(0, I)) for a diagonal Gaussian parameterised by (mu,
/// logvar), averaged over batch *and* latent dimensions:
///   mean_{n,d}( -1/2 (1 + logvar - mu^2 - exp(logvar)) ).
/// The per-entry normalisation keeps the term commensurate with a per-entry
/// mean reconstruction loss regardless of the latent width — under Adam a
/// latent-summed KL consistently out-muscles the (noisy) reconstruction
/// gradient and collapses the posterior.
ag::Var KlStandardNormal(const ag::Var& mu, const ag::Var& logvar);

/// Smoothed sparsity loss over a batch of feature deltas: the mean per-sample
/// count of "changed" features, where change is the smooth indicator
/// sigmoid(k * (|delta| - eps)). Paper §III-C's g(x'-x), L0 flavour.
ag::Var SmoothL0(const ag::Var& delta, float k = 50.0f, float eps = 0.05f);

}  // namespace nn
}  // namespace cfx

#endif  // CFX_NN_LOSSES_H_
