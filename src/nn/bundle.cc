#include "src/nn/bundle.h"

#include <cstring>
#include <fstream>
#include <unordered_set>

#include "src/common/string_util.h"

namespace cfx {
namespace nn {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'X', 'B'};
constexpr char kEndMarker[4] = {'B', 'X', 'F', 'C'};

enum SectionType : uint8_t {
  kString = 1,
  kScalar = 2,
  kF64Array = 3,
  kTensors = 4,
};

const char* TypeName(uint8_t type) {
  switch (type) {
    case kString: return "string";
    case kScalar: return "scalar";
    case kF64Array: return "f64 array";
    case kTensors: return "tensor list";
  }
  return "unknown";
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  if (n == 0) return;  // Empty vectors hand over data() == nullptr.
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

/// Bounds-checked forward reader over the in-memory file image.
class Cursor {
 public:
  Cursor(const std::string& data, const std::string& path)
      : data_(data), path_(path) {}

  Status Read(void* dst, size_t n) {
    if (n == 0) return Status::OK();  // dst may be null for empty tensors.
    if (n > data_.size() - pos_) {
      return Status::InvalidArgument("truncated bundle file '" + path_ + "'");
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadValue(T* dst) {
    return Read(dst, sizeof(T));
  }

  Status ReadString(size_t n, std::string* dst) {
    if (n > data_.size() - pos_) {
      return Status::InvalidArgument("truncated bundle file '" + path_ + "'");
    }
    dst->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  const std::string& path_;
  size_t pos_ = 0;
};

}  // namespace

void BundleWriter::Add(const std::string& key, uint8_t type,
                       std::string payload) {
  sections_.push_back(Section{key, type, std::move(payload)});
}

void BundleWriter::PutString(const std::string& key, const std::string& value) {
  Add(key, kString, value);
}

void BundleWriter::PutScalar(const std::string& key, double value) {
  std::string payload;
  AppendValue(&payload, value);
  Add(key, kScalar, std::move(payload));
}

void BundleWriter::PutF64Array(const std::string& key,
                               const std::vector<double>& values) {
  std::string payload;
  AppendValue<uint64_t>(&payload, values.size());
  AppendRaw(&payload, values.data(), values.size() * sizeof(double));
  Add(key, kF64Array, std::move(payload));
}

void BundleWriter::PutTensors(const std::string& key,
                              const std::vector<Matrix>& tensors) {
  std::string payload;
  AppendValue<uint64_t>(&payload, tensors.size());
  for (const Matrix& t : tensors) {
    AppendValue<uint64_t>(&payload, t.rows());
    AppendValue<uint64_t>(&payload, t.cols());
    AppendRaw(&payload, t.data(), t.size() * sizeof(float));
  }
  Add(key, kTensors, std::move(payload));
}

Status BundleWriter::WriteFile(const std::string& path) const {
  std::unordered_set<std::string> seen;
  for (const Section& s : sections_) {
    if (!seen.insert(s.key).second) {
      return Status::InvalidArgument("duplicate bundle section '" + s.key +
                                     "'");
    }
  }

  std::string blob;
  AppendRaw(&blob, kMagic, sizeof(kMagic));
  AppendValue<uint32_t>(&blob, kBundleVersion);
  AppendValue<uint32_t>(&blob, static_cast<uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    AppendValue<uint32_t>(&blob, static_cast<uint32_t>(s.key.size()));
    AppendRaw(&blob, s.key.data(), s.key.size());
    AppendValue<uint8_t>(&blob, s.type);
    AppendValue<uint64_t>(&blob, s.payload.size());
    AppendRaw(&blob, s.payload.data(), s.payload.size());
  }
  AppendRaw(&blob, kEndMarker, sizeof(kEndMarker));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out.good()) return Status::Internal("write error on '" + path + "'");
  return Status::OK();
}

StatusOr<Bundle> Bundle::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open bundle '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("read error on '" + path + "'");
  }

  Cursor cursor(data, path);
  char magic[4];
  CFX_RETURN_IF_ERROR(cursor.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a cfx bundle (bad magic)");
  }

  Bundle bundle;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&bundle.version_));
  if (bundle.version_ > kBundleVersion) {
    return Status::FailedPrecondition(StrFormat(
        "bundle '%s' has format version %u; this build reads <= %u "
        "(version skew)",
        path.c_str(), bundle.version_, kBundleVersion));
  }
  if (bundle.version_ == 0) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' has invalid version 0");
  }

  uint32_t count = 0;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&count));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t key_len = 0;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&key_len));
    std::string key;
    CFX_RETURN_IF_ERROR(cursor.ReadString(key_len, &key));
    Section section;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&section.type));
    uint64_t payload_len = 0;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&payload_len));
    CFX_RETURN_IF_ERROR(cursor.ReadString(payload_len, &section.payload));
    if (!bundle.sections_.emplace(key, std::move(section)).second) {
      return Status::InvalidArgument("bundle '" + path +
                                     "' repeats section '" + key + "'");
    }
  }

  char marker[4];
  CFX_RETURN_IF_ERROR(cursor.Read(marker, sizeof(marker)));
  if (std::memcmp(marker, kEndMarker, sizeof(kEndMarker)) != 0) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' is corrupted (bad end marker)");
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' has trailing bytes after end marker");
  }
  return bundle;
}

StatusOr<Bundle> Bundle::ProbeFile(const std::string& path,
                                   const std::vector<std::string>& keep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open bundle '" + path + "'");
  in.seekg(0, std::ios::end);
  if (!in.good()) return Status::Internal("seek error on '" + path + "'");
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  // Every length is validated against the bytes left in the file before it
  // is consumed, so a lying section header fails here instead of seeking
  // past EOF or allocating the claimed size.
  uint64_t pos = 0;
  auto read_raw = [&](void* dst, uint64_t n) -> Status {
    if (n > file_size - pos) {
      return Status::InvalidArgument("truncated bundle file '" + path + "'");
    }
    if (n != 0) {
      in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
      if (!in.good()) return Status::Internal("read error on '" + path + "'");
    }
    pos += n;
    return Status::OK();
  };
  auto read_str = [&](uint64_t n, std::string* dst) -> Status {
    if (n > file_size - pos) {
      return Status::InvalidArgument("truncated bundle file '" + path + "'");
    }
    dst->resize(n);
    if (n != 0) {
      in.read(dst->data(), static_cast<std::streamsize>(n));
      if (!in.good()) return Status::Internal("read error on '" + path + "'");
    }
    pos += n;
    return Status::OK();
  };

  char magic[4];
  CFX_RETURN_IF_ERROR(read_raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a cfx bundle (bad magic)");
  }

  Bundle bundle;
  CFX_RETURN_IF_ERROR(read_raw(&bundle.version_, sizeof(bundle.version_)));
  if (bundle.version_ > kBundleVersion) {
    return Status::FailedPrecondition(StrFormat(
        "bundle '%s' has format version %u; this build reads <= %u "
        "(version skew)",
        path.c_str(), bundle.version_, kBundleVersion));
  }
  if (bundle.version_ == 0) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' has invalid version 0");
  }

  const std::unordered_set<std::string> want(keep.begin(), keep.end());
  uint32_t count = 0;
  CFX_RETURN_IF_ERROR(read_raw(&count, sizeof(count)));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t key_len = 0;
    CFX_RETURN_IF_ERROR(read_raw(&key_len, sizeof(key_len)));
    std::string key;
    CFX_RETURN_IF_ERROR(read_str(key_len, &key));
    Section section;
    CFX_RETURN_IF_ERROR(read_raw(&section.type, sizeof(section.type)));
    uint64_t payload_len = 0;
    CFX_RETURN_IF_ERROR(read_raw(&payload_len, sizeof(payload_len)));
    if (want.count(key) != 0) {
      CFX_RETURN_IF_ERROR(read_str(payload_len, &section.payload));
    } else {
      if (payload_len > file_size - pos) {
        return Status::InvalidArgument("truncated bundle file '" + path +
                                       "'");
      }
      in.seekg(static_cast<std::streamoff>(payload_len), std::ios::cur);
      if (!in.good()) return Status::Internal("seek error on '" + path + "'");
      pos += payload_len;
      section.materialised = false;
    }
    if (!bundle.sections_.emplace(key, std::move(section)).second) {
      return Status::InvalidArgument("bundle '" + path +
                                     "' repeats section '" + key + "'");
    }
  }

  char marker[4];
  CFX_RETURN_IF_ERROR(read_raw(marker, sizeof(marker)));
  if (std::memcmp(marker, kEndMarker, sizeof(kEndMarker)) != 0) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' is corrupted (bad end marker)");
  }
  if (pos != file_size) {
    return Status::InvalidArgument("bundle '" + path +
                                   "' has trailing bytes after end marker");
  }
  return bundle;
}

bool Bundle::Has(const std::string& key) const {
  return sections_.count(key) > 0;
}

StatusOr<const Bundle::Section*> Bundle::Find(const std::string& key,
                                              uint8_t type) const {
  auto it = sections_.find(key);
  if (it == sections_.end()) {
    return Status::NotFound("bundle has no section '" + key + "'");
  }
  if (it->second.type != type) {
    return Status::InvalidArgument(StrFormat(
        "bundle section '%s' is a %s, wanted a %s", key.c_str(),
        TypeName(it->second.type), TypeName(type)));
  }
  if (!it->second.materialised) {
    return Status::FailedPrecondition(
        "bundle section '" + key +
        "' was skipped by the header probe; reopen with ReadFile");
  }
  return &it->second;
}

StatusOr<std::string> Bundle::GetString(const std::string& key) const {
  auto section = Find(key, kString);
  if (!section.ok()) return section.status();
  return (*section)->payload;
}

StatusOr<double> Bundle::GetScalar(const std::string& key) const {
  auto section = Find(key, kScalar);
  if (!section.ok()) return section.status();
  const std::string& payload = (*section)->payload;
  if (payload.size() != sizeof(double)) {
    return Status::InvalidArgument("malformed scalar section '" + key + "'");
  }
  double value = 0.0;
  std::memcpy(&value, payload.data(), sizeof(double));
  return value;
}

StatusOr<std::vector<double>> Bundle::GetF64Array(
    const std::string& key) const {
  auto section = Find(key, kF64Array);
  if (!section.ok()) return section.status();
  const std::string& payload = (*section)->payload;
  if (payload.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("malformed array section '" + key + "'");
  }
  uint64_t n = 0;
  std::memcpy(&n, payload.data(), sizeof(uint64_t));
  if (payload.size() != sizeof(uint64_t) + n * sizeof(double)) {
    return Status::InvalidArgument("malformed array section '" + key + "'");
  }
  std::vector<double> values(n);
  if (n != 0) {  // An empty vector's data() is null — memcpy forbids that.
    std::memcpy(values.data(), payload.data() + sizeof(uint64_t),
                n * sizeof(double));
  }
  return values;
}

StatusOr<std::vector<Matrix>> Bundle::GetTensors(const std::string& key) const {
  auto section = Find(key, kTensors);
  if (!section.ok()) return section.status();
  const std::string& payload = (*section)->payload;
  size_t pos = 0;
  auto read = [&](void* dst, size_t n) -> bool {
    if (n == 0) return true;  // dst may be null for zero-size tensors.
    if (n > payload.size() - pos) return false;
    std::memcpy(dst, payload.data() + pos, n);
    pos += n;
    return true;
  };

  uint64_t count = 0;
  if (!read(&count, sizeof(count))) {
    return Status::InvalidArgument("malformed tensor section '" + key + "'");
  }
  // Each tensor carries a 16-byte (rows, cols) header, so a count larger
  // than the remaining payload allows is corrupt — reject it before the
  // reserve below can turn it into a giant allocation.
  if (count > (payload.size() - pos) / (2 * sizeof(uint64_t))) {
    return Status::InvalidArgument("malformed tensor section '" + key + "'");
  }
  std::vector<Matrix> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    if (!read(&rows, sizeof(rows)) || !read(&cols, sizeof(cols))) {
      return Status::InvalidArgument("malformed tensor section '" + key + "'");
    }
    // Guard the multiplication: a corrupted header must not turn into a
    // huge allocation or an overflowing size.
    if (rows > 0 && cols > (payload.size() / sizeof(float)) / rows) {
      return Status::InvalidArgument("malformed tensor section '" + key + "'");
    }
    Matrix t(rows, cols);
    if (!read(t.data(), t.size() * sizeof(float))) {
      return Status::InvalidArgument("malformed tensor section '" + key + "'");
    }
    tensors.push_back(std::move(t));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("malformed tensor section '" + key + "'");
  }
  return tensors;
}

}  // namespace nn
}  // namespace cfx
