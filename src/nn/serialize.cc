#include "src/nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "src/common/string_util.h"

namespace cfx {
namespace nn {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'X', 'W'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveParameters(const std::vector<ag::Var>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const ag::Var& p : params) {
    uint64_t rows = p->value.rows();
    uint64_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out.good()) return Status::Internal("write error on '" + path + "'");
  return Status::OK();
}

Status LoadParameters(const std::vector<ag::Var>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a cfx weight file");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported weight-file version %u", version));
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("weight file holds %llu tensors, model has %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  // Stage every tensor before touching the model: a file that fails part-way
  // (truncation, shape skew) must leave the parameters exactly as they were,
  // never half old / half new.
  std::vector<Matrix> staged;
  staged.reserve(params.size());
  for (const ag::Var& p : params) {
    uint64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in.good()) return Status::InvalidArgument("truncated weight file");
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument(
          StrFormat("tensor shape mismatch: file %llux%llu vs model %zux%zu",
                    static_cast<unsigned long long>(rows),
                    static_cast<unsigned long long>(cols), p->value.rows(),
                    p->value.cols()));
    }
    Matrix tensor(rows, cols);
    in.read(reinterpret_cast<char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.size() * sizeof(float)));
    if (!in.good()) return Status::InvalidArgument("truncated weight file");
    staged.push_back(std::move(tensor));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(staged[i]);
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace cfx
