#include "src/stream/drift.h"

#include <cstring>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace cfx {
namespace stream {

DriftEvaluator::DriftEvaluator(const TabularEncoder* encoder,
                               BatchPredictor predictor,
                               const ConstraintSet* constraints,
                               ConstraintTolerance tol, DriftEvalConfig config)
    : encoder_(encoder),
      predictor_(std::move(predictor)),
      constraints_(constraints),
      tol_(tol),
      config_(config),
      rng_(config.seed) {
  if (config_.reservoir == 0) config_.reservoir = 1;
  validity_gauge_ = metrics::GetGauge("drift/rescore/validity_rate");
  feasibility_gauge_ = metrics::GetGauge("drift/rescore/feasibility_rate");
  rescore_runs_ = metrics::GetCounter("drift/rescore/runs");
  rescore_scored_ = metrics::GetCounter("drift/rescore/scored");
}

Status DriftEvaluator::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void DriftEvaluator::RecordServed(const Matrix& x, const Matrix& cf,
                                  int desired) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = observed_++;
  if (reservoir_.size() < config_.reservoir) {
    reservoir_.push_back({x, cf, desired});
    return;
  }
  // Algorithm R: triple n replaces a uniform slot with probability
  // reservoir/(n+1), so every observed triple is retained with equal
  // probability regardless of arrival order.
  const uint64_t slot = rng_.UniformInt(n + 1);
  if (slot < reservoir_.size()) {
    reservoir_[slot] = {x, cf, desired};
  }
}

size_t DriftEvaluator::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reservoir_.size();
}

uint64_t DriftEvaluator::observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

Matrix DriftEvaluator::ShiftToWindowFrame(const std::vector<Served>& snapshot,
                                          const RollingStats& stats,
                                          bool use_cf) const {
  const size_t rows = snapshot.size();
  const size_t width = encoder_->encoded_width();
  Matrix out(rows, width);
  for (size_t r = 0; r < rows; ++r) {
    const Matrix& src = use_cf ? snapshot[r].cf : snapshot[r].x;
    std::memcpy(out.data() + r * width, src.data(), width * sizeof(float));
  }
  for (const EncodedBlock& block : encoder_->blocks()) {
    if (block.type != FeatureType::kContinuous) continue;
    const FeatureWindowStats w = stats.Stats(block.feature_index);
    // An empty or degenerate window gives no frame to re-normalise into;
    // keep the frozen coordinates (identity shift).
    if (w.count == 0 || w.window_max <= w.window_min) continue;
    const double range = w.window_max - w.window_min;
    for (size_t r = 0; r < rows; ++r) {
      float* slot = out.data() + r * width + block.offset;
      const double raw =
          encoder_->Denormalize(block.feature_index, *slot);
      *slot = static_cast<float>((raw - w.window_min) / range);
    }
  }
  return out;
}

DriftReport DriftEvaluator::Rescore(const RollingStats& stats) {
  std::vector<Served> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = reservoir_;
  }
  DriftReport report;
  report.scored = snapshot.size();
  if (rescore_runs_ != nullptr) rescore_runs_->Add(1);
  if (rescore_scored_ != nullptr) rescore_scored_->Add(snapshot.size());
  if (snapshot.empty()) {
    // Nothing was scored, so the rate gauges keep their last real
    // measurement — an idle rescore must not fabricate a 0% validity alert.
    return report;
  }

  const Matrix shifted_x = ShiftToWindowFrame(snapshot, stats, false);
  const Matrix shifted_cf = ShiftToWindowFrame(snapshot, stats, true);

  const std::vector<int> predicted = predictor_(shifted_cf);
  if (predicted.size() != snapshot.size()) {
    // A predictor breaking its one-label-per-row contract used to send the
    // loop below off the end of `predicted` (heap OOB read). Latch the
    // violation and skip the pass; gauges keep their last real values.
    const Status bad = Status::Internal(
        "drift rescore: BatchPredictor returned " +
        std::to_string(predicted.size()) + " labels for " +
        std::to_string(snapshot.size()) + " rows");
    CFX_LOG(Error) << bad.message();
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.ok()) error_ = bad;
    return report;
  }
  for (size_t r = 0; r < snapshot.size(); ++r) {
    if (predicted[r] == snapshot[r].desired) ++report.valid;
  }

  if (constraints_ != nullptr) {
    const FeasibilityResult feas = EvaluateFeasibility(
        *constraints_, *encoder_, shifted_x, shifted_cf, tol_);
    report.feasible = feas.num_feasible;
  } else {
    for (size_t r = 0; r < snapshot.size(); ++r) {
      if (WithinInputDomainSpan(shifted_cf.data() + r * shifted_cf.cols(),
                                shifted_cf.cols(), 0.05f)) {
        ++report.feasible;
      }
    }
  }

  const double n = static_cast<double>(report.scored);
  report.validity_rate = static_cast<double>(report.valid) / n;
  report.feasibility_rate = static_cast<double>(report.feasible) / n;
  if (validity_gauge_ != nullptr) validity_gauge_->Set(report.validity_rate);
  if (feasibility_gauge_ != nullptr) {
    feasibility_gauge_->Set(report.feasibility_rate);
  }
  return report;
}

}  // namespace stream
}  // namespace cfx
