#include "src/stream/ingest.h"

#include <utility>

#include "src/common/logging.h"

namespace cfx {
namespace stream {

StreamIngest::StreamIngest(const Schema& schema, StreamIngestConfig config)
    : schema_(schema),
      config_(config),
      stats_(schema, config.stats),
      framer_(schema, config.framer,
              [this](const std::vector<double>& values, int label) {
                (void)label;  // Window stats are label-free.
                {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  stats_.Add(values);
                }
                rows_ingested_.fetch_add(1, std::memory_order_relaxed);
                if (rows_counter_ != nullptr) rows_counter_->Add(1);
                if (config_.rescore_every_rows > 0 &&
                    ++rows_since_rescore_ >= config_.rescore_every_rows) {
                  rows_since_rescore_ = 0;
                  RescoreAndPublish();
                }
                return Status::OK();
              }) {
  if (config_.max_queued_chunks == 0) config_.max_queued_chunks = 1;
  rows_counter_ = metrics::GetCounter("stream/rows_ingested");
  chunks_counter_ = metrics::GetCounter("stream/chunks");
  errors_counter_ = metrics::GetCounter("stream/errors");
  psi_gauges_.resize(schema_.num_features(), nullptr);
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    psi_gauges_[i] =
        metrics::GetGauge("drift/" + schema_.feature(i).name + "/psi");
  }
}

StreamIngest::~StreamIngest() { Stop(); }

Status StreamIngest::BindPipeline(const TabularEncoder* encoder,
                                  BatchPredictor predictor,
                                  const ConstraintSet* constraints,
                                  ConstraintTolerance tol) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (started_) {
    return Status::FailedPrecondition("BindPipeline after Start");
  }
  if (encoder == nullptr) {
    return Status::InvalidArgument("BindPipeline requires an encoder");
  }
  if (!predictor) {
    return Status::InvalidArgument("BindPipeline requires a predictor");
  }
  encoder_ = encoder;
  evaluator_ = std::make_unique<DriftEvaluator>(
      encoder, std::move(predictor), constraints, tol, config_.drift);
  return Status::OK();
}

Status StreamIngest::FitBaseline(const Table& reference) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (started_) {
    return Status::FailedPrecondition("FitBaseline after Start");
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.FitBaseline(reference);
}

Status StreamIngest::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (started_) return Status::AlreadyExists("stream ingest already started");
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = false;
  }
  started_ = true;
  thread_ = std::thread([this] { IngestLoop(); });
  return Status::OK();
}

void StreamIngest::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

Status StreamIngest::Offer(std::string chunk) {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (stopping_) {
    return Status::FailedPrecondition("stream ingest is stopping");
  }
  if (chunks_.size() >= config_.max_queued_chunks) {
    return Status::ResourceExhausted("stream ingest queue full");
  }
  chunks_.push_back(std::move(chunk));
  queue_cv_.notify_one();
  return Status::OK();
}

void StreamIngest::ObserveServed(const Matrix& x, const Matrix& cf,
                                 int desired) {
  if (evaluator_ != nullptr) evaluator_->RecordServed(x, cf, desired);
}

Status StreamIngest::status() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

DriftReport StreamIngest::last_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return last_report_;
}

double StreamIngest::Psi(size_t feature_index) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.Psi(feature_index);
}

FeatureWindowStats StreamIngest::Stats(size_t feature_index) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.Stats(feature_index);
}

std::vector<EncoderFeatureDrift> StreamIngest::DiffAgainstEncoder() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (encoder_ == nullptr) return {};
  return stats_.DiffAgainstEncoder(*encoder_);
}

void StreamIngest::IngestLoop() {
  for (;;) {
    std::string chunk;
    bool have_chunk = false;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !chunks_.empty(); });
      if (!chunks_.empty()) {
        chunk = std::move(chunks_.front());
        chunks_.pop_front();
        have_chunk = true;
      } else {
        draining = true;  // stopping_ and nothing left to frame.
      }
    }
    if (have_chunk) {
      ConsumeChunk(chunk);
      continue;
    }
    if (draining) break;
  }
  // End of stream: flush the framer's partial final line, then leave the
  // gauges reflecting everything ingested.
  if (status().ok()) {
    const Status finish = framer_.Finish();
    if (!finish.ok()) {
      if (errors_counter_ != nullptr) errors_counter_->Add(1);
      CFX_LOG(Warning) << "stream ingest finish: " << finish.message();
      std::lock_guard<std::mutex> lock(error_mu_);
      error_ = finish;
    }
  }
  RescoreAndPublish();
}

void StreamIngest::ConsumeChunk(const std::string& chunk) {
  if (chunks_counter_ != nullptr) chunks_counter_->Add(1);
  if (!status().ok()) return;  // Latched failure: drop, but keep counting.
  const Status framed = framer_.Consume(chunk);
  if (!framed.ok()) {
    if (errors_counter_ != nullptr) errors_counter_->Add(1);
    CFX_LOG(Warning) << "stream ingest: " << framed.message();
    std::lock_guard<std::mutex> lock(error_mu_);
    error_ = framed;
  }
}

void StreamIngest::RescoreAndPublish() {
  DriftReport report;
  bool scored = false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (size_t i = 0; i < psi_gauges_.size(); ++i) {
      if (psi_gauges_[i] != nullptr) psi_gauges_[i]->Set(stats_.Psi(i));
    }
    if (evaluator_ != nullptr) {
      report = evaluator_->Rescore(stats_);
      scored = true;
    }
  }
  if (scored) {
    {
      std::lock_guard<std::mutex> lock(report_mu_);
      last_report_ = report;
    }
    // A predictor-contract violation latched inside the evaluator surfaces
    // through status(), like framing errors.
    const Status drift_error = evaluator_->last_error();
    if (!drift_error.ok()) {
      if (errors_counter_ != nullptr) errors_counter_->Add(1);
      std::lock_guard<std::mutex> lock(error_mu_);
      if (error_.ok()) error_ = drift_error;
    }
  }
}

}  // namespace stream
}  // namespace cfx
