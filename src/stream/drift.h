// Online drift re-scoring of served counterfactuals (ROADMAP item 2).
//
// The paper scores a counterfactual once, against a static snapshot:
// validity is the frozen black box flipping its prediction, feasibility is
// causal-constraint satisfaction plus membership of the data manifold
// (C-CHVAE's density argument). Both are statements about the data frame
// the pipeline was fitted on. When the live distribution drifts, a served
// CF silently goes stale — the raw attribute values it promised a user sit
// somewhere else on the *current* manifold.
//
// DriftEvaluator makes that visible. It retains a uniform reservoir sample
// of served (input, counterfactual, desired-class) triples and, on demand,
// re-scores them under the CURRENT rolling window statistics: every
// continuous slot is mapped from the frozen normalisation to the rolling
// one (decode with the fitted encoder's min/max, re-normalise with the
// window's), which is exactly where the same raw individual would land had
// the encoder been fitted on today's data. The frozen classifier and the
// causal constraints are then re-evaluated at the shifted coordinates:
//   * validity_rate    — fraction still predicted as their desired class;
//   * feasibility_rate — fraction still satisfying the causal constraints
//                        and the [0,1] input domain (rows drifting outside
//                        the current frame fail here first).
// Under no drift the shift map is the identity and both rates reproduce
// the serving-time scores; under drift they decay, and the published
// gauges (drift/rescore/validity_rate, drift/rescore/feasibility_rate)
// make the decay observable without re-running any experiment.
//
// Thread-safety: RecordServed may be called from any serving worker;
// Rescore from the ingest thread. The reservoir mutex covers both; the
// scoring pass itself runs on a snapshot outside the lock.
#ifndef CFX_STREAM_DRIFT_H_
#define CFX_STREAM_DRIFT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/constraints/constraint.h"
#include "src/constraints/feasibility.h"
#include "src/data/encoder.h"
#include "src/stream/rolling_stats.h"
#include "src/tensor/matrix.h"

namespace cfx {
namespace stream {

/// Tuning knobs.
struct DriftEvalConfig {
  /// Served triples retained (uniform reservoir over everything observed).
  size_t reservoir = 256;
  /// Reservoir RNG seed — re-scoring stays reproducible per seed.
  uint64_t seed = 0x5EED;
};

/// One re-scoring pass over the reservoir.
struct DriftReport {
  size_t scored = 0;    ///< Reservoir triples re-scored.
  size_t valid = 0;     ///< Still predicted as their desired class.
  size_t feasible = 0;  ///< Still causally feasible + in input domain.
  double validity_rate = 0.0;     ///< valid / scored (0 when empty).
  double feasibility_rate = 0.0;  ///< feasible / scored.
};

/// Batch hard-label predictor over encoded rows. The serving integration
/// wraps the frozen BlackBoxClassifier; tests substitute analytic
/// predictors with known decision boundaries.
using BatchPredictor = std::function<std::vector<int>(const Matrix&)>;

/// Reservoir of served counterfactuals + re-scoring under rolling stats.
class DriftEvaluator {
 public:
  /// `encoder` and `constraints` are borrowed and must outlive the
  /// evaluator. `constraints` may be null (feasibility then reduces to the
  /// input-domain check).
  DriftEvaluator(const TabularEncoder* encoder, BatchPredictor predictor,
                 const ConstraintSet* constraints, ConstraintTolerance tol,
                 DriftEvalConfig config);

  /// Offers one served triple to the reservoir. (1 x width) encoded rows.
  void RecordServed(const Matrix& x, const Matrix& cf, int desired);

  /// Triples currently retained.
  size_t retained() const;
  /// Triples ever offered.
  uint64_t observed() const;

  /// Re-scores the reservoir under `stats`' rolling window and publishes
  /// the gauges. Features whose window is empty (or degenerate) keep their
  /// frozen normalisation — an idle stream re-produces serving-time scores.
  /// An empty reservoir is a no-op for the rate gauges: there is nothing to
  /// measure, and zeroing them would fabricate a 0% validity alert. Only
  /// drift/rescore/runs and drift/rescore/scored advance.
  DriftReport Rescore(const RollingStats& stats);

  /// First predictor-contract violation observed by Rescore (a
  /// BatchPredictor returning a different row count than it was given),
  /// latched until destruction; OK while the contract holds.
  Status last_error() const;

 private:
  struct Served {
    Matrix x;   ///< (1 x width) encoded input.
    Matrix cf;  ///< (1 x width) encoded (projected) counterfactual.
    int desired = 0;
  };

  /// Maps encoded rows from the frozen normalisation onto the rolling
  /// window's frame; identity for categorical/binary slots and for
  /// features without usable window stats.
  Matrix ShiftToWindowFrame(const std::vector<Served>& snapshot,
                            const RollingStats& stats, bool use_cf) const;

  const TabularEncoder* encoder_;
  BatchPredictor predictor_;
  const ConstraintSet* constraints_;
  ConstraintTolerance tol_;
  DriftEvalConfig config_;

  mutable std::mutex mu_;
  std::vector<Served> reservoir_;  ///< Guarded by mu_.
  uint64_t observed_ = 0;          ///< Guarded by mu_.
  Rng rng_;                        ///< Guarded by mu_.
  Status error_ = Status::OK();    ///< Guarded by mu_; first latched error.

  /// Metric handles; null when collection is disabled.
  metrics::Gauge* validity_gauge_ = nullptr;
  metrics::Gauge* feasibility_gauge_ = nullptr;
  metrics::Counter* rescore_runs_ = nullptr;
  metrics::Counter* rescore_scored_ = nullptr;
};

}  // namespace stream
}  // namespace cfx

#endif  // CFX_STREAM_DRIFT_H_
