// Incremental CSV row framer — the entry point of the streaming ingest
// path (ROADMAP item 2).
//
// A StreamFramer is a per-connection state machine that consumes arbitrary
// byte chunks (network reads, file tails, test fixtures) and emits parsed
// rows through a caller-supplied sink. Chunk boundaries carry no meaning:
// a row, a cell, even a single UTF-8 byte may be split across chunks, and
// the framer reassembles them so that the sequence of emitted rows depends
// only on the concatenated byte stream — tests/stream_test.cc proves the
// property at every split offset. Both CRLF and LF line endings are
// accepted (per line, so mixed files frame correctly), a final row without
// a trailing newline is emitted by Finish(), and blank lines are skipped,
// all exactly matching ReadTableCsv.
//
// Validation is the batch reader's: cells go through the shared
// ParseCell/ParseRowLine (src/data/row_parse.h), so a byte stream frames
// into bitwise-identical rows to ReadTableCsv on the same bytes. Errors
// name the 1-based source line ("row N"), mirroring the reader's file:row
// diagnostics.
//
// Bounded buffering: lines and cells have byte caps (FramerConfig), so a
// malicious or corrupt stream that never sends a newline cannot grow the
// pending buffer without bound. Exceeding a cap is a hard error — the
// framer latches it and rejects further input until Reset().
#ifndef CFX_STREAM_FRAMER_H_
#define CFX_STREAM_FRAMER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/data/schema.h"

namespace cfx {
namespace stream {

/// Framer tuning knobs.
struct FramerConfig {
  /// True: the first line must be a header matching the schema
  /// (feature names in order, then the target), exactly like ReadTableCsv.
  /// False: every line is data — the mode for resumed connections that
  /// negotiated the schema out of band.
  bool expect_header = true;
  /// Hard cap on one line's bytes (excluding the newline). A stream that
  /// exceeds it errors out instead of buffering without bound.
  size_t max_line_bytes = 1 << 20;
  /// Hard cap on one cell's bytes after trimming.
  size_t max_cell_bytes = 4096;
};

/// Row sink: called once per parsed data row with the per-feature raw
/// values (schema order, NaN = missing) and the label. A non-OK return
/// aborts framing with that status.
using RowSink =
    std::function<Status(const std::vector<double>& values, int label)>;

/// Chunk-boundary-independent CSV row framing + strict validation.
class StreamFramer {
 public:
  StreamFramer(const Schema& schema, FramerConfig config, RowSink sink);

  /// Consumes `n` bytes. Complete lines are framed and parsed immediately;
  /// a trailing partial line is buffered for the next chunk. On error the
  /// framer latches the status: the offending row is not emitted and every
  /// later Consume/Finish returns the same error until Reset().
  Status Consume(const char* data, size_t n);
  Status Consume(const std::string& chunk) {
    return Consume(chunk.data(), chunk.size());
  }

  /// Flushes a buffered final line without a trailing newline (emitted if
  /// non-blank), ending the stream. Idempotent.
  Status Finish();

  /// Clears buffered bytes, the latched error and the row/line counters —
  /// a fresh connection reusing the framer's allocation.
  void Reset();

  /// Parsed-and-emitted data rows so far.
  size_t rows_framed() const { return rows_framed_; }
  /// 1-based line number of the line currently being buffered.
  size_t current_line() const { return line_no_; }
  /// Bytes consumed since construction/Reset (including newlines).
  size_t bytes_consumed() const { return bytes_consumed_; }

 private:
  /// Frames one complete line (no terminator). `line` is the reassembled
  /// pending buffer or an in-chunk span.
  Status FrameLine(std::string_view line);

  Schema schema_;
  FramerConfig config_;
  RowSink sink_;

  std::string pending_;       ///< Partial line carried across chunks.
  Status error_ = Status::OK();  ///< Latched first error.
  bool header_done_ = false;
  bool finished_ = false;
  size_t line_no_ = 1;
  size_t rows_framed_ = 0;
  size_t bytes_consumed_ = 0;
  std::vector<double> values_;  ///< Reused per-row scratch.
};

}  // namespace stream
}  // namespace cfx

#endif  // CFX_STREAM_FRAMER_H_
