#include "src/stream/framer.h"

#include <string_view>
#include <utility>

#include "src/common/string_util.h"
#include "src/data/row_parse.h"

namespace cfx {
namespace stream {
namespace {

/// True when the line is blank after trimming — without allocating the
/// trimmed copy (this runs once per framed line).
bool IsBlank(std::string_view line) {
  return line.find_first_not_of(" \t\r\n\v\f") == std::string_view::npos;
}

}  // namespace

StreamFramer::StreamFramer(const Schema& schema, FramerConfig config,
                           RowSink sink)
    : schema_(schema), config_(config), sink_(std::move(sink)) {}

Status StreamFramer::Consume(const char* data, size_t n) {
  if (!error_.ok()) return error_;
  if (finished_) {
    error_ = Status::FailedPrecondition("Consume after Finish");
    return error_;
  }
  bytes_consumed_ += n;
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != '\n') continue;
    Status framed;
    if (pending_.empty()) {
      // The whole line sits inside this chunk: frame it in place, no copy.
      framed = FrameLine(std::string_view(data + start, i - start));
    } else {
      pending_.append(data + start, i - start);
      framed = FrameLine(pending_);
      pending_.clear();
    }
    if (!framed.ok()) {
      error_ = framed;
      return error_;
    }
    start = i + 1;
    ++line_no_;
  }
  if (start < n) {
    if (pending_.size() + (n - start) > config_.max_line_bytes) {
      error_ = Status::InvalidArgument(
          StrFormat("row %zu: line exceeds %zu bytes", line_no_,
                    config_.max_line_bytes));
      return error_;
    }
    pending_.append(data + start, n - start);
  }
  return Status::OK();
}

Status StreamFramer::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::OK();
  finished_ = true;
  if (!pending_.empty()) {
    // A final row without a trailing newline frames like any other —
    // getline semantics in the batch reader.
    Status framed = FrameLine(pending_);
    pending_.clear();
    if (!framed.ok()) {
      error_ = framed;
      return error_;
    }
  }
  return Status::OK();
}

void StreamFramer::Reset() {
  pending_.clear();
  error_ = Status::OK();
  header_done_ = false;
  finished_ = false;
  line_no_ = 1;
  rows_framed_ = 0;
  bytes_consumed_ = 0;
}

Status StreamFramer::FrameLine(std::string_view line) {
  if (line.size() > config_.max_line_bytes) {
    return Status::InvalidArgument(StrFormat("row %zu: line exceeds %zu bytes",
                                             line_no_,
                                             config_.max_line_bytes));
  }
  // The header is the FIRST line, blank or not — the batch reader consumes
  // line 1 as the header unconditionally, so an empty first line is a
  // header mismatch there and must be one here too.
  if (config_.expect_header && !header_done_) {
    header_done_ = true;
    Status header = ValidateHeaderLine(schema_, line);
    if (!header.ok()) {
      return Status(header.code(), StrFormat("row %zu: %s", line_no_,
                                             header.message().c_str()));
    }
    return Status::OK();
  }
  if (IsBlank(line)) return Status::OK();
  // Per-cell byte cap, one pass: `run` is the current cell's length. This
  // is what bounds a single giant quoted blob inside an otherwise short
  // line (the line cap bounds the whole row).
  size_t run = 0;
  size_t cell_index = 0;
  for (char c : line) {
    if (c == ',') {
      run = 0;
      ++cell_index;
    } else if (++run > config_.max_cell_bytes) {
      return Status::InvalidArgument(
          StrFormat("row %zu: cell %zu exceeds %zu bytes", line_no_,
                    cell_index + 1, config_.max_cell_bytes));
    }
  }
  int label = 0;
  if (Status row = ParseRowLine(schema_, line, &values_, &label); !row.ok()) {
    return Status(row.code(),
                  StrFormat("row %zu: %s", line_no_, row.message().c_str()));
  }
  if (Status sunk = sink_(values_, label); !sunk.ok()) return sunk;
  ++rows_framed_;
  return Status::OK();
}

}  // namespace stream
}  // namespace cfx
