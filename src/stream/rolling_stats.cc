#include "src/stream/rolling_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/logging.h"

namespace cfx {
namespace stream {
namespace {

/// Smoothing floor for PSI proportions: keeps empty bins finite without
/// materially moving populated ones.
constexpr double kPsiEpsilon = 1e-6;

double PsiTerm(double cur, double base) {
  cur = std::max(cur, kPsiEpsilon);
  base = std::max(base, kPsiEpsilon);
  return (cur - base) * std::log(cur / base);
}

}  // namespace

RollingStats::RollingStats(const Schema& schema, RollingStatsConfig config)
    : schema_(schema), config_(config) {
  if (config_.window == 0) config_.window = 1;
  if (config_.psi_bins == 0) config_.psi_bins = 1;
  continuous_.resize(schema_.num_features());
  categorical_.resize(schema_.num_features());
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    const FeatureSpec& spec = schema_.feature(i);
    if (spec.type == FeatureType::kContinuous) {
      continuous_[i].window_bins.assign(config_.psi_bins + 2, 0);
    } else {
      const size_t cats =
          spec.type == FeatureType::kCategorical ? spec.categories.size() : 2;
      categorical_[i].window_counts.assign(cats, 0);
    }
  }
}

size_t RollingStats::BinOf(const ContinuousState& state, double v) const {
  const size_t interior = config_.psi_bins;
  if (v < state.baseline_lo) return 0;
  if (v > state.baseline_hi) return interior + 1;
  const double range = state.baseline_hi - state.baseline_lo;
  if (range <= 0.0) return 1;  // Degenerate baseline: everything in bin 1.
  const double t = (v - state.baseline_lo) / range;
  const size_t b = static_cast<size_t>(t * static_cast<double>(interior));
  return 1 + std::min(b, interior - 1);
}

Status RollingStats::FitBaseline(const Table& reference) {
  if (reference.num_features() != schema_.num_features()) {
    return Status::InvalidArgument("baseline table schema width mismatch");
  }
  if (reference.num_rows() == 0) {
    return Status::InvalidArgument("baseline table has no rows");
  }
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    const FeatureSpec& spec = schema_.feature(i);
    const Column& col = reference.column(i);
    if (spec.type == FeatureType::kContinuous) {
      ContinuousState& state = continuous_[i];
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < reference.num_rows(); ++r) {
        if (col.IsMissing(r)) continue;
        lo = std::min(lo, col.value(r));
        hi = std::max(hi, col.value(r));
      }
      if (!std::isfinite(lo)) {
        return Status::InvalidArgument("baseline feature '" + spec.name +
                                       "' has no observed values");
      }
      state.baseline_lo = lo;
      state.baseline_hi = hi;
      std::vector<uint64_t> counts(config_.psi_bins + 2, 0);
      uint64_t total = 0;
      for (size_t r = 0; r < reference.num_rows(); ++r) {
        if (col.IsMissing(r)) continue;
        ++counts[BinOf(state, col.value(r))];
        ++total;
      }
      state.baseline_props.assign(counts.size(), 0.0);
      for (size_t b = 0; b < counts.size(); ++b) {
        state.baseline_props[b] =
            static_cast<double>(counts[b]) / static_cast<double>(total);
      }
      // Bin anchors moved: re-bin whatever the window already holds.
      state.window_bins.assign(counts.size(), 0);
      for (const std::vector<double>& row : ring_) {
        if (!std::isnan(row[i])) ++state.window_bins[BinOf(state, row[i])];
      }
    } else {
      CategoricalState& state = categorical_[i];
      std::vector<uint64_t> counts(state.window_counts.size(), 0);
      uint64_t total = 0;
      for (size_t r = 0; r < reference.num_rows(); ++r) {
        if (col.IsMissing(r)) continue;
        const int idx = col.CategoryIndex(r);
        if (idx < 0 || static_cast<size_t>(idx) >= counts.size()) continue;
        ++counts[static_cast<size_t>(idx)];
        ++total;
      }
      if (total == 0) {
        return Status::InvalidArgument("baseline feature '" + spec.name +
                                       "' has no observed values");
      }
      state.baseline_props.assign(counts.size(), 0.0);
      for (size_t c = 0; c < counts.size(); ++c) {
        state.baseline_props[c] =
            static_cast<double>(counts[c]) / static_cast<double>(total);
      }
    }
  }
  has_baseline_ = true;
  return Status::OK();
}

void RollingStats::Add(const std::vector<double>& values) {
  // A row of the wrong width would index every per-feature state off the
  // end of `values` — an invariant violation at the caller, not an input
  // error, so it aborts like the other CFX_LOG(Error) invariants.
  if (values.size() != schema_.num_features()) {
    CFX_LOG(Error) << "RollingStats::Add: row width " << values.size()
                   << " does not match schema width "
                   << schema_.num_features();
    std::abort();
  }
  const uint64_t seq = rows_seen_++;
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    if (schema_.feature(i).type == FeatureType::kContinuous) {
      ContinuousState& state = continuous_[i];
      // Monotonic deques: drop dominated entries from the back, expired
      // entries (left the window) from the front.
      while (!state.min_deque.empty() && state.min_deque.back().second >= v) {
        state.min_deque.pop_back();
      }
      state.min_deque.emplace_back(seq, v);
      while (!state.max_deque.empty() && state.max_deque.back().second <= v) {
        state.max_deque.pop_back();
      }
      state.max_deque.emplace_back(seq, v);
      const uint64_t expire_before =
          seq >= config_.window ? seq - config_.window + 1 : 0;
      while (state.min_deque.front().first < expire_before) {
        state.min_deque.pop_front();
      }
      while (state.max_deque.front().first < expire_before) {
        state.max_deque.pop_front();
      }
      ++state.count;
      const double delta = v - state.mean;
      state.mean += delta / static_cast<double>(state.count);
      state.m2 += delta * (v - state.mean);
      if (has_baseline_) ++state.window_bins[BinOf(state, v)];
    } else {
      CategoricalState& state = categorical_[i];
      const int idx = static_cast<int>(v);
      if (idx >= 0 && static_cast<size_t>(idx) < state.window_counts.size()) {
        ++state.window_counts[static_cast<size_t>(idx)];
      }
    }
  }
  ring_.push_back(values);
  if (ring_.size() > config_.window) {
    Evict(ring_.front());
    ring_.pop_front();
  }
}

void RollingStats::Evict(const std::vector<double>& values) {
  if (values.size() != schema_.num_features()) {
    CFX_LOG(Error) << "RollingStats::Evict: row width " << values.size()
                   << " does not match schema width "
                   << schema_.num_features();
    std::abort();
  }
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    if (schema_.feature(i).type == FeatureType::kContinuous) {
      // Extrema eviction is handled by the sequence expiry in Add; only
      // the windowed histogram needs the departing value.
      ContinuousState& state = continuous_[i];
      if (has_baseline_) --state.window_bins[BinOf(state, v)];
    } else {
      CategoricalState& state = categorical_[i];
      const int idx = static_cast<int>(v);
      if (idx >= 0 && static_cast<size_t>(idx) < state.window_counts.size()) {
        --state.window_counts[static_cast<size_t>(idx)];
      }
    }
  }
}

FeatureWindowStats RollingStats::Stats(size_t feature_index) const {
  FeatureWindowStats out;
  const ContinuousState& state = continuous_[feature_index];
  if (!state.min_deque.empty()) {
    out.window_min = state.min_deque.front().second;
    out.window_max = state.max_deque.front().second;
  }
  out.count = state.count;
  out.mean = state.mean;
  out.variance =
      state.count > 0 ? state.m2 / static_cast<double>(state.count) : 0.0;
  return out;
}

const std::vector<uint64_t>& RollingStats::CategoryCounts(
    size_t feature_index) const {
  return categorical_[feature_index].window_counts;
}

double RollingStats::Psi(size_t feature_index) const {
  if (!has_baseline_) return 0.0;
  const FeatureSpec& spec = schema_.feature(feature_index);
  double psi = 0.0;
  if (spec.type == FeatureType::kContinuous) {
    const ContinuousState& state = continuous_[feature_index];
    uint64_t total = 0;
    for (uint64_t c : state.window_bins) total += c;
    if (total == 0) return 0.0;
    for (size_t b = 0; b < state.window_bins.size(); ++b) {
      psi += PsiTerm(
          static_cast<double>(state.window_bins[b]) / static_cast<double>(total),
          state.baseline_props[b]);
    }
  } else {
    const CategoricalState& state = categorical_[feature_index];
    uint64_t total = 0;
    for (uint64_t c : state.window_counts) total += c;
    if (total == 0) return 0.0;
    for (size_t c = 0; c < state.window_counts.size(); ++c) {
      psi += PsiTerm(static_cast<double>(state.window_counts[c]) /
                         static_cast<double>(total),
                     state.baseline_props[c]);
    }
  }
  return psi;
}

std::vector<EncoderFeatureDrift> RollingStats::DiffAgainstEncoder(
    const TabularEncoder& encoder) const {
  std::vector<EncoderFeatureDrift> out;
  for (size_t i = 0; i < schema_.num_features(); ++i) {
    if (schema_.feature(i).type != FeatureType::kContinuous) continue;
    EncoderFeatureDrift drift;
    drift.feature_index = i;
    drift.frozen_min = encoder.feature_min()[i];
    drift.frozen_max = encoder.feature_max()[i];
    const FeatureWindowStats stats = Stats(i);
    drift.window_min = stats.window_min;
    drift.window_max = stats.window_max;
    uint64_t outside = 0, present = 0;
    for (const std::vector<double>& row : ring_) {
      const double v = row[i];
      if (std::isnan(v)) continue;
      ++present;
      if (v < drift.frozen_min || v > drift.frozen_max) ++outside;
    }
    drift.out_of_range_fraction =
        present > 0
            ? static_cast<double>(outside) / static_cast<double>(present)
            : 0.0;
    out.push_back(drift);
  }
  return out;
}

}  // namespace stream
}  // namespace cfx
