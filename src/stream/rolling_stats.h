// Rolling per-feature statistics over a bounded window of the most recent
// streamed rows, diffable against a fitted TabularEncoder's frozen stats.
//
// The feasibility the paper reports is defined relative to the data
// manifold the encoder was fitted on; when the live stream drifts, those
// frozen statistics go stale. This class is the online view:
//   * continuous features — exact windowed min/max (monotonic deques,
//     amortised O(1) per row), streaming mean/variance over everything seen
//     (Welford, numerically stable), and a windowed histogram over bins
//     anchored to a baseline sample;
//   * categorical/binary features — windowed category-frequency counters.
//
// Drift is quantified per feature as the Population Stability Index
//     PSI = sum_b (cur_b - base_b) * ln(cur_b / base_b)
// between the baseline bin/category proportions (captured once from a
// reference table, normally the training split) and the current window's,
// with epsilon smoothing so empty bins stay finite. The usual reading:
// < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 action required.
//
// Not thread-safe: one ingest thread owns an instance (src/stream/ingest.h
// snapshots under its own lock for observers).
#ifndef CFX_STREAM_ROLLING_STATS_H_
#define CFX_STREAM_ROLLING_STATS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/status.h"
#include "src/data/encoder.h"
#include "src/data/schema.h"
#include "src/data/table.h"

namespace cfx {
namespace stream {

/// Tuning knobs.
struct RollingStatsConfig {
  /// Rows retained in the sliding window.
  size_t window = 1024;
  /// Interior histogram bins per continuous feature (plus one underflow
  /// and one overflow bin outside the baseline range).
  size_t psi_bins = 10;
};

/// Snapshot of one feature's rolling state.
struct FeatureWindowStats {
  /// Windowed extrema (continuous features; 0/NaN-free by construction —
  /// missing cells never enter the window).
  double window_min = 0.0;
  double window_max = 0.0;
  /// Streaming Welford moments over every non-missing value ever seen.
  double mean = 0.0;
  double variance = 0.0;
  uint64_t count = 0;  ///< Non-missing values seen (all time).
};

/// One continuous feature's drift against the encoder's frozen fit.
struct EncoderFeatureDrift {
  size_t feature_index = 0;
  double frozen_min = 0.0;  ///< Encoder's fitted min.
  double frozen_max = 0.0;
  double window_min = 0.0;  ///< Current window's observed min.
  double window_max = 0.0;
  /// Fraction of window values outside [frozen_min, frozen_max] — rows the
  /// frozen normalisation maps outside [0, 1].
  double out_of_range_fraction = 0.0;
};

/// Sliding-window statistics for every schema feature.
class RollingStats {
 public:
  RollingStats(const Schema& schema, RollingStatsConfig config);

  /// Captures the baseline distribution for PSI: per continuous feature,
  /// equal-width bin edges over the reference's observed [min, max] plus
  /// under/overflow bins; per categorical/binary feature, category
  /// proportions. Fails on a reference with no usable rows. Replaces any
  /// previous baseline and clears nothing else.
  Status FitBaseline(const Table& reference);
  bool has_baseline() const { return has_baseline_; }

  /// Folds one row (schema order, NaN = missing) into the window, evicting
  /// the oldest row once the window is full. Missing cells do not enter
  /// any statistic.
  void Add(const std::vector<double>& values);

  size_t rows_seen() const { return rows_seen_; }
  /// Rows currently inside the window.
  size_t window_rows() const { return ring_.size(); }

  FeatureWindowStats Stats(size_t feature_index) const;

  /// Current window's category counts (categorical/binary features).
  const std::vector<uint64_t>& CategoryCounts(size_t feature_index) const;

  /// PSI of feature `fi`'s window distribution against the baseline.
  /// Requires FitBaseline; 0 when the window is empty.
  double Psi(size_t feature_index) const;

  /// Window-vs-frozen-fit comparison for every continuous feature.
  std::vector<EncoderFeatureDrift> DiffAgainstEncoder(
      const TabularEncoder& encoder) const;

 private:
  struct ContinuousState {
    /// Monotonic deques of (sequence, value): front of `min_deque` is the
    /// window minimum. Sequence numbers evict entries that left the window.
    std::deque<std::pair<uint64_t, double>> min_deque;
    std::deque<std::pair<uint64_t, double>> max_deque;
    /// Welford accumulators (all-time).
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    /// Windowed histogram on baseline-anchored bins:
    /// [underflow, bin 0 .. bin k-1, overflow].
    std::vector<uint64_t> window_bins;
    /// Baseline proportions on the same bins, epsilon-smoothed.
    std::vector<double> baseline_props;
    double baseline_lo = 0.0;  ///< Bin-range anchors (baseline min/max).
    double baseline_hi = 1.0;
  };
  struct CategoricalState {
    std::vector<uint64_t> window_counts;  ///< Per category index.
    std::vector<double> baseline_props;
  };

  size_t BinOf(const ContinuousState& state, double v) const;
  void Evict(const std::vector<double>& values);

  Schema schema_;
  RollingStatsConfig config_;
  bool has_baseline_ = false;
  uint64_t rows_seen_ = 0;       ///< Also the eviction sequence clock.
  std::deque<std::vector<double>> ring_;  ///< Raw rows inside the window.
  std::vector<ContinuousState> continuous_;    ///< Indexed by feature.
  std::vector<CategoricalState> categorical_;  ///< Indexed by feature.
};

}  // namespace stream
}  // namespace cfx

#endif  // CFX_STREAM_ROLLING_STATS_H_
