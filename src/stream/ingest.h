// Streaming ingest pipeline: byte chunks in, rolling statistics + drift
// gauges out — the online half of ROADMAP item 2.
//
// StreamIngest owns one ingest thread and a bounded chunk queue. Producers
// (a socket reader, a file tailer, the serving front end) Offer() raw byte
// chunks; the thread frames them into validated rows (StreamFramer), folds
// each row into the RollingStats window, and every `rescore_every_rows`
// rows publishes the drift series through the global MetricsRegistry:
//   * stream/rows_ingested        counter — validated rows folded in;
//   * stream/chunks               counter — byte chunks consumed;
//   * stream/errors               counter — framing/validation failures;
//   * drift/<feature>/psi         gauge   — per-feature PSI vs baseline;
//   * drift/rescore/validity_rate / feasibility_rate gauges + runs counter
//     (via DriftEvaluator) when a pipeline is bound.
//
// Backpressure mirrors the serving scheduler's contract: the chunk queue
// is bounded and Offer never blocks — a full queue rejects with
// ResourceExhausted and the producer decides (drop, retry, shed).
//
// Error policy: the framer's strict validation is fatal for the stream —
// the first malformed row latches into status(), stream/errors increments,
// and later chunks are dropped (counted, not parsed). A transport that
// wants to resume frames a new stream after Reset-by-reconnect; silently
// resynchronising inside a corrupt byte stream is how bad rows sneak into
// the window unnoticed.
//
// CfServer integration: AttachStreamIngest (opt-in) starts/stops this
// pipeline with the server and feeds served counterfactuals into the
// DriftEvaluator's reservoir from the dispatch path — one pointer check
// when detached, zero contact with the lock-free submit ring either way.
#ifndef CFX_STREAM_INGEST_H_
#define CFX_STREAM_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/stream/drift.h"
#include "src/stream/framer.h"
#include "src/stream/rolling_stats.h"

namespace cfx {
namespace stream {

/// Tuning knobs for the whole ingest pipeline.
struct StreamIngestConfig {
  FramerConfig framer;
  RollingStatsConfig stats;
  DriftEvalConfig drift;
  /// Re-score the reservoir and republish drift gauges every N ingested
  /// rows (0: only at Stop).
  size_t rescore_every_rows = 512;
  /// Bound on queued, not-yet-framed chunks; Offer rejects beyond it.
  size_t max_queued_chunks = 256;
};

/// Bounded-queue, single-thread streaming ingest + drift publication.
class StreamIngest {
 public:
  StreamIngest(const Schema& schema, StreamIngestConfig config);
  ~StreamIngest();

  StreamIngest(const StreamIngest&) = delete;
  StreamIngest& operator=(const StreamIngest&) = delete;

  /// Enables counterfactual re-scoring: `encoder`/`constraints` borrowed
  /// (must outlive this object, constraints may be null), `predictor` is
  /// the frozen model's batch hard-label function. Must precede Start().
  Status BindPipeline(const TabularEncoder* encoder, BatchPredictor predictor,
                      const ConstraintSet* constraints,
                      ConstraintTolerance tol = ConstraintTolerance());

  /// Captures the PSI baseline (normally the training split). Must precede
  /// Start().
  Status FitBaseline(const Table& reference);

  /// Spawns the ingest thread. Fails if already started.
  Status Start();

  /// Drains queued chunks, flushes the framer's partial final line, runs a
  /// final re-score + gauge publication, and joins the thread. Idempotent.
  void Stop();

  /// Enqueues a byte chunk. Never blocks: ResourceExhausted on a full
  /// queue, FailedPrecondition once stopped. Chunks may split rows and
  /// cells at any byte offset.
  Status Offer(std::string chunk);

  /// Offers a served counterfactual triple to the drift reservoir (no-op
  /// without a bound pipeline). Safe from any thread; called by CfServer's
  /// dispatch path when attached.
  void ObserveServed(const Matrix& x, const Matrix& cf, int desired);

  /// Validated rows folded into the window so far.
  uint64_t rows_ingested() const {
    return rows_ingested_.load(std::memory_order_relaxed);
  }
  /// First framing/validation error, OK while healthy. Latched.
  Status status() const;
  /// Most recent re-scoring report (zeroes before the first run).
  DriftReport last_report() const;
  /// Current PSI of feature `fi` (stats lock taken briefly).
  double Psi(size_t feature_index) const;
  /// Window stats snapshot of feature `fi`.
  FeatureWindowStats Stats(size_t feature_index) const;
  /// Window-vs-frozen-encoder diff (requires a bound pipeline's encoder).
  std::vector<EncoderFeatureDrift> DiffAgainstEncoder() const;

  const Schema& schema() const { return schema_; }
  DriftEvaluator* evaluator() { return evaluator_.get(); }

 private:
  void IngestLoop();
  void ConsumeChunk(const std::string& chunk);
  /// Publishes per-feature PSI gauges and runs the evaluator. stats_mu_
  /// must NOT be held (taken inside).
  void RescoreAndPublish();

  Schema schema_;
  StreamIngestConfig config_;

  /// Guards stats_ (folded by the ingest thread, snapshotted by readers).
  mutable std::mutex stats_mu_;
  RollingStats stats_;

  StreamFramer framer_;  ///< Ingest-thread-only after Start().
  std::unique_ptr<DriftEvaluator> evaluator_;  ///< Null until BindPipeline.
  const TabularEncoder* encoder_ = nullptr;    ///< Borrowed; may be null.

  /// Chunk queue: producers push under queue_mu_, the ingest thread pops.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::string> chunks_;  ///< Guarded by queue_mu_.
  bool stopping_ = false;           ///< Guarded by queue_mu_.

  std::mutex lifecycle_mu_;
  bool started_ = false;  ///< Guarded by lifecycle_mu_.
  std::thread thread_;    ///< Guarded by lifecycle_mu_.

  std::atomic<uint64_t> rows_ingested_{0};
  uint64_t rows_since_rescore_ = 0;  ///< Ingest-thread-only.

  mutable std::mutex error_mu_;
  Status error_ = Status::OK();  ///< Guarded by error_mu_. Latched.

  mutable std::mutex report_mu_;
  DriftReport last_report_;  ///< Guarded by report_mu_.

  /// Metric handles; null when collection is disabled.
  metrics::Counter* rows_counter_ = nullptr;
  metrics::Counter* chunks_counter_ = nullptr;
  metrics::Counter* errors_counter_ = nullptr;
  std::vector<metrics::Gauge*> psi_gauges_;  ///< Per feature.
};

}  // namespace stream
}  // namespace cfx

#endif  // CFX_STREAM_INGEST_H_
