// Sharded Table IV coordinator (ROADMAP item 4).
//
// The coordinator owns the cell grid (src/eval/cells.h), hands cells to
// worker connections over the wire protocol (src/eval/protocol.h), and
// merges per-cell results back into rendered tables. Determinism contract:
// results are merged by grid index, never arrival order, so the merged
// tables are bitwise identical to the single-process sweep
// (RunSingleProcessSweep / RunTableFour) no matter how many workers ran or
// how cells were scheduled — the eval_shard tests and the ci.sh
// eval_shard_smoke gate diff the two byte-for-byte.
//
// Failure handling: a worker that dies, times out on a cell, or reports a
// cell error costs that cell one retry on a different worker (the failing
// worker is excluded). A second failure of the same cell fails the sweep
// with the underlying status; losing every worker with cells outstanding
// fails it too. No call blocks without a deadline.
#ifndef CFX_EVAL_COORDINATOR_H_
#define CFX_EVAL_COORDINATOR_H_

#include <string>
#include <vector>

#include "src/eval/cells.h"
#include "src/wire/transport.h"

namespace cfx {
namespace eval {

struct CoordinatorOptions {
  size_t expected_workers = 1;   ///< Accepted before dispatch starts.
  int accept_timeout_ms = 60000; ///< Total budget for worker connects.
  int cell_timeout_ms = 600000;  ///< Assign -> result deadline per cell.
  int io_timeout_ms = 30000;     ///< Per-frame send budget.
};

/// One merged (dataset, seed) table — the sharded analogue of
/// TableFourResult, with the seed made explicit because the sweep spans
/// several.
struct MergedTable {
  DatasetId dataset = DatasetId::kAdult;
  uint64_t seed = 42;
  std::vector<MetricsRow> rows;  ///< Method order of the grid.
  size_t eval_rows = 0;
  std::string rendered;
};

/// A finished sweep: per-cell results in grid order plus the merged tables
/// and scheduling statistics.
struct ShardedSweep {
  std::vector<EvalCellResult> cells;  ///< Indexed by grid position.
  std::vector<MergedTable> tables;    ///< Dataset-outer, seed-middle order.
  size_t retries = 0;       ///< Cells that needed their second attempt.
  size_t workers_lost = 0;  ///< Connections dropped mid-sweep.
};

/// Groups grid-ordered cells into rendered tables. Shared by the
/// coordinator and the single-process reference so both render through the
/// exact same code path. `cells.size()` must equal the grid size.
StatusOr<std::vector<MergedTable>> MergeCells(
    const std::vector<DatasetId>& datasets, const std::vector<uint64_t>& seeds,
    const std::vector<MethodKind>& kinds, const RunConfig& base,
    const std::vector<EvalCellResult>& cells);

/// The single-process reference: runs every cell in this process (through
/// the same RunTableFourCell seam the workers use) and merges identically.
StatusOr<ShardedSweep> RunSingleProcessSweep(
    const std::vector<DatasetId>& datasets, const std::vector<uint64_t>& seeds,
    const std::vector<MethodKind>& kinds, const RunConfig& base);

/// Drives one sharded sweep over a bound listener.
class Coordinator {
 public:
  Coordinator(wire::Listener listener, CoordinatorOptions options);

  /// Accepts `expected_workers` connections (validating the Hello
  /// handshake), dispatches the grid, retries failures once, merges.
  StatusOr<ShardedSweep> Run(const std::vector<DatasetId>& datasets,
                             const std::vector<uint64_t>& seeds,
                             const std::vector<MethodKind>& kinds,
                             const RunConfig& base);

  const wire::WireAddr& listen_addr() const { return listener_.local_addr(); }

 private:
  wire::Listener listener_;
  CoordinatorOptions options_;
};

/// Hexfloat (%a) dump of every cell metric, one line per cell in grid
/// order — the bitwise-comparison artifact the CI gate diffs between the
/// sharded and single-process runs.
std::string HexDumpSweep(const std::vector<DatasetId>& datasets,
                         const std::vector<uint64_t>& seeds,
                         const std::vector<MethodKind>& kinds,
                         const ShardedSweep& sweep);

}  // namespace eval
}  // namespace cfx

#endif  // CFX_EVAL_COORDINATOR_H_
