#include "src/eval/coordinator.h"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/string_util.h"
#include "src/eval/protocol.h"
#include "src/metrics/report.h"

namespace cfx {
namespace eval {
namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// One accepted worker and its in-flight assignment.
struct WorkerState {
  wire::Connection conn;
  size_t id = 0;
  bool alive = true;
  /// Grid index in flight, or kIdle.
  static constexpr size_t kIdle = static_cast<size_t>(-1);
  size_t cell = kIdle;
  int64_t deadline_ms = 0;
};

}  // namespace

StatusOr<std::vector<MergedTable>> MergeCells(
    const std::vector<DatasetId>& datasets, const std::vector<uint64_t>& seeds,
    const std::vector<MethodKind>& kinds, const RunConfig& base,
    const std::vector<EvalCellResult>& cells) {
  const size_t expected = datasets.size() * seeds.size() * kinds.size();
  if (cells.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("merge: %zu cells for a %zu-cell grid", cells.size(),
                  expected));
  }
  std::vector<MergedTable> tables;
  tables.reserve(datasets.size() * seeds.size());
  size_t index = 0;
  for (DatasetId dataset : datasets) {
    for (uint64_t seed : seeds) {
      MergedTable table;
      table.dataset = dataset;
      table.seed = seed;
      for (size_t k = 0; k < kinds.size(); ++k) {
        const EvalCellResult& cell = cells[index++];
        table.rows.push_back(cell.row);
        table.eval_rows = cell.eval_rows;
      }
      RunConfig config = base;
      config.seed = seed;
      table.rendered = RenderMetricsTable(
          TableFourTitle(dataset, config, table.eval_rows), table.rows);
      tables.push_back(std::move(table));
    }
  }
  return tables;
}

StatusOr<ShardedSweep> RunSingleProcessSweep(
    const std::vector<DatasetId>& datasets, const std::vector<uint64_t>& seeds,
    const std::vector<MethodKind>& kinds, const RunConfig& base) {
  const std::vector<EvalCellKey> grid = BuildCellGrid(datasets, seeds, kinds);
  ShardedSweep sweep;
  sweep.cells.reserve(grid.size());
  ExperimentCache cache;
  for (const EvalCellKey& key : grid) {
    auto cell = RunEvalCell(key, base, &cache);
    if (!cell.ok()) return cell.status();
    sweep.cells.push_back(std::move(*cell));
  }
  auto tables = MergeCells(datasets, seeds, kinds, base, sweep.cells);
  if (!tables.ok()) return tables.status();
  sweep.tables = std::move(*tables);
  return sweep;
}

Coordinator::Coordinator(wire::Listener listener, CoordinatorOptions options)
    : listener_(std::move(listener)), options_(options) {}

StatusOr<ShardedSweep> Coordinator::Run(const std::vector<DatasetId>& datasets,
                                        const std::vector<uint64_t>& seeds,
                                        const std::vector<MethodKind>& kinds,
                                        const RunConfig& base) {
  static metrics::Counter* cells_done = metrics::GetCounter("eval/cells/done");
  static metrics::Counter* cells_retried =
      metrics::GetCounter("eval/cells/retried");
  static metrics::Counter* lost_counter =
      metrics::GetCounter("eval/workers/lost");

  const std::vector<EvalCellKey> grid = BuildCellGrid(datasets, seeds, kinds);
  if (grid.empty()) return Status::InvalidArgument("empty evaluation grid");
  if (options_.expected_workers == 0) {
    return Status::InvalidArgument("expected_workers must be >= 1");
  }

  // Phase 1: accept + handshake every expected worker.
  std::vector<WorkerState> workers;
  const int64_t accept_deadline = NowMs() + options_.accept_timeout_ms;
  while (workers.size() < options_.expected_workers) {
    int64_t remaining = accept_deadline - NowMs();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(
          StrFormat("accepted %zu of %zu workers before the accept timeout",
                    workers.size(), options_.expected_workers));
    }
    auto conn = listener_.Accept(static_cast<int>(remaining));
    if (!conn.ok()) return conn.status();
    wire::Frame hello;
    Status st = conn->ReceiveFrame(&hello, options_.io_timeout_ms);
    if (!st.ok()) {
      return Status(st.code(), "worker handshake: " + st.message());
    }
    auto msg = ParseHelloFrame(hello);
    if (!msg.ok()) return msg.status();
    WorkerState w;
    w.conn = std::move(*conn);
    w.id = workers.size();
    workers.push_back(std::move(w));
    CFX_LOG(Info) << "eval worker " << workers.back().id << " connected";
  }

  // Phase 2: dispatch. Cells are retried at most once, on a different
  // worker than the one that failed them (unless it is the last one
  // standing).
  std::deque<size_t> pending;
  for (size_t i = 0; i < grid.size(); ++i) pending.push_back(i);
  std::vector<int> attempts(grid.size(), 0);
  std::vector<size_t> excluded(grid.size(), WorkerState::kIdle);
  std::vector<bool> done(grid.size(), false);
  std::vector<EvalCellResult> results(grid.size());
  size_t done_count = 0;
  ShardedSweep sweep;

  auto alive_count = [&workers]() {
    size_t n = 0;
    for (const WorkerState& w : workers) n += w.alive ? 1 : 0;
    return n;
  };

  // A cell failed on `worker_id` (error, timeout or lost connection):
  // requeue for its single retry, or fail the sweep.
  auto fail_cell = [&](size_t cell, size_t worker_id,
                       const Status& cause) -> Status {
    if (attempts[cell] >= 2) {
      return Status(cause.code(),
                    StrFormat("cell %s failed twice (last: %s)",
                              CellKeyToString(grid[cell]).c_str(),
                              cause.message().c_str()));
    }
    CFX_LOG(Warning) << "cell " << CellKeyToString(grid[cell]) << " attempt "
                  << attempts[cell] << " failed (" << cause.ToString()
                  << "); retrying on another worker";
    excluded[cell] = worker_id;
    pending.push_front(cell);
    ++sweep.retries;
    if (cells_retried != nullptr) cells_retried->Add(1);
    return Status::OK();
  };

  auto drop_worker = [&](WorkerState& w) {
    if (!w.alive) return;
    w.alive = false;
    w.conn.Close();
    ++sweep.workers_lost;
    if (lost_counter != nullptr) lost_counter->Add(1);
  };

  // Drains every decoded frame a worker has ready. Returns non-OK only for
  // sweep-fatal conditions.
  auto handle_frames = [&](WorkerState& w) -> Status {
    while (w.conn.HasFrame()) {
      wire::Frame frame = w.conn.PopFrame();
      if (frame.type == wire::FrameType::kResult) {
        auto msg = ParseResultFrame(frame);
        if (!msg.ok()) return msg.status();
        if (msg->cell >= grid.size() || w.cell != msg->cell) {
          return Status::Internal(
              StrFormat("worker %zu answered cell %llu while assigned %zu",
                        w.id, static_cast<unsigned long long>(msg->cell),
                        w.cell));
        }
        if (!done[msg->cell]) {
          results[msg->cell] = EvalCellResult{msg->row, msg->eval_rows};
          done[msg->cell] = true;
          ++done_count;
          if (cells_done != nullptr) cells_done->Add(1);
        }
        w.cell = WorkerState::kIdle;
      } else if (frame.type == wire::FrameType::kCellError) {
        auto msg = ParseCellErrorFrame(frame);
        if (!msg.ok()) return msg.status();
        if (msg->cell >= grid.size() || w.cell != msg->cell) {
          return Status::Internal(
              StrFormat("worker %zu errored cell %llu while assigned %zu",
                        w.id, static_cast<unsigned long long>(msg->cell),
                        w.cell));
        }
        w.cell = WorkerState::kIdle;
        CFX_RETURN_IF_ERROR(fail_cell(
            msg->cell, w.id, Status::Internal("worker: " + msg->message)));
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected frame type %u from worker %zu",
                      static_cast<unsigned>(frame.type), w.id));
      }
    }
    return Status::OK();
  };

  while (done_count < grid.size()) {
    if (alive_count() == 0) {
      return Status::Internal(
          StrFormat("all workers lost with %zu of %zu cells outstanding",
                    grid.size() - done_count, grid.size()));
    }

    // Assign pending cells to idle workers.
    for (WorkerState& w : workers) {
      if (!w.alive || w.cell != WorkerState::kIdle || pending.empty()) {
        continue;
      }
      // First pending cell not excluded on this worker; the exclusion is
      // waived when no other worker is left to take it.
      auto it = std::find_if(pending.begin(), pending.end(), [&](size_t c) {
        return excluded[c] != w.id || alive_count() == 1;
      });
      if (it == pending.end()) continue;
      const size_t cell = *it;
      pending.erase(it);
      ++attempts[cell];
      wire::Frame assign = MakeAssignFrame(cell, grid[cell], base);
      Status st = w.conn.SendFrame(assign, options_.io_timeout_ms);
      if (!st.ok()) {
        drop_worker(w);
        CFX_RETURN_IF_ERROR(fail_cell(cell, w.id, st));
        continue;
      }
      w.cell = cell;
      w.deadline_ms = NowMs() + options_.cell_timeout_ms;
    }

    // Wait for any worker to become readable, bounded by the nearest cell
    // deadline (and a 1 s cap so lost-worker accounting stays fresh).
    std::vector<struct pollfd> fds;
    std::vector<size_t> fd_worker;
    int64_t next_deadline = NowMs() + 1000;
    for (size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back({workers[i].conn.fd(), POLLIN, 0});
      fd_worker.push_back(i);
      if (workers[i].cell != WorkerState::kIdle) {
        next_deadline = std::min(next_deadline, workers[i].deadline_ms);
      }
    }
    int wait_ms =
        static_cast<int>(std::max<int64_t>(0, next_deadline - NowMs()));
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), wait_ms);
    if (rc < 0 && errno != EINTR) {
      return Status::Internal("poll failed in coordinator loop");
    }

    // Drain readable workers.
    for (size_t i = 0; i < fds.size(); ++i) {
      if (rc <= 0) break;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerState& w = workers[fd_worker[i]];
      if (!w.alive) continue;
      Status st = w.conn.Pump();
      CFX_RETURN_IF_ERROR(handle_frames(w));
      if (!st.ok()) {
        // Connection-level failure (peer closed, decode error). The
        // in-flight cell, if any, gets its retry.
        const size_t cell = w.cell;
        drop_worker(w);
        if (cell != WorkerState::kIdle && !done[cell]) {
          CFX_RETURN_IF_ERROR(fail_cell(cell, w.id, st));
        }
      }
    }

    // Expire cells past their deadline.
    const int64_t now = NowMs();
    for (WorkerState& w : workers) {
      if (!w.alive || w.cell == WorkerState::kIdle) continue;
      if (now < w.deadline_ms) continue;
      const size_t cell = w.cell;
      drop_worker(w);
      CFX_RETURN_IF_ERROR(fail_cell(
          cell, w.id,
          Status::DeadlineExceeded(StrFormat(
              "worker %zu exceeded the %d ms cell deadline", w.id,
              options_.cell_timeout_ms))));
    }
  }

  // Phase 3: drain — every worker gets a shutdown; failures here are moot.
  for (WorkerState& w : workers) {
    if (!w.alive) continue;
    (void)w.conn.SendFrame(MakeShutdownFrame(), options_.io_timeout_ms);
    w.conn.Close();
  }

  sweep.cells = std::move(results);
  auto tables = MergeCells(datasets, seeds, kinds, base, sweep.cells);
  if (!tables.ok()) return tables.status();
  sweep.tables = std::move(*tables);
  return sweep;
}

std::string HexDumpSweep(const std::vector<DatasetId>& datasets,
                         const std::vector<uint64_t>& seeds,
                         const std::vector<MethodKind>& kinds,
                         const ShardedSweep& sweep) {
  const std::vector<EvalCellKey> grid = BuildCellGrid(datasets, seeds, kinds);
  std::string out;
  for (size_t i = 0; i < grid.size() && i < sweep.cells.size(); ++i) {
    const EvalCellResult& cell = sweep.cells[i];
    const MethodMetrics& m = cell.row.metrics;
    out += StrFormat(
        "%zu %s %s validity=%a feas_u=%a feas_b=%a cont=%a cat=%a "
        "sparsity=%a show=%d%d rows=%zu\n",
        i, CellKeyToString(grid[i]).c_str(), m.method_name.c_str(),
        m.validity, m.feasibility_unary, m.feasibility_binary,
        m.continuous_proximity, m.categorical_proximity, m.sparsity,
        cell.row.show_unary ? 1 : 0, cell.row.show_binary ? 1 : 0,
        cell.eval_rows);
  }
  return out;
}

}  // namespace eval
}  // namespace cfx
