// Evaluation cells — the unit of distribution of the sharded Table IV
// harness (ROADMAP item 4).
//
// A cell is one (dataset, method, seed) point of the experiment grid. The
// grid is laid out in a canonical order (datasets outer, seeds middle,
// methods inner, each in caller-given order), every cell carries its grid
// index on the wire, and the coordinator merges results by that index — so
// the merged tables are independent of worker count, scheduling and arrival
// order, and bitwise identical to the single-process sweep.
//
// RunEvalCell is the worker-side entry point: it prepares (or reuses) the
// Experiment for the cell's (dataset, scale, seed) and runs the shared
// RunTableFourCell seam — the same code path the single-process
// RunTableFour drives, which is what makes the bitwise contract hold by
// construction.
#ifndef CFX_EVAL_CELLS_H_
#define CFX_EVAL_CELLS_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/registry.h"
#include "src/core/table_four.h"

namespace cfx {
namespace eval {

/// One grid point.
struct EvalCellKey {
  DatasetId dataset = DatasetId::kAdult;
  MethodKind kind = MethodKind::kOursUnary;
  uint64_t seed = 42;
};

/// "adult/ours_unary/seed42" — log and error labels.
std::string CellKeyToString(const EvalCellKey& key);

/// Canonical grid layout: datasets outer, seeds middle, methods inner.
std::vector<EvalCellKey> BuildCellGrid(const std::vector<DatasetId>& datasets,
                                       const std::vector<uint64_t>& seeds,
                                       const std::vector<MethodKind>& kinds);

/// Stable wire tokens for every MethodKind ("ours_unary", "cem", "dice",
/// ...). ParseMethodKindName accepts exactly these; MethodKindToken
/// round-trips.
const char* MethodKindToken(MethodKind kind);
bool ParseMethodKindName(const std::string& name, MethodKind* out);

/// Stable wire tokens for datasets ("adult" | "census" | "law") — the
/// display names from DatasetName() carry spaces and capitals, so the wire
/// uses these instead.
const char* DatasetToken(DatasetId id);
bool ParseDatasetName(const std::string& name, DatasetId* out);

/// Bounded per-worker cache of prepared Experiments, keyed by
/// (dataset, scale, seed). A worker sweeping several methods of one
/// dataset pays dataset generation + classifier training once, exactly
/// like the single-process sweep sharing one Experiment.
class ExperimentCache {
 public:
  /// `capacity` experiments retained, least-recently-used evicted.
  explicit ExperimentCache(size_t capacity = 3);

  /// The prepared Experiment for (dataset, config.scale, config.seed),
  /// creating it on miss.
  StatusOr<Experiment*> Acquire(DatasetId dataset, const RunConfig& config);

  size_t size() const { return entries_.size(); }
  size_t cold_starts() const { return cold_starts_; }

 private:
  struct Entry {
    DatasetId dataset;
    Scale scale;
    uint64_t seed;
    std::unique_ptr<Experiment> experiment;
  };

  size_t capacity_;
  size_t cold_starts_ = 0;
  std::deque<Entry> entries_;  ///< Front = most recently used.
};

/// One computed cell.
struct EvalCellResult {
  MetricsRow row;
  size_t eval_rows = 0;
};

/// Runs one cell: config is `base` with the seed replaced by the cell's.
StatusOr<EvalCellResult> RunEvalCell(const EvalCellKey& key,
                                     const RunConfig& base,
                                     ExperimentCache* cache);

}  // namespace eval
}  // namespace cfx

#endif  // CFX_EVAL_CELLS_H_
