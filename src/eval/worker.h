// Worker side of the sharded Table IV harness: connect, handshake, then
// loop running assigned cells until the coordinator says shutdown.
#ifndef CFX_EVAL_WORKER_H_
#define CFX_EVAL_WORKER_H_

#include "src/eval/cells.h"
#include "src/wire/transport.h"

namespace cfx {
namespace eval {

struct WorkerOptions {
  /// Max quiet time between coordinator frames before the worker gives up.
  int idle_timeout_ms = 600000;
  /// Per-frame send budget.
  int io_timeout_ms = 30000;
  /// Prepared Experiments kept warm (src/eval/cells.h).
  size_t cache_capacity = 3;
};

/// Runs the worker protocol over an already-connected peer: sends Hello,
/// then serves Assign frames (answering Result or CellError per cell) until
/// a Shutdown frame arrives (returns OK) or the connection fails (returns
/// the transport error). Cell-level failures are reported to the
/// coordinator, not returned — a broken cell must not kill the worker.
Status RunWorkerLoop(wire::Connection& conn, const WorkerOptions& options);

/// Connects to the coordinator (retrying until `connect_timeout_ms` — the
/// worker may start first) and runs the loop.
Status RunWorker(const wire::WireAddr& addr, int connect_timeout_ms,
                 const WorkerOptions& options);

}  // namespace eval
}  // namespace cfx

#endif  // CFX_EVAL_WORKER_H_
