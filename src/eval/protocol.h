// Typed messages of the sharded-evaluation protocol, layered on wire
// frames (src/wire/frame.h).
//
//   worker -> coordinator   Hello     { protocol }
//   coordinator -> worker   Assign    { cell, dataset, method, seed,
//                                       eval_n, scale }
//   worker -> coordinator   Result    { cell, method_name, 6 metrics,
//                                       show_unary, show_binary, eval_rows }
//   worker -> coordinator   CellError { cell, message }
//   coordinator -> worker   Shutdown  { }
//
// Every parser checks the frame type and is strict about field presence and
// types (the FramePayload getters); a protocol-version mismatch in Hello is
// a FailedPrecondition, mirroring the wire-version skew error.
#ifndef CFX_EVAL_PROTOCOL_H_
#define CFX_EVAL_PROTOCOL_H_

#include <string>
#include <vector>

#include "src/eval/cells.h"
#include "src/wire/frame.h"

namespace cfx {
namespace eval {

/// Bumped on incompatible message-schema changes; Hello carries it and the
/// coordinator rejects skewed workers.
constexpr uint64_t kEvalProtocolVersion = 1;

struct HelloMsg {
  uint64_t protocol = 0;
};

struct AssignMsg {
  uint64_t cell = 0;  ///< Grid index (merge key).
  EvalCellKey key;
  uint64_t eval_n = 0;
  Scale scale = Scale::kSmall;
};

struct ResultMsg {
  uint64_t cell = 0;
  MetricsRow row;
  uint64_t eval_rows = 0;
};

struct CellErrorMsg {
  uint64_t cell = 0;
  std::string message;
};

/// Encoded rows + labels, the bulk-data carrier of the format.
struct RowBatchMsg {
  uint64_t batch_index = 0;
  Matrix rows;
  std::vector<double> labels;
};

wire::Frame MakeHelloFrame();
StatusOr<HelloMsg> ParseHelloFrame(const wire::Frame& frame);

wire::Frame MakeAssignFrame(uint64_t cell, const EvalCellKey& key,
                            const RunConfig& base);
StatusOr<AssignMsg> ParseAssignFrame(const wire::Frame& frame);

wire::Frame MakeResultFrame(uint64_t cell, const EvalCellResult& result);
StatusOr<ResultMsg> ParseResultFrame(const wire::Frame& frame);

wire::Frame MakeCellErrorFrame(uint64_t cell, const Status& status);
StatusOr<CellErrorMsg> ParseCellErrorFrame(const wire::Frame& frame);

wire::Frame MakeShutdownFrame();

wire::Frame MakeRowBatchFrame(uint64_t batch_index, const Matrix& rows,
                              const std::vector<double>& labels);
StatusOr<RowBatchMsg> ParseRowBatchFrame(const wire::Frame& frame);

}  // namespace eval
}  // namespace cfx

#endif  // CFX_EVAL_PROTOCOL_H_
