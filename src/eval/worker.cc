#include "src/eval/worker.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/string_util.h"
#include "src/eval/protocol.h"

namespace cfx {
namespace eval {

Status RunWorkerLoop(wire::Connection& conn, const WorkerOptions& options) {
  static metrics::Counter* cells_run = metrics::GetCounter("eval/cells/run");
  static metrics::Counter* cells_failed =
      metrics::GetCounter("eval/cells/failed");

  CFX_RETURN_IF_ERROR(conn.SendFrame(MakeHelloFrame(), options.io_timeout_ms));
  ExperimentCache cache(options.cache_capacity);
  while (true) {
    wire::Frame frame;
    CFX_RETURN_IF_ERROR(conn.ReceiveFrame(&frame, options.idle_timeout_ms));
    if (frame.type == wire::FrameType::kShutdown) return Status::OK();
    if (frame.type != wire::FrameType::kAssign) {
      return Status::InvalidArgument(
          StrFormat("worker: unexpected frame type %u",
                    static_cast<unsigned>(frame.type)));
    }
    auto assign = ParseAssignFrame(frame);
    if (!assign.ok()) return assign.status();

    RunConfig base;
    base.scale = assign->scale;
    base.seed = assign->key.seed;
    base.eval_instances = assign->eval_n;
    CFX_LOG(Info) << "worker running cell " << assign->cell << " ("
                  << CellKeyToString(assign->key) << ")";
    auto cell = RunEvalCell(assign->key, base, &cache);
    if (cell.ok()) {
      if (cells_run != nullptr) cells_run->Add(1);
      CFX_RETURN_IF_ERROR(conn.SendFrame(MakeResultFrame(assign->cell, *cell),
                                         options.io_timeout_ms));
    } else {
      if (cells_failed != nullptr) cells_failed->Add(1);
      CFX_LOG(Warning) << "cell " << CellKeyToString(assign->key)
                    << " failed: " << cell.status().ToString();
      CFX_RETURN_IF_ERROR(
          conn.SendFrame(MakeCellErrorFrame(assign->cell, cell.status()),
                         options.io_timeout_ms));
    }
  }
}

Status RunWorker(const wire::WireAddr& addr, int connect_timeout_ms,
                 const WorkerOptions& options) {
  auto conn = wire::ConnectWithRetry(addr, connect_timeout_ms);
  if (!conn.ok()) return conn.status();
  return RunWorkerLoop(*conn, options);
}

}  // namespace eval
}  // namespace cfx
