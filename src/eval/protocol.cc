#include "src/eval/protocol.h"

#include "src/common/string_util.h"

namespace cfx {
namespace eval {
namespace {

Status ExpectType(const wire::Frame& frame, wire::FrameType want,
                  const char* name) {
  if (frame.type != want) {
    return Status::InvalidArgument(
        StrFormat("expected %s frame, got frame type %u", name,
                  static_cast<unsigned>(frame.type)));
  }
  return Status::OK();
}

#define CFX_ASSIGN_OR_RETURN_STATUS(lhs, expr) \
  auto lhs##_or = (expr);                      \
  if (!lhs##_or.ok()) return lhs##_or.status(); \
  auto lhs = std::move(*lhs##_or)

}  // namespace

wire::Frame MakeHelloFrame() {
  wire::Frame frame;
  frame.type = wire::FrameType::kHello;
  frame.payload.PutU64("protocol", kEvalProtocolVersion);
  return frame;
}

StatusOr<HelloMsg> ParseHelloFrame(const wire::Frame& frame) {
  CFX_RETURN_IF_ERROR(ExpectType(frame, wire::FrameType::kHello, "hello"));
  CFX_ASSIGN_OR_RETURN_STATUS(protocol, frame.payload.GetU64("protocol"));
  if (protocol != kEvalProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("eval protocol version skew: peer speaks %llu, this build "
                  "speaks %llu",
                  static_cast<unsigned long long>(protocol),
                  static_cast<unsigned long long>(kEvalProtocolVersion)));
  }
  HelloMsg msg;
  msg.protocol = protocol;
  return msg;
}

wire::Frame MakeAssignFrame(uint64_t cell, const EvalCellKey& key,
                            const RunConfig& base) {
  wire::Frame frame;
  frame.type = wire::FrameType::kAssign;
  frame.payload.PutU64("cell", cell);
  frame.payload.PutString("dataset", DatasetToken(key.dataset));
  frame.payload.PutString("method", MethodKindToken(key.kind));
  frame.payload.PutU64("seed", key.seed);
  frame.payload.PutU64("eval_n", base.eval_instances);
  frame.payload.PutString("scale", ScaleName(base.scale));
  return frame;
}

StatusOr<AssignMsg> ParseAssignFrame(const wire::Frame& frame) {
  CFX_RETURN_IF_ERROR(ExpectType(frame, wire::FrameType::kAssign, "assign"));
  AssignMsg msg;
  CFX_ASSIGN_OR_RETURN_STATUS(cell, frame.payload.GetU64("cell"));
  msg.cell = cell;
  CFX_ASSIGN_OR_RETURN_STATUS(dataset, frame.payload.GetString("dataset"));
  if (!ParseDatasetName(dataset, &msg.key.dataset)) {
    return Status::InvalidArgument("assign: unknown dataset \"" + dataset +
                                   "\"");
  }
  CFX_ASSIGN_OR_RETURN_STATUS(method, frame.payload.GetString("method"));
  if (!ParseMethodKindName(method, &msg.key.kind)) {
    return Status::InvalidArgument("assign: unknown method \"" + method +
                                   "\"");
  }
  CFX_ASSIGN_OR_RETURN_STATUS(seed, frame.payload.GetU64("seed"));
  msg.key.seed = seed;
  CFX_ASSIGN_OR_RETURN_STATUS(eval_n, frame.payload.GetU64("eval_n"));
  msg.eval_n = eval_n;
  CFX_ASSIGN_OR_RETURN_STATUS(scale, frame.payload.GetString("scale"));
  if (!ParseScaleName(scale, &msg.scale)) {
    return Status::InvalidArgument("assign: unknown scale \"" + scale + "\"");
  }
  return msg;
}

wire::Frame MakeResultFrame(uint64_t cell, const EvalCellResult& result) {
  wire::Frame frame;
  frame.type = wire::FrameType::kResult;
  frame.payload.PutU64("cell", cell);
  frame.payload.PutString("method_name", result.row.metrics.method_name);
  frame.payload.PutF64("validity", result.row.metrics.validity);
  frame.payload.PutF64("feasibility_unary",
                       result.row.metrics.feasibility_unary);
  frame.payload.PutF64("feasibility_binary",
                       result.row.metrics.feasibility_binary);
  frame.payload.PutF64("continuous_proximity",
                       result.row.metrics.continuous_proximity);
  frame.payload.PutF64("categorical_proximity",
                       result.row.metrics.categorical_proximity);
  frame.payload.PutF64("sparsity", result.row.metrics.sparsity);
  frame.payload.PutU64("show_unary", result.row.show_unary ? 1 : 0);
  frame.payload.PutU64("show_binary", result.row.show_binary ? 1 : 0);
  frame.payload.PutU64("eval_rows", result.eval_rows);
  return frame;
}

StatusOr<ResultMsg> ParseResultFrame(const wire::Frame& frame) {
  CFX_RETURN_IF_ERROR(ExpectType(frame, wire::FrameType::kResult, "result"));
  ResultMsg msg;
  CFX_ASSIGN_OR_RETURN_STATUS(cell, frame.payload.GetU64("cell"));
  msg.cell = cell;
  CFX_ASSIGN_OR_RETURN_STATUS(name, frame.payload.GetString("method_name"));
  msg.row.metrics.method_name = std::move(name);
  CFX_ASSIGN_OR_RETURN_STATUS(validity, frame.payload.GetF64("validity"));
  msg.row.metrics.validity = validity;
  CFX_ASSIGN_OR_RETURN_STATUS(feas_u,
                              frame.payload.GetF64("feasibility_unary"));
  msg.row.metrics.feasibility_unary = feas_u;
  CFX_ASSIGN_OR_RETURN_STATUS(feas_b,
                              frame.payload.GetF64("feasibility_binary"));
  msg.row.metrics.feasibility_binary = feas_b;
  CFX_ASSIGN_OR_RETURN_STATUS(cont_prox,
                              frame.payload.GetF64("continuous_proximity"));
  msg.row.metrics.continuous_proximity = cont_prox;
  CFX_ASSIGN_OR_RETURN_STATUS(cat_prox,
                              frame.payload.GetF64("categorical_proximity"));
  msg.row.metrics.categorical_proximity = cat_prox;
  CFX_ASSIGN_OR_RETURN_STATUS(sparsity, frame.payload.GetF64("sparsity"));
  msg.row.metrics.sparsity = sparsity;
  CFX_ASSIGN_OR_RETURN_STATUS(show_u, frame.payload.GetU64("show_unary"));
  msg.row.show_unary = show_u != 0;
  CFX_ASSIGN_OR_RETURN_STATUS(show_b, frame.payload.GetU64("show_binary"));
  msg.row.show_binary = show_b != 0;
  CFX_ASSIGN_OR_RETURN_STATUS(eval_rows, frame.payload.GetU64("eval_rows"));
  msg.eval_rows = eval_rows;
  return msg;
}

wire::Frame MakeCellErrorFrame(uint64_t cell, const Status& status) {
  wire::Frame frame;
  frame.type = wire::FrameType::kCellError;
  frame.payload.PutU64("cell", cell);
  frame.payload.PutString("message", status.ToString());
  return frame;
}

StatusOr<CellErrorMsg> ParseCellErrorFrame(const wire::Frame& frame) {
  CFX_RETURN_IF_ERROR(
      ExpectType(frame, wire::FrameType::kCellError, "cell-error"));
  CellErrorMsg msg;
  CFX_ASSIGN_OR_RETURN_STATUS(cell, frame.payload.GetU64("cell"));
  msg.cell = cell;
  CFX_ASSIGN_OR_RETURN_STATUS(message, frame.payload.GetString("message"));
  msg.message = std::move(message);
  return msg;
}

wire::Frame MakeShutdownFrame() {
  wire::Frame frame;
  frame.type = wire::FrameType::kShutdown;
  return frame;
}

wire::Frame MakeRowBatchFrame(uint64_t batch_index, const Matrix& rows,
                              const std::vector<double>& labels) {
  wire::Frame frame;
  frame.type = wire::FrameType::kRowBatch;
  frame.payload.PutU64("batch_index", batch_index);
  frame.payload.PutMatrix("rows", rows);
  frame.payload.PutF64Array("labels", labels);
  return frame;
}

StatusOr<RowBatchMsg> ParseRowBatchFrame(const wire::Frame& frame) {
  CFX_RETURN_IF_ERROR(
      ExpectType(frame, wire::FrameType::kRowBatch, "row-batch"));
  RowBatchMsg msg;
  CFX_ASSIGN_OR_RETURN_STATUS(batch_index,
                              frame.payload.GetU64("batch_index"));
  msg.batch_index = batch_index;
  CFX_ASSIGN_OR_RETURN_STATUS(rows, frame.payload.GetMatrix("rows"));
  msg.rows = std::move(rows);
  CFX_ASSIGN_OR_RETURN_STATUS(labels, frame.payload.GetF64Array("labels"));
  msg.labels = std::move(labels);
  if (msg.labels.size() != msg.rows.rows()) {
    return Status::InvalidArgument(
        StrFormat("row-batch: %zu labels for %zu rows", msg.labels.size(),
                  msg.rows.rows()));
  }
  return msg;
}

}  // namespace eval
}  // namespace cfx
