#include "src/eval/cells.h"

#include <utility>

#include "src/common/string_util.h"

namespace cfx {
namespace eval {

std::string CellKeyToString(const EvalCellKey& key) {
  return StrFormat("%s/%s/seed%llu", DatasetToken(key.dataset),
                   MethodKindToken(key.kind),
                   static_cast<unsigned long long>(key.seed));
}

std::vector<EvalCellKey> BuildCellGrid(const std::vector<DatasetId>& datasets,
                                       const std::vector<uint64_t>& seeds,
                                       const std::vector<MethodKind>& kinds) {
  std::vector<EvalCellKey> grid;
  grid.reserve(datasets.size() * seeds.size() * kinds.size());
  for (DatasetId dataset : datasets) {
    for (uint64_t seed : seeds) {
      for (MethodKind kind : kinds) {
        grid.push_back(EvalCellKey{dataset, kind, seed});
      }
    }
  }
  return grid;
}

const char* MethodKindToken(MethodKind kind) {
  switch (kind) {
    case MethodKind::kMahajanUnary: return "mahajan_unary";
    case MethodKind::kMahajanBinary: return "mahajan_binary";
    case MethodKind::kRevise: return "revise";
    case MethodKind::kCchvae: return "cchvae";
    case MethodKind::kCem: return "cem";
    case MethodKind::kDiceRandom: return "dice";
    case MethodKind::kFace: return "face";
    case MethodKind::kOursUnary: return "ours_unary";
    case MethodKind::kOursBinary: return "ours_binary";
  }
  return "unknown";
}

bool ParseMethodKindName(const std::string& name, MethodKind* out) {
  for (MethodKind kind : AllMethodKinds()) {
    if (name == MethodKindToken(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const char* DatasetToken(DatasetId id) {
  switch (id) {
    case DatasetId::kAdult: return "adult";
    case DatasetId::kCensus: return "census";
    case DatasetId::kLaw: return "law";
  }
  return "unknown";
}

bool ParseDatasetName(const std::string& name, DatasetId* out) {
  for (DatasetId id :
       {DatasetId::kAdult, DatasetId::kCensus, DatasetId::kLaw}) {
    if (name == DatasetToken(id)) {
      *out = id;
      return true;
    }
  }
  return false;
}

ExperimentCache::ExperimentCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

StatusOr<Experiment*> ExperimentCache::Acquire(DatasetId dataset,
                                               const RunConfig& config) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->dataset == dataset && it->scale == config.scale &&
        it->seed == config.seed) {
      // Move to front (most recently used).
      Entry hit = std::move(*it);
      entries_.erase(it);
      entries_.push_front(std::move(hit));
      return entries_.front().experiment.get();
    }
  }
  auto experiment = Experiment::Create(dataset, config);
  if (!experiment.ok()) return experiment.status();
  ++cold_starts_;
  entries_.push_front(
      Entry{dataset, config.scale, config.seed, std::move(*experiment)});
  while (entries_.size() > capacity_) entries_.pop_back();
  return entries_.front().experiment.get();
}

StatusOr<EvalCellResult> RunEvalCell(const EvalCellKey& key,
                                     const RunConfig& base,
                                     ExperimentCache* cache) {
  RunConfig config = base;
  config.seed = key.seed;
  auto experiment = cache->Acquire(key.dataset, config);
  if (!experiment.ok()) return experiment.status();
  auto cell = RunTableFourCell(**experiment, key.kind);
  if (!cell.ok()) return cell.status();
  EvalCellResult result;
  result.row = cell->row;
  result.eval_rows = cell->eval_rows;
  return result;
}

}  // namespace eval
}  // namespace cfx
