#include "src/datasets/spec.h"

#include <cmath>

namespace cfx {

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kAdult: return "Adult";
    case DatasetId::kCensus: return "KDD-Census Income";
    case DatasetId::kLaw: return "Law School";
  }
  return "unknown";
}

namespace {

// Reduced totals used at Scale::kSmall (single-core friendly); cleaned
// counts are derived from the paper's cleaned/total ratio.
constexpr size_t kSmallAdult = 6000;
constexpr size_t kSmallCensus = 8000;
constexpr size_t kSmallLaw = 4000;

const DatasetInfo kAdultInfo = {
    DatasetId::kAdult,
    "Adult",
    /*paper_total_instances=*/48842,
    /*paper_clean_instances=*/32561,
    /*target_class=*/"Income",
    /*unary_feature=*/"age",
    /*binary_cause=*/"education",
    /*binary_effect=*/"age",
    /*unary_hyper=*/{0.2f, 2048, 25},
    /*binary_hyper=*/{0.2f, 2048, 50},
};

const DatasetInfo kCensusInfo = {
    DatasetId::kCensus,
    "KDD-Census Income",
    /*paper_total_instances=*/299285,
    /*paper_clean_instances=*/199522,
    /*target_class=*/"Income",
    /*unary_feature=*/"age",
    /*binary_cause=*/"education",
    /*binary_effect=*/"age",
    /*unary_hyper=*/{0.1f, 2048, 25},
    /*binary_hyper=*/{0.1f, 2048, 25},
};

const DatasetInfo kLawInfo = {
    DatasetId::kLaw,
    "Law School",
    /*paper_total_instances=*/20798,
    /*paper_clean_instances=*/20512,
    /*target_class=*/"Pass the bar",
    /*unary_feature=*/"lsat",
    /*binary_cause=*/"tier",
    /*binary_effect=*/"lsat",
    /*unary_hyper=*/{0.2f, 2048, 25},
    /*binary_hyper=*/{0.2f, 2048, 50},
};

size_t SmallTotal(DatasetId id) {
  switch (id) {
    case DatasetId::kAdult: return kSmallAdult;
    case DatasetId::kCensus: return kSmallCensus;
    case DatasetId::kLaw: return kSmallLaw;
  }
  return kSmallAdult;
}

}  // namespace

const DatasetInfo& GetDatasetInfo(DatasetId id) {
  switch (id) {
    case DatasetId::kAdult: return kAdultInfo;
    case DatasetId::kCensus: return kCensusInfo;
    case DatasetId::kLaw: return kLawInfo;
  }
  return kAdultInfo;
}

size_t DatasetInfo::TotalInstances(Scale scale) const {
  return scale == Scale::kPaper ? paper_total_instances : SmallTotal(id);
}

size_t DatasetInfo::CleanInstances(Scale scale) const {
  if (scale == Scale::kPaper) return paper_clean_instances;
  const double ratio = static_cast<double>(paper_clean_instances) /
                       static_cast<double>(paper_total_instances);
  return static_cast<size_t>(std::llround(ratio * SmallTotal(id)));
}

}  // namespace cfx
