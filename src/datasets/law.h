// Synthetic Law School dataset (LSAC National Longitudinal Bar Passage Study
// stand-in).
//
// Attribute layout per Table I: 10 attributes — 1 categorical (tier, the law
// school tier, ordinal 1..6), 3 binary (sex, fulltime, white), 6 continuous
// (lsat, ugpa, zfygpa, zgpa, fam_inc, decile) — target "Pass the bar".
// `sex` is immutable (§IV-A).
//
// Causal ground truth: tier -> lsat (admission to a higher-tier school
// requires a higher LSAT), and {lsat, ugpa, zgpa, tier} -> bar passage, so
// the §IV-E constraints (lsat monotone; tier up => lsat up) test a real
// dependency.
#ifndef CFX_DATASETS_LAW_H_
#define CFX_DATASETS_LAW_H_

#include "src/datasets/registry.h"

namespace cfx {

class LawGenerator : public DatasetGenerator {
 public:
  const DatasetInfo& info() const override;
  Schema MakeSchema() const override;
  Table Generate(size_t total_rows, size_t clean_rows,
                 Rng* rng) const override;

  static constexpr int kTiers = 6;
};

}  // namespace cfx

#endif  // CFX_DATASETS_LAW_H_
