#include "src/datasets/law.h"

#include <cmath>

namespace cfx {
namespace {

double Logistic(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

const DatasetInfo& LawGenerator::info() const {
  return GetDatasetInfo(DatasetId::kLaw);
}

Schema LawGenerator::MakeSchema() const {
  std::vector<FeatureSpec> features;
  features.push_back({"lsat", FeatureType::kContinuous, {}, false, 10.0, 48.0});
  features.push_back({"ugpa", FeatureType::kContinuous, {}, false, 1.5, 4.0});
  features.push_back(
      {"zfygpa", FeatureType::kContinuous, {}, false, -3.5, 3.5});
  features.push_back({"zgpa", FeatureType::kContinuous, {}, false, -3.5, 3.5});
  features.push_back(
      {"fam_inc", FeatureType::kContinuous, {}, false, 1.0, 5.0});
  features.push_back(
      {"decile", FeatureType::kContinuous, {}, false, 1.0, 10.0});
  features.push_back({"tier",
                      FeatureType::kCategorical,
                      {"tier1", "tier2", "tier3", "tier4", "tier5", "tier6"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"sex",
                      FeatureType::kBinary,
                      {"female", "male"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  features.push_back(
      {"fulltime", FeatureType::kBinary, {"no", "yes"}, false, 0.0, 1.0});
  features.push_back(
      {"white", FeatureType::kBinary, {"no", "yes"}, false, 0.0, 1.0});
  return Schema(std::move(features), "Pass the bar", {"fail", "pass"});
}

Table LawGenerator::Generate(size_t total_rows, size_t clean_rows,
                             Rng* rng) const {
  Table table(MakeSchema());
  for (size_t i = 0; i < total_rows; ++i) {
    // Latent aptitude drives LSAT, GPA and (through LSAT) school tier.
    double aptitude = rng->Normal(0.0, 1.0);
    double lsat = rng->TruncatedNormal(32.0 + 4.5 * aptitude, 3.0, 10.0, 48.0);
    double ugpa =
        rng->TruncatedNormal(3.1 + 0.25 * aptitude, 0.35, 1.5, 4.0);

    // tier -> lsat (causal): admission tiers are LSAT bands, so moving to a
    // higher (more selective) tier implies a higher typical LSAT. Index 5 =
    // tier6 = most selective, matching the LSAC coding.
    double tier_score = (lsat - 10.0) / 38.0 * 5.0 + rng->Normal(0.0, 0.7);
    int tier = static_cast<int>(std::llround(
        std::min(5.0, std::max(0.0, tier_score))));

    double zfygpa = rng->TruncatedNormal(0.35 * aptitude, 0.9, -3.5, 3.5);
    double zgpa = rng->TruncatedNormal(0.5 * zfygpa + 0.2 * aptitude, 0.8,
                                       -3.5, 3.5);
    double fam_inc = rng->TruncatedNormal(3.0, 1.0, 1.0, 5.0);
    double decile =
        rng->TruncatedNormal(5.5 + 2.0 * zgpa, 1.5, 1.0, 10.0);

    int sex = rng->Bernoulli(0.44) ? 1 : 0;
    int fulltime = rng->Bernoulli(0.88) ? 1 : 0;
    int white = rng->Bernoulli(0.84) ? 1 : 0;

    // Bar passage: LSAT, grades and school tier carry the signal (most
    // candidates pass — the real dataset is ~95% positive; we keep a
    // noticeable minority class at ~78% so the CF task is non-trivial).
    double z = 0.4 + 0.16 * (lsat - 32.0) + 1.1 * (ugpa - 3.1) +
               0.55 * zgpa + 0.18 * tier + 0.3 * fulltime +
               rng->Normal(0.0, 0.8);
    int pass = rng->Bernoulli(Logistic(z)) ? 1 : 0;

    std::vector<double> row = {lsat,
                               ugpa,
                               zfygpa,
                               zgpa,
                               fam_inc,
                               decile,
                               static_cast<double>(tier),
                               static_cast<double>(sex),
                               static_cast<double>(fulltime),
                               static_cast<double>(white)};
    CFX_CHECK_OK(table.AppendRow(row, pass));
  }
  internal::InjectMissing(&table, clean_rows, rng);
  return table;
}

}  // namespace cfx
