// Dataset identities, paper-reported statistics (Table I), and the
// per-dataset experiment configuration (constraints of §IV-E, hyperparameters
// of Table III).
#ifndef CFX_DATASETS_SPEC_H_
#define CFX_DATASETS_SPEC_H_

#include <cstddef>
#include <string>

#include "src/common/config.h"

namespace cfx {

/// The three benchmark datasets of §IV-A.
enum class DatasetId { kAdult, kCensus, kLaw };

const char* DatasetName(DatasetId id);

/// Paper-reported dataset statistics (Table I) plus the constraint features
/// used in §IV-E and the Table III hyperparameters.
struct DatasetInfo {
  DatasetId id;
  std::string name;
  size_t paper_total_instances;   ///< "# Instances".
  size_t paper_clean_instances;   ///< "# Instances (cleaned)".
  std::string target_class;      ///< "Target class" column of Table I.

  /// Feature forming the unary (monotone non-decreasing) constraint, Eq. (1).
  std::string unary_feature;
  /// Binary constraint, Eq. (2): cause increases => effect strictly
  /// increases (education -> age for Adult/Census; tier -> lsat for Law).
  std::string binary_cause;
  std::string binary_effect;

  /// Table III hyperparameters (per constraint model).
  struct Hyper {
    float learning_rate;
    size_t batch_size;
    size_t epochs;
  };
  Hyper unary_hyper;
  Hyper binary_hyper;

  /// Row counts used at the given run scale. kPaper returns the Table I
  /// numbers; kSmall scales down preserving the cleaned/total ratio.
  size_t TotalInstances(Scale scale) const;
  size_t CleanInstances(Scale scale) const;
};

/// Static info for a dataset.
const DatasetInfo& GetDatasetInfo(DatasetId id);

}  // namespace cfx

#endif  // CFX_DATASETS_SPEC_H_
