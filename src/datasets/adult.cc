#include "src/datasets/adult.h"

#include <cmath>

namespace cfx {
namespace {

double Logistic(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

const DatasetInfo& AdultGenerator::info() const {
  return GetDatasetInfo(DatasetId::kAdult);
}

Schema AdultGenerator::MakeSchema() const {
  std::vector<FeatureSpec> features;
  features.push_back({"age", FeatureType::kContinuous, {}, false, 17.0, 90.0});
  features.push_back(
      {"hours_per_week", FeatureType::kContinuous, {}, false, 1.0, 99.0});
  features.push_back({"workclass",
                      FeatureType::kCategorical,
                      {"private", "self_employed", "government", "other"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"education",
                      FeatureType::kCategorical,
                      {"school", "hs_grad", "some_college", "bachelors",
                       "masters", "doctorate"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"marital_status",
                      FeatureType::kCategorical,
                      {"single", "married", "divorced", "widowed"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"occupation",
                      FeatureType::kCategorical,
                      {"blue_collar", "white_collar", "professional",
                       "service", "sales"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"race",
                      FeatureType::kCategorical,
                      {"white", "black", "asian_pac", "amer_indian", "other"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  features.push_back({"gender",
                      FeatureType::kBinary,
                      {"female", "male"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  features.push_back({"native_us",
                      FeatureType::kBinary,
                      {"no", "yes"},
                      false,
                      0.0,
                      1.0});
  return Schema(std::move(features), "Income", {"<=50K", ">50K"});
}

Table AdultGenerator::Generate(size_t total_rows, size_t clean_rows,
                               Rng* rng) const {
  Table table(MakeSchema());
  for (size_t i = 0; i < total_rows; ++i) {
    // age: right-skewed working-age distribution.
    double age = rng->TruncatedNormal(38.0, 13.0, 17.0, 90.0);

    // education rises with age (causal edge age -> education): the mean
    // attainable level saturates around age 35.
    double age_factor = std::min(1.0, (age - 17.0) / 18.0);  // 0 at 17, 1 at 35+
    double edu_mean = 1.0 + 3.2 * age_factor;                 // in [1, 4.2]
    int education = static_cast<int>(std::llround(
        rng->TruncatedNormal(edu_mean, 1.1, 0.0, kEducationLevels - 1)));

    // hours/week, mildly higher for higher education.
    double hours =
        rng->TruncatedNormal(38.0 + 1.5 * education, 9.0, 1.0, 99.0);

    int workclass = static_cast<int>(rng->Categorical({0.62, 0.12, 0.18, 0.08}));
    // occupation depends on education: professionals need degrees.
    std::vector<double> occ_w;
    if (education >= 3) {
      occ_w = {0.10, 0.28, 0.42, 0.08, 0.12};
    } else if (education == 2) {
      occ_w = {0.25, 0.30, 0.12, 0.18, 0.15};
    } else {
      occ_w = {0.42, 0.13, 0.03, 0.27, 0.15};
    }
    int occupation = static_cast<int>(rng->Categorical(occ_w));

    // marital status: older people more likely married/widowed.
    double married_w = 0.2 + 0.5 * std::min(1.0, (age - 17.0) / 25.0);
    int marital = static_cast<int>(rng->Categorical(
        {1.0 - married_w, married_w, 0.10, age > 60 ? 0.10 : 0.01}));

    int race = static_cast<int>(
        rng->Categorical({0.78, 0.10, 0.06, 0.02, 0.04}));
    int gender = rng->Bernoulli(0.52) ? 1 : 0;
    int native = rng->Bernoulli(0.89) ? 1 : 0;

    // Income ground truth: education, age, hours, occupation and marriage
    // carry signal; race/gender carry none.
    double z = -6.4 + 0.95 * education + 0.045 * (age - 17.0) +
               0.030 * (hours - 35.0) +
               (occupation == 2 ? 0.9 : (occupation == 1 ? 0.5 : 0.0)) +
               (marital == 1 ? 0.7 : 0.0) + rng->Normal(0.0, 0.45);
    int income = rng->Bernoulli(Logistic(z)) ? 1 : 0;

    std::vector<double> row = {age,
                               hours,
                               static_cast<double>(workclass),
                               static_cast<double>(education),
                               static_cast<double>(marital),
                               static_cast<double>(occupation),
                               static_cast<double>(race),
                               static_cast<double>(gender),
                               static_cast<double>(native)};
    CFX_CHECK_OK(table.AppendRow(row, income));
  }
  internal::InjectMissing(&table, clean_rows, rng);
  return table;
}

}  // namespace cfx
