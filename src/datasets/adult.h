// Synthetic Adult Income dataset (UCI "Adult"/"Census Income" stand-in).
//
// Attribute layout matches the paper's Table I usage: 9 attributes —
// 5 categorical (workclass, education, marital_status, occupation, race),
// 2 binary (gender, native_us), 2 continuous (age, hours_per_week) — target
// "Income" (<=50K / >50K). `race` and `gender` are immutable (§IV-A).
//
// Causal ground truth (used both to generate data and to make the §IV-E
// constraints meaningful):
//   age -> education      (education level rises with age, saturating ~35)
//   {education, age, hours, occupation, marital} -> income logit
// so that a classifier trained on the data genuinely rewards education/age
// increases, the direction the binary constraint protects.
#ifndef CFX_DATASETS_ADULT_H_
#define CFX_DATASETS_ADULT_H_

#include "src/datasets/registry.h"

namespace cfx {

class AdultGenerator : public DatasetGenerator {
 public:
  const DatasetInfo& info() const override;
  Schema MakeSchema() const override;
  Table Generate(size_t total_rows, size_t clean_rows,
                 Rng* rng) const override;

  /// Number of education levels (ordinal categories, low to high).
  static constexpr int kEducationLevels = 6;
};

}  // namespace cfx

#endif  // CFX_DATASETS_ADULT_H_
