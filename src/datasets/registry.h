// Generator interface and factory for the three synthetic benchmark datasets.
//
// The paper evaluates on the UCI Adult, UCI KDD Census-Income and LSAC Law
// School CSVs, which are not redistributable with this repository. cfx ships
// deterministic synthetic generators with the same attribute layout
// (Table I), realistic marginals, an explicit causal ground truth matching
// the constraints of §IV-E, and missing values injected so that cleaning
// reproduces the paper's cleaned instance counts. See DESIGN.md §4.
#ifndef CFX_DATASETS_REGISTRY_H_
#define CFX_DATASETS_REGISTRY_H_

#include <memory>

#include "src/common/rng.h"
#include "src/data/table.h"
#include "src/datasets/spec.h"

namespace cfx {

/// Produces one synthetic benchmark dataset.
class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  /// Dataset identity and paper statistics.
  virtual const DatasetInfo& info() const = 0;

  /// The dataset schema (attribute names/types/categories, immutables,
  /// target) — identical across calls.
  virtual Schema MakeSchema() const = 0;

  /// Generates `total_rows` rows, of which exactly `total_rows - clean_rows`
  /// contain a missing cell (so DropMissingRows leaves `clean_rows`).
  /// Deterministic in (*rng)'s state.
  virtual Table Generate(size_t total_rows, size_t clean_rows,
                         Rng* rng) const = 0;

  /// Convenience: generates at the configured scale.
  Table GenerateAtScale(Scale scale, Rng* rng) const {
    return Generate(info().TotalInstances(scale), info().CleanInstances(scale),
                    rng);
  }
};

/// Creates the generator for a dataset.
std::unique_ptr<DatasetGenerator> CreateGenerator(DatasetId id);

namespace internal {

/// Replaces one mutable-feature cell with NaN in exactly
/// `total - clean` distinct random rows of `table`.
void InjectMissing(Table* table, size_t clean_rows, Rng* rng);

}  // namespace internal
}  // namespace cfx

#endif  // CFX_DATASETS_REGISTRY_H_
