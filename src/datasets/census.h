// Synthetic KDD Census-Income dataset (UCI "Census-Income (KDD)" stand-in).
//
// Attribute layout per Table I: 41 attributes — 32 categorical, 2 binary
// (gender, own_business), 7 continuous (age, wage_per_hour, capital_gains,
// capital_losses, dividends, num_employer_persons, weeks_worked) — target
// "Income" (<=50K / >50K, heavily imbalanced like the real KDD data).
// `race` and `gender` are immutable (§IV-A).
//
// The first handful of categorical attributes (education, class_of_worker,
// marital_status, occupation_major, industry_major, race, ...) carry the
// causal/income signal; the remaining demographic-style categoricals are
// weakly-informative noise dimensions, mirroring the real dataset's many
// low-signal census fields. Causal edge: age -> education, as in Adult.
#ifndef CFX_DATASETS_CENSUS_H_
#define CFX_DATASETS_CENSUS_H_

#include "src/datasets/registry.h"

namespace cfx {

class CensusGenerator : public DatasetGenerator {
 public:
  const DatasetInfo& info() const override;
  Schema MakeSchema() const override;
  Table Generate(size_t total_rows, size_t clean_rows,
                 Rng* rng) const override;

  static constexpr int kEducationLevels = 6;
};

}  // namespace cfx

#endif  // CFX_DATASETS_CENSUS_H_
