#include "src/datasets/registry.h"

#include "src/datasets/adult.h"
#include "src/datasets/census.h"
#include "src/datasets/law.h"

namespace cfx {

std::unique_ptr<DatasetGenerator> CreateGenerator(DatasetId id) {
  switch (id) {
    case DatasetId::kAdult: return std::make_unique<AdultGenerator>();
    case DatasetId::kCensus: return std::make_unique<CensusGenerator>();
    case DatasetId::kLaw: return std::make_unique<LawGenerator>();
  }
  return nullptr;
}

namespace internal {

void InjectMissing(Table* table, size_t clean_rows, Rng* rng) {
  const size_t n = table->num_rows();
  if (clean_rows >= n) return;
  const size_t to_corrupt = n - clean_rows;
  std::vector<size_t> perm = rng->Permutation(n);
  for (size_t i = 0; i < to_corrupt; ++i) {
    const size_t row = perm[i];
    // Pick a feature to blank; avoid degenerate loops by scanning from a
    // random start.
    const size_t nf = table->num_features();
    size_t fi = rng->UniformInt(nf);
    table->column(fi).set_value(row, std::nan(""));
  }
}

}  // namespace internal
}  // namespace cfx
