#include "src/datasets/census.h"

#include <cmath>

#include "src/common/string_util.h"

namespace cfx {
namespace {

double Logistic(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// 32 categorical attributes total: 7 signal-bearing, 25 filler census fields
// with 3 categories each.
constexpr int kFillerCategoricals = 25;

}  // namespace

const DatasetInfo& CensusGenerator::info() const {
  return GetDatasetInfo(DatasetId::kCensus);
}

Schema CensusGenerator::MakeSchema() const {
  std::vector<FeatureSpec> features;
  // 7 continuous.
  features.push_back({"age", FeatureType::kContinuous, {}, false, 16.0, 90.0});
  features.push_back(
      {"wage_per_hour", FeatureType::kContinuous, {}, false, 0.0, 120.0});
  features.push_back(
      {"capital_gains", FeatureType::kContinuous, {}, false, 0.0, 20000.0});
  features.push_back(
      {"capital_losses", FeatureType::kContinuous, {}, false, 0.0, 5000.0});
  features.push_back(
      {"dividends", FeatureType::kContinuous, {}, false, 0.0, 10000.0});
  features.push_back({"num_employer_persons", FeatureType::kContinuous, {},
                      false, 0.0, 6.0});
  features.push_back(
      {"weeks_worked", FeatureType::kContinuous, {}, false, 0.0, 52.0});
  // Signal-bearing categoricals.
  features.push_back({"education",
                      FeatureType::kCategorical,
                      {"school", "hs_grad", "some_college", "bachelors",
                       "masters", "doctorate"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"class_of_worker",
                      FeatureType::kCategorical,
                      {"private", "self_employed", "government",
                       "not_in_universe"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"marital_status",
                      FeatureType::kCategorical,
                      {"single", "married", "divorced", "widowed"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"occupation_major",
                      FeatureType::kCategorical,
                      {"blue_collar", "white_collar", "professional",
                       "service", "sales", "not_in_universe"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"industry_major",
                      FeatureType::kCategorical,
                      {"manufacturing", "retail", "finance", "education",
                       "health", "construction", "other"},
                      false,
                      0.0,
                      1.0});
  features.push_back({"race",
                      FeatureType::kCategorical,
                      {"white", "black", "asian_pac", "amer_indian", "other"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  features.push_back({"household_status",
                      FeatureType::kCategorical,
                      {"householder", "spouse", "child", "nonrelative"},
                      false,
                      0.0,
                      1.0});
  // Filler census fields (weakly informative noise, 3 categories each).
  for (int k = 0; k < kFillerCategoricals; ++k) {
    features.push_back({StrFormat("census_field_%02d", k),
                        FeatureType::kCategorical,
                        {"level_a", "level_b", "level_c"},
                        false,
                        0.0,
                        1.0});
  }
  // 2 binary.
  features.push_back({"gender",
                      FeatureType::kBinary,
                      {"female", "male"},
                      /*immutable=*/true,
                      0.0,
                      1.0});
  features.push_back(
      {"own_business", FeatureType::kBinary, {"no", "yes"}, false, 0.0, 1.0});
  return Schema(std::move(features), "Income", {"<=50K", ">50K"});
}

Table CensusGenerator::Generate(size_t total_rows, size_t clean_rows,
                                Rng* rng) const {
  Table table(MakeSchema());
  for (size_t i = 0; i < total_rows; ++i) {
    double age = rng->TruncatedNormal(40.0, 16.0, 16.0, 90.0);

    // age -> education, as in Adult.
    double age_factor = std::min(1.0, (age - 16.0) / 19.0);
    double edu_mean = 0.9 + 3.1 * age_factor;
    int education = static_cast<int>(std::llround(
        rng->TruncatedNormal(edu_mean, 1.2, 0.0, kEducationLevels - 1)));

    int worker_class =
        static_cast<int>(rng->Categorical({0.55, 0.09, 0.16, 0.20}));
    bool employed = worker_class != 3;

    double weeks = employed ? rng->TruncatedNormal(44.0, 12.0, 0.0, 52.0) : 0.0;
    double wage = employed
                      ? rng->TruncatedNormal(8.0 + 4.0 * education, 6.0, 0.0,
                                             120.0)
                      : 0.0;
    double gains = rng->Bernoulli(0.08 + 0.02 * education)
                       ? rng->TruncatedNormal(3000.0, 3000.0, 0.0, 20000.0)
                       : 0.0;
    double losses = rng->Bernoulli(0.04)
                        ? rng->TruncatedNormal(1200.0, 900.0, 0.0, 5000.0)
                        : 0.0;
    double dividends = rng->Bernoulli(0.10 + 0.03 * education)
                           ? rng->TruncatedNormal(1500.0, 2000.0, 0.0, 10000.0)
                           : 0.0;
    double employer_persons =
        employed ? rng->TruncatedNormal(3.0, 1.8, 0.0, 6.0) : 0.0;

    int marital = static_cast<int>(rng->Categorical(
        {0.35, 0.45, 0.12, age > 60 ? 0.15 : 0.03}));
    std::vector<double> occ_w;
    if (!employed) {
      occ_w = {0.02, 0.02, 0.02, 0.02, 0.02, 0.90};
    } else if (education >= 3) {
      occ_w = {0.08, 0.30, 0.40, 0.08, 0.12, 0.02};
    } else {
      occ_w = {0.35, 0.18, 0.05, 0.22, 0.15, 0.05};
    }
    int occupation = static_cast<int>(rng->Categorical(occ_w));
    int industry =
        static_cast<int>(rng->Categorical({0.2, 0.18, 0.1, 0.12, 0.14, 0.1, 0.16}));
    int race =
        static_cast<int>(rng->Categorical({0.80, 0.09, 0.05, 0.02, 0.04}));
    int household =
        static_cast<int>(rng->Categorical({0.42, 0.25, 0.23, 0.10}));
    int gender = rng->Bernoulli(0.48) ? 1 : 0;
    int own_business = rng->Bernoulli(worker_class == 1 ? 0.65 : 0.05) ? 1 : 0;

    // Income: strongly imbalanced (real KDD data is ~6% positive; we keep
    // ~12% so the desired class remains learnable at small scale).
    double z = -7.6 + 0.85 * education + 0.035 * (age - 16.0) +
               0.018 * wage + 0.00012 * gains + 0.00008 * dividends +
               0.02 * weeks + (occupation == 2 ? 0.8 : 0.0) +
               (marital == 1 ? 0.5 : 0.0) + rng->Normal(0.0, 0.7);
    int income = rng->Bernoulli(Logistic(z)) ? 1 : 0;

    std::vector<double> row;
    row.reserve(41);
    row.push_back(age);
    row.push_back(wage);
    row.push_back(gains);
    row.push_back(losses);
    row.push_back(dividends);
    row.push_back(employer_persons);
    row.push_back(weeks);
    row.push_back(static_cast<double>(education));
    row.push_back(static_cast<double>(worker_class));
    row.push_back(static_cast<double>(marital));
    row.push_back(static_cast<double>(occupation));
    row.push_back(static_cast<double>(industry));
    row.push_back(static_cast<double>(race));
    row.push_back(static_cast<double>(household));
    for (int k = 0; k < kFillerCategoricals; ++k) {
      // Weak label correlation so the fields are not pure noise.
      double bias = 0.05 * ((k % 3) - 1) * (income == 1 ? 1.0 : -1.0);
      row.push_back(static_cast<double>(
          rng->Categorical({1.0 / 3 + bias, 1.0 / 3, 1.0 / 3 - bias})));
    }
    row.push_back(static_cast<double>(gender));
    row.push_back(static_cast<double>(own_business));
    CFX_CHECK_OK(table.AppendRow(row, income));
  }
  internal::InjectMissing(&table, clean_rows, rng);
  return table;
}

}  // namespace cfx
