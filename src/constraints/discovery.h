// Data-driven causal-constraint discovery — the paper's stated future work
// (§V): "analysing the causal relations of various features in a dataset, so
// that we can minimize the human involvement during the construction of the
// causal constraint".
//
// From observational training data alone, true causal direction is not
// identifiable; what *is* recoverable — and what the paper's constraints
// actually encode — is strong monotone association between ordinal levels of
// feature pairs. DiscoverConstraints therefore:
//
//   1. maps every feature to its ordinal level (normalised continuous value,
//      category index / (K-1), binary 0/1) — the same scale the constraint
//      checks compare on;
//   2. for every ordered pair (cause, effect) fits the linear relation
//      effect = c1 + c2 * cause by least squares and computes the Pearson
//      correlation;
//   3. keeps pairs whose correlation and slope clear the thresholds, emits
//      them as BinaryLinearConstraint candidates carrying the fitted
//      (c1, c2) — exactly the parameters §III-C says were "selected from
//      experimentation" — ranked by correlation;
//   4. additionally flags "monotone candidates": features that, like age,
//      plausibly only increase (non-negative, population-wide association
//      with every other candidate cause). These are *suggestions* for a
//      domain expert, never auto-applied: monotonicity is actionability
//      knowledge, not a property of the data distribution.
#ifndef CFX_CONSTRAINTS_DISCOVERY_H_
#define CFX_CONSTRAINTS_DISCOVERY_H_

#include <string>
#include <vector>

#include "src/constraints/constraint.h"

namespace cfx {

/// One discovered binary-relation candidate.
struct ConstraintCandidate {
  std::string cause;
  std::string effect;
  double correlation = 0.0;  ///< Pearson r on ordinal levels.
  double c1 = 0.0;           ///< Intercept of effect ~ c1 + c2 * cause.
  double c2 = 0.0;           ///< Slope.
  size_t support = 0;        ///< Rows used for the fit.

  /// Human-readable summary for reports.
  std::string ToString() const;
};

/// Discovery thresholds.
struct DiscoveryConfig {
  double min_correlation = 0.35;  ///< |r| below this is noise.
  double min_slope = 0.1;         ///< Levels-scale slope floor.
  size_t max_candidates = 10;     ///< Keep the top-k by |r|.
  /// Ignore immutable features as causes or effects (no recourse can act
  /// on them).
  bool skip_immutable = true;
};

/// Scans all ordered feature pairs of the encoded training data and returns
/// binary-relation candidates sorted by descending |correlation|.
std::vector<ConstraintCandidate> DiscoverConstraints(
    const TabularEncoder& encoder, const Matrix& x_train,
    const DiscoveryConfig& config = DiscoveryConfig());

/// Materialises a candidate as a checkable implication constraint
/// (cause up => effect up), the Eq. (2) semantics.
std::unique_ptr<Constraint> MakeConstraint(const ConstraintCandidate& c);

/// Convenience: builds a ConstraintSet from the top `k` candidates.
ConstraintSet MakeDiscoveredConstraintSet(
    const std::vector<ConstraintCandidate>& candidates, size_t k);

}  // namespace cfx

#endif  // CFX_CONSTRAINTS_DISCOVERY_H_
