#include "src/constraints/constraint.h"

#include <cassert>

#include "src/common/string_util.h"

namespace cfx {

double OrdinalLevel(const TabularEncoder& encoder, const Matrix& encoded_row,
                    size_t fi) {
  const EncodedBlock& block = encoder.block(fi);
  switch (block.type) {
    case FeatureType::kContinuous:
    case FeatureType::kBinary:
      return encoded_row.at(0, block.offset);
    case FeatureType::kCategorical: {
      size_t best = 0;
      float best_v = encoded_row.at(0, block.offset);
      for (size_t j = 1; j < block.width; ++j) {
        if (encoded_row.at(0, block.offset + j) > best_v) {
          best_v = encoded_row.at(0, block.offset + j);
          best = j;
        }
      }
      return block.width > 1
                 ? static_cast<double>(best) / static_cast<double>(block.width - 1)
                 : 0.0;
    }
  }
  return 0.0;
}

std::string UnaryMonotoneConstraint::Description() const {
  return StrFormat("unary: %s^cf >= %s", feature_.c_str(), feature_.c_str());
}

bool UnaryMonotoneConstraint::Satisfied(const TabularEncoder& encoder,
                                        const Matrix& x, const Matrix& x_cf,
                                        const ConstraintTolerance& tol) const {
  auto fi = encoder.schema().FeatureIndex(feature_);
  assert(fi.ok());
  const double before = OrdinalLevel(encoder, x, *fi);
  const double after = OrdinalLevel(encoder, x_cf, *fi);
  return after >= before - tol.continuous;
}

std::string BinaryImplicationConstraint::Description() const {
  return StrFormat("binary: %s^cf > %s => %s^cf > %s (and = => >=)",
                   cause_.c_str(), cause_.c_str(), effect_.c_str(),
                   effect_.c_str());
}

bool BinaryImplicationConstraint::Satisfied(
    const TabularEncoder& encoder, const Matrix& x, const Matrix& x_cf,
    const ConstraintTolerance& tol) const {
  auto ci = encoder.schema().FeatureIndex(cause_);
  auto ei = encoder.schema().FeatureIndex(effect_);
  assert(ci.ok() && ei.ok());
  const double dc = OrdinalLevel(encoder, x_cf, *ci) - OrdinalLevel(encoder, x, *ci);
  const double de = OrdinalLevel(encoder, x_cf, *ei) - OrdinalLevel(encoder, x, *ei);

  if (dc > tol.strict) {
    // Cause increased: effect must strictly increase.
    return de > tol.strict;
  }
  if (dc < -tol.strict) {
    // Cause decreased (e.g. un-earning a degree): infeasible outright.
    return false;
  }
  // Cause unchanged: effect must not decrease.
  return de >= -tol.continuous;
}

bool ConstraintSet::AllSatisfied(const TabularEncoder& encoder,
                                 const Matrix& x, const Matrix& x_cf,
                                 const ConstraintTolerance& tol) const {
  for (const auto& c : constraints_) {
    if (!c->Satisfied(encoder, x, x_cf, tol)) return false;
  }
  return true;
}

std::string ConstraintSet::Description() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const auto& c : constraints_) parts.push_back(c->Description());
  return Join(parts, "; ");
}

ConstraintSet MakeUnaryConstraintSet(const DatasetInfo& info) {
  ConstraintSet set;
  set.Add(std::make_unique<UnaryMonotoneConstraint>(info.unary_feature));
  return set;
}

ConstraintSet MakeBinaryConstraintSet(const DatasetInfo& info) {
  ConstraintSet set;
  set.Add(std::make_unique<BinaryImplicationConstraint>(info.binary_cause,
                                                        info.binary_effect));
  return set;
}

}  // namespace cfx
