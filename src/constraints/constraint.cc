#include "src/constraints/constraint.h"

#include <cassert>

#include "src/common/string_util.h"

namespace cfx {

double OrdinalLevel(const TabularEncoder& encoder, const Matrix& encoded_row,
                    size_t fi) {
  const EncodedBlock& block = encoder.block(fi);
  switch (block.type) {
    case FeatureType::kContinuous:
    case FeatureType::kBinary:
      return encoded_row.at(0, block.offset);
    case FeatureType::kCategorical: {
      size_t best = 0;
      float best_v = encoded_row.at(0, block.offset);
      for (size_t j = 1; j < block.width; ++j) {
        if (encoded_row.at(0, block.offset + j) > best_v) {
          best_v = encoded_row.at(0, block.offset + j);
          best = j;
        }
      }
      return block.width > 1
                 ? static_cast<double>(best) / static_cast<double>(block.width - 1)
                 : 0.0;
    }
  }
  return 0.0;
}

void OrdinalLevels(const TabularEncoder& encoder, const ColumnBatch& batch,
                   size_t fi, std::vector<double>* levels) {
  const EncodedBlock& block = encoder.block(fi);
  const size_t rows = batch.rows();
  levels->resize(rows);
  switch (block.type) {
    case FeatureType::kContinuous:
    case FeatureType::kBinary: {
      const float* col = batch.column(block.offset);
      for (size_t r = 0; r < rows; ++r) (*levels)[r] = col[r];
      break;
    }
    case FeatureType::kCategorical: {
      // Column-sweeping first-strict-max argmax — same ascending strict '>'
      // scan as the single-row OrdinalLevel.
      const float* c0 = batch.column(block.offset);
      std::vector<size_t> best(rows, 0);
      std::vector<float> best_v(c0, c0 + rows);
      for (size_t j = 1; j < block.width; ++j) {
        const float* cj = batch.column(block.offset + j);
        for (size_t r = 0; r < rows; ++r) {
          if (cj[r] > best_v[r]) {
            best_v[r] = cj[r];
            best[r] = j;
          }
        }
      }
      for (size_t r = 0; r < rows; ++r) {
        (*levels)[r] = block.width > 1
                           ? static_cast<double>(best[r]) /
                                 static_cast<double>(block.width - 1)
                           : 0.0;
      }
      break;
    }
  }
}

void Constraint::SatisfiedBatch(const TabularEncoder& encoder,
                                const ColumnBatch& x, const ColumnBatch& x_cf,
                                const ConstraintTolerance& tol,
                                std::vector<uint8_t>* ok) const {
  // Generic fallback: gather each row pair and reuse the scalar predicate.
  Matrix xi(1, x.cols());
  Matrix ci(1, x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    if (!(*ok)[r]) continue;
    for (size_t c = 0; c < x.cols(); ++c) {
      xi.at(0, c) = x.at(r, c);
      ci.at(0, c) = x_cf.at(r, c);
    }
    if (!Satisfied(encoder, xi, ci, tol)) (*ok)[r] = 0;
  }
}

std::string UnaryMonotoneConstraint::Description() const {
  return StrFormat("unary: %s^cf >= %s", feature_.c_str(), feature_.c_str());
}

bool UnaryMonotoneConstraint::Satisfied(const TabularEncoder& encoder,
                                        const Matrix& x, const Matrix& x_cf,
                                        const ConstraintTolerance& tol) const {
  auto fi = encoder.schema().FeatureIndex(feature_);
  assert(fi.ok());
  const double before = OrdinalLevel(encoder, x, *fi);
  const double after = OrdinalLevel(encoder, x_cf, *fi);
  return after >= before - tol.continuous;
}

void UnaryMonotoneConstraint::SatisfiedBatch(
    const TabularEncoder& encoder, const ColumnBatch& x,
    const ColumnBatch& x_cf, const ConstraintTolerance& tol,
    std::vector<uint8_t>* ok) const {
  auto fi = encoder.schema().FeatureIndex(feature_);
  assert(fi.ok());
  std::vector<double> before;
  std::vector<double> after;
  OrdinalLevels(encoder, x, *fi, &before);
  OrdinalLevels(encoder, x_cf, *fi, &after);
  for (size_t r = 0; r < x.rows(); ++r) {
    if (!(after[r] >= before[r] - tol.continuous)) (*ok)[r] = 0;
  }
}

std::string BinaryImplicationConstraint::Description() const {
  return StrFormat("binary: %s^cf > %s => %s^cf > %s (and = => >=)",
                   cause_.c_str(), cause_.c_str(), effect_.c_str(),
                   effect_.c_str());
}

bool BinaryImplicationConstraint::Satisfied(
    const TabularEncoder& encoder, const Matrix& x, const Matrix& x_cf,
    const ConstraintTolerance& tol) const {
  auto ci = encoder.schema().FeatureIndex(cause_);
  auto ei = encoder.schema().FeatureIndex(effect_);
  assert(ci.ok() && ei.ok());
  const double dc = OrdinalLevel(encoder, x_cf, *ci) - OrdinalLevel(encoder, x, *ci);
  const double de = OrdinalLevel(encoder, x_cf, *ei) - OrdinalLevel(encoder, x, *ei);

  if (dc > tol.strict) {
    // Cause increased: effect must strictly increase.
    return de > tol.strict;
  }
  if (dc < -tol.strict) {
    // Cause decreased (e.g. un-earning a degree): infeasible outright.
    return false;
  }
  // Cause unchanged: effect must not decrease.
  return de >= -tol.continuous;
}

void BinaryImplicationConstraint::SatisfiedBatch(
    const TabularEncoder& encoder, const ColumnBatch& x,
    const ColumnBatch& x_cf, const ConstraintTolerance& tol,
    std::vector<uint8_t>* ok) const {
  auto ci = encoder.schema().FeatureIndex(cause_);
  auto ei = encoder.schema().FeatureIndex(effect_);
  assert(ci.ok() && ei.ok());
  std::vector<double> cause_before;
  std::vector<double> cause_after;
  std::vector<double> effect_before;
  std::vector<double> effect_after;
  OrdinalLevels(encoder, x, *ci, &cause_before);
  OrdinalLevels(encoder, x_cf, *ci, &cause_after);
  OrdinalLevels(encoder, x, *ei, &effect_before);
  OrdinalLevels(encoder, x_cf, *ei, &effect_after);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double dc = cause_after[r] - cause_before[r];
    const double de = effect_after[r] - effect_before[r];
    bool good;
    if (dc > tol.strict) {
      good = de > tol.strict;
    } else if (dc < -tol.strict) {
      good = false;
    } else {
      good = de >= -tol.continuous;
    }
    if (!good) (*ok)[r] = 0;
  }
}

bool ConstraintSet::AllSatisfied(const TabularEncoder& encoder,
                                 const Matrix& x, const Matrix& x_cf,
                                 const ConstraintTolerance& tol) const {
  for (const auto& c : constraints_) {
    if (!c->Satisfied(encoder, x, x_cf, tol)) return false;
  }
  return true;
}

void ConstraintSet::AllSatisfiedBatch(const TabularEncoder& encoder,
                                      const ColumnBatch& x,
                                      const ColumnBatch& x_cf,
                                      const ConstraintTolerance& tol,
                                      std::vector<uint8_t>* ok) const {
  for (const auto& c : constraints_) {
    c->SatisfiedBatch(encoder, x, x_cf, tol, ok);
  }
}

std::string ConstraintSet::Description() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const auto& c : constraints_) parts.push_back(c->Description());
  return Join(parts, "; ");
}

ConstraintSet MakeUnaryConstraintSet(const DatasetInfo& info) {
  ConstraintSet set;
  set.Add(std::make_unique<UnaryMonotoneConstraint>(info.unary_feature));
  return set;
}

ConstraintSet MakeBinaryConstraintSet(const DatasetInfo& info) {
  ConstraintSet set;
  set.Add(std::make_unique<BinaryImplicationConstraint>(info.binary_cause,
                                                        info.binary_effect));
  return set;
}

}  // namespace cfx
