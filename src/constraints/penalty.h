// Differentiable constraint penalties — the feasibility terms of the
// paper's loss (§III-C).
//
// For the loss the constraints must be relaxed to differentiable hinges:
//   * unary (Eq. 1):   -min(0, x^cf - x)  ==  relu(x - x^cf)
//   * binary (Eq. 2):  relu(Δcause) * relu(margin - Δeffect) + relu(-Δcause)
//     — penalises "cause went up but effect did not (strictly)" and "cause
//     went down" (the paper's infeasible direction);
//   * binary, linear form: relu(c1 + c2·cause^cf - effect^cf), the paper's
//     "(x2 - c1 - c2 x1)" parametrised relaxation, enforcing the effect to
//     stay above a linear function of the cause (c1, c2 picked by
//     experimentation, §III-C).
//
// Categorical features (education, tier) enter through a *soft ordinal
// level*: the dot product of the one-hot/sigmoid block with the level
// weights [0, 1/(K-1), ..., 1], which is differentiable and coincides with
// the hard ordinal index on pure one-hot rows.
#ifndef CFX_CONSTRAINTS_PENALTY_H_
#define CFX_CONSTRAINTS_PENALTY_H_

#include <string>

#include "src/data/encoder.h"
#include "src/tensor/autodiff.h"

namespace cfx {

/// Builds differentiable penalty terms against a fixed encoder layout.
class PenaltyBuilder {
 public:
  explicit PenaltyBuilder(const TabularEncoder* encoder)
      : encoder_(encoder) {}

  /// Soft ordinal level of feature `fi` for each row of `x` -> (n, 1) Var.
  ag::Var OrdinalLevels(const ag::Var& x, size_t fi) const;

  /// Same, for a constant batch.
  Matrix OrdinalLevelsConst(const Matrix& x, size_t fi) const;

  /// Mean over the batch of relu(level(x) - level(x_cf)) for `feature`.
  ag::Var UnaryPenalty(const std::string& feature, const ag::Var& x_cf,
                       const Matrix& x) const;

  /// Mean over the batch of the implication hinge for (cause -> effect).
  /// `strict_margin` is how much the effect must rise when the cause rises.
  ag::Var BinaryImplicationPenalty(const std::string& cause,
                                   const std::string& effect,
                                   const ag::Var& x_cf, const Matrix& x,
                                   float strict_margin = 0.02f) const;

  /// Mean over the batch of relu(c1 + c2 * level(cause^cf) -
  /// level(effect^cf)) — the paper's linear-relation penalty.
  ag::Var BinaryLinearPenalty(const std::string& cause,
                              const std::string& effect, const ag::Var& x_cf,
                              float c1, float c2) const;

  const TabularEncoder& encoder() const { return *encoder_; }

 private:
  /// (width x 1) constant of level weights for feature `fi`'s block.
  Matrix LevelWeights(size_t fi) const;

  const TabularEncoder* encoder_;
};

}  // namespace cfx

#endif  // CFX_CONSTRAINTS_PENALTY_H_
