#include "src/constraints/feasibility.h"

#include <cassert>

#include "src/data/column_batch.h"

namespace cfx {

FeasibilityResult EvaluateFeasibility(const ConstraintSet& constraints,
                                      const TabularEncoder& encoder,
                                      const Matrix& x, const Matrix& x_cf,
                                      const ConstraintTolerance& tol) {
  assert(x.SameShape(x_cf));
  FeasibilityResult result;
  const size_t rows = x.rows();
  result.num_pairs = rows;
  result.feasible.resize(rows);

  // Constraint verdicts stream over the columnar transpose (one contiguous
  // span per referenced feature column, no per-row Matrix pairs); the
  // input-domain check runs directly on each row-major row span. Same
  // verdicts as the historical row loop, in batch.
  std::vector<uint8_t> ok(rows, 1);
  if (constraints.size() > 0 && rows >= 8) {
    const ColumnBatch x_cols = ColumnBatch::FromMatrix(x);
    const ColumnBatch cf_cols = ColumnBatch::FromMatrix(x_cf);
    constraints.AllSatisfiedBatch(encoder, x_cols, cf_cols, tol, &ok);
  } else if (constraints.size() > 0) {
    // Small batches: two transposes cost more than the row loop saves
    // (serving batch-1 latency path). Identical verdicts either way.
    for (size_t r = 0; r < rows; ++r) {
      ok[r] = constraints.AllSatisfied(encoder, x.Row(r), x_cf.Row(r), tol);
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    const bool good =
        ok[r] != 0 &&
        WithinInputDomainSpan(x_cf.data() + r * x_cf.cols(), x_cf.cols(),
                              0.05f);
    result.feasible[r] = good;
    result.num_feasible += good;
  }
  result.score_percent =
      result.num_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.num_feasible) /
                static_cast<double>(result.num_pairs);
  return result;
}

bool WithinInputDomainSpan(const float* values, size_t n, float eps) {
  for (size_t i = 0; i < n; ++i) {
    const float v = values[i];
    if (v < -eps || v > 1.0f + eps) return false;
  }
  return true;
}

bool WithinInputDomain(const Matrix& encoded_row, float eps) {
  return WithinInputDomainSpan(encoded_row.data(), encoded_row.size(), eps);
}

}  // namespace cfx
