#include "src/constraints/feasibility.h"

#include <cassert>

namespace cfx {

FeasibilityResult EvaluateFeasibility(const ConstraintSet& constraints,
                                      const TabularEncoder& encoder,
                                      const Matrix& x, const Matrix& x_cf,
                                      const ConstraintTolerance& tol) {
  assert(x.SameShape(x_cf));
  FeasibilityResult result;
  result.num_pairs = x.rows();
  result.feasible.resize(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const Matrix xi = x.Row(r);
    const Matrix ci = x_cf.Row(r);
    const bool ok = constraints.AllSatisfied(encoder, xi, ci, tol) &&
                    WithinInputDomain(ci, 0.05f);
    result.feasible[r] = ok;
    result.num_feasible += ok;
  }
  result.score_percent =
      result.num_pairs == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.num_feasible) /
                static_cast<double>(result.num_pairs);
  return result;
}

bool WithinInputDomain(const Matrix& encoded_row, float eps) {
  for (size_t i = 0; i < encoded_row.size(); ++i) {
    const float v = encoded_row[i];
    if (v < -eps || v > 1.0f + eps) return false;
  }
  return true;
}

}  // namespace cfx
