// Causal feasibility constraints (paper §III-A).
//
// Two constraint families are supported, exactly those of the paper:
//   * Unary monotone (Eq. 1): a feature may only increase,
//       x_f^cf >= x_f                      (e.g. age).
//   * Binary implication (Eq. 2): if the cause increases the effect must
//     strictly increase, and if the cause is unchanged the effect must not
//     decrease (e.g. education -> age; tier -> lsat):
//       (c^cf > c  =>  e^cf > e)  AND  (c^cf = c  =>  e^cf >= e).
//
// Constraints are checked on the *encoded* representation through the
// encoder, so categorical causes (education, tier) compare their ordinal
// category index and continuous features compare normalised values.
#ifndef CFX_CONSTRAINTS_CONSTRAINT_H_
#define CFX_CONSTRAINTS_CONSTRAINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/data/column_batch.h"
#include "src/data/encoder.h"
#include "src/datasets/spec.h"

namespace cfx {

/// Comparison tolerances (in normalised units for continuous features).
struct ConstraintTolerance {
  double continuous = 5e-3;  ///< Slack for >=/<= on [0,1]-normalised values.
  double strict = 1e-3;      ///< Minimum increase counting as "strictly more".
};

/// A hard feasibility predicate over an (input, counterfactual) pair.
class Constraint {
 public:
  virtual ~Constraint() = default;

  /// Human-readable description for reports.
  virtual std::string Description() const = 0;

  /// True if the pair (x, x_cf) of encoded rows satisfies the constraint.
  virtual bool Satisfied(const TabularEncoder& encoder, const Matrix& x,
                         const Matrix& x_cf,
                         const ConstraintTolerance& tol) const = 0;

  /// Batch form: ANDs the verdict of every row pair into ok[r]. The columnar
  /// layout lets overrides stream the referenced feature's contiguous
  /// columns (see OrdinalLevels) instead of materialising one Matrix pair
  /// per row; the base implementation falls back to row-by-row Satisfied,
  /// so third-party constraints stay correct without an override. Rows with
  /// ok[r] already 0 may be skipped. Identical verdicts to Satisfied.
  virtual void SatisfiedBatch(const TabularEncoder& encoder,
                              const ColumnBatch& x, const ColumnBatch& x_cf,
                              const ConstraintTolerance& tol,
                              std::vector<uint8_t>* ok) const;
};

/// Eq. (1): feature may only increase.
class UnaryMonotoneConstraint : public Constraint {
 public:
  explicit UnaryMonotoneConstraint(std::string feature)
      : feature_(std::move(feature)) {}

  std::string Description() const override;
  bool Satisfied(const TabularEncoder& encoder, const Matrix& x,
                 const Matrix& x_cf,
                 const ConstraintTolerance& tol) const override;
  void SatisfiedBatch(const TabularEncoder& encoder, const ColumnBatch& x,
                      const ColumnBatch& x_cf, const ConstraintTolerance& tol,
                      std::vector<uint8_t>* ok) const override;

  const std::string& feature() const { return feature_; }

 private:
  std::string feature_;
};

/// Eq. (2): cause up => effect strictly up; cause unchanged => effect not
/// down. A *decreasing* cause (e.g. losing a degree) is itself infeasible.
class BinaryImplicationConstraint : public Constraint {
 public:
  BinaryImplicationConstraint(std::string cause, std::string effect)
      : cause_(std::move(cause)), effect_(std::move(effect)) {}

  std::string Description() const override;
  bool Satisfied(const TabularEncoder& encoder, const Matrix& x,
                 const Matrix& x_cf,
                 const ConstraintTolerance& tol) const override;
  void SatisfiedBatch(const TabularEncoder& encoder, const ColumnBatch& x,
                      const ColumnBatch& x_cf, const ConstraintTolerance& tol,
                      std::vector<uint8_t>* ok) const override;

  const std::string& cause() const { return cause_; }
  const std::string& effect() const { return effect_; }

 private:
  std::string cause_;
  std::string effect_;
};

/// Ordered bundle of constraints; feasible = all satisfied.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void Add(std::unique_ptr<Constraint> constraint) {
    constraints_.push_back(std::move(constraint));
  }

  size_t size() const { return constraints_.size(); }
  const Constraint& constraint(size_t i) const { return *constraints_[i]; }

  /// True iff every constraint holds for (x, x_cf).
  bool AllSatisfied(const TabularEncoder& encoder, const Matrix& x,
                    const Matrix& x_cf, const ConstraintTolerance& tol) const;

  /// Batch form over columnar batches: ok[r] ends up 1 iff every constraint
  /// holds for row pair r (verdicts AND-ed into the caller's flags).
  void AllSatisfiedBatch(const TabularEncoder& encoder, const ColumnBatch& x,
                         const ColumnBatch& x_cf,
                         const ConstraintTolerance& tol,
                         std::vector<uint8_t>* ok) const;

  std::string Description() const;

 private:
  std::vector<std::unique_ptr<Constraint>> constraints_;
};

/// The two constraint models of §IV-E for a dataset: the unary model uses
/// Eq. (1) on `unary_feature`; the binary model uses Eq. (2) on
/// (binary_cause, binary_effect).
ConstraintSet MakeUnaryConstraintSet(const DatasetInfo& info);
ConstraintSet MakeBinaryConstraintSet(const DatasetInfo& info);

/// Ordinal "level" of feature `fi` in an encoded row, on a [0,1] scale:
/// the normalised value for continuous/binary features, the category index
/// divided by (#categories - 1) for categoricals. This is the common scale
/// the constraint checks and penalties compare on.
double OrdinalLevel(const TabularEncoder& encoder, const Matrix& encoded_row,
                    size_t fi);

/// Columnar batch form of OrdinalLevel: levels[r] = OrdinalLevel of row r,
/// computed by streaming the feature's contiguous column(s) once.
void OrdinalLevels(const TabularEncoder& encoder, const ColumnBatch& batch,
                   size_t fi, std::vector<double>* levels);

}  // namespace cfx

#endif  // CFX_CONSTRAINTS_CONSTRAINT_H_
