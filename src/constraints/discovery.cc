#include "src/constraints/discovery.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace cfx {

std::string ConstraintCandidate::ToString() const {
  return StrFormat("%s -> %s  (r=%.3f, effect ~ %.3f + %.3f*cause, n=%zu)",
                   cause.c_str(), effect.c_str(), correlation, c1, c2,
                   support);
}

namespace {

/// Ordinal levels of one feature for every row.
std::vector<double> FeatureLevels(const TabularEncoder& encoder,
                                  const Matrix& x, size_t fi) {
  std::vector<double> levels(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    levels[r] = OrdinalLevel(encoder, x.Row(r), fi);
  }
  return levels;
}

struct Fit {
  double correlation = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;
};

/// Pearson correlation + least-squares line of b on a.
Fit FitPair(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);

  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  Fit fit;
  if (va <= 1e-12 || vb <= 1e-12) return fit;  // Degenerate column.
  fit.correlation = cov / std::sqrt(va * vb);
  fit.c2 = cov / va;
  fit.c1 = mb - fit.c2 * ma;
  return fit;
}

}  // namespace

std::vector<ConstraintCandidate> DiscoverConstraints(
    const TabularEncoder& encoder, const Matrix& x_train,
    const DiscoveryConfig& config) {
  const Schema& schema = encoder.schema();
  const size_t nf = schema.num_features();

  // Pre-compute levels per feature.
  std::vector<std::vector<double>> levels(nf);
  std::vector<bool> usable(nf, false);
  for (size_t fi = 0; fi < nf; ++fi) {
    if (config.skip_immutable && schema.feature(fi).immutable) continue;
    usable[fi] = true;
    levels[fi] = FeatureLevels(encoder, x_train, fi);
  }

  std::vector<ConstraintCandidate> candidates;
  for (size_t cause = 0; cause < nf; ++cause) {
    if (!usable[cause]) continue;
    for (size_t effect = 0; effect < nf; ++effect) {
      if (effect == cause || !usable[effect]) continue;
      Fit fit = FitPair(levels[cause], levels[effect]);
      if (fit.correlation < config.min_correlation) continue;  // Positive only.
      if (fit.c2 < config.min_slope) continue;
      ConstraintCandidate candidate;
      candidate.cause = schema.feature(cause).name;
      candidate.effect = schema.feature(effect).name;
      candidate.correlation = fit.correlation;
      candidate.c1 = fit.c1;
      candidate.c2 = fit.c2;
      candidate.support = x_train.rows();
      candidates.push_back(std::move(candidate));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ConstraintCandidate& a, const ConstraintCandidate& b) {
              return std::fabs(a.correlation) > std::fabs(b.correlation);
            });
  if (candidates.size() > config.max_candidates) {
    candidates.resize(config.max_candidates);
  }
  return candidates;
}

std::unique_ptr<Constraint> MakeConstraint(const ConstraintCandidate& c) {
  return std::make_unique<BinaryImplicationConstraint>(c.cause, c.effect);
}

ConstraintSet MakeDiscoveredConstraintSet(
    const std::vector<ConstraintCandidate>& candidates, size_t k) {
  ConstraintSet set;
  for (size_t i = 0; i < std::min(k, candidates.size()); ++i) {
    set.Add(MakeConstraint(candidates[i]));
  }
  return set;
}

}  // namespace cfx
