// Batch feasibility evaluation — the "Feasibility score" metric of §IV-D and
// the feasible/infeasible labelling used by the Figure 6 manifolds.
#ifndef CFX_CONSTRAINTS_FEASIBILITY_H_
#define CFX_CONSTRAINTS_FEASIBILITY_H_

#include <vector>

#include "src/constraints/constraint.h"

namespace cfx {

/// Aggregate feasibility of a set of (input, counterfactual) pairs.
struct FeasibilityResult {
  size_t num_pairs = 0;
  size_t num_feasible = 0;
  /// Percentage in [0, 100], as reported in Table IV.
  double score_percent = 0.0;
  /// Per-pair feasibility flags, aligned with the input rows.
  std::vector<bool> feasible;
};

/// Checks every row pair (x[i], x_cf[i]) against `constraints`. The matrices
/// must have identical shapes (n x encoded_width).
FeasibilityResult EvaluateFeasibility(
    const ConstraintSet& constraints, const TabularEncoder& encoder,
    const Matrix& x, const Matrix& x_cf,
    const ConstraintTolerance& tol = ConstraintTolerance());

/// Input-domain membership (part of the paper's feasibility definition):
/// every encoded slot of the row lies in [ -eps, 1 + eps ].
bool WithinInputDomain(const Matrix& encoded_row, float eps = 1e-3f);

/// Span form of WithinInputDomain, for callers that already hold a
/// contiguous row (row-major row span or ColumnBatch column).
bool WithinInputDomainSpan(const float* values, size_t n, float eps = 1e-3f);

}  // namespace cfx

#endif  // CFX_CONSTRAINTS_FEASIBILITY_H_
