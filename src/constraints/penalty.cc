#include "src/constraints/penalty.h"

#include <cassert>

namespace cfx {

Matrix PenaltyBuilder::LevelWeights(size_t fi) const {
  const EncodedBlock& block = encoder_->block(fi);
  Matrix w(block.width, 1);
  if (block.width == 1) {
    w.at(0, 0) = 1.0f;
  } else {
    for (size_t j = 0; j < block.width; ++j) {
      w.at(j, 0) = static_cast<float>(j) / static_cast<float>(block.width - 1);
    }
  }
  return w;
}

ag::Var PenaltyBuilder::OrdinalLevels(const ag::Var& x, size_t fi) const {
  const EncodedBlock& block = encoder_->block(fi);
  ag::Var slice = ag::SliceCols(x, block.offset, block.offset + block.width);
  if (block.width == 1) return slice;
  return ag::MatMul(slice, ag::Constant(LevelWeights(fi)));
}

Matrix PenaltyBuilder::OrdinalLevelsConst(const Matrix& x, size_t fi) const {
  const EncodedBlock& block = encoder_->block(fi);
  Matrix slice = x.SliceCols(block.offset, block.offset + block.width);
  if (block.width == 1) return slice;
  return slice.MatMul(LevelWeights(fi));
}

ag::Var PenaltyBuilder::UnaryPenalty(const std::string& feature,
                                     const ag::Var& x_cf,
                                     const Matrix& x) const {
  auto fi = encoder_->schema().FeatureIndex(feature);
  assert(fi.ok());
  ag::Var level_cf = OrdinalLevels(x_cf, *fi);
  Matrix level_x = OrdinalLevelsConst(x, *fi);
  // relu(x - x_cf) == -min(0, x_cf - x).
  return ag::Mean(ag::Relu(ag::Sub(ag::Constant(level_x), level_cf)));
}

ag::Var PenaltyBuilder::BinaryImplicationPenalty(const std::string& cause,
                                                 const std::string& effect,
                                                 const ag::Var& x_cf,
                                                 const Matrix& x,
                                                 float strict_margin) const {
  auto ci = encoder_->schema().FeatureIndex(cause);
  auto ei = encoder_->schema().FeatureIndex(effect);
  assert(ci.ok() && ei.ok());

  ag::Var dc = ag::Sub(OrdinalLevels(x_cf, *ci),
                       ag::Constant(OrdinalLevelsConst(x, *ci)));
  ag::Var de = ag::Sub(OrdinalLevels(x_cf, *ei),
                       ag::Constant(OrdinalLevelsConst(x, *ei)));

  // Term 1: cause up while effect lags -> relu(dc) * relu(margin - de).
  Matrix margin(dc->value.rows(), 1, strict_margin);
  ag::Var lag = ag::Relu(ag::Sub(ag::Constant(margin), de));
  ag::Var up_violation = ag::Mul(ag::Relu(dc), lag);

  // Term 2: cause decreasing is infeasible on its own -> relu(-dc).
  ag::Var down_violation = ag::Relu(ag::Neg(dc));

  // Term 3: Eq. (2)'s second clause makes the effect monotone regardless of
  // the cause ("cause unchanged => effect >="), so any effect decrease is a
  // violation -> relu(-de).
  ag::Var effect_violation = ag::Relu(ag::Neg(de));

  return ag::Mean(
      ag::Add(ag::Add(up_violation, down_violation), effect_violation));
}

ag::Var PenaltyBuilder::BinaryLinearPenalty(const std::string& cause,
                                            const std::string& effect,
                                            const ag::Var& x_cf, float c1,
                                            float c2) const {
  auto ci = encoder_->schema().FeatureIndex(cause);
  auto ei = encoder_->schema().FeatureIndex(effect);
  assert(ci.ok() && ei.ok());

  ag::Var cause_cf = OrdinalLevels(x_cf, *ci);
  ag::Var effect_cf = OrdinalLevels(x_cf, *ei);
  Matrix bias(cause_cf->value.rows(), 1, c1);
  // relu(c1 + c2 * cause - effect).
  ag::Var line = ag::Add(ag::Constant(bias), ag::Scale(cause_cf, c2));
  return ag::Mean(ag::Relu(ag::Sub(line, effect_cf)));
}

}  // namespace cfx
