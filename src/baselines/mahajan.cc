#include "src/baselines/mahajan.h"

namespace cfx {

MahajanMethod::MahajanMethod(const MethodContext& ctx, ConstraintMode mode)
    : CfMethod(ctx), mode_(mode) {
  GeneratorConfig config = GeneratorConfig::FromDataset(*ctx.info, mode);
  // No sparsity objective — the distinguishing difference from the paper's
  // method (§III-B) — and a softer constraint hinge (Mahajan et al. weight
  // the causal term against the ELBO rather than treating it as the primary
  // objective), which is why the paper's method overtakes it on feasibility.
  config.loss.sparsity_weight = 0.0f;
  config.loss.feasibility_weight = 6.0f;
  // Mahajan et al. weight validity heavily; like the paper's method their
  // CVAE reconstructs the input closely (their reported sparsity stays well
  // below the plain-VAE baselines), which the copy-prior decoder models.
  config.loss.validity_weight = 6.0f;
  // Mahajan et al. express the binary constraint as a learned linear
  // relation hinge; c1/c2 chosen as in §III-C ("parameters selected from
  // experimentation"): effect must stay at/above 60% of the cause level.
  config.loss.use_linear_binary = true;
  config.loss.linear_c1 = 0.0f;
  config.loss.linear_c2 = 0.6f;

  MethodContext child = ctx;
  child.seed = ctx.seed ^ 0x3A11;
  generator_ = std::make_unique<FeasibleCfGenerator>(child, config);
}

std::string MahajanMethod::name() const {
  return mode_ == ConstraintMode::kBinary ? "Mahajan et al. [5] Binary"
                                          : "Mahajan et al. [5] Unary";
}

Status MahajanMethod::Fit(const Matrix& x_train,
                          const std::vector<int>& labels) {
  return generator_->Fit(x_train, labels);
}

CfResult MahajanMethod::GenerateImpl(const Matrix& x) {
  return generator_->Generate(x);
}

}  // namespace cfx
