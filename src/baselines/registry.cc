#include "src/baselines/registry.h"

#include "src/baselines/cchvae.h"
#include "src/baselines/cem.h"
#include "src/baselines/dice_random.h"
#include "src/baselines/face.h"
#include "src/baselines/mahajan.h"
#include "src/baselines/revise.h"
#include "src/core/generator.h"

namespace cfx {

const std::vector<MethodKind>& AllMethodKinds() {
  static const std::vector<MethodKind> kKinds = {
      MethodKind::kMahajanUnary, MethodKind::kMahajanBinary,
      MethodKind::kRevise,       MethodKind::kCchvae,
      MethodKind::kCem,          MethodKind::kDiceRandom,
      MethodKind::kFace,         MethodKind::kOursUnary,
      MethodKind::kOursBinary,
  };
  return kKinds;
}

std::unique_ptr<CfMethod> CreateMethod(MethodKind kind,
                                       const MethodContext& ctx) {
  switch (kind) {
    case MethodKind::kMahajanUnary:
      return std::make_unique<MahajanMethod>(ctx, ConstraintMode::kUnary);
    case MethodKind::kMahajanBinary:
      return std::make_unique<MahajanMethod>(ctx, ConstraintMode::kBinary);
    case MethodKind::kRevise:
      return std::make_unique<ReviseMethod>(ctx);
    case MethodKind::kCchvae:
      return std::make_unique<CchvaeMethod>(ctx);
    case MethodKind::kCem:
      return std::make_unique<CemMethod>(ctx);
    case MethodKind::kDiceRandom:
      return std::make_unique<DiceRandomMethod>(ctx);
    case MethodKind::kFace:
      return std::make_unique<FaceMethod>(ctx);
    case MethodKind::kOursUnary:
      return std::make_unique<FeasibleCfGenerator>(
          ctx, GeneratorConfig::FromDataset(*ctx.info, ConstraintMode::kUnary));
    case MethodKind::kOursBinary:
      return std::make_unique<FeasibleCfGenerator>(
          ctx,
          GeneratorConfig::FromDataset(*ctx.info, ConstraintMode::kBinary));
  }
  return nullptr;
}

bool ShowsUnaryColumn(MethodKind kind) {
  switch (kind) {
    case MethodKind::kMahajanBinary:
    case MethodKind::kOursBinary:
      return false;
    default:
      return true;
  }
}

bool ShowsBinaryColumn(MethodKind kind) {
  switch (kind) {
    case MethodKind::kMahajanUnary:
    case MethodKind::kOursUnary:
      return false;
    default:
      return true;
  }
}

}  // namespace cfx
