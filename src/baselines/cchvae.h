// Baseline: C-CHVAE — Pawelczyk et al. (2019), "Learning Model-Agnostic
// Counterfactual Explanations for Tabular Data" / "Towards User
// Empowerment" [13].
//
// C-CHVAE trains a (conditional heterogeneous) VAE and searches the latent
// neighbourhood of the input by *growing-sphere random search*: candidates
// z = E(x) + r * u with u uniform on the unit sphere are decoded and tested
// against the classifier, the radius r growing until a counterfactual in the
// data manifold flips the prediction. Among the flips of the first
// successful radius, the candidate closest to the input is returned —
// yielding proximal, connected counterfactuals ("faithfulness", §II).
#ifndef CFX_BASELINES_CCHVAE_H_
#define CFX_BASELINES_CCHVAE_H_

#include "src/baselines/method.h"
#include "src/models/vae.h"

namespace cfx {

/// C-CHVAE hyperparameters.
struct CchvaeConfig {
  VaeTrainConfig vae;
  float initial_radius = 0.25f;
  float radius_growth = 1.6f;
  size_t radii = 10;               ///< Number of growth steps.
  size_t candidates_per_radius = 60;
};

class CchvaeMethod : public CfMethod {
 public:
  explicit CchvaeMethod(const MethodContext& ctx,
                        const CchvaeConfig& config = CchvaeConfig());

  std::string name() const override { return "C-CHVAE [13]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  CchvaeConfig config_;
  std::unique_ptr<Vae> vae_;
  Rng rng_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_CCHVAE_H_
