// Baseline: FACE — Poyiadzi et al. (2020), "FACE: Feasible and Actionable
// Counterfactual Explanations" [19].
//
// FACE returns an *actual training point* reachable from the input through a
// high-density path: a k-NN graph is built over (a subsample of) the
// training set, edge weights are the L2 distances, and Dijkstra finds the
// shortest path from the input's nearest node to any candidate endpoint that
// (a) the black box predicts as the desired class with confidence above a
// threshold and (b) lies in a dense region (its mean k-NN distance is below
// the population median). The endpoint of the cheapest such path is the
// counterfactual.
#ifndef CFX_BASELINES_FACE_H_
#define CFX_BASELINES_FACE_H_

#include <memory>

#include "src/baselines/method.h"
#include "src/manifold/knn.h"

namespace cfx {

/// FACE hyperparameters.
struct FaceConfig {
  /// Training subsample bound. The graph is a CSR-stored kNN adjacency
  /// built from batch index queries (near-linear in nodes), so the cap is
  /// a memory/latency guard rather than the former O(N^2) wall.
  size_t max_graph_nodes = 4096;
  size_t k_neighbors = 8;
  float min_confidence = 0.6f;    ///< Sigmoid confidence for endpoints.
};

class FaceMethod : public CfMethod {
 public:
  explicit FaceMethod(const MethodContext& ctx,
                      const FaceConfig& config = FaceConfig());

  std::string name() const override { return "FACE [19]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  /// Dijkstra from node `source`; returns per-node path costs.
  std::vector<float> ShortestPaths(size_t source) const;

  FaceConfig config_;
  Rng rng_;
  Matrix nodes_;                       ///< Graph nodes (subsampled rows).
  std::unique_ptr<KnnIndex> index_;    ///< Exact kNN over the nodes.
  /// Symmetrised kNN graph in CSR layout: node i's edges are
  /// adj_cols_/adj_weights_[adj_offsets_[i] .. adj_offsets_[i + 1]).
  std::vector<size_t> adj_offsets_;
  std::vector<size_t> adj_cols_;
  std::vector<float> adj_weights_;
  std::vector<int> node_pred_;         ///< Black-box label per node.
  std::vector<float> node_confidence_; ///< Sigmoid confidence per node.
  std::vector<bool> node_dense_;       ///< Mean k-NN distance below median.
};

}  // namespace cfx

#endif  // CFX_BASELINES_FACE_H_
