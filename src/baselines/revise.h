// Baseline: REVISE — Joshi et al. (2019), "Towards Realistic Individual
// Recourse and Actionable Explanations in Black-Box Decision Making
// Systems" [12].
//
// REVISE trains an *unconditional* VAE as a generative model of the data and
// searches the latent space by gradient descent: starting from z = E(x), it
// minimises  Hinge(h(D(z)), y') + lambda * ||D(z) - x||_1  over z, decoding
// the final latent as the counterfactual. The VAE is frozen during the
// search; gradients flow through the decoder into z only.
#ifndef CFX_BASELINES_REVISE_H_
#define CFX_BASELINES_REVISE_H_

#include "src/baselines/method.h"
#include "src/models/vae.h"

namespace cfx {

/// REVISE hyperparameters.
struct ReviseConfig {
  VaeTrainConfig vae;
  float step_size = 0.08f;        ///< Adam step in latent space.
  size_t max_iterations = 300;
  float proximity_lambda = 0.3f;
  float hinge_margin = 0.5f;
};

class ReviseMethod : public CfMethod {
 public:
  explicit ReviseMethod(const MethodContext& ctx,
                        const ReviseConfig& config = ReviseConfig());

  std::string name() const override { return "REVISE [12]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  ReviseConfig config_;
  std::unique_ptr<Vae> vae_;
  Rng rng_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_REVISE_H_
