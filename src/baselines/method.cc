#include "src/baselines/method.h"

#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace cfx {
namespace {

/// FNV-1a over the batch bytes and shape. Collisions are tolerated (entries
/// carry the full batch for an exact compare) so speed beats strength here.
uint64_t HashBatch(const Matrix& x) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const unsigned char* bytes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const uint64_t shape[2] = {x.rows(), x.cols()};
  mix(reinterpret_cast<const unsigned char*>(shape), sizeof(shape));
  mix(reinterpret_cast<const unsigned char*>(x.data()),
      x.size() * sizeof(float));
  return h;
}

bool SameBatch(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

PredictionCache::PredictionCache(BlackBoxClassifier* classifier, HashFn hash)
    : classifier_(classifier), hash_(hash != nullptr ? hash : &HashBatch) {}

const std::vector<int>& PredictionCache::Predict(const Matrix& x) {
  // Memoising an unfrozen model would serve stale labels after training;
  // this must hold in release builds too, so no assert.
  if (!classifier_->frozen()) {
    CFX_LOG(Error) << "PredictionCache::Predict called on an unfrozen "
                      "classifier; freeze the model before caching";
    std::abort();
  }
  static metrics::Counter* hit_count = metrics::GetCounter("predcache.hits");
  static metrics::Counter* miss_count =
      metrics::GetCounter("predcache.misses");
  static metrics::Gauge* hit_rate = metrics::GetGauge("predcache.hit_rate");

  std::lock_guard<std::mutex> lock(mu_);
  const auto update_rate = [&] {
    if (hit_rate != nullptr) {
      hit_rate->Set(static_cast<double>(hits_) /
                    static_cast<double>(hits_ + misses_));
    }
  };
  std::deque<Entry>& bucket = entries_[hash_(x)];
  for (Entry& entry : bucket) {
    if (SameBatch(entry.x, x)) {
      ++hits_;
      if (hit_count != nullptr) hit_count->Add(1);
      update_rate();
      return entry.pred;
    }
  }
  ++misses_;
  if (miss_count != nullptr) miss_count->Add(1);
  update_rate();
  bucket.push_back(Entry{x, classifier_->Predict(x)});
  return bucket.back().pred;
}

size_t PredictionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t PredictionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

CfResult CfMethod::Generate(const Matrix& x) {
  trace::ScopedSpan span(trace::SpansActive()
                             ? "method/" + name() + "/generate"
                             : std::string());
  return GenerateImpl(x);
}

CfResult CfMethod::GenerateMany(const Matrix& x, nn::InferWorkspace* ws) {
  // Sequential fallback: per-row Generate calls in row order, stitched into
  // one aligned result. The method's own state (RNG streams, member
  // workspaces) advances per call, so callers must serialise; the worker
  // workspace is unused here.
  (void)ws;
  CfResult result;
  result.inputs = x;
  result.cfs_raw = Matrix(x.rows(), x.cols());
  result.cfs = Matrix(x.rows(), x.cols());
  result.desired.resize(x.rows());
  result.predicted.resize(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    CfResult one = Generate(x.Row(r));
    std::memcpy(result.cfs_raw.data() + r * x.cols(), one.cfs_raw.data(),
                x.cols() * sizeof(float));
    std::memcpy(result.cfs.data() + r * x.cols(), one.cfs.data(),
                x.cols() * sizeof(float));
    result.desired[r] = one.desired[0];
    result.predicted[r] = one.predicted[0];
  }
  return result;
}

std::vector<int> CfMethod::Predictions(const Matrix& x) const {
  if (ctx_.predictions != nullptr && ctx_.classifier->frozen()) {
    return ctx_.predictions->Predict(x);
  }
  return ctx_.classifier->Predict(x);
}

std::vector<int> CfMethod::Predictions(const Matrix& x,
                                       nn::InferWorkspace* ws) const {
  if (ws == nullptr) return Predictions(x);
  // Direct frozen-classifier query on the caller's workspace: same values as
  // the cache route, minus its mutex — concurrent workers never contend.
  return ctx_.classifier->Predict(x, ws);
}

std::vector<int> CfMethod::DesiredClasses(const Matrix& x) const {
  return DesiredClasses(x, nullptr);
}

std::vector<int> CfMethod::DesiredClasses(const Matrix& x,
                                          nn::InferWorkspace* ws) const {
  std::vector<int> pred = Predictions(x, ws);
  for (int& y : pred) y = 1 - y;
  return pred;
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw) const {
  return FinishResult(x, cfs_raw, DesiredClasses(x));
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw,
                                std::vector<int> desired) const {
  return FinishResult(x, cfs_raw, std::move(desired), nullptr);
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw,
                                std::vector<int> desired,
                                nn::InferWorkspace* ws) const {
  CfResult result;
  result.inputs = x;
  result.cfs_raw = cfs_raw;
  result.desired = std::move(desired);

  // Project every CF onto the valid one-hot manifold and restore immutable
  // attributes verbatim from the input (paper §III-C). The columnar batch
  // projection is bitwise identical to the historical per-row
  // ProjectRow + MutableMask restore loop.
  result.cfs = ctx_.encoder->ProjectBatch(cfs_raw, &x);
  result.predicted = Predictions(result.cfs, ws);
  return result;
}

}  // namespace cfx
