#include "src/baselines/method.h"

namespace cfx {

std::vector<int> CfMethod::DesiredClasses(const Matrix& x) const {
  std::vector<int> pred = ctx_.classifier->Predict(x);
  for (int& y : pred) y = 1 - y;
  return pred;
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw) const {
  CfResult result;
  result.inputs = x;
  result.cfs_raw = cfs_raw;
  result.desired = DesiredClasses(x);

  // Project every CF onto the valid one-hot manifold and restore immutable
  // attributes verbatim from the input (paper §III-C).
  const Matrix mutable_mask = ctx_.encoder->MutableMask();
  Matrix projected(cfs_raw.rows(), cfs_raw.cols());
  for (size_t r = 0; r < cfs_raw.rows(); ++r) {
    Matrix row = ctx_.encoder->ProjectRow(cfs_raw.Row(r));
    for (size_t c = 0; c < row.cols(); ++c) {
      if (mutable_mask.at(0, c) == 0.0f) row.at(0, c) = x.at(r, c);
      projected.at(r, c) = row.at(0, c);
    }
  }
  result.cfs = projected;
  result.predicted = ctx_.classifier->Predict(result.cfs);
  return result;
}

}  // namespace cfx
