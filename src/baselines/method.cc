#include "src/baselines/method.h"

#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace cfx {
namespace {

/// FNV-1a over the batch bytes and shape. Collisions are tolerated (entries
/// carry the full batch for an exact compare) so speed beats strength here.
uint64_t HashBatch(const Matrix& x) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const unsigned char* bytes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const uint64_t shape[2] = {x.rows(), x.cols()};
  mix(reinterpret_cast<const unsigned char*>(shape), sizeof(shape));
  mix(reinterpret_cast<const unsigned char*>(x.data()),
      x.size() * sizeof(float));
  return h;
}

bool SameBatch(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

PredictionCache::PredictionCache(BlackBoxClassifier* classifier, HashFn hash)
    : classifier_(classifier), hash_(hash != nullptr ? hash : &HashBatch) {
  hit_counter_ = metrics::GetCounter("predcache.hits");
  miss_counter_ = metrics::GetCounter("predcache.misses");
  rate_gauge_ = metrics::GetGauge("predcache.hit_rate");
  bloom_skip_counter_ = metrics::GetCounter("predcache/bloom_skips");
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_[i].hit_rate = metrics::GetGauge("predcache.shard." +
                                            std::to_string(i) + ".hit_rate");
  }
}

const std::vector<int>* PredictionCache::FindLocked(Shard& shard,
                                                    uint64_t hash,
                                                    const Matrix& x) {
  auto it = shard.entries.find(hash);
  if (it == shard.entries.end()) return nullptr;
  for (Entry& entry : it->second) {
    if (SameBatch(entry.x, x)) return &entry.pred;
  }
  return nullptr;
}

void PredictionCache::BumpLocked(Shard& shard, bool hit) {
  // shard.mu held. The aggregate side is relaxed-atomic so hits()/misses()
  // never need to sweep every shard's mutex; each query increments exactly
  // one of the two totals, keeping hits() + misses() an exact query count.
  if (hit) {
    ++shard.hits;
    total_hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->Add(1);
  } else {
    ++shard.misses;
    total_misses_.fetch_add(1, std::memory_order_relaxed);
    if (miss_counter_ != nullptr) miss_counter_->Add(1);
  }
  if (shard.hit_rate != nullptr) {
    shard.hit_rate->Set(static_cast<double>(shard.hits) /
                        static_cast<double>(shard.hits + shard.misses));
  }
  if (rate_gauge_ != nullptr) {
    const double hits =
        static_cast<double>(total_hits_.load(std::memory_order_relaxed));
    const double misses =
        static_cast<double>(total_misses_.load(std::memory_order_relaxed));
    rate_gauge_->Set(hits / (hits + misses));
  }
}

const std::vector<int>& PredictionCache::Predict(const Matrix& x) {
  // Memoising an unfrozen model would serve stale labels after training;
  // this must hold in release builds too, so no assert.
  if (!classifier_->frozen()) {
    CFX_LOG(Error) << "PredictionCache::Predict called on an unfrozen "
                      "classifier; freeze the model before caching";
    std::abort();
  }

  const uint64_t hash = hash_(x);
  Shard& shard = shards_[ShardIndex(hash)];

  if (bloom_.MaybeContains(hash)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::vector<int>* found = FindLocked(shard, hash, x);
    if (found != nullptr) {
      BumpLocked(shard, /*hit=*/true);
      return *found;
    }
    // Bloom false positive, or a distinct batch colliding into a seen
    // hash: fall through to the unlocked compute path.
  } else {
    // The bloom front has never seen this hash: a definite miss, resolved
    // without touching the shard mutex for the lookup.
    bloom_skips_.fetch_add(1, std::memory_order_relaxed);
    if (bloom_skip_counter_ != nullptr) bloom_skip_counter_->Add(1);
  }

  // Miss: run the model with NO lock held. The classifier's lazily-built
  // inference plan is a one-time mutation, so the first compute is funneled
  // through a once-flag; after that, frozen weights are read-only and every
  // caller brings a private workspace — concurrent cold misses on different
  // (or the same) shards proceed in parallel.
  std::call_once(plan_once_, [this, &x] {
    nn::InferWorkspace warm;
    (void)classifier_->Predict(x, &warm);
  });
  nn::InferWorkspace ws;
  std::vector<int> pred = classifier_->Predict(x, &ws);

  std::lock_guard<std::mutex> lock(shard.mu);
  // Another thread may have inserted this batch while we computed. Adopt
  // its entry — counted as a hit, so misses() stays exactly "distinct
  // batches inserted" even under racing cold misses.
  const std::vector<int>* raced = FindLocked(shard, hash, x);
  if (raced != nullptr) {
    BumpLocked(shard, /*hit=*/true);
    return *raced;
  }
  BumpLocked(shard, /*hit=*/false);
  std::deque<Entry>& bucket = shard.entries[hash];
  bucket.push_back(Entry{x, std::move(pred)});
  // Publish to the bloom front only after the entry is in the map: a reader
  // that observes the bit and takes the lock must find the entry.
  bloom_.Add(hash);
  return bucket.back().pred;
}

size_t PredictionCache::hits() const {
  return total_hits_.load(std::memory_order_relaxed);
}

size_t PredictionCache::misses() const {
  return total_misses_.load(std::memory_order_relaxed);
}

size_t PredictionCache::bloom_skips() const {
  return bloom_skips_.load(std::memory_order_relaxed);
}

size_t PredictionCache::shard_hits(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].hits;
}

size_t PredictionCache::shard_misses(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].misses;
}

CfResult CfMethod::Generate(const Matrix& x) {
  trace::ScopedSpan span(trace::SpansActive()
                             ? "method/" + name() + "/generate"
                             : std::string());
  return GenerateImpl(x);
}

CfResult CfMethod::GenerateMany(const Matrix& x, nn::InferWorkspace* ws) {
  // Sequential fallback: per-row Generate calls in row order, stitched into
  // one aligned result. The method's own state (RNG streams, member
  // workspaces) advances per call, so callers must serialise; the worker
  // workspace is unused here.
  (void)ws;
  CfResult result;
  result.inputs = x;
  result.cfs_raw = Matrix(x.rows(), x.cols());
  result.cfs = Matrix(x.rows(), x.cols());
  result.desired.resize(x.rows());
  result.predicted.resize(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    CfResult one = Generate(x.Row(r));
    std::memcpy(result.cfs_raw.data() + r * x.cols(), one.cfs_raw.data(),
                x.cols() * sizeof(float));
    std::memcpy(result.cfs.data() + r * x.cols(), one.cfs.data(),
                x.cols() * sizeof(float));
    result.desired[r] = one.desired[0];
    result.predicted[r] = one.predicted[0];
  }
  return result;
}

std::vector<int> CfMethod::Predictions(const Matrix& x) const {
  if (ctx_.predictions != nullptr && ctx_.classifier->frozen()) {
    return ctx_.predictions->Predict(x);
  }
  return ctx_.classifier->Predict(x);
}

std::vector<int> CfMethod::Predictions(const Matrix& x,
                                       nn::InferWorkspace* ws) const {
  if (ws == nullptr) return Predictions(x);
  // Direct frozen-classifier query on the caller's workspace: same values as
  // the cache route, minus its mutex — concurrent workers never contend.
  return ctx_.classifier->Predict(x, ws);
}

std::vector<int> CfMethod::DesiredClasses(const Matrix& x) const {
  return DesiredClasses(x, nullptr);
}

std::vector<int> CfMethod::DesiredClasses(const Matrix& x,
                                          nn::InferWorkspace* ws) const {
  std::vector<int> pred = Predictions(x, ws);
  for (int& y : pred) y = 1 - y;
  return pred;
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw) const {
  return FinishResult(x, cfs_raw, DesiredClasses(x));
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw,
                                std::vector<int> desired) const {
  return FinishResult(x, cfs_raw, std::move(desired), nullptr);
}

CfResult CfMethod::FinishResult(const Matrix& x, Matrix cfs_raw,
                                std::vector<int> desired,
                                nn::InferWorkspace* ws) const {
  CfResult result;
  result.inputs = x;
  result.desired = std::move(desired);

  // Project every CF onto the valid one-hot manifold and restore immutable
  // attributes verbatim from the input (paper §III-C). The columnar batch
  // projection is bitwise identical to the historical per-row
  // ProjectRow + MutableMask restore loop.
  result.cfs = ctx_.encoder->ProjectBatch(cfs_raw, &x);
  result.predicted = Predictions(result.cfs, ws);
  result.cfs_raw = std::move(cfs_raw);
  return result;
}

}  // namespace cfx
