#include "src/baselines/method.h"

#include <cassert>
#include <cstring>

namespace cfx {
namespace {

/// FNV-1a over the batch bytes and shape. Collisions are tolerated (entries
/// carry the full batch for an exact compare) so speed beats strength here.
uint64_t HashBatch(const Matrix& x) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const unsigned char* bytes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const uint64_t shape[2] = {x.rows(), x.cols()};
  mix(reinterpret_cast<const unsigned char*>(shape), sizeof(shape));
  mix(reinterpret_cast<const unsigned char*>(x.data()),
      x.size() * sizeof(float));
  return h;
}

bool SameBatch(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

const std::vector<int>& PredictionCache::Predict(const Matrix& x) {
  // Memoising an unfrozen model would serve stale labels after training.
  assert(classifier_->frozen());
  std::vector<Entry>& bucket = entries_[HashBatch(x)];
  for (Entry& entry : bucket) {
    if (SameBatch(entry.x, x)) {
      ++hits_;
      return entry.pred;
    }
  }
  ++misses_;
  bucket.push_back(Entry{x, classifier_->Predict(x)});
  return bucket.back().pred;
}

std::vector<int> CfMethod::Predictions(const Matrix& x) const {
  if (ctx_.predictions != nullptr && ctx_.classifier->frozen()) {
    return ctx_.predictions->Predict(x);
  }
  return ctx_.classifier->Predict(x);
}

std::vector<int> CfMethod::DesiredClasses(const Matrix& x) const {
  std::vector<int> pred = Predictions(x);
  for (int& y : pred) y = 1 - y;
  return pred;
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw) const {
  return FinishResult(x, cfs_raw, DesiredClasses(x));
}

CfResult CfMethod::FinishResult(const Matrix& x, const Matrix& cfs_raw,
                                std::vector<int> desired) const {
  CfResult result;
  result.inputs = x;
  result.cfs_raw = cfs_raw;
  result.desired = std::move(desired);

  // Project every CF onto the valid one-hot manifold and restore immutable
  // attributes verbatim from the input (paper §III-C).
  const Matrix mutable_mask = ctx_.encoder->MutableMask();
  Matrix projected(cfs_raw.rows(), cfs_raw.cols());
  for (size_t r = 0; r < cfs_raw.rows(); ++r) {
    Matrix row = ctx_.encoder->ProjectRow(cfs_raw.Row(r));
    for (size_t c = 0; c < row.cols(); ++c) {
      if (mutable_mask.at(0, c) == 0.0f) row.at(0, c) = x.at(r, c);
      projected.at(r, c) = row.at(0, c);
    }
  }
  result.cfs = projected;
  result.predicted = Predictions(result.cfs);
  return result;
}

}  // namespace cfx
