#include "src/baselines/face.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/manifold/knn.h"

namespace cfx {

FaceMethod::FaceMethod(const MethodContext& ctx, const FaceConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0xFACE) {}

Status FaceMethod::Fit(const Matrix& x_train, const std::vector<int>& labels) {
  (void)labels;
  // Subsample the graph nodes if needed.
  const size_t n = x_train.rows();
  if (n <= config_.max_graph_nodes) {
    nodes_ = x_train;
  } else {
    std::vector<size_t> perm = rng_.Permutation(n);
    perm.resize(config_.max_graph_nodes);
    nodes_ = x_train.GatherRows(perm);
  }
  const size_t m = nodes_.rows();
  if (m < config_.k_neighbors + 1) {
    return Status::FailedPrecondition("too few training rows for FACE graph");
  }

  // k-NN adjacency + density estimate via the exact index's batch self
  // query (parallel, deterministic pure reads — near-linear instead of the
  // brute-force O(m^2) the former node cap guarded against).
  index_ = std::make_unique<KnnIndex>(nodes_, &rng_);
  const std::vector<std::vector<Neighbor>> knn =
      index_->SelfNeighbors(config_.k_neighbors);
  std::vector<float> mean_knn(m, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (const Neighbor& hit : knn[i]) acc += hit.distance;
    mean_knn[i] = acc / static_cast<float>(config_.k_neighbors);
  }
  // Symmetrise into per-node edge lists (j lists i whenever i lists j),
  // then flatten to CSR for the Dijkstra scans.
  std::vector<std::vector<std::pair<size_t, float>>> adjacency(m);
  for (size_t i = 0; i < m; ++i) {
    for (const Neighbor& hit : knn[i]) {
      adjacency[i].push_back({hit.index, hit.distance});
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (const auto& [j, w] : adjacency[i]) {
      bool present = false;
      for (const auto& [back, bw] : adjacency[j]) {
        (void)bw;
        if (back == i) {
          present = true;
          break;
        }
      }
      if (!present) adjacency[j].push_back({i, w});
    }
  }
  adj_offsets_.assign(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    adj_offsets_[i + 1] = adj_offsets_[i] + adjacency[i].size();
  }
  adj_cols_.resize(adj_offsets_[m]);
  adj_weights_.resize(adj_offsets_[m]);
  for (size_t i = 0; i < m; ++i) {
    size_t e = adj_offsets_[i];
    for (const auto& [j, w] : adjacency[i]) {
      adj_cols_[e] = j;
      adj_weights_[e++] = w;
    }
  }

  // Density flag: mean k-NN distance below the median.
  std::vector<float> sorted = mean_knn;
  std::nth_element(sorted.begin(), sorted.begin() + m / 2, sorted.end());
  const float median = sorted[m / 2];
  node_dense_.resize(m);
  for (size_t i = 0; i < m; ++i) node_dense_[i] = mean_knn[i] <= median;

  // Classifier metadata per node.
  Matrix logits = ctx_.classifier->Logits(nodes_);
  node_pred_.resize(m);
  node_confidence_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const float z = logits.at(i, 0);
    node_pred_[i] = z > 0.0f ? 1 : 0;
    const float p = 1.0f / (1.0f + std::exp(-std::fabs(z)));
    node_confidence_[i] = p;
  }
  return Status::OK();
}

std::vector<float> FaceMethod::ShortestPaths(size_t source) const {
  const size_t m = nodes_.rows();
  std::vector<float> cost(m, std::numeric_limits<float>::infinity());
  using Item = std::pair<float, size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  cost[source] = 0.0f;
  queue.push({0.0f, source});
  while (!queue.empty()) {
    auto [c, u] = queue.top();
    queue.pop();
    if (c > cost[u]) continue;
    for (size_t e = adj_offsets_[u]; e < adj_offsets_[u + 1]; ++e) {
      const size_t v = adj_cols_[e];
      const float nc = c + adj_weights_[e];
      if (nc < cost[v]) {
        cost[v] = nc;
        queue.push({nc, v});
      }
    }
  }
  return cost;
}

CfResult FaceMethod::GenerateImpl(const Matrix& x) {
  if (nodes_.rows() == 0) return FinishResult(x, x);
  std::vector<int> desired = DesiredClasses(x);
  Matrix result = x;

  for (size_t r = 0; r < x.rows(); ++r) {
    // Entry node: nearest graph node to the input.
    std::vector<Neighbor> nearest = index_->Query(x.Row(r), 1);
    const size_t entry = nearest.empty() ? 0 : nearest[0].index;
    std::vector<float> cost = ShortestPaths(entry);

    // Cheapest dense, confident endpoint of the desired class.
    size_t target = nodes_.rows();
    float target_cost = std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < nodes_.rows(); ++i) {
      if (node_pred_[i] != desired[r]) continue;
      if (!node_dense_[i]) continue;
      if (node_confidence_[i] < config_.min_confidence) continue;
      if (cost[i] < target_cost) {
        target_cost = cost[i];
        target = i;
      }
    }
    // Fall back to any reachable node of the desired class.
    if (target == nodes_.rows()) {
      for (size_t i = 0; i < nodes_.rows(); ++i) {
        if (node_pred_[i] != desired[r]) continue;
        if (cost[i] < target_cost) {
          target_cost = cost[i];
          target = i;
        }
      }
    }
    if (target < nodes_.rows()) {
      for (size_t c = 0; c < x.cols(); ++c) {
        result.at(r, c) = nodes_.at(target, c);
      }
    }
  }
  return FinishResult(x, result, std::move(desired));
}

}  // namespace cfx
