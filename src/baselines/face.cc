#include "src/baselines/face.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/common/thread_pool.h"
#include "src/manifold/knn.h"

namespace cfx {

FaceMethod::FaceMethod(const MethodContext& ctx, const FaceConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0xFACE) {}

Status FaceMethod::Fit(const Matrix& x_train, const std::vector<int>& labels) {
  (void)labels;
  // Subsample the graph nodes if needed.
  const size_t n = x_train.rows();
  if (n <= config_.max_graph_nodes) {
    nodes_ = x_train;
  } else {
    std::vector<size_t> perm = rng_.Permutation(n);
    perm.resize(config_.max_graph_nodes);
    nodes_ = x_train.GatherRows(perm);
  }
  const size_t m = nodes_.rows();
  if (m < config_.k_neighbors + 1) {
    return Status::FailedPrecondition("too few training rows for FACE graph");
  }

  // k-NN adjacency (symmetrised) + density estimate, via the exact VP-tree
  // index (O(m log m)-ish instead of the brute-force O(m^2)).
  index_ = std::make_unique<KnnIndex>(nodes_, &rng_);
  adjacency_.assign(m, {});
  std::vector<float> mean_knn(m, 0.0f);
  // The index queries are const (pure reads of the VP-tree), so the per-node
  // kNN lookups run in parallel; each chunk writes only its own rows of
  // adjacency_/mean_knn, keeping the graph identical for any thread count.
  ParallelFor(0, m, 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      std::vector<Neighbor> hits = index_->QuerySelf(i, config_.k_neighbors);
      float acc = 0.0f;
      for (const Neighbor& hit : hits) {
        adjacency_[i].push_back({hit.index, hit.distance});
        acc += hit.distance;
      }
      mean_knn[i] = acc / static_cast<float>(config_.k_neighbors);
    }
  });
  // Symmetrise: ensure j lists i whenever i lists j.
  for (size_t i = 0; i < m; ++i) {
    for (const auto& [j, w] : adjacency_[i]) {
      bool present = false;
      for (const auto& [back, bw] : adjacency_[j]) {
        if (back == i) {
          present = true;
          break;
        }
      }
      if (!present) adjacency_[j].push_back({i, w});
    }
  }

  // Density flag: mean k-NN distance below the median.
  std::vector<float> sorted = mean_knn;
  std::nth_element(sorted.begin(), sorted.begin() + m / 2, sorted.end());
  const float median = sorted[m / 2];
  node_dense_.resize(m);
  for (size_t i = 0; i < m; ++i) node_dense_[i] = mean_knn[i] <= median;

  // Classifier metadata per node.
  Matrix logits = ctx_.classifier->Logits(nodes_);
  node_pred_.resize(m);
  node_confidence_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const float z = logits.at(i, 0);
    node_pred_[i] = z > 0.0f ? 1 : 0;
    const float p = 1.0f / (1.0f + std::exp(-std::fabs(z)));
    node_confidence_[i] = p;
  }
  return Status::OK();
}

std::vector<float> FaceMethod::ShortestPaths(size_t source) const {
  const size_t m = nodes_.rows();
  std::vector<float> cost(m, std::numeric_limits<float>::infinity());
  using Item = std::pair<float, size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  cost[source] = 0.0f;
  queue.push({0.0f, source});
  while (!queue.empty()) {
    auto [c, u] = queue.top();
    queue.pop();
    if (c > cost[u]) continue;
    for (const auto& [v, w] : adjacency_[u]) {
      const float nc = c + w;
      if (nc < cost[v]) {
        cost[v] = nc;
        queue.push({nc, v});
      }
    }
  }
  return cost;
}

CfResult FaceMethod::Generate(const Matrix& x) {
  if (nodes_.rows() == 0) return FinishResult(x, x);
  std::vector<int> desired = DesiredClasses(x);
  Matrix result = x;

  for (size_t r = 0; r < x.rows(); ++r) {
    // Entry node: nearest graph node to the input.
    std::vector<Neighbor> nearest = index_->Query(x.Row(r), 1);
    const size_t entry = nearest.empty() ? 0 : nearest[0].index;
    std::vector<float> cost = ShortestPaths(entry);

    // Cheapest dense, confident endpoint of the desired class.
    size_t target = nodes_.rows();
    float target_cost = std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < nodes_.rows(); ++i) {
      if (node_pred_[i] != desired[r]) continue;
      if (!node_dense_[i]) continue;
      if (node_confidence_[i] < config_.min_confidence) continue;
      if (cost[i] < target_cost) {
        target_cost = cost[i];
        target = i;
      }
    }
    // Fall back to any reachable node of the desired class.
    if (target == nodes_.rows()) {
      for (size_t i = 0; i < nodes_.rows(); ++i) {
        if (node_pred_[i] != desired[r]) continue;
        if (cost[i] < target_cost) {
          target_cost = cost[i];
          target = i;
        }
      }
    }
    if (target < nodes_.rows()) {
      for (size_t c = 0; c < x.cols(); ++c) {
        result.at(r, c) = nodes_.at(target, c);
      }
    }
  }
  return FinishResult(x, result);
}

}  // namespace cfx
