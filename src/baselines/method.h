// Common interface for counterfactual generation methods — the paper's own
// model and the six comparison baselines of Table IV all implement CfMethod,
// so the evaluation harness treats them uniformly.
#ifndef CFX_BASELINES_METHOD_H_
#define CFX_BASELINES_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/cf_example.h"
#include "src/datasets/spec.h"
#include "src/models/classifier.h"

namespace cfx {

/// Memoised black-box predictions. The evaluation harness asks every method
/// to explain the same test batch, and each method computes the desired
/// classes from the classifier's predictions on it — without sharing, the
/// same rows are predicted once per method. The cache keys batches by a
/// content hash (with a full byte-compare on hit, so collisions degrade to
/// a recompute, never a wrong answer) and is only consulted while the
/// classifier is frozen — an unfrozen model may still change.
class PredictionCache {
 public:
  explicit PredictionCache(BlackBoxClassifier* classifier)
      : classifier_(classifier) {}

  /// Predictions for `x`, computed at most once per distinct batch.
  const std::vector<int>& Predict(const Matrix& x);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    Matrix x;                ///< Keyed batch, kept for exact comparison.
    std::vector<int> pred;   ///< Cached classifier predictions.
  };

  BlackBoxClassifier* classifier_;
  std::unordered_map<uint64_t, std::vector<Entry>> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// Everything a CF method may depend on. The encoder and classifier are
/// owned by the experiment and outlive every method.
struct MethodContext {
  const TabularEncoder* encoder = nullptr;
  BlackBoxClassifier* classifier = nullptr;
  const DatasetInfo* info = nullptr;
  uint64_t seed = 42;
  /// Optional shared prediction memo (owned by the experiment); when null,
  /// methods query the classifier directly.
  PredictionCache* predictions = nullptr;
};

/// A counterfactual explanation generator.
class CfMethod {
 public:
  explicit CfMethod(const MethodContext& ctx) : ctx_(ctx) {}
  virtual ~CfMethod() = default;

  /// Display name, matching the Table IV row labels.
  virtual std::string name() const = 0;

  /// Trains/prepares internal models on the (encoded) training split.
  virtual Status Fit(const Matrix& x_train,
                     const std::vector<int>& labels) = 0;

  /// Generates one counterfactual per row of `x`. The desired class of each
  /// row is the opposite of the black box's prediction on it.
  virtual CfResult Generate(const Matrix& x) = 0;

  /// The experiment context this method runs against.
  const MethodContext& context() const { return ctx_; }

 protected:
  /// Fills the shared CfResult bookkeeping: desired classes from the
  /// classifier's predictions on `x`, predictions on the projected CFs, and
  /// the projected/raw CF matrices.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw) const;

  /// Same, with the desired classes a method already computed — avoids a
  /// second (even cached) prediction pass over `x`.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw,
                        std::vector<int> desired) const;

  /// Desired (opposite) class per row of x. Served from the shared
  /// PredictionCache when the context carries one.
  std::vector<int> DesiredClasses(const Matrix& x) const;

  /// Black-box predictions on `x`, via the shared cache when available.
  std::vector<int> Predictions(const Matrix& x) const;

  MethodContext ctx_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_METHOD_H_
