// Common interface for counterfactual generation methods — the paper's own
// model and the six comparison baselines of Table IV all implement CfMethod,
// so the evaluation harness treats them uniformly.
#ifndef CFX_BASELINES_METHOD_H_
#define CFX_BASELINES_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/cf_example.h"
#include "src/datasets/spec.h"
#include "src/models/classifier.h"

namespace cfx {

/// Everything a CF method may depend on. The encoder and classifier are
/// owned by the experiment and outlive every method.
struct MethodContext {
  const TabularEncoder* encoder = nullptr;
  BlackBoxClassifier* classifier = nullptr;
  const DatasetInfo* info = nullptr;
  uint64_t seed = 42;
};

/// A counterfactual explanation generator.
class CfMethod {
 public:
  explicit CfMethod(const MethodContext& ctx) : ctx_(ctx) {}
  virtual ~CfMethod() = default;

  /// Display name, matching the Table IV row labels.
  virtual std::string name() const = 0;

  /// Trains/prepares internal models on the (encoded) training split.
  virtual Status Fit(const Matrix& x_train,
                     const std::vector<int>& labels) = 0;

  /// Generates one counterfactual per row of `x`. The desired class of each
  /// row is the opposite of the black box's prediction on it.
  virtual CfResult Generate(const Matrix& x) = 0;

  /// The experiment context this method runs against.
  const MethodContext& context() const { return ctx_; }

 protected:
  /// Fills the shared CfResult bookkeeping: desired classes from the
  /// classifier's predictions on `x`, predictions on the projected CFs, and
  /// the projected/raw CF matrices.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw) const;

  /// Desired (opposite) class per row of x.
  std::vector<int> DesiredClasses(const Matrix& x) const;

  MethodContext ctx_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_METHOD_H_
