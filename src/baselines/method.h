// Common interface for counterfactual generation methods — the paper's own
// model and the six comparison baselines of Table IV all implement CfMethod,
// so the evaluation harness treats them uniformly.
#ifndef CFX_BASELINES_METHOD_H_
#define CFX_BASELINES_METHOD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/bloom_filter.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/cf_example.h"
#include "src/datasets/spec.h"
#include "src/models/classifier.h"

namespace cfx {

/// Memoised black-box predictions. The evaluation harness asks every method
/// to explain the same test batch, and each method computes the desired
/// classes from the classifier's predictions on it — without sharing, the
/// same rows are predicted once per method. The cache keys batches by a
/// content hash (with a full byte-compare on hit, so collisions degrade to
/// a recompute, never a wrong answer) and is only consulted while the
/// classifier is frozen — an unfrozen model may still change.
///
/// Concurrency layout: the store is striped into 2^kShardBits mutex-guarded
/// shards selected by the hash's top bits, fronted by a lock-free bloom
/// filter over the batch hashes. A query whose hash the bloom filter has
/// never seen skips the shard lock entirely (a definite miss), computes the
/// predictions on a private inference workspace with no lock held, and only
/// takes its shard's mutex for the brief insert — so cold misses from
/// concurrent ParallelFor method queries neither serialise on a global lock
/// nor hold any lock across the model pass. Hits take exactly one shard
/// mutex for the bucket scan.
class PredictionCache {
 public:
  /// Batch-hash hook. The default is FNV-1a over shape and bytes; tests
  /// inject a degenerate hash to force every batch into one bucket.
  using HashFn = uint64_t (*)(const Matrix&);

  /// Shards = 2^kShardBits, selected by the hash's top kShardBits bits
  /// (FNV-1a mixes high bits well; the low bits index buckets inside the
  /// shard's own hash map).
  static constexpr size_t kShardBits = 4;
  static constexpr size_t kNumShards = size_t{1} << kShardBits;

  explicit PredictionCache(BlackBoxClassifier* classifier,
                           HashFn hash = nullptr);

  /// Predictions for `x`, computed at most once per distinct batch (up to
  /// benign recompute races: two threads missing the same batch at once
  /// both run the model, one inserts, the other adopts the inserted entry).
  ///
  /// The returned reference stays valid for the cache's lifetime: entries
  /// live in per-bucket deques (which never relocate elements on growth)
  /// and are never evicted, so callers may hold it across later inserts.
  /// Thread-safe under ParallelFor. Aborts if the classifier is not frozen
  /// (memoising a still-training model would serve stale labels).
  const std::vector<int>& Predict(const Matrix& x);

  /// Aggregate accounting across shards. Every Predict call increments
  /// exactly one of hits/misses; a miss is a call that inserted its entry,
  /// a hit is a call served from (or resolved against) stored state, so
  /// misses() equals the number of distinct batches ever inserted.
  size_t hits() const;
  size_t misses() const;
  /// Calls that skipped the shard lock because the bloom front had never
  /// seen the hash (definite cold miss).
  size_t bloom_skips() const;

  /// Per-shard accounting, for tests and the per-shard hit-rate gauges.
  size_t shard_hits(size_t shard) const;
  size_t shard_misses(size_t shard) const;
  static size_t ShardIndex(uint64_t hash) { return hash >> (64 - kShardBits); }

 private:
  struct Entry {
    Matrix x;                ///< Keyed batch, kept for exact comparison.
    std::vector<int> pred;   ///< Cached classifier predictions.
  };

  /// One mutex stripe. Padded to a cache line so neighbouring shards'
  /// mutexes and counters never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    /// Deque per bucket, not vector: push_back must not move existing
    /// entries while callers hold references into their `pred` vectors.
    std::unordered_map<uint64_t, std::deque<Entry>> entries;
    size_t hits = 0;    ///< Guarded by mu.
    size_t misses = 0;  ///< Guarded by mu.
    /// predcache.shard.<i>.hit_rate; null when metrics are disabled.
    metrics::Gauge* hit_rate = nullptr;
  };

  /// Bucket scan under the shard lock. Returns the stable prediction
  /// reference on an exact match, null otherwise. mu must be held.
  const std::vector<int>* FindLocked(Shard& shard, uint64_t hash,
                                     const Matrix& x);

  /// Counts one hit or miss against `shard` (mu held) and the aggregate
  /// atomics, and refreshes the hit-rate gauges.
  void BumpLocked(Shard& shard, bool hit);

  BlackBoxClassifier* classifier_;
  HashFn hash_;
  /// Lock-free front: hashes ever inserted. False => definitely uncached.
  BloomFilter bloom_;
  std::array<Shard, kNumShards> shards_;
  /// Aggregate counters, exact (each query increments exactly one side).
  std::atomic<size_t> total_hits_{0};
  std::atomic<size_t> total_misses_{0};
  std::atomic<size_t> bloom_skips_{0};
  /// Funnels the classifier's one-time lazy inference-plan build through the
  /// first miss; later misses run lock-free on private workspaces.
  std::once_flag plan_once_;
  /// Aggregate metric handles, resolved once at construction; null when
  /// metrics collection is disabled (one pointer check per site).
  metrics::Counter* hit_counter_ = nullptr;
  metrics::Counter* miss_counter_ = nullptr;
  metrics::Gauge* rate_gauge_ = nullptr;
  metrics::Counter* bloom_skip_counter_ = nullptr;
};

/// Everything a CF method may depend on.
///
/// Lifetime contract: the encoder, classifier and prediction cache are
/// owned by the Experiment, and whoever owns that Experiment must keep it
/// alive for as long as any method built on this context runs. In the
/// evaluation harness that owner is the caller's stack; in the serving
/// layer it is a refcounted serve::PipelineHandle (src/serve/registry.h)
/// whose pins guarantee the pipeline — including the cache this context
/// points into — outlives every queued request, even across a registry
/// eviction. Each pipeline carries its own sharded PredictionCache, so
/// methods of different models never share (or contend on) a memo.
struct MethodContext {
  const TabularEncoder* encoder = nullptr;
  BlackBoxClassifier* classifier = nullptr;
  const DatasetInfo* info = nullptr;
  uint64_t seed = 42;
  /// Optional shared prediction memo (owned by the experiment); when null,
  /// methods query the classifier directly.
  PredictionCache* predictions = nullptr;
};

/// A counterfactual explanation generator.
class CfMethod {
 public:
  explicit CfMethod(const MethodContext& ctx) : ctx_(ctx) {}
  virtual ~CfMethod() = default;

  /// Display name, matching the Table IV row labels.
  virtual std::string name() const = 0;

  /// Trains/prepares internal models on the (encoded) training split.
  virtual Status Fit(const Matrix& x_train,
                     const std::vector<int>& labels) = 0;

  /// Generates one counterfactual per row of `x`. The desired class of each
  /// row is the opposite of the black box's prediction on it. Wraps the
  /// method-specific GenerateImpl in a "method/<name>/generate" trace span.
  CfResult Generate(const Matrix& x);

  /// True when GenerateMany may coalesce many rows into a single model pass
  /// whose per-row outputs do not depend on batch composition (no shared
  /// RNG stream across rows, no cross-row normalisation). The serving layer
  /// only batches requests for methods that opt in.
  virtual bool SupportsBatchedGenerate() const { return false; }

  /// One counterfactual per row of `x`, for the serving path.
  ///
  /// Batchable methods (SupportsBatchedGenerate) run one coalesced pass
  /// through the frozen classifier / VAE Infer path; when `ws` is non-null
  /// it is used for every tape-free model pass (one workspace per server
  /// worker), making concurrent dispatches safe on a frozen, eval-mode
  /// pipeline. Row i of the result is bitwise identical to
  /// Generate(x.Row(i)).
  ///
  /// The default implementation is the sequential fallback for
  /// non-batchable methods: per-row Generate calls in row order, stitched
  /// into one CfResult (`ws` unused; callers must serialise since the
  /// method's own state advances per call).
  virtual CfResult GenerateMany(const Matrix& x, nn::InferWorkspace* ws);

  /// The experiment context this method runs against.
  const MethodContext& context() const { return ctx_; }

 protected:
  /// Method-specific generation; called via Generate().
  virtual CfResult GenerateImpl(const Matrix& x) = 0;

  /// Fills the shared CfResult bookkeeping: desired classes from the
  /// classifier's predictions on `x`, predictions on the projected CFs, and
  /// the projected/raw CF matrices.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw) const;

  /// Same, with the desired classes a method already computed — avoids a
  /// second (even cached) prediction pass over `x`.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw,
                        std::vector<int> desired) const;

  /// Same, with the classifier passes run on a caller-provided workspace
  /// (nullptr falls back to the cache/member-workspace route). Used by
  /// batched GenerateMany overrides so concurrent server workers never
  /// touch the classifier's shared member workspace. Takes `cfs_raw` by
  /// value: every batched caller hands over a temporary, which moves
  /// straight into the result instead of paying a buffer copy per batch.
  CfResult FinishResult(const Matrix& x, Matrix cfs_raw,
                        std::vector<int> desired,
                        nn::InferWorkspace* ws) const;

  /// Desired (opposite) class per row of x. Served from the shared
  /// PredictionCache when the context carries one.
  std::vector<int> DesiredClasses(const Matrix& x) const;

  /// Same, on a caller-provided workspace (nullptr -> cache route).
  std::vector<int> DesiredClasses(const Matrix& x,
                                  nn::InferWorkspace* ws) const;

  /// Black-box predictions on `x`, via the shared cache when available.
  std::vector<int> Predictions(const Matrix& x) const;

  /// Same, on a caller-provided workspace: bypasses the (mutex-serialised)
  /// cache and queries the frozen classifier directly. nullptr falls back
  /// to the cache route.
  std::vector<int> Predictions(const Matrix& x, nn::InferWorkspace* ws) const;

  MethodContext ctx_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_METHOD_H_
