// Common interface for counterfactual generation methods — the paper's own
// model and the six comparison baselines of Table IV all implement CfMethod,
// so the evaluation harness treats them uniformly.
#ifndef CFX_BASELINES_METHOD_H_
#define CFX_BASELINES_METHOD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/cf_example.h"
#include "src/datasets/spec.h"
#include "src/models/classifier.h"

namespace cfx {

/// Memoised black-box predictions. The evaluation harness asks every method
/// to explain the same test batch, and each method computes the desired
/// classes from the classifier's predictions on it — without sharing, the
/// same rows are predicted once per method. The cache keys batches by a
/// content hash (with a full byte-compare on hit, so collisions degrade to
/// a recompute, never a wrong answer) and is only consulted while the
/// classifier is frozen — an unfrozen model may still change.
class PredictionCache {
 public:
  /// Batch-hash hook. The default is FNV-1a over shape and bytes; tests
  /// inject a degenerate hash to force every batch into one bucket.
  using HashFn = uint64_t (*)(const Matrix&);

  explicit PredictionCache(BlackBoxClassifier* classifier,
                           HashFn hash = nullptr);

  /// Predictions for `x`, computed at most once per distinct batch.
  ///
  /// The returned reference stays valid for the cache's lifetime: entries
  /// live in per-bucket deques (which never relocate elements on growth)
  /// and are never evicted, so callers may hold it across later inserts.
  /// Thread-safe under ParallelFor — an internal mutex covers lookup,
  /// insert and the classifier call itself; the classifier's inference
  /// workspace is single-threaded state, so concurrent predictions must be
  /// serialised anyway. Aborts if the classifier is not frozen (memoising
  /// a still-training model would serve stale labels).
  const std::vector<int>& Predict(const Matrix& x);

  size_t hits() const;
  size_t misses() const;

 private:
  struct Entry {
    Matrix x;                ///< Keyed batch, kept for exact comparison.
    std::vector<int> pred;   ///< Cached classifier predictions.
  };

  BlackBoxClassifier* classifier_;
  HashFn hash_;
  mutable std::mutex mu_;
  /// Deque per bucket, not vector: push_back must not move existing
  /// entries while callers hold references into their `pred` vectors.
  std::unordered_map<uint64_t, std::deque<Entry>> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// Everything a CF method may depend on. The encoder and classifier are
/// owned by the experiment and outlive every method.
struct MethodContext {
  const TabularEncoder* encoder = nullptr;
  BlackBoxClassifier* classifier = nullptr;
  const DatasetInfo* info = nullptr;
  uint64_t seed = 42;
  /// Optional shared prediction memo (owned by the experiment); when null,
  /// methods query the classifier directly.
  PredictionCache* predictions = nullptr;
};

/// A counterfactual explanation generator.
class CfMethod {
 public:
  explicit CfMethod(const MethodContext& ctx) : ctx_(ctx) {}
  virtual ~CfMethod() = default;

  /// Display name, matching the Table IV row labels.
  virtual std::string name() const = 0;

  /// Trains/prepares internal models on the (encoded) training split.
  virtual Status Fit(const Matrix& x_train,
                     const std::vector<int>& labels) = 0;

  /// Generates one counterfactual per row of `x`. The desired class of each
  /// row is the opposite of the black box's prediction on it. Wraps the
  /// method-specific GenerateImpl in a "method/<name>/generate" trace span.
  CfResult Generate(const Matrix& x);

  /// True when GenerateMany may coalesce many rows into a single model pass
  /// whose per-row outputs do not depend on batch composition (no shared
  /// RNG stream across rows, no cross-row normalisation). The serving layer
  /// only batches requests for methods that opt in.
  virtual bool SupportsBatchedGenerate() const { return false; }

  /// One counterfactual per row of `x`, for the serving path.
  ///
  /// Batchable methods (SupportsBatchedGenerate) run one coalesced pass
  /// through the frozen classifier / VAE Infer path; when `ws` is non-null
  /// it is used for every tape-free model pass (one workspace per server
  /// worker), making concurrent dispatches safe on a frozen, eval-mode
  /// pipeline. Row i of the result is bitwise identical to
  /// Generate(x.Row(i)).
  ///
  /// The default implementation is the sequential fallback for
  /// non-batchable methods: per-row Generate calls in row order, stitched
  /// into one CfResult (`ws` unused; callers must serialise since the
  /// method's own state advances per call).
  virtual CfResult GenerateMany(const Matrix& x, nn::InferWorkspace* ws);

  /// The experiment context this method runs against.
  const MethodContext& context() const { return ctx_; }

 protected:
  /// Method-specific generation; called via Generate().
  virtual CfResult GenerateImpl(const Matrix& x) = 0;

  /// Fills the shared CfResult bookkeeping: desired classes from the
  /// classifier's predictions on `x`, predictions on the projected CFs, and
  /// the projected/raw CF matrices.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw) const;

  /// Same, with the desired classes a method already computed — avoids a
  /// second (even cached) prediction pass over `x`.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw,
                        std::vector<int> desired) const;

  /// Same, with the classifier passes run on a caller-provided workspace
  /// (nullptr falls back to the cache/member-workspace route). Used by
  /// batched GenerateMany overrides so concurrent server workers never
  /// touch the classifier's shared member workspace.
  CfResult FinishResult(const Matrix& x, const Matrix& cfs_raw,
                        std::vector<int> desired,
                        nn::InferWorkspace* ws) const;

  /// Desired (opposite) class per row of x. Served from the shared
  /// PredictionCache when the context carries one.
  std::vector<int> DesiredClasses(const Matrix& x) const;

  /// Same, on a caller-provided workspace (nullptr -> cache route).
  std::vector<int> DesiredClasses(const Matrix& x,
                                  nn::InferWorkspace* ws) const;

  /// Black-box predictions on `x`, via the shared cache when available.
  std::vector<int> Predictions(const Matrix& x) const;

  /// Same, on a caller-provided workspace: bypasses the (mutex-serialised)
  /// cache and queries the frozen classifier directly. nullptr falls back
  /// to the cache route.
  std::vector<int> Predictions(const Matrix& x, nn::InferWorkspace* ws) const;

  MethodContext ctx_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_METHOD_H_
