// Factory over every CF method of Table IV, in the paper's row order.
#ifndef CFX_BASELINES_REGISTRY_H_
#define CFX_BASELINES_REGISTRY_H_

#include <memory>
#include <vector>

#include "src/baselines/method.h"

namespace cfx {

/// All Table IV methods. kOursUnary/kOursBinary are the paper's models.
enum class MethodKind {
  kMahajanUnary,
  kMahajanBinary,
  kRevise,
  kCchvae,
  kCem,
  kDiceRandom,
  kFace,
  kOursUnary,
  kOursBinary,
};

/// Table IV row order.
const std::vector<MethodKind>& AllMethodKinds();

/// Instantiates a method. Table III hyperparameters are applied for the
/// trained (VAE-based) methods.
std::unique_ptr<CfMethod> CreateMethod(MethodKind kind,
                                       const MethodContext& ctx);

/// Whether the Table IV row reports the unary / binary feasibility column
/// (the paper prints "-" for the inapplicable constraint model of the
/// single-constraint methods).
bool ShowsUnaryColumn(MethodKind kind);
bool ShowsBinaryColumn(MethodKind kind);

}  // namespace cfx

#endif  // CFX_BASELINES_REGISTRY_H_
