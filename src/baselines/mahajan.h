// Baseline: Mahajan, Tan & Sharma (2019), "Preserving Causal Constraints in
// Counterfactual Explanations for Machine Learning Classifiers" [5].
//
// Mahajan et al. is the paper's closest competitor: the same conditional-VAE
// recourse idea with a causal-constraint loss, but *without* the sparsity
// term this paper adds (§I contribution 2). We therefore realise it as the
// core generator with sparsity_weight = 0 and the paper's linear-relation
// binary penalty (their "oracle" hinge form), which matches the Table IV
// pattern: Mahajan reaches comparable feasibility/validity at higher
// sparsity cost.
#ifndef CFX_BASELINES_MAHAJAN_H_
#define CFX_BASELINES_MAHAJAN_H_

#include "src/core/generator.h"

namespace cfx {

class MahajanMethod : public CfMethod {
 public:
  MahajanMethod(const MethodContext& ctx, ConstraintMode mode);

  std::string name() const override;
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  ConstraintMode mode_;
  std::unique_ptr<FeasibleCfGenerator> generator_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_MAHAJAN_H_
