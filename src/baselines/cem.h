// Baseline: CEM — Dhurandhar et al. (2018), "Explanations based on the
// Missing: Towards Contrastive Explanations with Pertinent Negatives" [10].
//
// The pertinent-negative mode of CEM perturbs the input directly:
//   min_delta  Hinge(h(x + delta), y') + beta * ||delta||_1
//              + 0.5 * ||delta||_2^2
// optimised by proximal gradient descent — a smooth gradient step on the
// hinge + L2 part followed by ISTA soft-thresholding for the L1 part, with
// projection of x + delta back into [0,1] and immutable slots pinned to
// zero delta. The elastic net drives most delta coordinates to exactly
// zero, which is why CEM wins the sparsity column of Table IV while losing
// validity/feasibility (no data-manifold or causal term).
#ifndef CFX_BASELINES_CEM_H_
#define CFX_BASELINES_CEM_H_

#include "src/baselines/method.h"

namespace cfx {

/// CEM hyperparameters.
struct CemConfig {
  float beta = 0.03f;          ///< L1 weight (soft-threshold level).
  float l2_weight = 0.5f;      ///< Quadratic penalty weight.
  float step_size = 0.05f;
  size_t max_iterations = 300;
  float hinge_margin = 0.3f;
};

class CemMethod : public CfMethod {
 public:
  explicit CemMethod(const MethodContext& ctx,
                     const CemConfig& config = CemConfig());

  std::string name() const override { return "CEM [10]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  CemConfig config_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_CEM_H_
