// Baseline: DiCE (random sampling model) — Mothilal, Sharma & Tan (2019),
// "Explaining Machine Learning Classifiers through Diverse Counterfactual
// Explanations" [11], the `method="random"` backend of the DiCE library the
// paper evaluates.
//
// For each input, random candidate counterfactuals are drawn by mutating a
// random subset of mutable features (categoricals resampled uniformly,
// continuous redrawn uniformly in [0,1]); candidates that flip the
// black-box prediction are collected and the one changing the fewest
// features (ties broken by L1 proximity) is returned. The number of mutated
// features starts at 1 and grows, matching DiCE-random's sparsity-seeking
// schedule.
#ifndef CFX_BASELINES_DICE_RANDOM_H_
#define CFX_BASELINES_DICE_RANDOM_H_

#include "src/baselines/method.h"

namespace cfx {

/// DiCE-random hyperparameters.
struct DiceRandomConfig {
  size_t tries_per_width = 60;  ///< Samples per mutation width.
  size_t max_width = 6;         ///< Max number of features mutated at once.
};

class DiceRandomMethod : public CfMethod {
 public:
  explicit DiceRandomMethod(const MethodContext& ctx,
                            const DiceRandomConfig& config = DiceRandomConfig());

  std::string name() const override { return "DiCE random [11]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

 private:
  /// Applies a random mutation of `width` features to row `r` of `x`,
  /// writing the candidate into `out` (1 x d).
  void MutateRow(const Matrix& x, size_t r, size_t width, Matrix* out);

  DiceRandomConfig config_;
  std::vector<size_t> mutable_features_;
  Rng rng_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_DICE_RANDOM_H_
