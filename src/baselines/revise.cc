#include "src/baselines/revise.h"

#include "src/core/descent.h"
#include "src/nn/losses.h"

namespace cfx {

ReviseMethod::ReviseMethod(const MethodContext& ctx,
                           const ReviseConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0x4E71) {}

Status ReviseMethod::Fit(const Matrix& x_train,
                         const std::vector<int>& labels) {
  (void)labels;  // REVISE's generative model is label-free.
  VaeConfig vae_config;
  vae_config.input_dim = ctx_.encoder->encoded_width();
  vae_config.condition_dim = 0;
  vae_config.dropout = 0.1f;  // Lighter regularisation: pure density model.
  vae_config.softmax_blocks = ctx_.encoder->CategoricalBlockRanges();
  vae_ = std::make_unique<Vae>(vae_config, &rng_);
  vae_->TrainElbo(x_train, Matrix(), config_.vae, &rng_);
  vae_->Freeze();
  return Status::OK();
}

CfResult ReviseMethod::GenerateImpl(const Matrix& x) {
  if (vae_ == nullptr) {
    // Not fitted: degrade to the identity "counterfactual".
    return FinishResult(x, x);
  }
  // Batched latent-space descent. The per-row objectives are independent, so
  // optimising their sum moves every row toward its own counterfactual.
  std::vector<int> desired = DesiredClasses(x);
  Matrix desired_pm1(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    desired_pm1.at(r, 0) = desired[r] == 1 ? 1.0f : -1.0f;
  }

  auto [mu, logvar] = vae_->Encode(x, Matrix());
  (void)logvar;
  ag::Var z = ag::Param(mu);

  // Track the first decoding of each row that reaches its desired class —
  // REVISE stops per-instance as soon as the class flips.
  Matrix best = vae_->Decode(mu, Matrix());
  std::vector<bool> found(x.rows(), false);

  descent::Config dconfig;
  dconfig.max_iterations = config_.max_iterations;
  dconfig.step_size = config_.step_size;

  ag::Var x_hat;  // Decoding of the current iteration, shared with the hook.
  descent::Hooks hooks;
  hooks.before_update = [&](const descent::StepInfo&) {
    // Snapshot rows whose *projected* decoding (hard one-hots — what the
    // final CF is evaluated as) classifies to the desired class.
    Matrix projected(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      Matrix row = ctx_.encoder->ProjectRow(x_hat->value.Row(r));
      for (size_t c = 0; c < x.cols(); ++c) projected.at(r, c) = row.at(0, c);
    }
    std::vector<int> proj_pred = ctx_.classifier->Predict(projected);
    bool all_found = true;
    for (size_t r = 0; r < x.rows(); ++r) {
      if (!found[r] && proj_pred[r] == desired[r]) {
        found[r] = true;
        for (size_t c = 0; c < best.cols(); ++c) {
          best.at(r, c) = x_hat->value.at(r, c);
        }
      }
      all_found = all_found && found[r];
    }
    return all_found ? descent::Control::kStop : descent::Control::kContinue;
  };

  descent::RunDescent(
      {z}, dconfig,
      [&](size_t) {
        x_hat = vae_->DecodeVar(z, Matrix());
        ag::Var logits = ctx_.classifier->LogitsVar(x_hat);
        ag::Var validity =
            nn::HingeLoss(logits, desired_pm1, config_.hinge_margin);
        ag::Var proximity = nn::L1Loss(x_hat, x);
        return ag::Add(validity,
                       ag::Scale(proximity, config_.proximity_lambda));
      },
      hooks);

  // Rows that never flipped keep their final decoding.
  ag::Var final_hat = vae_->DecodeVar(ag::Constant(z->value), Matrix());
  for (size_t r = 0; r < x.rows(); ++r) {
    if (found[r]) continue;
    for (size_t c = 0; c < best.cols(); ++c) {
      best.at(r, c) = final_hat->value.at(r, c);
    }
  }
  return FinishResult(x, best, std::move(desired));
}

}  // namespace cfx
