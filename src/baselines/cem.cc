#include "src/baselines/cem.h"

#include <algorithm>
#include <cmath>

#include "src/core/descent.h"
#include "src/nn/losses.h"

namespace cfx {

CemMethod::CemMethod(const MethodContext& ctx, const CemConfig& config)
    : CfMethod(ctx), config_(config) {}

Status CemMethod::Fit(const Matrix& x_train, const std::vector<int>& labels) {
  // CEM is training-free: it only queries/differentiates the black box.
  (void)x_train;
  (void)labels;
  return Status::OK();
}

CfResult CemMethod::GenerateImpl(const Matrix& x) {
  std::vector<int> desired = DesiredClasses(x);
  Matrix desired_pm1(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    desired_pm1.at(r, 0) = desired[r] == 1 ? 1.0f : -1.0f;
  }
  const Matrix mutable_mask = ctx_.encoder->MutableMask();

  ag::Var delta_var = ag::Param(Matrix(x.rows(), x.cols()));  // Zero start.
  Matrix best = x;  // Snapshot of first flip per row.
  std::vector<bool> found(x.rows(), false);

  descent::Config dconfig;
  dconfig.max_iterations = config_.max_iterations;

  ag::Var x_cf;  // Candidate of the current iteration, shared with hooks.
  descent::Hooks hooks;
  hooks.before_update = [&](const descent::StepInfo&) {
    // Record flips before stepping — judged on the *projected* candidate
    // (hard one-hots), which is what the final CF will be evaluated as.
    Matrix projected(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      Matrix row = ctx_.encoder->ProjectRow(x_cf->value.Row(r));
      for (size_t c = 0; c < x.cols(); ++c) projected.at(r, c) = row.at(0, c);
    }
    std::vector<int> proj_pred = ctx_.classifier->Predict(projected);
    bool all_found = true;
    for (size_t r = 0; r < x.rows(); ++r) {
      if (!found[r] && proj_pred[r] == desired[r]) {
        found[r] = true;
        for (size_t c = 0; c < x.cols(); ++c) {
          best.at(r, c) = x_cf->value.at(r, c);
        }
      }
      all_found = all_found && found[r];
    }
    return all_found ? descent::Control::kStop : descent::Control::kContinue;
  };
  hooks.apply_update = [&](const descent::StepInfo&) {
    // Proximal step: gradient descent then ISTA soft-thresholding (the L1
    // part), projection to the box, immutables pinned. Replaces the
    // driver's optimiser entirely.
    Matrix& delta = delta_var->value;
    const float thresh = config_.step_size * config_.beta;
    for (size_t r = 0; r < x.rows(); ++r) {
      if (found[r]) continue;
      for (size_t c = 0; c < x.cols(); ++c) {
        if (mutable_mask.at(0, c) == 0.0f) {
          delta.at(r, c) = 0.0f;
          continue;
        }
        float d = delta.at(r, c) -
                  config_.step_size * delta_var->grad.at(r, c);
        // Soft-threshold toward zero.
        if (d > thresh) {
          d -= thresh;
        } else if (d < -thresh) {
          d += thresh;
        } else {
          d = 0.0f;
        }
        // Keep x + delta inside [0, 1].
        d = std::clamp(d, -x.at(r, c), 1.0f - x.at(r, c));
        delta.at(r, c) = d;
      }
    }
  };

  descent::RunDescent(
      {delta_var}, dconfig,
      [&](size_t) {
        // Smooth part: hinge + 0.5 * w2 * ||delta||^2, differentiated via
        // the autodiff graph on (x + delta).
        x_cf = ag::Add(ag::Constant(x), delta_var);
        ag::Var logits = ctx_.classifier->LogitsVar(x_cf);
        // Sum (not mean) over rows: each row is an independent optimisation
        // problem, so its gradient must not shrink with the batch size.
        ag::Var validity = ag::Scale(
            nn::HingeLoss(logits, desired_pm1, config_.hinge_margin),
            static_cast<float>(x.rows()));
        ag::Var l2 = ag::Scale(ag::Sum(ag::Square(delta_var)),
                               0.5f * config_.l2_weight);
        return ag::Add(validity, l2);
      },
      hooks);

  // Rows that never flipped return their final perturbation.
  for (size_t r = 0; r < x.rows(); ++r) {
    if (found[r]) continue;
    for (size_t c = 0; c < x.cols(); ++c) {
      best.at(r, c) = x.at(r, c) + delta_var->value.at(r, c);
    }
  }
  return FinishResult(x, best, std::move(desired));
}

}  // namespace cfx
