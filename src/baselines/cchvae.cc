#include "src/baselines/cchvae.h"

#include <cmath>
#include <limits>

namespace cfx {

CchvaeMethod::CchvaeMethod(const MethodContext& ctx,
                           const CchvaeConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0xCC4A) {}

Status CchvaeMethod::Fit(const Matrix& x_train,
                         const std::vector<int>& labels) {
  VaeConfig vae_config;
  vae_config.input_dim = ctx_.encoder->encoded_width();
  vae_config.condition_dim = 1;
  vae_config.dropout = 0.1f;
  vae_config.softmax_blocks = ctx_.encoder->CategoricalBlockRanges();
  vae_ = std::make_unique<Vae>(vae_config, &rng_);

  Matrix cond(x_train.rows(), 1);
  for (size_t r = 0; r < x_train.rows(); ++r) {
    cond.at(r, 0) = static_cast<float>(labels[r]);
  }
  vae_->TrainElbo(x_train, cond, config_.vae, &rng_);
  vae_->Freeze();
  return Status::OK();
}

CfResult CchvaeMethod::GenerateImpl(const Matrix& x) {
  if (vae_ == nullptr) return FinishResult(x, x);

  std::vector<int> desired = DesiredClasses(x);
  Matrix desired_cond(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    desired_cond.at(r, 0) = static_cast<float>(desired[r]);
  }
  auto [mu, logvar] = vae_->Encode(x, desired_cond);
  (void)logvar;
  const size_t latent = vae_->config().latent_dim;

  // Default output: the straight conditional reconstruction.
  Matrix result = vae_->Decode(mu, desired_cond);
  std::vector<bool> found(x.rows(), false);

  float radius = config_.initial_radius;
  for (size_t step = 0; step < config_.radii; ++step) {
    // Distance of the best accepted candidate per row at this radius.
    std::vector<float> best_dist(x.rows(),
                                 std::numeric_limits<float>::infinity());
    for (size_t c = 0; c < config_.candidates_per_radius; ++c) {
      // One spherical perturbation per row.
      Matrix z = mu;
      for (size_t r = 0; r < x.rows(); ++r) {
        if (found[r]) continue;
        double norm_sq = 0.0;
        std::vector<float> dir(latent);
        for (size_t j = 0; j < latent; ++j) {
          dir[j] = static_cast<float>(rng_.Normal());
          norm_sq += static_cast<double>(dir[j]) * dir[j];
        }
        const float inv_norm =
            norm_sq > 0 ? radius / static_cast<float>(std::sqrt(norm_sq))
                        : 0.0f;
        for (size_t j = 0; j < latent; ++j) {
          z.at(r, j) += dir[j] * inv_norm;
        }
      }
      Matrix decoded = vae_->Decode(z, desired_cond);
      // Judge candidates on their projected (hard one-hot) form — what the
      // final CF will be evaluated as.
      Matrix projected(decoded.rows(), decoded.cols());
      for (size_t r = 0; r < decoded.rows(); ++r) {
        Matrix row = ctx_.encoder->ProjectRow(decoded.Row(r));
        for (size_t j = 0; j < decoded.cols(); ++j) {
          projected.at(r, j) = row.at(0, j);
        }
      }
      std::vector<int> pred = ctx_.classifier->Predict(projected);
      for (size_t r = 0; r < x.rows(); ++r) {
        if (found[r] || pred[r] != desired[r]) continue;
        // L1 distance to the input; keep the closest flip at this radius.
        float dist = 0.0f;
        for (size_t j = 0; j < x.cols(); ++j) {
          dist += std::fabs(decoded.at(r, j) - x.at(r, j));
        }
        if (dist < best_dist[r]) {
          best_dist[r] = dist;
          for (size_t j = 0; j < x.cols(); ++j) {
            result.at(r, j) = decoded.at(r, j);
          }
        }
      }
    }
    bool all_found = true;
    for (size_t r = 0; r < x.rows(); ++r) {
      if (std::isfinite(best_dist[r])) found[r] = true;
      all_found = all_found && found[r];
    }
    if (all_found) break;
    radius *= config_.radius_growth;
  }
  return FinishResult(x, result, std::move(desired));
}

}  // namespace cfx
