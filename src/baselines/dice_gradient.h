// DiCE, gradient method — Mothilal, Sharma & Tan (2019) [11], the library's
// primary (gradient-based) backend, complementing the `random` model the
// paper benchmarks.
//
// For each input, k counterfactual candidates are optimised *jointly* in
// input space:
//
//   min_{c_1..c_k}  sum_i Hinge(h(c_i), y')           (validity)
//                 + lambda_p * sum_i ||c_i - x||_1    (proximity)
//                 - lambda_d * mean_{i<j} ||c_i - c_j||_1   (diversity)
//
// (the original uses a DPP determinant for diversity; the pairwise-distance
// form is its standard computational surrogate). Candidates are clamped to
// [0,1], immutable slots are pinned, and the best valid candidate (closest
// to the input after projection) is reported as the Table-IV-style single
// counterfactual, with the full diverse set retrievable per input.
#ifndef CFX_BASELINES_DICE_GRADIENT_H_
#define CFX_BASELINES_DICE_GRADIENT_H_

#include "src/baselines/method.h"

namespace cfx {

/// DiCE-gradient hyperparameters.
struct DiceGradientConfig {
  size_t k = 4;                 ///< Candidates optimised per input.
  float proximity_lambda = 0.5f;
  float diversity_lambda = 1.0f;
  float step_size = 0.05f;
  size_t max_iterations = 150;
  float hinge_margin = 0.5f;
  float init_noise = 0.05f;     ///< Candidate initialisation spread.
};

class DiceGradientMethod : public CfMethod {
 public:
  explicit DiceGradientMethod(
      const MethodContext& ctx,
      const DiceGradientConfig& config = DiceGradientConfig());

  std::string name() const override { return "DiCE gradient [11]"; }
  Status Fit(const Matrix& x_train, const std::vector<int>& labels) override;
  CfResult GenerateImpl(const Matrix& x) override;

  /// The k projected candidates of input row `r` from the last Generate
  /// call (row-major, k x d), with their validity flags.
  struct CandidateSet {
    Matrix candidates;
    std::vector<bool> valid;
  };
  const std::vector<CandidateSet>& last_candidate_sets() const {
    return last_sets_;
  }

 private:
  DiceGradientConfig config_;
  Rng rng_;
  std::vector<CandidateSet> last_sets_;
};

}  // namespace cfx

#endif  // CFX_BASELINES_DICE_GRADIENT_H_
