#include "src/baselines/dice_random.h"

#include <cmath>
#include <limits>

namespace cfx {

DiceRandomMethod::DiceRandomMethod(const MethodContext& ctx,
                                   const DiceRandomConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0xD1CE) {}

Status DiceRandomMethod::Fit(const Matrix& x_train,
                             const std::vector<int>& labels) {
  (void)x_train;
  (void)labels;  // Pure random search needs no training.
  mutable_features_.clear();
  const Schema& schema = ctx_.encoder->schema();
  for (size_t fi = 0; fi < schema.num_features(); ++fi) {
    if (!schema.feature(fi).immutable) mutable_features_.push_back(fi);
  }
  return Status::OK();
}

void DiceRandomMethod::MutateRow(const Matrix& x, size_t r, size_t width,
                                 Matrix* out) {
  for (size_t c = 0; c < x.cols(); ++c) out->at(0, c) = x.at(r, c);
  // Choose `width` distinct mutable features.
  std::vector<size_t> pool = mutable_features_;
  for (size_t w = 0; w < width && !pool.empty(); ++w) {
    const size_t pick = rng_.UniformInt(pool.size());
    const size_t fi = pool[pick];
    pool[pick] = pool.back();
    pool.pop_back();

    const EncodedBlock& block = ctx_.encoder->block(fi);
    switch (block.type) {
      case FeatureType::kContinuous:
        out->at(0, block.offset) = static_cast<float>(rng_.Uniform());
        break;
      case FeatureType::kBinary:
        out->at(0, block.offset) = 1.0f - out->at(0, block.offset);
        break;
      case FeatureType::kCategorical: {
        for (size_t j = 0; j < block.width; ++j) {
          out->at(0, block.offset + j) = 0.0f;
        }
        out->at(0, block.offset + rng_.UniformInt(block.width)) = 1.0f;
        break;
      }
    }
  }
}

CfResult DiceRandomMethod::GenerateImpl(const Matrix& x) {
  std::vector<int> desired = DesiredClasses(x);
  Matrix result = x;

  Matrix candidate(1, x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    bool found = false;
    float best_dist = std::numeric_limits<float>::infinity();
    // Widths grow only until some flip is found: DiCE-random prefers the
    // sparsest mutation that works.
    for (size_t width = 1; width <= config_.max_width && !found; ++width) {
      for (size_t t = 0; t < config_.tries_per_width; ++t) {
        MutateRow(x, r, width, &candidate);
        Matrix logits = ctx_.classifier->Logits(candidate);
        const int pred = logits.at(0, 0) > 0.0f ? 1 : 0;
        if (pred != desired[r]) continue;
        float dist = 0.0f;
        for (size_t c = 0; c < x.cols(); ++c) {
          dist += std::fabs(candidate.at(0, c) - x.at(r, c));
        }
        if (dist < best_dist) {
          best_dist = dist;
          for (size_t c = 0; c < x.cols(); ++c) {
            result.at(r, c) = candidate.at(0, c);
          }
          found = true;
        }
      }
    }
  }
  return FinishResult(x, result, std::move(desired));
}

}  // namespace cfx
