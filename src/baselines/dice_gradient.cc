#include "src/baselines/dice_gradient.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/descent.h"
#include "src/nn/losses.h"

namespace cfx {

DiceGradientMethod::DiceGradientMethod(const MethodContext& ctx,
                                       const DiceGradientConfig& config)
    : CfMethod(ctx), config_(config), rng_(ctx.seed ^ 0xD1CE6) {}

Status DiceGradientMethod::Fit(const Matrix& x_train,
                               const std::vector<int>& labels) {
  (void)x_train;
  (void)labels;  // Gradient search needs no training of its own.
  return Status::OK();
}

CfResult DiceGradientMethod::GenerateImpl(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = std::max<size_t>(config_.k, 1);
  std::vector<int> desired = DesiredClasses(x);
  Matrix desired_pm1(n, 1);
  for (size_t r = 0; r < n; ++r) {
    desired_pm1.at(r, 0) = desired[r] == 1 ? 1.0f : -1.0f;
  }
  const Matrix mutable_mask = ctx_.encoder->MutableMask();

  // k candidate matrices, each (n x d), initialised at the input plus noise.
  std::vector<ag::Var> candidates(k);
  for (size_t i = 0; i < k; ++i) {
    Matrix init = x;
    for (size_t e = 0; e < init.size(); ++e) {
      init[e] = std::clamp(
          init[e] + static_cast<float>(rng_.Normal(0.0, config_.init_noise)),
          0.0f, 1.0f);
    }
    candidates[i] = ag::Param(init);
  }

  const float pair_scale =
      k >= 2 ? 2.0f / static_cast<float>(k * (k - 1)) : 0.0f;

  descent::Config dconfig;
  dconfig.max_iterations = config_.max_iterations;
  dconfig.step_size = config_.step_size;

  descent::Hooks hooks;
  hooks.after_update = [&](const descent::StepInfo&) {
    // Project back into the box; pin immutables.
    for (size_t i = 0; i < k; ++i) {
      Matrix& value = candidates[i]->value;
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < d; ++c) {
          if (mutable_mask.at(0, c) == 0.0f) {
            value.at(r, c) = x.at(r, c);
          } else {
            value.at(r, c) = std::clamp(value.at(r, c), 0.0f, 1.0f);
          }
        }
      }
    }
    return descent::Control::kContinue;
  };

  descent::RunDescent(
      candidates, dconfig,
      [&](size_t) {
        // Sum-semantics objective over all candidates.
        ag::Var loss = ag::Constant(Matrix(1, 1));
        for (size_t i = 0; i < k; ++i) {
          ag::Var logits = ctx_.classifier->LogitsVar(candidates[i]);
          ag::Var validity = ag::Scale(
              nn::HingeLoss(logits, desired_pm1, config_.hinge_margin),
              static_cast<float>(n));
          ag::Var proximity = ag::Scale(
              ag::Sum(ag::Abs(ag::Sub(candidates[i], ag::Constant(x)))),
              config_.proximity_lambda);
          loss = ag::Add(loss, ag::Add(validity, proximity));
        }
        // Diversity: reward pairwise spread (subtracted).
        if (k >= 2) {
          ag::Var spread = ag::Constant(Matrix(1, 1));
          for (size_t i = 0; i < k; ++i) {
            for (size_t j = i + 1; j < k; ++j) {
              spread = ag::Add(spread,
                               ag::Sum(ag::Abs(ag::Sub(candidates[i],
                                                       candidates[j]))));
            }
          }
          loss = ag::Sub(loss, ag::Scale(spread, config_.diversity_lambda *
                                                     pair_scale));
        }
        return loss;
      },
      hooks);

  // Evaluate all projected candidates; keep per-input sets and pick the
  // closest valid one as the headline CF.
  last_sets_.assign(n, {});
  Matrix best = x;
  std::vector<Matrix> projected(k, Matrix(n, d));
  std::vector<std::vector<int>> pred(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t r = 0; r < n; ++r) {
      Matrix row = ctx_.encoder->ProjectRow(candidates[i]->value.Row(r));
      for (size_t c = 0; c < d; ++c) projected[i].at(r, c) = row.at(0, c);
    }
    pred[i] = ctx_.classifier->Predict(projected[i]);
  }
  for (size_t r = 0; r < n; ++r) {
    CandidateSet& set = last_sets_[r];
    set.candidates = Matrix(k, d);
    set.valid.resize(k);
    float best_dist = std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < k; ++i) {
      for (size_t c = 0; c < d; ++c) {
        set.candidates.at(i, c) = projected[i].at(r, c);
      }
      set.valid[i] = pred[i][r] == desired[r];
      if (!set.valid[i]) continue;
      float dist = 0.0f;
      for (size_t c = 0; c < d; ++c) {
        dist += std::fabs(projected[i].at(r, c) - x.at(r, c));
      }
      if (dist < best_dist) {
        best_dist = dist;
        for (size_t c = 0; c < d; ++c) best.at(r, c) = projected[i].at(r, c);
      }
    }
  }
  return FinishResult(x, best, std::move(desired));
}

}  // namespace cfx
