#include "src/manifold/svg.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace cfx {

std::string RenderSvgScatter(const Matrix& embedding,
                             const std::vector<int>& labels,
                             const std::string& title,
                             const SvgScatterOptions& options) {
  assert(embedding.cols() >= 2 && embedding.rows() == labels.size());
  const double w = static_cast<double>(options.width);
  const double h = static_cast<double>(options.height);
  const double margin = 40.0;

  float min_x = 0, max_x = 1, min_y = 0, max_y = 1;
  if (embedding.rows() > 0) {
    min_x = max_x = embedding.at(0, 0);
    min_y = max_y = embedding.at(0, 1);
    for (size_t i = 0; i < embedding.rows(); ++i) {
      min_x = std::min(min_x, embedding.at(i, 0));
      max_x = std::max(max_x, embedding.at(i, 0));
      min_y = std::min(min_y, embedding.at(i, 1));
      max_y = std::max(max_y, embedding.at(i, 1));
    }
  }
  const double span_x = std::max(1e-6f, max_x - min_x);
  const double span_y = std::max(1e-6f, max_y - min_y);
  auto sx = [&](float x) {
    return margin + (x - min_x) / span_x * (w - 2 * margin);
  };
  auto sy = [&](float y) {
    // SVG y grows downward; flip so the plot reads math-style.
    return h - margin - (y - min_y) / span_y * (h - 2 * margin);
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n";
  svg << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << StrFormat(
      "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"none\" stroke=\"#444\" stroke-width=\"1\"/>\n",
      margin, margin, w - 2 * margin, h - 2 * margin);
  svg << "  <text x=\"" << w / 2
      << "\" y=\"24\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"15\">"
      << title << "</text>\n";

  // Points: negatives first so positives draw on top.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < embedding.rows(); ++i) {
      if ((labels[i] == 1) != (pass == 1)) continue;
      svg << StrFormat(
          "  <circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.1f\" fill=\"%s\" "
          "fill-opacity=\"0.75\"/>\n",
          sx(embedding.at(i, 0)), sy(embedding.at(i, 1)),
          options.point_radius,
          labels[i] == 1 ? options.positive_color.c_str()
                         : options.negative_color.c_str());
    }
  }

  // Legend (top right, inside the frame).
  const double lx = w - margin - 130;
  const double ly = margin + 14;
  svg << StrFormat(
      "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"%s\"/>\n", lx, ly,
      options.positive_color.c_str());
  svg << StrFormat(
      "  <text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" "
      "font-size=\"12\">%s</text>\n",
      lx + 10, ly + 4, options.positive_name.c_str());
  svg << StrFormat(
      "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"%s\"/>\n", lx,
      ly + 18, options.negative_color.c_str());
  svg << StrFormat(
      "  <text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" "
      "font-size=\"12\">%s</text>\n",
      lx + 10, ly + 22, options.negative_name.c_str());
  svg << "</svg>\n";
  return svg.str();
}

Status WriteSvgScatter(const Matrix& embedding, const std::vector<int>& labels,
                       const std::string& title, const std::string& path,
                       const SvgScatterOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << RenderSvgScatter(embedding, labels, title, options);
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

}  // namespace cfx
