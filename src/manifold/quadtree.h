// Barnes–Hut quadtree over a 2-D point set (Barnes & Hut 1986; applied to
// t-SNE by van der Maaten 2014, "Accelerating t-SNE using Tree-Based
// Algorithms").
//
// The tree partitions the embedding plane into square cells, each carrying
// its point count and centre of mass. A θ-criterion traversal then treats
// any cell that looks "small enough" from a query point (cell width w and
// distance d to the cell's centre of mass satisfying w < θ·d) as a single
// super-point, turning the O(N) repulsive-force sum of t-SNE into an
// O(log N) walk per point.
//
// Determinism: the tree is built serially in point-index order and the
// traversal for one point is a pure function of the tree, so per-point
// results are bitwise identical for any thread count; callers parallelise
// across points and combine the scalar Z partials with a chunk-ordered
// reduction (see tsne.cc).
#ifndef CFX_MANIFOLD_QUADTREE_H_
#define CFX_MANIFOLD_QUADTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfx {

/// Immutable Barnes–Hut quadtree over n points in the plane.
class Quadtree {
 public:
  /// Builds the tree over `points` (n x 2 row-major, not copied — the caller
  /// keeps the buffer alive for the tree's lifetime). O(n log n) for
  /// well-spread points; coincident points are bucketed at `kMaxDepth`.
  Quadtree(const double* points, size_t n);

  /// Depth cap: cells stop splitting here and hold a bucket of points
  /// instead (guards against coincident/near-coincident points).
  static constexpr int kMaxDepth = 32;

  /// Accumulates the Barnes–Hut approximation of point `self`'s repulsive
  /// t-SNE terms:
  ///   force += sum_cells count_c * num_c^2 * (y_self - com_c)
  ///   z     += sum_cells count_c * num_c,   num_c = 1 / (1 + ||y_self - com_c||^2)
  /// over the cells accepted by the θ-criterion (w^2 < θ^2 · d^2); rejected
  /// internal cells recurse, rejected leaves enumerate their points exactly
  /// (skipping `self`). θ = 0 therefore computes the exact O(N) sums.
  void Repulsion(size_t self, double theta, double* force_x, double* force_y,
                 double* z) const;

  /// Number of allocated tree cells (exposed for tests/benches).
  size_t node_count() const { return nodes_.size(); }

  /// Indexed points.
  size_t size() const { return n_; }

 private:
  struct Node {
    double sum_x = 0.0, sum_y = 0.0;  ///< Accumulated coordinates.
    double com_x = 0.0, com_y = 0.0;  ///< Centre of mass (filled post-build).
    double cx = 0.0, cy = 0.0;        ///< Cell centre.
    double half = 0.0;                ///< Half the cell width.
    size_t count = 0;                 ///< Points in the subtree.
    int32_t children[4] = {-1, -1, -1, -1};
    int32_t first_point = -1;  ///< Leaf bucket head (into point_next_).
    bool leaf = true;
  };

  /// Inserts point `p` into the subtree rooted at `node` (cell geometry
  /// already set). Splits leaves on their second point until kMaxDepth.
  void Insert(int32_t node, uint32_t p, int depth);

  /// Child cell of `node` containing (x, y), created on demand.
  int32_t ChildFor(int32_t node, double x, double y);

  void Walk(int32_t node, const double* q, size_t self, double theta_sq,
            double* fx, double* fy, double* z) const;

  const double* points_;
  size_t n_;
  std::vector<Node> nodes_;
  std::vector<int32_t> point_next_;  ///< Leaf bucket linked lists.
};

}  // namespace cfx

#endif  // CFX_MANIFOLD_QUADTREE_H_
