// Terminal rendering of labelled 2-D embeddings — the textual stand-in for
// the paper's Figure 6 panels ('.' infeasible, '#' feasible, '@' overlap).
#ifndef CFX_MANIFOLD_SCATTER_H_
#define CFX_MANIFOLD_SCATTER_H_

#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace cfx {

/// Renders an (n x 2) embedding with 0/1 labels as an ASCII scatter of the
/// given size. Label 1 ("feasible") cells print '#', label 0 '.', cells
/// containing both print '@', empty cells ' '.
std::string RenderScatter(const Matrix& embedding,
                          const std::vector<int>& labels, size_t rows = 24,
                          size_t cols = 64);

}  // namespace cfx

#endif  // CFX_MANIFOLD_SCATTER_H_
