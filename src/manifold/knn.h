// Exact k-nearest-neighbour index over encoded rows.
//
// FACE's graph construction and the faithfulness metrics need exact
// Euclidean kNN against a reference set. The index picks its strategy from
// the data shape: a vantage-point tree when the dimensionality is low
// enough for triangle-inequality pruning to pay off, and a cache-friendly
// linear scan with partial selection otherwise (beyond ~15-20 dimensions
// metric-tree pruning degenerates and a dense scan wins — measured in
// bench/perf_tsne's BM_Knn* pair). Both paths are exact and verified
// against each other in tests.
#ifndef CFX_MANIFOLD_KNN_H_
#define CFX_MANIFOLD_KNN_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// One neighbour hit.
struct Neighbor {
  size_t index;    ///< Row index into the indexed matrix.
  float distance;  ///< Euclidean distance.
};

/// Immutable exact-kNN index over the rows of a matrix.
class KnnIndex {
 public:
  /// Builds the index (O(n log n) expected when the tree strategy is
  /// picked). The data is copied; `rng` drives vantage-point selection only
  /// (results are exact either way).
  KnnIndex(const Matrix& data, Rng* rng);

  /// True when the VP-tree strategy is active (exposed for tests/benches).
  bool uses_tree() const { return use_tree_; }

  /// Dimensionality at or above which the linear-scan strategy is used.
  static constexpr size_t kTreeMaxDims = 16;

  size_t size() const { return data_.rows(); }
  const Matrix& data() const { return data_; }

  /// The k nearest rows to `query` (1 x d), sorted by ascending distance.
  /// Returns fewer than k when the index holds fewer points.
  std::vector<Neighbor> Query(const Matrix& query, size_t k) const;

  /// The k nearest rows to row `row` of the indexed data itself,
  /// *excluding* that row.
  std::vector<Neighbor> QuerySelf(size_t row, size_t k) const;

  /// QuerySelf for every indexed row at once: batch-parallel across rows
  /// (index reads are pure) and deterministic for any CFX_THREADS value.
  /// Entry i holds QuerySelf(i, k). Used by the sparse t-SNE affinities and
  /// the FACE graph construction.
  std::vector<std::vector<Neighbor>> SelfNeighbors(size_t k) const;

  /// The exact linear-scan reference path, runnable regardless of the
  /// active strategy (public so property tests and benches can pit the
  /// VP-tree against it on identical data).
  std::vector<Neighbor> ScanQuery(const Matrix& query, size_t k) const;

 private:
  struct Node {
    size_t point = 0;            ///< Row index of the vantage point.
    float radius = 0.0f;         ///< Median distance to the subtree points.
    int inside = -1;             ///< Child holding points within radius.
    int outside = -1;            ///< Child holding points beyond radius.
  };

  /// Recursive build over items[begin, end); returns node id or -1.
  int Build(std::vector<size_t>* items, size_t begin, size_t end, Rng* rng);

  float Distance(const float* a, size_t row) const;

  /// Bounded max-heap search state.
  struct SearchState;
  void Search(int node, const float* query, size_t k, size_t exclude,
              SearchState* state) const;

  /// Exact linear-scan fallback used at high dimensionality.
  std::vector<Neighbor> ScanQuery(const float* query, size_t k,
                                  size_t exclude) const;

  Matrix data_;
  std::vector<Node> nodes_;
  int root_ = -1;
  bool use_tree_ = true;
};

}  // namespace cfx

#endif  // CFX_MANIFOLD_KNN_H_
