#include "src/manifold/quadtree.h"

#include <algorithm>
#include <cassert>

namespace cfx {

Quadtree::Quadtree(const double* points, size_t n)
    : points_(points), n_(n), point_next_(n, -1) {
  assert(n > 0);
  // Bounding square: tight box inflated slightly so boundary points fall
  // strictly inside and quadrant tests never overflow the root cell.
  double min_x = points[0], max_x = points[0];
  double min_y = points[1], max_y = points[1];
  for (size_t i = 1; i < n; ++i) {
    min_x = std::min(min_x, points[2 * i]);
    max_x = std::max(max_x, points[2 * i]);
    min_y = std::min(min_y, points[2 * i + 1]);
    max_y = std::max(max_y, points[2 * i + 1]);
  }
  const double span = std::max(max_x - min_x, max_y - min_y);
  nodes_.reserve(2 * n + 4);
  Node root;
  root.cx = (min_x + max_x) / 2.0;
  root.cy = (min_y + max_y) / 2.0;
  root.half = span / 2.0 * 1.001 + 1e-12;
  nodes_.push_back(root);

  for (uint32_t p = 0; p < n; ++p) Insert(0, p, 0);

  for (Node& node : nodes_) {
    if (node.count > 0) {
      node.com_x = node.sum_x / static_cast<double>(node.count);
      node.com_y = node.sum_y / static_cast<double>(node.count);
    }
  }
}

int32_t Quadtree::ChildFor(int32_t node, double x, double y) {
  const int quadrant = (x >= nodes_[node].cx ? 1 : 0) +
                       (y >= nodes_[node].cy ? 2 : 0);
  int32_t child = nodes_[node].children[quadrant];
  if (child >= 0) return child;
  child = static_cast<int32_t>(nodes_.size());
  Node cell;
  cell.half = nodes_[node].half / 2.0;
  cell.cx = nodes_[node].cx + (quadrant & 1 ? cell.half : -cell.half);
  cell.cy = nodes_[node].cy + (quadrant & 2 ? cell.half : -cell.half);
  nodes_.push_back(cell);  // may reallocate: re-index below
  nodes_[node].children[quadrant] = child;
  return child;
}

void Quadtree::Insert(int32_t node, uint32_t p, int depth) {
  const double x = points_[2 * p];
  const double y = points_[2 * p + 1];
  while (true) {
    Node& cell = nodes_[node];
    cell.count += 1;
    cell.sum_x += x;
    cell.sum_y += y;
    if (cell.leaf) {
      if (cell.count == 1) {
        cell.first_point = static_cast<int32_t>(p);
        return;
      }
      if (depth >= kMaxDepth) {
        // Bucket coincident/near-coincident points.
        point_next_[p] = cell.first_point;
        cell.first_point = static_cast<int32_t>(p);
        return;
      }
      // Split: push the resident point one level down, then fall through to
      // route p. The resident's count/sums are already reflected here, so it
      // descends via ChildFor + direct placement rather than re-insertion.
      const uint32_t resident = static_cast<uint32_t>(cell.first_point);
      nodes_[node].first_point = -1;
      nodes_[node].leaf = false;
      const int32_t child = ChildFor(node, points_[2 * resident],
                                     points_[2 * resident + 1]);
      Node& child_cell = nodes_[child];
      child_cell.count = 1;
      child_cell.sum_x = points_[2 * resident];
      child_cell.sum_y = points_[2 * resident + 1];
      child_cell.first_point = static_cast<int32_t>(resident);
    }
    node = ChildFor(node, x, y);
    ++depth;
  }
}

void Quadtree::Walk(int32_t node, const double* q, size_t self,
                    double theta_sq, double* fx, double* fy, double* z) const {
  const Node& cell = nodes_[node];
  const double dx = q[0] - cell.com_x;
  const double dy = q[1] - cell.com_y;
  const double d_sq = dx * dx + dy * dy;

  if (!cell.leaf) {
    const double width = 2.0 * cell.half;
    if (width * width < theta_sq * d_sq) {
      // Far enough: the whole cell acts as one super-point at its centre of
      // mass. (Standard Barnes–Hut accepts this even for the cell containing
      // `self`; with θ ≤ 1 such cells fail the criterion anyway because the
      // query-to-own-com distance is below the cell width.)
      const double num = 1.0 / (1.0 + d_sq);
      const double weight = static_cast<double>(cell.count) * num;
      *z += weight;
      *fx += weight * num * dx;
      *fy += weight * num * dy;
      return;
    }
    for (const int32_t child : cell.children) {
      if (child >= 0) Walk(child, q, self, theta_sq, fx, fy, z);
    }
    return;
  }

  // Leaf: enumerate the bucket exactly (usually a single point), skipping
  // the query point itself.
  for (int32_t p = cell.first_point; p >= 0; p = point_next_[p]) {
    if (static_cast<size_t>(p) == self) continue;
    const double px = q[0] - points_[2 * p];
    const double py = q[1] - points_[2 * p + 1];
    const double num = 1.0 / (1.0 + px * px + py * py);
    *z += num;
    *fx += num * num * px;
    *fy += num * num * py;
  }
}

void Quadtree::Repulsion(size_t self, double theta, double* force_x,
                         double* force_y, double* z) const {
  assert(self < n_);
  const double q[2] = {points_[2 * self], points_[2 * self + 1]};
  Walk(0, q, self, theta * theta, force_x, force_y, z);
}

}  // namespace cfx
