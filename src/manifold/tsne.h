// t-SNE (van der Maaten & Hinton 2008; SNE by Hinton & Roweis 2002, the
// paper's [21]) — used to project the VAE latent space to the 2-D manifolds
// of Figure 6.
//
// Two gradient engines share one descent driver (momentum switching, gain
// adaptation, early exaggeration, recentring):
//  * kExact — O(N^2) dense affinities with per-point perplexity calibration
//    (binary search over the Gaussian bandwidth), symmetrised P, Student-t
//    Q. The reference path for small inputs (N <= 512).
//  * kBarnesHut — O(N log N) tree-accelerated t-SNE (van der Maaten 2014):
//    sparse input affinities restricted to the 3·perplexity nearest
//    neighbours (via KnnIndex, stored CSR), and a quadtree θ-criterion
//    approximation of the repulsive term with a chunk-deterministic Z
//    reduction. Enables full-dataset (10k–50k point) Figure-6 manifolds.
// Both paths produce bitwise-identical embeddings for any CFX_THREADS
// setting (see DESIGN.md §3c).
#ifndef CFX_MANIFOLD_TSNE_H_
#define CFX_MANIFOLD_TSNE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// Gradient engine selection for RunTsne.
enum class TsneAlgorithm {
  kAuto,       ///< kExact at N <= TsneConfig::exact_threshold, else kBarnesHut.
  kExact,      ///< Dense O(N^2) affinities and gradient (reference path).
  kBarnesHut,  ///< Sparse affinities + quadtree repulsion, O(N log N).
};

/// t-SNE hyperparameters (defaults follow the reference implementation).
struct TsneConfig {
  size_t output_dims = 2;
  double perplexity = 30.0;
  size_t iterations = 400;
  double learning_rate = 150.0;
  double early_exaggeration = 12.0;
  size_t exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  size_t momentum_switch_iter = 120;

  /// Which gradient engine to run. kBarnesHut requires output_dims == 2
  /// (the spatial index is a quadtree); kAuto falls back to kExact for
  /// other output dimensionalities.
  TsneAlgorithm algorithm = TsneAlgorithm::kAuto;
  /// Barnes–Hut accuracy/speed trade-off: a cell of width w at distance d
  /// is summarised when w < theta * d. 0 disables summarisation (exact
  /// repulsion via the tree); 0.5 is the standard operating point.
  double theta = 0.5;
  /// kAuto switches from kExact to kBarnesHut above this point count.
  size_t exact_threshold = 512;
};

/// Embeds the rows of `data` (n x d) into (n x output_dims). Deterministic
/// in (*rng)'s state and in CFX_THREADS. Perplexity is clamped to
/// (n - 1) / 3 when the input is small.
Matrix RunTsne(const Matrix& data, const TsneConfig& config, Rng* rng);

namespace internal {

/// Calibrates the Gaussian bandwidth of row `i` so the conditional
/// distribution's perplexity matches `perplexity`; writes p(j|i) into
/// `row_out` (length n, entry i forced to 0). `sq_dists` holds the squared
/// distances from i to every point. Exposed for tests.
void CalibrateRow(const std::vector<double>& sq_dists, size_t i,
                  double perplexity, std::vector<double>* row_out);

/// Sparse-path variant: `sq_dists` holds the squared distances to a point's
/// k nearest neighbours (self already excluded); writes the calibrated,
/// normalised conditional distribution over those k entries.
void CalibrateSparseRow(const std::vector<double>& sq_dists,
                        double perplexity, std::vector<double>* row_out);

/// Symmetrised sparse input affinities in CSR layout. Row i's entries are
/// sorted by column; values hold p_ij = (p(j|i) + p(i|j)) / (2n) over the
/// union of the kNN graphs, so memory is O(N · perplexity).
struct SparseAffinities {
  size_t neighbors = 0;        ///< k used for the kNN pass (3 · perplexity).
  std::vector<size_t> offsets; ///< n + 1 row offsets.
  std::vector<uint32_t> cols;
  std::vector<double> vals;
};

/// Builds the Barnes–Hut input affinities: batch-parallel deterministic
/// KnnIndex self-queries, per-row bandwidth calibration, symmetrisation.
/// Exposed for tests and benches.
SparseAffinities BuildSparseAffinities(const Matrix& data, double perplexity,
                                       Rng* rng);

}  // namespace internal
}  // namespace cfx

#endif  // CFX_MANIFOLD_TSNE_H_
