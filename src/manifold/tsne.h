// Exact t-SNE (van der Maaten & Hinton 2008; SNE by Hinton & Roweis 2002,
// the paper's [21]) — used to project the VAE latent space to the 2-D
// manifolds of Figure 6.
//
// Implementation: exact O(N^2) pairwise affinities with per-point
// perplexity calibration (binary search over the Gaussian bandwidth),
// symmetrised P, Student-t Q, gradient descent with momentum switching and
// early exaggeration. Suitable for the <= a few thousand points Figure 6
// plots.
#ifndef CFX_MANIFOLD_TSNE_H_
#define CFX_MANIFOLD_TSNE_H_

#include "src/common/rng.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// t-SNE hyperparameters (defaults follow the reference implementation).
struct TsneConfig {
  size_t output_dims = 2;
  double perplexity = 30.0;
  size_t iterations = 400;
  double learning_rate = 150.0;
  double early_exaggeration = 12.0;
  size_t exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  size_t momentum_switch_iter = 120;
};

/// Embeds the rows of `data` (n x d) into (n x output_dims). Deterministic
/// in (*rng)'s state. Perplexity is clamped to (n - 1) / 3 when the input
/// is small.
Matrix RunTsne(const Matrix& data, const TsneConfig& config, Rng* rng);

namespace internal {

/// Calibrates the Gaussian bandwidth of row `i` so the conditional
/// distribution's perplexity matches `perplexity`; writes p(j|i) into
/// `row_out` (length n, entry i forced to 0). `sq_dists` holds the squared
/// distances from i to every point. Exposed for tests.
void CalibrateRow(const std::vector<double>& sq_dists, size_t i,
                  double perplexity, std::vector<double>* row_out);

}  // namespace internal
}  // namespace cfx

#endif  // CFX_MANIFOLD_TSNE_H_
