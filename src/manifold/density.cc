#include "src/manifold/density.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cfx {
namespace {

double Distance(const Matrix& m, size_t a, size_t b) {
  double acc = 0.0;
  for (size_t c = 0; c < m.cols(); ++c) {
    const double d = static_cast<double>(m.at(a, c)) - m.at(b, c);
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

SeparabilityStats AnalyzeSeparability(const Matrix& embedding,
                                      const std::vector<int>& labels,
                                      size_t k_neighbors) {
  assert(embedding.rows() == labels.size());
  SeparabilityStats stats;
  const size_t n = embedding.rows();
  stats.num_points = n;
  for (int y : labels) stats.num_positive += (y == 1);
  if (n < 3) return stats;
  k_neighbors = std::min(k_neighbors, n - 1);

  size_t agree = 0;
  double intra_sum = 0.0, inter_sum = 0.0;
  size_t intra_count = 0, inter_count = 0;
  double silhouette_sum = 0.0;

  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < n; ++i) {
    double intra_i = 0.0, inter_i = 0.0;
    size_t intra_n = 0, inter_n = 0;
    for (size_t j = 0; j < n; ++j) {
      const double d =
          i == j ? std::numeric_limits<double>::infinity() : Distance(embedding, i, j);
      dists[j] = {d, j};
      if (i == j) continue;
      if (labels[j] == labels[i]) {
        intra_i += d;
        ++intra_n;
      } else {
        inter_i += d;
        ++inter_n;
      }
    }
    // k-NN majority vote.
    std::partial_sort(dists.begin(), dists.begin() + k_neighbors, dists.end());
    size_t same = 0;
    for (size_t k = 0; k < k_neighbors; ++k) {
      same += labels[dists[k].second] == labels[i];
    }
    agree += same * 2 > k_neighbors;

    if (intra_n > 0 && inter_n > 0) {
      const double a = intra_i / static_cast<double>(intra_n);
      const double b = inter_i / static_cast<double>(inter_n);
      intra_sum += a;
      inter_sum += b;
      ++intra_count;
      ++inter_count;
      silhouette_sum += (b - a) / std::max(a, b);
    }
  }

  stats.knn_label_agreement = static_cast<double>(agree) / n;
  if (inter_count > 0 && inter_sum > 0.0) {
    stats.intra_inter_ratio =
        (intra_sum / intra_count) / (inter_sum / inter_count);
    stats.silhouette = silhouette_sum / static_cast<double>(intra_count);
  }
  return stats;
}

Matrix DensityGrid(const Matrix& embedding, size_t grid_rows,
                   size_t grid_cols) {
  Matrix grid(grid_rows, grid_cols);
  if (embedding.rows() == 0) return grid;
  float min_x = embedding.at(0, 0), max_x = min_x;
  float min_y = embedding.at(0, 1), max_y = min_y;
  for (size_t i = 0; i < embedding.rows(); ++i) {
    min_x = std::min(min_x, embedding.at(i, 0));
    max_x = std::max(max_x, embedding.at(i, 0));
    min_y = std::min(min_y, embedding.at(i, 1));
    max_y = std::max(max_y, embedding.at(i, 1));
  }
  const float span_x = std::max(max_x - min_x, 1e-6f);
  const float span_y = std::max(max_y - min_y, 1e-6f);
  for (size_t i = 0; i < embedding.rows(); ++i) {
    size_t c = static_cast<size_t>((embedding.at(i, 0) - min_x) / span_x *
                                   static_cast<float>(grid_cols - 1));
    size_t r = static_cast<size_t>((embedding.at(i, 1) - min_y) / span_y *
                                   static_cast<float>(grid_rows - 1));
    grid.at(r, c) += 1.0f;
  }
  return grid;
}

}  // namespace cfx
