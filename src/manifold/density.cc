#include "src/manifold/density.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/manifold/knn.h"

namespace cfx {
namespace {

double Distance(const Matrix& m, size_t a, size_t b) {
  double acc = 0.0;
  for (size_t c = 0; c < m.cols(); ++c) {
    const double d = static_cast<double>(m.at(a, c)) - m.at(b, c);
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

SeparabilityStats AnalyzeSeparability(const Matrix& embedding,
                                      const std::vector<int>& labels,
                                      size_t k_neighbors) {
  assert(embedding.rows() == labels.size());
  SeparabilityStats stats;
  const size_t n = embedding.rows();
  stats.num_points = n;
  for (int y : labels) stats.num_positive += (y == 1);
  if (n < 3) return stats;
  k_neighbors = std::min(k_neighbors, n - 1);

  // kNN majority vote through the spatial index (O(n log n) on the 2-D
  // embeddings this analyses) instead of the former O(n^2 log k) scan +
  // partial sort per point. The rng only drives vantage-point selection;
  // query results are exact.
  Rng rng(0x5EBA);
  const KnnIndex index(embedding, &rng);

  // Per-point outputs land in disjoint slots; the reductions below run
  // serially in index order, so the stats are thread-count independent.
  std::vector<uint8_t> agree(n, 0);
  std::vector<uint8_t> valid(n, 0);
  std::vector<double> intra_mean(n, 0.0);  // silhouette a(i), exact
  std::vector<double> inter_mean(n, 0.0);  // silhouette b(i), exact
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const std::vector<Neighbor> hits = index.QuerySelf(i, k_neighbors);
      size_t same = 0;
      for (const Neighbor& hit : hits) {
        same += labels[hit.index] == labels[i];
      }
      agree[i] = same * 2 > k_neighbors;

      // Silhouette terms stay exact: mean distance to every same-label and
      // other-label point (no sort, no per-point allocation).
      double intra_i = 0.0, inter_i = 0.0;
      size_t intra_n = 0, inter_n = 0;
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double d = Distance(embedding, i, j);
        if (labels[j] == labels[i]) {
          intra_i += d;
          ++intra_n;
        } else {
          inter_i += d;
          ++inter_n;
        }
      }
      if (intra_n > 0 && inter_n > 0) {
        valid[i] = 1;
        intra_mean[i] = intra_i / static_cast<double>(intra_n);
        inter_mean[i] = inter_i / static_cast<double>(inter_n);
      }
    }
  });

  size_t agree_count = 0;
  double intra_sum = 0.0, inter_sum = 0.0;
  size_t pair_count = 0;
  double silhouette_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    agree_count += agree[i];
    if (!valid[i]) continue;
    intra_sum += intra_mean[i];
    inter_sum += inter_mean[i];
    ++pair_count;
    silhouette_sum += (inter_mean[i] - intra_mean[i]) /
                      std::max(intra_mean[i], inter_mean[i]);
  }

  stats.knn_label_agreement = static_cast<double>(agree_count) / n;
  if (pair_count > 0 && inter_sum > 0.0) {
    stats.intra_inter_ratio =
        (intra_sum / pair_count) / (inter_sum / pair_count);
    stats.silhouette = silhouette_sum / static_cast<double>(pair_count);
  }
  return stats;
}

Matrix DensityGrid(const Matrix& embedding, size_t grid_rows,
                   size_t grid_cols) {
  // Degenerate shapes: a 0-cell grid has nowhere to count, and a single
  // row/column must collapse that axis to index 0 instead of scaling by
  // (extent - 1) == 0 against a degenerate span.
  if (grid_rows == 0 || grid_cols == 0) return Matrix(grid_rows, grid_cols);
  Matrix grid(grid_rows, grid_cols);
  if (embedding.rows() == 0) return grid;
  float min_x = embedding.at(0, 0), max_x = min_x;
  float min_y = embedding.at(0, 1), max_y = min_y;
  for (size_t i = 0; i < embedding.rows(); ++i) {
    min_x = std::min(min_x, embedding.at(i, 0));
    max_x = std::max(max_x, embedding.at(i, 0));
    min_y = std::min(min_y, embedding.at(i, 1));
    max_y = std::max(max_y, embedding.at(i, 1));
  }
  const float span_x = std::max(max_x - min_x, 1e-6f);
  const float span_y = std::max(max_y - min_y, 1e-6f);
  for (size_t i = 0; i < embedding.rows(); ++i) {
    size_t c = grid_cols == 1
                   ? 0
                   : static_cast<size_t>((embedding.at(i, 0) - min_x) /
                                         span_x *
                                         static_cast<float>(grid_cols - 1));
    size_t r = grid_rows == 1
                   ? 0
                   : static_cast<size_t>((embedding.at(i, 1) - min_y) /
                                         span_y *
                                         static_cast<float>(grid_rows - 1));
    grid.at(std::min(r, grid_rows - 1), std::min(c, grid_cols - 1)) += 1.0f;
  }
  return grid;
}

}  // namespace cfx
