// Quantitative analysis of the Figure 6 manifolds: how separable are the
// feasible and infeasible regions of a 2-D embedding?
#ifndef CFX_MANIFOLD_DENSITY_H_
#define CFX_MANIFOLD_DENSITY_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace cfx {

/// Separation statistics of a labelled 2-D point cloud.
struct SeparabilityStats {
  size_t num_points = 0;
  size_t num_positive = 0;  ///< Feasible points (label 1).
  /// Fraction of points whose k nearest neighbours' majority label matches
  /// their own — 1.0 for perfectly separated regions, ~max(class prior) for
  /// fully mixed ones.
  double knn_label_agreement = 0.0;
  /// Mean distance to same-label points divided by mean distance to
  /// other-label points; < 1 indicates clustering by label.
  double intra_inter_ratio = 0.0;
  /// Silhouette-style score in [-1, 1] using label clusters.
  double silhouette = 0.0;
};

/// Computes separation statistics for `embedding` (n x 2) with 0/1 `labels`.
SeparabilityStats AnalyzeSeparability(const Matrix& embedding,
                                      const std::vector<int>& labels,
                                      size_t k_neighbors = 10);

/// 2-D histogram ("density grid") of a point cloud: cell (r, c) counts the
/// points falling there; useful for locating the dense feasible regions the
/// paper's §I discusses.
Matrix DensityGrid(const Matrix& embedding, size_t grid_rows,
                   size_t grid_cols);

}  // namespace cfx

#endif  // CFX_MANIFOLD_DENSITY_H_
