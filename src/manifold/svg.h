// Standalone SVG scatter rendering for the Figure 6 manifolds — publication
// -quality output without any plotting dependency.
#ifndef CFX_MANIFOLD_SVG_H_
#define CFX_MANIFOLD_SVG_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/matrix.h"

namespace cfx {

/// Appearance of the SVG scatter.
struct SvgScatterOptions {
  size_t width = 640;
  size_t height = 480;
  double point_radius = 3.0;
  /// Colour of label-1 ("feasible") points; paper's Figure 6 uses yellow.
  std::string positive_color = "#e6b800";
  /// Colour of label-0 ("infeasible") points; the paper uses violet.
  std::string negative_color = "#5b2a86";
  std::string positive_name = "feasible";
  std::string negative_name = "infeasible";
};

/// Writes an (n x 2) embedding with 0/1 labels to `path` as an SVG scatter
/// with frame, title and legend.
Status WriteSvgScatter(const Matrix& embedding, const std::vector<int>& labels,
                       const std::string& title, const std::string& path,
                       const SvgScatterOptions& options = SvgScatterOptions());

/// Renders the SVG into a string (exposed for tests).
std::string RenderSvgScatter(const Matrix& embedding,
                             const std::vector<int>& labels,
                             const std::string& title,
                             const SvgScatterOptions& options =
                                 SvgScatterOptions());

}  // namespace cfx

#endif  // CFX_MANIFOLD_SVG_H_
