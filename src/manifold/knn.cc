#include "src/manifold/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "src/common/thread_pool.h"

namespace cfx {

KnnIndex::KnnIndex(const Matrix& data, Rng* rng) : data_(data) {
  use_tree_ = data_.cols() < kTreeMaxDims;
  if (!use_tree_) return;
  std::vector<size_t> items(data_.rows());
  for (size_t i = 0; i < items.size(); ++i) items[i] = i;
  nodes_.reserve(data_.rows());
  root_ = Build(&items, 0, items.size(), rng);
}

std::vector<Neighbor> KnnIndex::ScanQuery(const float* query, size_t k,
                                          size_t exclude) const {
  const size_t n = data_.rows();
  const size_t d = data_.cols();
  // Squared distances + a bounded max-heap of the best k: O(n log k) with
  // no O(n) allocation; sqrt only the winners. The running k-th best bound
  // also lets the inner loop exit a row early once it cannot qualify.
  const size_t take = std::min(k, exclude < n ? n - 1 : n);
  std::vector<std::pair<float, size_t>> heap;  // max-heap by squared dist
  heap.reserve(take + 1);
  float bound = std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    const float* __restrict__ row = &data_.data()[i * d];
    const float* __restrict__ q = query;
    // Branch-free inner loop (vectorises); the bound check happens once per
    // row, which measures faster than per-element early exit.
    float acc = 0.0f;
    for (size_t c = 0; c < d; ++c) {
      const float delta = q[c] - row[c];
      acc += delta * delta;
    }
    if (acc > bound) continue;
    if (heap.size() < take) {
      heap.emplace_back(acc, i);
      std::push_heap(heap.begin(), heap.end());
      if (heap.size() == take) bound = heap.front().first;
    } else if (acc < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {acc, i};
      std::push_heap(heap.begin(), heap.end());
      bound = heap.front().first;
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  std::vector<Neighbor> hits(heap.size());
  for (size_t i = 0; i < heap.size(); ++i) {
    hits[i] = {heap[i].second, std::sqrt(heap[i].first)};
  }
  return hits;
}

float KnnIndex::Distance(const float* a, size_t row) const {
  const float* b = &data_.data()[row * data_.cols()];
  double acc = 0.0;
  for (size_t c = 0; c < data_.cols(); ++c) {
    const double d = static_cast<double>(a[c]) - b[c];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

int KnnIndex::Build(std::vector<size_t>* items, size_t begin, size_t end,
                    Rng* rng) {
  if (begin >= end) return -1;
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Random vantage point, swapped to the front.
  const size_t pick = begin + rng->UniformInt(end - begin);
  std::swap((*items)[begin], (*items)[pick]);
  const size_t vp = (*items)[begin];
  nodes_[id].point = vp;

  if (end - begin == 1) return id;

  // Partition the remainder by the median distance to the vantage point.
  const float* vp_row = &data_.data()[vp * data_.cols()];
  const size_t mid = begin + 1 + (end - begin - 1) / 2;
  std::nth_element(items->begin() + begin + 1, items->begin() + mid,
                   items->begin() + end, [&](size_t a, size_t b) {
                     return Distance(vp_row, a) < Distance(vp_row, b);
                   });
  const float radius = Distance(vp_row, (*items)[mid]);

  // nth_element leaves [begin+1, mid) <= items[mid] <= [mid, end).
  const int inside = Build(items, begin + 1, mid, rng);
  const int outside = Build(items, mid, end, rng);
  nodes_[id].radius = radius;
  nodes_[id].inside = inside;
  nodes_[id].outside = outside;
  return id;
}

struct KnnIndex::SearchState {
  // Max-heap of the best k hits seen so far (largest distance on top).
  std::priority_queue<std::pair<float, size_t>> heap;
  size_t k = 0;

  float Tau() const {
    return heap.size() < k ? std::numeric_limits<float>::infinity()
                           : heap.top().first;
  }
  void Offer(float distance, size_t index) {
    if (heap.size() < k) {
      heap.push({distance, index});
    } else if (distance < heap.top().first) {
      heap.pop();
      heap.push({distance, index});
    }
  }
};

void KnnIndex::Search(int node, const float* query, size_t k, size_t exclude,
                      SearchState* state) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  const float d = Distance(query, n.point);
  if (n.point != exclude) state->Offer(d, n.point);

  if (n.inside < 0 && n.outside < 0) return;
  // Visit the more promising side first; prune the other with the triangle
  // inequality against the current k-th best distance tau.
  if (d < n.radius) {
    Search(n.inside, query, k, exclude, state);
    if (d + state->Tau() >= n.radius) {
      Search(n.outside, query, k, exclude, state);
    }
  } else {
    Search(n.outside, query, k, exclude, state);
    if (d - state->Tau() <= n.radius) {
      Search(n.inside, query, k, exclude, state);
    }
  }
}

std::vector<Neighbor> KnnIndex::Query(const Matrix& query, size_t k) const {
  assert(query.rows() == 1 && query.cols() == data_.cols());
  if (!use_tree_) {
    return ScanQuery(query.data(), k, static_cast<size_t>(-1));
  }
  SearchState state;
  state.k = std::min(k, data_.rows());
  Search(root_, query.data(), state.k, static_cast<size_t>(-1), &state);
  std::vector<Neighbor> hits(state.heap.size());
  for (size_t i = hits.size(); i-- > 0;) {
    hits[i] = {state.heap.top().second, state.heap.top().first};
    state.heap.pop();
  }
  return hits;
}

std::vector<Neighbor> KnnIndex::ScanQuery(const Matrix& query, size_t k) const {
  assert(query.rows() == 1 && query.cols() == data_.cols());
  return ScanQuery(query.data(), k, static_cast<size_t>(-1));
}

std::vector<std::vector<Neighbor>> KnnIndex::SelfNeighbors(size_t k) const {
  std::vector<std::vector<Neighbor>> hits(data_.rows());
  // Chunks own disjoint result slots and every query is a pure read, so the
  // batch is bitwise identical for any thread count.
  ParallelFor(0, data_.rows(), 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) hits[i] = QuerySelf(i, k);
  });
  return hits;
}

std::vector<Neighbor> KnnIndex::QuerySelf(size_t row, size_t k) const {
  assert(row < data_.rows());
  if (!use_tree_) {
    return ScanQuery(&data_.data()[row * data_.cols()], k, row);
  }
  SearchState state;
  state.k = std::min(k, data_.rows() > 0 ? data_.rows() - 1 : 0);
  if (state.k == 0) return {};
  Search(root_, &data_.data()[row * data_.cols()], state.k, row, &state);
  std::vector<Neighbor> hits(state.heap.size());
  for (size_t i = hits.size(); i-- > 0;) {
    hits[i] = {state.heap.top().second, state.heap.top().first};
    state.heap.pop();
  }
  return hits;
}

}  // namespace cfx
