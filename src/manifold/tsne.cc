#include "src/manifold/tsne.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/manifold/knn.h"
#include "src/manifold/quadtree.h"

namespace cfx {
namespace internal {
namespace {

/// Shared bandwidth bisection: distributes mass over `sq_dists` (skipping
/// `exclude` if in range) so the conditional distribution's entropy matches
/// log(perplexity), then normalises.
void CalibrateDistances(const std::vector<double>& sq_dists, size_t exclude,
                        double perplexity, std::vector<double>* row_out) {
  const size_t n = sq_dists.size();
  row_out->assign(n, 0.0);
  const double target_entropy = std::log(perplexity);

  double beta = 1.0;        // precision = 1 / (2 sigma^2)
  double beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();

  std::vector<double>& p = *row_out;
  for (int attempt = 0; attempt < 60; ++attempt) {
    // p(j|i) ∝ exp(-beta * d_ij^2); compute entropy H.
    double sum = 0.0;
    double weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == exclude) {
        p[j] = 0.0;
        continue;
      }
      p[j] = std::exp(-beta * sq_dists[j]);
      sum += p[j];
      weighted += beta * sq_dists[j] * p[j];
    }
    if (sum <= 1e-300) {
      // All mass collapsed; lower beta and retry.
      beta_max = beta;
      beta = (beta_min + beta) / 2.0;
      continue;
    }
    const double entropy = std::log(sum) + weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      // Entropy too high -> distribution too flat -> raise beta.
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  // Normalise.
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += p[j];
  if (sum > 0.0) {
    for (size_t j = 0; j < n; ++j) p[j] /= sum;
  }
}

/// Gradient engine contract: fill `dy` (n x dims) for the current embedding
/// `y`; called once per iteration.
using GradientFn =
    std::function<void(const std::vector<double>& y, std::vector<double>* dy)>;

/// The descent driver both engines share: N(0, 1e-2) init, Jacobs gain
/// adaptation, momentum switching, recentring and the early-exaggeration
/// hand-off (`unexaggerate` runs once, after `exaggeration_iters`
/// iterations). Serial update math keeps the trajectory bitwise identical
/// for any thread count.
std::vector<double> DescentLoop(const TsneConfig& config, size_t n,
                                size_t dims, const GradientFn& gradient,
                                const std::function<void()>& unexaggerate,
                                Rng* rng) {
  // Initial embedding ~ N(0, 1e-4).
  std::vector<double> y(n * dims);
  for (double& v : y) v = rng->Normal(0.0, 1e-2);

  std::vector<double> dy(n * dims, 0.0);     // gradient
  std::vector<double> vel(n * dims, 0.0);    // momentum buffer
  std::vector<double> gains(n * dims, 1.0);  // adaptive per-dim gains

  for (size_t iter = 0; iter < config.iterations; ++iter) {
    gradient(y, &dy);

    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;
    for (size_t k = 0; k < n * dims; ++k) {
      // Jacobs-style gain adaptation.
      const bool same_sign = (dy[k] > 0) == (vel[k] > 0);
      gains[k] = same_sign ? std::max(gains[k] * 0.8, 0.01) : gains[k] + 0.2;
      vel[k] = momentum * vel[k] - config.learning_rate * gains[k] * dy[k];
      y[k] += vel[k];
    }

    // Recentre.
    for (size_t c = 0; c < dims; ++c) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y[i * dims + c];
      mean /= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) y[i * dims + c] -= mean;
    }

    // Remove exaggeration.
    if (iter + 1 == config.exaggeration_iters) unexaggerate();
  }
  return y;
}

Matrix ToMatrix(const std::vector<double>& y, size_t n, size_t dims) {
  Matrix out(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dims; ++c) {
      out.at(i, c) = static_cast<float>(y[i * dims + c]);
    }
  }
  return out;
}

// ---- exact engine ---------------------------------------------------------

Matrix RunTsneExact(const Matrix& data, const TsneConfig& config, Rng* rng) {
  const size_t n = data.rows();
  const size_t dims = config.output_dims;
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  // Dense symmetrised affinities. The O(N^2) distance buffer is scoped so
  // it is returned to the allocator before the iteration buffers appear.
  std::vector<double> p(n * n, 0.0);
  {
    CFX_TRACE_SPAN("tsne/affinities");
    // Pairwise squared distances in high-dimensional space. Chunks write
    // disjoint upper-triangle rows; a second pass mirrors into the lower
    // triangle (row j is written only by the chunk owning j).
    std::vector<double> sq(n * n, 0.0);
    ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          double acc = 0.0;
          for (size_t c = 0; c < data.cols(); ++c) {
            const double d = static_cast<double>(data.at(i, c)) - data.at(j, c);
            acc += d * d;
          }
          sq[i * n + j] = acc;
        }
      }
    });
    ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
      for (size_t j = j0; j < j1; ++j) {
        for (size_t i = 0; i < j; ++i) sq[j * n + i] = sq[i * n + j];
      }
    });

    // Conditional affinities: each row's bisection search is independent.
    ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
      std::vector<double> row_dists(n);
      std::vector<double> row(n);
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = 0; j < n; ++j) row_dists[j] = sq[i * n + j];
        CalibrateRow(row_dists, i, perplexity, &row);
        for (size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
      }
    });
  }
  // Symmetrise: the upper pass reads lower entries (untouched conditionals)
  // and writes upper ones; the mirror pass copies them down.
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        p[i * n + j] =
            std::max((p[i * n + j] + p[j * n + i]) * inv_2n, 1e-12);
      }
      p[i * n + i] = 0.0;
    }
  });
  ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < j; ++i) p[j * n + i] = p[i * n + j];
    }
  });

  // Early exaggeration.
  for (double& v : p) v *= config.early_exaggeration;

  std::vector<double> q(n * n, 0.0);
  std::vector<double> num(n * n, 0.0);

  // Fixed reduction grain: the q_sum chunk layout must depend only on n so
  // every CFX_THREADS value accumulates partials identically.
  const size_t reduce_grain = std::max<size_t>(1, n / 64);

  const GradientFn gradient = [&](const std::vector<double>& y,
                                  std::vector<double>* dy_out) {
    CFX_TRACE_SPAN("tsne/gradient");
    std::vector<double>& dy = *dy_out;
    // Student-t affinities in the embedding: upper-triangle rows per chunk,
    // with q_sum as an order-deterministic chunked reduction.
    const double q_sum =
        ParallelReduce(0, n, reduce_grain, [&](size_t i0, size_t i1) {
          double partial = 0.0;
          for (size_t i = i0; i < i1; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
              double acc = 0.0;
              for (size_t c = 0; c < dims; ++c) {
                const double d = y[i * dims + c] - y[j * dims + c];
                acc += d * d;
              }
              const double t = 1.0 / (1.0 + acc);
              num[i * n + j] = t;
              partial += 2.0 * t;
            }
          }
          return partial;
        });
    ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
      for (size_t j = j0; j < j1; ++j) {
        for (size_t i = 0; i < j; ++i) num[j * n + i] = num[i * n + j];
        num[j * n + j] = 0.0;
      }
    });
    const double inv_q_sum = q_sum > 0 ? 1.0 / q_sum : 0.0;
    ParallelFor(0, n * n, size_t{1} << 15, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        q[i] = std::max(num[i] * inv_q_sum, 1e-12);
      }
    });

    // Gradient: 4 * sum_j (p_ij - q_ij) * num_ij * (y_i - y_j). Each chunk
    // owns its rows of dy; the j-accumulation stays in ascending order, so
    // the result is bitwise identical for any thread count.
    ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) {
        for (size_t c = 0; c < dims; ++c) dy[i * dims + c] = 0.0;
        for (size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double mult = (p[i * n + j] - q[i * n + j]) * num[i * n + j];
          for (size_t c = 0; c < dims; ++c) {
            dy[i * dims + c] +=
                4.0 * mult * (y[i * dims + c] - y[j * dims + c]);
          }
        }
      }
    });
  };
  const auto unexaggerate = [&] {
    for (double& v : p) v /= config.early_exaggeration;
  };

  CFX_TRACE_SPAN("tsne/descent");
  const std::vector<double> y =
      DescentLoop(config, n, dims, gradient, unexaggerate, rng);
  return ToMatrix(y, n, dims);
}

// ---- Barnes–Hut engine ----------------------------------------------------

Matrix RunTsneBarnesHut(const Matrix& data, const TsneConfig& config,
                        Rng* rng) {
  const size_t n = data.rows();
  constexpr size_t kDims = 2;  // quadtree-backed repulsion is 2-D
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  SparseAffinities aff = [&] {
    CFX_TRACE_SPAN("tsne/affinities");
    return BuildSparseAffinities(data, perplexity, rng);
  }();

  // Early exaggeration.
  for (double& v : aff.vals) v *= config.early_exaggeration;

  std::vector<double> rep(n * kDims, 0.0);  // repulsive force numerators
  std::vector<double> z_part(n, 0.0);       // per-point Z partial sums

  // Fixed grain (independent of CFX_THREADS) so the Z partials always merge
  // in the same chunk order — the Barnes–Hut analogue of the exact engine's
  // q_sum reduction.
  const size_t reduce_grain = std::max<size_t>(1, n / 64);

  const GradientFn gradient = [&](const std::vector<double>& y,
                                  std::vector<double>* dy_out) {
    std::vector<double>& dy = *dy_out;
    CFX_TRACE_SPAN("tsne/gradient");
    // The tree is rebuilt serially each iteration (O(N log N), a small
    // fraction of traversal cost) so its shape is thread-count independent.
    const Quadtree tree = [&] {
      CFX_TRACE_SPAN("tsne/tree");
      return Quadtree(y.data(), n);
    }();

    double inv_z = 0.0;
    {
      CFX_TRACE_SPAN("tsne/repulsion");
      // Repulsion: each point's θ-walk is an independent pure read of the
      // tree; chunks write disjoint rows of rep/z_part.
      ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
          double fx = 0.0, fy = 0.0, zi = 0.0;
          tree.Repulsion(i, config.theta, &fx, &fy, &zi);
          rep[i * kDims] = fx;
          rep[i * kDims + 1] = fy;
          z_part[i] = zi;
        }
      });
      const double z_sum =
          ParallelReduce(0, n, reduce_grain, [&](size_t i0, size_t i1) {
            double partial = 0.0;
            for (size_t i = i0; i < i1; ++i) partial += z_part[i];
            return partial;
          });
      inv_z = z_sum > 0 ? 1.0 / z_sum : 0.0;
    }

    CFX_TRACE_SPAN("tsne/attraction");
    // Attraction over the sparse P (CSR rows are sorted by column, so the
    // j-accumulation order is fixed) fused with the final gradient:
    //   dC/dy_i = 4 * (sum_j p_ij num_ij (y_i - y_j) - rep_i / Z).
    ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) {
        double ax = 0.0, ay = 0.0;
        for (size_t e = aff.offsets[i]; e < aff.offsets[i + 1]; ++e) {
          const size_t j = aff.cols[e];
          const double dx = y[i * kDims] - y[j * kDims];
          const double dyv = y[i * kDims + 1] - y[j * kDims + 1];
          const double t = 1.0 / (1.0 + dx * dx + dyv * dyv);
          ax += aff.vals[e] * t * dx;
          ay += aff.vals[e] * t * dyv;
        }
        dy[i * kDims] = 4.0 * (ax - rep[i * kDims] * inv_z);
        dy[i * kDims + 1] = 4.0 * (ay - rep[i * kDims + 1] * inv_z);
      }
    });
  };
  const auto unexaggerate = [&] {
    for (double& v : aff.vals) v /= config.early_exaggeration;
  };

  CFX_TRACE_SPAN("tsne/descent");
  const std::vector<double> y =
      DescentLoop(config, n, kDims, gradient, unexaggerate, rng);
  return ToMatrix(y, n, kDims);
}

}  // namespace

void CalibrateRow(const std::vector<double>& sq_dists, size_t i,
                  double perplexity, std::vector<double>* row_out) {
  CalibrateDistances(sq_dists, i, perplexity, row_out);
}

void CalibrateSparseRow(const std::vector<double>& sq_dists,
                        double perplexity, std::vector<double>* row_out) {
  CalibrateDistances(sq_dists, sq_dists.size(), perplexity, row_out);
}

SparseAffinities BuildSparseAffinities(const Matrix& data, double perplexity,
                                       Rng* rng) {
  const size_t n = data.rows();
  SparseAffinities aff;
  aff.neighbors = std::max<size_t>(
      1, std::min(n - 1, static_cast<size_t>(3.0 * perplexity)));
  const size_t k = aff.neighbors;

  // Directed kNN affinities: batch-parallel index queries (pure reads) and
  // per-row bandwidth calibration. Chunks own disjoint row slices.
  const KnnIndex index(data, rng);
  std::vector<uint32_t> knn_cols(n * k);
  std::vector<double> knn_p(n * k);
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    std::vector<double> sq(k);
    std::vector<double> row;
    for (size_t i = i0; i < i1; ++i) {
      const std::vector<Neighbor> hits = index.QuerySelf(i, k);
      assert(hits.size() == k);
      for (size_t t = 0; t < k; ++t) {
        sq[t] = static_cast<double>(hits[t].distance) * hits[t].distance;
      }
      CalibrateSparseRow(sq, perplexity, &row);
      for (size_t t = 0; t < k; ++t) {
        knn_cols[i * k + t] = static_cast<uint32_t>(hits[t].index);
        knn_p[i * k + t] = row[t];
      }
    }
  });

  // Symmetrise into CSR: every directed edge (i -> j, v) contributes v to
  // both p_ij and p_ji; coincident entries merge. All passes below are
  // serial or row-disjoint, so the layout is thread-count independent.
  std::vector<size_t> degree(n, k);  // k outgoing entries per row...
  for (size_t e = 0; e < n * k; ++e) degree[knn_cols[e]] += 1;  // + incoming

  aff.offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) aff.offsets[i + 1] = aff.offsets[i] + degree[i];
  std::vector<uint32_t> cols(aff.offsets[n]);
  std::vector<double> vals(aff.offsets[n]);
  std::vector<size_t> cursor(aff.offsets.begin(), aff.offsets.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < k; ++t) {
      const uint32_t j = knn_cols[i * k + t];
      const double v = knn_p[i * k + t];
      cols[cursor[i]] = j;
      vals[cursor[i]++] = v;
      cols[cursor[j]] = static_cast<uint32_t>(i);
      vals[cursor[j]++] = v;
    }
  }

  // Per-row: sort by column and merge duplicates (mutual neighbours appear
  // twice, once per direction). Rows are independent.
  std::vector<size_t> merged_count(n, 0);
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    std::vector<std::pair<uint32_t, double>> row;
    for (size_t i = i0; i < i1; ++i) {
      row.clear();
      for (size_t e = aff.offsets[i]; e < aff.offsets[i + 1]; ++e) {
        row.emplace_back(cols[e], vals[e]);
      }
      std::sort(row.begin(), row.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      size_t w = aff.offsets[i];
      for (size_t r = 0; r < row.size(); ++r) {
        if (w > aff.offsets[i] && cols[w - 1] == row[r].first) {
          vals[w - 1] += row[r].second;
        } else {
          cols[w] = row[r].first;
          vals[w++] = row[r].second;
        }
      }
      merged_count[i] = w - aff.offsets[i];
    }
  });

  // Compact the merged rows and scale by 1 / (2n).
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  std::vector<size_t> new_offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    new_offsets[i + 1] = new_offsets[i] + merged_count[i];
  }
  aff.cols.resize(new_offsets[n]);
  aff.vals.resize(new_offsets[n]);
  for (size_t i = 0; i < n; ++i) {
    const size_t src = aff.offsets[i];
    const size_t dst = new_offsets[i];
    for (size_t t = 0; t < merged_count[i]; ++t) {
      aff.cols[dst + t] = cols[src + t];
      aff.vals[dst + t] = std::max(vals[src + t] * inv_2n, 1e-12);
    }
  }
  aff.offsets = std::move(new_offsets);
  return aff;
}

}  // namespace internal

Matrix RunTsne(const Matrix& data, const TsneConfig& config, Rng* rng) {
  const size_t n = data.rows();
  assert(n >= 4 && "t-SNE needs at least a handful of points");

  TsneAlgorithm algorithm = config.algorithm;
  if (algorithm == TsneAlgorithm::kAuto) {
    algorithm = (n > config.exact_threshold && config.output_dims == 2)
                    ? TsneAlgorithm::kBarnesHut
                    : TsneAlgorithm::kExact;
  }
  if (algorithm == TsneAlgorithm::kBarnesHut) {
    assert(config.output_dims == 2 &&
           "Barnes-Hut t-SNE is quadtree-backed and only supports 2-D output");
    return internal::RunTsneBarnesHut(data, config, rng);
  }
  return internal::RunTsneExact(data, config, rng);
}

}  // namespace cfx
