#include "src/manifold/tsne.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/common/thread_pool.h"

namespace cfx {
namespace internal {

void CalibrateRow(const std::vector<double>& sq_dists, size_t i,
                  double perplexity, std::vector<double>* row_out) {
  const size_t n = sq_dists.size();
  row_out->assign(n, 0.0);
  const double target_entropy = std::log(perplexity);

  double beta = 1.0;        // precision = 1 / (2 sigma^2)
  double beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();

  std::vector<double>& p = *row_out;
  for (int attempt = 0; attempt < 60; ++attempt) {
    // p(j|i) ∝ exp(-beta * d_ij^2); compute entropy H.
    double sum = 0.0;
    double weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        p[j] = 0.0;
        continue;
      }
      p[j] = std::exp(-beta * sq_dists[j]);
      sum += p[j];
      weighted += beta * sq_dists[j] * p[j];
    }
    if (sum <= 1e-300) {
      // All mass collapsed; lower beta and retry.
      beta_max = beta;
      beta = (beta_min + beta) / 2.0;
      continue;
    }
    const double entropy = std::log(sum) + weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      // Entropy too high -> distribution too flat -> raise beta.
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  // Normalise.
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += p[j];
  if (sum > 0.0) {
    for (size_t j = 0; j < n; ++j) p[j] /= sum;
  }
}

}  // namespace internal

Matrix RunTsne(const Matrix& data, const TsneConfig& config, Rng* rng) {
  const size_t n = data.rows();
  const size_t dims = config.output_dims;
  assert(n >= 4 && "t-SNE needs at least a handful of points");

  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  // Pairwise squared distances in high-dimensional space. Chunks write
  // disjoint upper-triangle rows; a second pass mirrors into the lower
  // triangle (row j is written only by the chunk owning j).
  std::vector<double> sq(n * n, 0.0);
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (size_t c = 0; c < data.cols(); ++c) {
          const double d = static_cast<double>(data.at(i, c)) - data.at(j, c);
          acc += d * d;
        }
        sq[i * n + j] = acc;
      }
    }
  });
  ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < j; ++i) sq[j * n + i] = sq[i * n + j];
    }
  });

  // Conditional affinities: each row's bisection search is independent.
  std::vector<double> p(n * n, 0.0);
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    std::vector<double> row_dists(n);
    std::vector<double> row(n);
    for (size_t i = i0; i < i1; ++i) {
      for (size_t j = 0; j < n; ++j) row_dists[j] = sq[i * n + j];
      internal::CalibrateRow(row_dists, i, perplexity, &row);
      for (size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
    }
  });
  // Symmetrise: the upper pass reads lower entries (untouched conditionals)
  // and writes upper ones; the mirror pass copies them down.
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        p[i * n + j] =
            std::max((p[i * n + j] + p[j * n + i]) * inv_2n, 1e-12);
      }
      p[i * n + i] = 0.0;
    }
  });
  ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < j; ++i) p[j * n + i] = p[i * n + j];
    }
  });

  // Early exaggeration.
  for (double& v : p) v *= config.early_exaggeration;

  // Initial embedding ~ N(0, 1e-4).
  std::vector<double> y(n * dims);
  for (double& v : y) v = rng->Normal(0.0, 1e-2);

  std::vector<double> dy(n * dims, 0.0);     // gradient
  std::vector<double> vel(n * dims, 0.0);    // momentum buffer
  std::vector<double> gains(n * dims, 1.0);  // adaptive per-dim gains
  std::vector<double> q(n * n, 0.0);
  std::vector<double> num(n * n, 0.0);

  // Fixed reduction grain: the q_sum chunk layout must depend only on n so
  // every CFX_THREADS value accumulates partials identically.
  const size_t reduce_grain = std::max<size_t>(1, n / 64);

  for (size_t iter = 0; iter < config.iterations; ++iter) {
    // Student-t affinities in the embedding: upper-triangle rows per chunk,
    // with q_sum as an order-deterministic chunked reduction.
    const double q_sum =
        ParallelReduce(0, n, reduce_grain, [&](size_t i0, size_t i1) {
          double partial = 0.0;
          for (size_t i = i0; i < i1; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
              double acc = 0.0;
              for (size_t c = 0; c < dims; ++c) {
                const double d = y[i * dims + c] - y[j * dims + c];
                acc += d * d;
              }
              const double t = 1.0 / (1.0 + acc);
              num[i * n + j] = t;
              partial += 2.0 * t;
            }
          }
          return partial;
        });
    ParallelFor(0, n, 0, [&](size_t j0, size_t j1) {
      for (size_t j = j0; j < j1; ++j) {
        for (size_t i = 0; i < j; ++i) num[j * n + i] = num[i * n + j];
        num[j * n + j] = 0.0;
      }
    });
    const double inv_q_sum = q_sum > 0 ? 1.0 / q_sum : 0.0;
    ParallelFor(0, n * n, size_t{1} << 15, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        q[i] = std::max(num[i] * inv_q_sum, 1e-12);
      }
    });

    // Gradient: 4 * sum_j (p_ij - q_ij) * num_ij * (y_i - y_j). Each chunk
    // owns its rows of dy; the j-accumulation stays in ascending order, so
    // the result is bitwise identical for any thread count.
    ParallelFor(0, n, 0, [&](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) {
        for (size_t c = 0; c < dims; ++c) dy[i * dims + c] = 0.0;
        for (size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double mult = (p[i * n + j] - q[i * n + j]) * num[i * n + j];
          for (size_t c = 0; c < dims; ++c) {
            dy[i * dims + c] +=
                4.0 * mult * (y[i * dims + c] - y[j * dims + c]);
          }
        }
      }
    });

    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;
    for (size_t k = 0; k < n * dims; ++k) {
      // Jacobs-style gain adaptation.
      const bool same_sign = (dy[k] > 0) == (vel[k] > 0);
      gains[k] = same_sign ? std::max(gains[k] * 0.8, 0.01) : gains[k] + 0.2;
      vel[k] = momentum * vel[k] - config.learning_rate * gains[k] * dy[k];
      y[k] += vel[k];
    }

    // Recentre.
    for (size_t c = 0; c < dims; ++c) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y[i * dims + c];
      mean /= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) y[i * dims + c] -= mean;
    }

    // Remove exaggeration.
    if (iter + 1 == config.exaggeration_iters) {
      for (double& v : p) v /= config.early_exaggeration;
    }
  }

  Matrix out(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dims; ++c) {
      out.at(i, c) = static_cast<float>(y[i * dims + c]);
    }
  }
  return out;
}

}  // namespace cfx
