#include "src/manifold/scatter.h"

#include <algorithm>
#include <cassert>

namespace cfx {

std::string RenderScatter(const Matrix& embedding,
                          const std::vector<int>& labels, size_t rows,
                          size_t cols) {
  assert(embedding.cols() >= 2 && embedding.rows() == labels.size());
  if (embedding.rows() == 0) return "(empty)\n";

  float min_x = embedding.at(0, 0), max_x = min_x;
  float min_y = embedding.at(0, 1), max_y = min_y;
  for (size_t i = 0; i < embedding.rows(); ++i) {
    min_x = std::min(min_x, embedding.at(i, 0));
    max_x = std::max(max_x, embedding.at(i, 0));
    min_y = std::min(min_y, embedding.at(i, 1));
    max_y = std::max(max_y, embedding.at(i, 1));
  }
  const float span_x = std::max(max_x - min_x, 1e-6f);
  const float span_y = std::max(max_y - min_y, 1e-6f);

  // 0 = empty, 1 = infeasible, 2 = feasible, 3 = both.
  std::vector<uint8_t> cells(rows * cols, 0);
  for (size_t i = 0; i < embedding.rows(); ++i) {
    size_t c = static_cast<size_t>((embedding.at(i, 0) - min_x) / span_x *
                                   static_cast<float>(cols - 1));
    size_t r = static_cast<size_t>((embedding.at(i, 1) - min_y) / span_y *
                                   static_cast<float>(rows - 1));
    cells[r * cols + c] |= labels[i] == 1 ? 2 : 1;
  }

  static const char kGlyphs[4] = {' ', '.', '#', '@'};
  std::string out;
  out.reserve((cols + 3) * rows);
  for (size_t r = 0; r < rows; ++r) {
    out += '|';
    for (size_t c = 0; c < cols; ++c) out += kGlyphs[cells[r * cols + c]];
    out += "|\n";
  }
  return out;
}

}  // namespace cfx
