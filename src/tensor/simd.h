// Runtime-dispatched vectorized kernel layer.
//
// Design notes:
//  * One process-wide SIMD level, detected from the CPU at first use
//    (CPUID-backed __builtin_cpu_supports on x86, compile-time NEON on
//    aarch64) and overridable with CFX_SIMD=scalar|avx2|neon|auto. Parsing
//    follows the PR-4 strict-env rules: unknown values (including typos
//    like "AVX") log a CFX_LOG(Warning) and fall back to auto; a known
//    level the hardware cannot run logs a warning and falls back to the
//    detected best. The scalar level is always available and keeps the
//    historical kernels bit-for-bit (the determinism suites pin it).
//  * Per-element determinism contract: every span kernel here computes a
//    result that depends only on the element's value, never on its position
//    inside the span. Full vector groups and tails go through the same
//    vector code (tails run on a padded stack block), so a value produces
//    identical bits whether it sits in an 8-lane body, a 3-element tail, a
//    per-row epilogue span or a whole-matrix span. This is what keeps the
//    fused inference path bitwise equal to the tape ops under every level.
//  * The matmul-family helpers take explicit leading dimensions (lda/ldb/
//    ldc) so padded-stride buffers (ColumnBatch columns, aligned scratch)
//    use the same kernels as tight Matrix storage; padding never changes
//    the per-element operation sequence, so padded and tight runs agree
//    bitwise within a level.
//  * These entry points are the dispatch *targets*; call sites should go
//    through src/tensor/kernels.h, which picks the level per call.
#ifndef CFX_TENSOR_SIMD_H_
#define CFX_TENSOR_SIMD_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#define CFX_SIMD_X86 1
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#define CFX_SIMD_NEON 1
#endif

namespace cfx {
namespace kernels {
enum class Epilogue;  // src/tensor/kernels.h
}  // namespace kernels

namespace simd {

/// Instruction-set level of the kernel layer. kScalar is the historical
/// portable code; the vector levels are selected at runtime.
enum class Level {
  kUnknown = 0,  ///< Not yet resolved (internal sentinel).
  kScalar,
  kAvx2,
  kNeon,
};

/// Canonical lowercase name ("scalar" | "avx2" | "neon").
const char* LevelName(Level level);

/// Strict parse of a CFX_SIMD value. Accepts exactly "scalar", "avx2",
/// "neon" and "auto" (ASCII case-insensitive). Returns false for anything
/// else — "AVX", "avx", "sse", trailing junk — so typos never silently
/// select a level. "auto" sets *is_auto and leaves *out untouched.
bool ParseLevelName(const std::string& name, Level* out, bool* is_auto);

/// Best level the running CPU supports (never kUnknown).
Level DetectBest();

/// True when `level` can execute on this CPU (kScalar always can).
bool Supported(Level level);

/// Resolves CFX_SIMD against the hardware: unset/"auto" -> DetectBest();
/// unknown value -> warn + DetectBest(); known-but-unsupported -> warn +
/// DetectBest(). Logs the documented fallback either way.
Level ResolveFromEnv();

namespace internal {
/// Latched active level; kUnknown until the first Active() call resolves
/// it. Stored as int (not Level) so zero-initialisation is the sentinel.
extern std::atomic<int> g_active;
Level ResolveActive();
}  // namespace internal

/// The process-wide active level. First call resolves CFX_SIMD; later
/// calls are a single relaxed load (the matmul entry points sit on the
/// batch-1 serving path, so this must stay branch-cheap).
inline Level Active() {
  const int lvl = internal::g_active.load(std::memory_order_relaxed);
  if (lvl != 0) return static_cast<Level>(lvl);
  return internal::ResolveActive();
}

/// Forces the active level (tests only — the scalar-vs-vector agreement
/// suites flip levels mid-process). Returns false (and leaves the level
/// unchanged) when the hardware cannot run `level`.
bool SetActiveForTesting(Level level);

/// Rounds a row count up to the padded ColumnBatch leading dimension: a
/// multiple of 16 floats (64 bytes), so every column starts on a cache
/// line and vector loads never straddle column boundaries.
inline size_t PaddedLength(size_t n) { return (n + 15) & ~size_t{15}; }

// ---- AVX2 kernel targets ----------------------------------------------------
//
// Compiled with target("avx2,fma") in simd.cc; only dispatched after a
// runtime support check. All row kernels process rows [r0, r1) and keep
// the k-terms of each output element in ascending order within the row, so
// results are invariant to row partitioning (CFX_THREADS) and to batch
// composition (row-local).
#if CFX_SIMD_X86
void MatMulRowsAvx2(const float* a, const float* b, float* out, size_t r0,
                    size_t r1, size_t k, size_t m, size_t lda, size_t ldb,
                    size_t ldc, bool accumulate);
void MatMulBiasRowsAvx2(const float* a, const float* b, const float* bias,
                        float* out, size_t r0, size_t r1, size_t k, size_t m,
                        size_t lda, size_t ldb, size_t ldc,
                        kernels::Epilogue epilogue);
void MatMulTransposedBRowsAvx2(const float* a, const float* b, float* out,
                               size_t r0, size_t r1, size_t k, size_t m,
                               bool accumulate);
void MatMulTransposedARowsAvx2(const float* a, const float* b, float* out,
                               size_t c0, size_t c1, size_t n, size_t k,
                               size_t m, bool accumulate);

void AddSpanAvx2(float* dst, const float* src, size_t n);
void SubSpanAvx2(float* dst, const float* src, size_t n);
void MulSpanAvx2(float* dst, const float* src, size_t n);
void AxpySpanAvx2(float* dst, float alpha, const float* src, size_t n);
void ScaleSpanAvx2(float* dst, float alpha, size_t n);
void MulAddSpanAvx2(float* dst, const float* a, const float* b, size_t n);

void ReluSpanAvx2(float* dst, const float* src, size_t n);
void SigmoidSpanAvx2(float* dst, const float* src, size_t n);
void ExpSpanAvx2(float* dst, const float* src, size_t n);
/// dst = log(src + shift) — the copy-prior categorical bias.
void LogShiftSpanAvx2(float* dst, const float* src, size_t n, float shift);
/// dst = log(c / (1 - c)) with c = clamp(src, lo, hi) — the copy-prior
/// continuous/binary bias.
void LogitSpanAvx2(float* dst, const float* src, size_t n, float lo,
                   float hi);
void ClampSpanAvx2(float* dst, const float* src, size_t n, float lo,
                   float hi);
/// Fused Adam moment + parameter update over one span. Uses only IEEE-exact
/// vector ops (mul/add/div/sqrt, no FMA contraction), so it is bitwise
/// identical to the scalar update loop at any position.
void AdamUpdateSpanAvx2(float* value, float* m, float* v, const float* grad,
                        size_t n, float beta1, float beta2, float lr,
                        float bc1, float bc2, float eps);

/// Rows [r0, r1) of the mixed tabular activation: vector sigmoid across the
/// whole row, then the softmax blocks are overwritten with a max-shifted
/// vector exp and a scalar ascending-order denominator sum (matching the
/// scalar kernel's summation order).
void TabularActivationRowsAvx2(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks);

/// Columnar formulation of TabularActivationRowsAvx2 for tall slices
/// (16+ rows): the slice is transposed once into a thread-local scratch,
/// every activation runs vertically over full 8-row lanes (no masked
/// tails, no per-row horizontal max/sum), and the result is transposed
/// back. Bitwise identical to the row kernel — each lane evaluates the
/// same ExpPs/SigmoidPs polynomial per element and the same ascending-j
/// max/sum association per row — so the dispatcher may pick either by
/// shape alone.
void TabularActivationBatchAvx2(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks);
#endif  // CFX_SIMD_X86

// ---- NEON kernel targets ----------------------------------------------------
#if CFX_SIMD_NEON
void MatMulRowsNeon(const float* a, const float* b, float* out, size_t r0,
                    size_t r1, size_t k, size_t m, size_t lda, size_t ldb,
                    size_t ldc, bool accumulate);
void MatMulBiasRowsNeon(const float* a, const float* b, const float* bias,
                        float* out, size_t r0, size_t r1, size_t k, size_t m,
                        size_t lda, size_t ldb, size_t ldc,
                        kernels::Epilogue epilogue);
void MatMulTransposedBRowsNeon(const float* a, const float* b, float* out,
                               size_t r0, size_t r1, size_t k, size_t m,
                               bool accumulate);
void MatMulTransposedARowsNeon(const float* a, const float* b, float* out,
                               size_t c0, size_t c1, size_t n, size_t k,
                               size_t m, bool accumulate);

void AddSpanNeon(float* dst, const float* src, size_t n);
void SubSpanNeon(float* dst, const float* src, size_t n);
void MulSpanNeon(float* dst, const float* src, size_t n);
void AxpySpanNeon(float* dst, float alpha, const float* src, size_t n);
void ScaleSpanNeon(float* dst, float alpha, size_t n);
void MulAddSpanNeon(float* dst, const float* a, const float* b, size_t n);

void ReluSpanNeon(float* dst, const float* src, size_t n);
void SigmoidSpanNeon(float* dst, const float* src, size_t n);
void ExpSpanNeon(float* dst, const float* src, size_t n);
void LogShiftSpanNeon(float* dst, const float* src, size_t n, float shift);
void LogitSpanNeon(float* dst, const float* src, size_t n, float lo,
                   float hi);
void ClampSpanNeon(float* dst, const float* src, size_t n, float lo,
                   float hi);
void AdamUpdateSpanNeon(float* value, float* m, float* v, const float* grad,
                        size_t n, float beta1, float beta2, float lr,
                        float bc1, float bc2, float eps);

void TabularActivationRowsNeon(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks);
#endif  // CFX_SIMD_NEON

}  // namespace simd
}  // namespace cfx

#endif  // CFX_TENSOR_SIMD_H_
