#include "src/tensor/matrix.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

namespace cfx {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_ && "ragged initialiser");
    std::memcpy(&m.data_[r * m.cols_], rows[r].data(),
                m.cols_ * sizeof(float));
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::memcpy(m.data_.data(), values.data(), values.size() * sizeof(float));
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, float mean, float stddev,
                            Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = static_cast<float>(rng->Normal(mean, stddev));
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, float lo, float hi,
                             Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = static_cast<float>(rng->Uniform(lo, hi));
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::SliceRows(size_t begin, size_t end) const {
  assert(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data_.data(), &data_[begin * cols_],
              (end - begin) * cols_ * sizeof(float));
  return out;
}

Matrix Matrix::SliceCols(size_t begin, size_t end) const {
  assert(begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(&out.data_[r * out.cols_], &data_[r * cols_ + begin],
                (end - begin) * sizeof(float));
  }
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    std::memcpy(&out.data_[i * cols_], &data_[indices[i] * cols_],
                cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(&out.data_[r * out.cols_], &data_[r * cols_],
                cols_ * sizeof(float));
    std::memcpy(&out.data_[r * out.cols_ + cols_], &other.data_[r * other.cols_],
                other.cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  assert(cols_ == other.cols_ || rows_ == 0 || other.rows_ == 0);
  if (rows_ == 0) return other;
  if (other.rows_ == 0) return *this;
  Matrix out(rows_ + other.rows_, cols_);
  std::memcpy(out.data_.data(), data_.data(), data_.size() * sizeof(float));
  std::memcpy(&out.data_[data_.size()], other.data_.data(),
              other.data_.size() * sizeof(float));
  return out;
}

Matrix Matrix::Row(size_t r) const { return SliceRows(r, r + 1); }

Matrix Matrix::operator+(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::operator*(float scalar) const {
  Matrix out = *this;
  for (float& v : out.data_) v *= scalar;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const size_t n = rows_, k_dim = cols_, m = other.cols_;
  for (size_t i = 0; i < n; ++i) {
    float* out_row = &out.data_[i * m];
    const float* a_row = &data_[i * k_dim];
    for (size_t k = 0; k < k_dim; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = &other.data_[k * m];
      for (size_t j = 0; j < m; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(r, c) += row.at(0, c);
  }
  return out;
}

Matrix Matrix::Map(const std::function<float(float)>& fn) const {
  Matrix out = *this;
  for (float& v : out.data_) v = fn(v);
  return out;
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  }
  return out;
}

Matrix Matrix::RowSum() const {
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += at(r, c);
    out.at(r, 0) = static_cast<float>(acc);
  }
  return out;
}

float Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

bool Matrix::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  const size_t max_r = std::min<size_t>(rows_, 4);
  const size_t max_c = std::min<size_t>(cols_, 8);
  for (size_t r = 0; r < max_r; ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < max_c; ++c) {
      os << at(r, c);
      if (c + 1 < max_c) os << ", ";
    }
    if (max_c < cols_) os << ", ...";
    os << "]";
    if (r + 1 < max_r) os << "\n";
  }
  if (max_r < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

}  // namespace cfx
