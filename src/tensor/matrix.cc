#include "src/tensor/matrix.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

namespace cfx {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_ && "ragged initialiser");
    std::memcpy(&m.data_[r * m.cols_], rows[r].data(),
                m.cols_ * sizeof(float));
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::memcpy(m.data_.data(), values.data(), values.size() * sizeof(float));
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, float mean, float stddev,
                            Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = static_cast<float>(rng->Normal(mean, stddev));
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, float lo, float hi,
                             Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = static_cast<float>(rng->Uniform(lo, hi));
  return m;
}

Matrix Matrix::FromStorage(size_t rows, size_t cols, FloatBuffer storage) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(storage);
  m.data_.assign(rows * cols, 0.0f);
  return m;
}

FloatBuffer Matrix::ReleaseStorage() {
  rows_ = 0;
  cols_ = 0;
  return std::move(data_);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::SliceRows(size_t begin, size_t end) const {
  assert(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data_.data(), &data_[begin * cols_],
              (end - begin) * cols_ * sizeof(float));
  return out;
}

Matrix Matrix::SliceCols(size_t begin, size_t end) const {
  assert(begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(&out.data_[r * out.cols_], &data_[r * cols_ + begin],
                (end - begin) * sizeof(float));
  }
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    std::memcpy(&out.data_[i * cols_], &data_[indices[i] * cols_],
                cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(&out.data_[r * out.cols_], &data_[r * cols_],
                cols_ * sizeof(float));
    std::memcpy(&out.data_[r * out.cols_ + cols_], &other.data_[r * other.cols_],
                other.cols_ * sizeof(float));
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& other) const {
  assert(cols_ == other.cols_ || rows_ == 0 || other.rows_ == 0);
  if (rows_ == 0) return other;
  if (other.rows_ == 0) return *this;
  Matrix out(rows_ + other.rows_, cols_);
  std::memcpy(out.data_.data(), data_.data(), data_.size() * sizeof(float));
  std::memcpy(&out.data_[data_.size()], other.data_.data(),
              other.data_.size() * sizeof(float));
  return out;
}

Matrix Matrix::Row(size_t r) const { return SliceRows(r, r + 1); }

Matrix Matrix::operator+(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  kernels::AddInPlace(out.data(), other.data(), out.size());
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  kernels::SubInPlace(out.data(), other.data(), out.size());
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(SameShape(other));
  Matrix out = *this;
  kernels::MulInPlace(out.data(), other.data(), out.size());
  return out;
}

Matrix Matrix::operator*(float scalar) const {
  Matrix out = *this;
  kernels::ScaleInPlace(out.data(), scalar, out.size());
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(SameShape(other));
  kernels::AddInPlace(data(), other.data(), size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(SameShape(other));
  kernels::SubInPlace(data(), other.data(), size());
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  kernels::ScaleInPlace(data(), scalar, size());
  return *this;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  kernels::MatMul(data(), other.data(), out.data(), rows_, cols_,
                  other.cols_);
  return out;
}

Matrix Matrix::MatMulTransposedB(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  kernels::MatMulTransposedB(data(), other.data(), out.data(), rows_, cols_,
                             other.rows_, /*accumulate=*/false);
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  kernels::AddRowBroadcastInPlace(out.data(), row.data(), rows_, cols_);
  return out;
}

Matrix Matrix::Map(const std::function<float(float)>& fn) const {
  return Apply([&fn](float v) { return fn(v); });
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::ColSum() const {
  Matrix out(1, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  }
  return out;
}

Matrix Matrix::RowSum() const {
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += at(r, c);
    out.at(r, 0) = static_cast<float>(acc);
  }
  return out;
}

float Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

bool Matrix::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  const size_t max_r = std::min<size_t>(rows_, 4);
  const size_t max_c = std::min<size_t>(cols_, 8);
  for (size_t r = 0; r < max_r; ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < max_c; ++c) {
      os << at(r, c);
      if (c + 1 < max_c) os << ", ";
    }
    if (max_c < cols_) os << ", ...";
    os << "]";
    if (r + 1 < max_r) os << "\n";
  }
  if (max_r < rows_) os << "\n ...";
  os << "]";
  return os.str();
}

}  // namespace cfx
