#include "src/tensor/autodiff.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/common/metrics.h"
#include "src/tensor/kernels.h"

namespace cfx {
namespace ag {

namespace {

// Recycled grad storage. A training step allocates one grad per reachable
// node and drops the whole graph afterwards; routing those buffers through
// a small pool turns thousands of allocator round-trips per step into
// vector reuse. Thread-local because graphs are built and destroyed on the
// thread that owns them (pool workers never touch the tape).
constexpr size_t kGradPoolCap = 512;

std::vector<FloatBuffer>& GradPool() {
  // Leaked on purpose (a raw pointer has no TLS destructor): parameter
  // nodes owned by static-storage objects are destroyed after thread_local
  // destructors have run, and ~Node must still find a live pool then.
  thread_local auto* pool = new std::vector<FloatBuffer>();
  return *pool;
}

FloatBuffer AcquireGradStorage() {
  static metrics::Counter* reuse =
      metrics::GetCounter("autodiff.gradpool.reuse");
  static metrics::Counter* alloc =
      metrics::GetCounter("autodiff.gradpool.alloc");
  std::vector<FloatBuffer>& pool = GradPool();
  if (pool.empty()) {
    if (alloc != nullptr) alloc->Add(1);
    return {};
  }
  if (reuse != nullptr) reuse->Add(1);
  FloatBuffer storage = std::move(pool.back());
  pool.pop_back();
  return storage;
}

void ReleaseGradStorage(FloatBuffer storage) {
  if (storage.capacity() == 0) return;
  std::vector<FloatBuffer>& pool = GradPool();
  if (pool.size() < kGradPoolCap) {
    pool.push_back(std::move(storage));
  }
}

}  // namespace

Node::~Node() { ReleaseGradStorage(grad.ReleaseStorage()); }

void Node::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    ReleaseGradStorage(grad.ReleaseStorage());
    grad = Matrix::FromStorage(value.rows(), value.cols(),
                               AcquireGradStorage());
  }
}

Var Param(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

Var Constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

namespace {

/// Creates an op node whose requires_grad is inherited from its parents.
Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(Node*)> backward_fn) {
  bool needs_grad = false;
  for (const Var& p : parents) needs_grad = needs_grad || p->requires_grad;
  auto node = std::make_shared<Node>(std::move(value), needs_grad);
  if (needs_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

/// Parent grad buffer for in-place accumulation; null when the parent is
/// excluded from differentiation.
float* GradBuf(const Var& p) {
  if (!p->requires_grad) return nullptr;
  p->EnsureGrad();
  return p->grad.data();
}

/// pg[i] += term(i) over the parent's grad, parallelised past the
/// elementwise grain. `term` must be pure in i.
template <typename Fn>
void AccumulateEach(const Var& p, size_t n, Fn&& term) {
  float* pg = GradBuf(p);
  if (pg == nullptr) return;
  if (n < kernels::kElementwiseGrain) {
    for (size_t i = 0; i < n; ++i) pg[i] += term(i);
    return;
  }
  ParallelFor(0, n, kernels::kElementwiseGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) pg[i] += term(i);
  });
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value + b->value, {a, b}, [](Node* n) {
    const size_t size = n->grad.size();
    if (float* g = GradBuf(n->parents[0])) {
      kernels::AddInPlace(g, n->grad.data(), size);
    }
    if (float* g = GradBuf(n->parents[1])) {
      kernels::AddInPlace(g, n->grad.data(), size);
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value - b->value, {a, b}, [](Node* n) {
    const size_t size = n->grad.size();
    if (float* g = GradBuf(n->parents[0])) {
      kernels::AddInPlace(g, n->grad.data(), size);
    }
    if (float* g = GradBuf(n->parents[1])) {
      kernels::AxpyInPlace(g, -1.0f, n->grad.data(), size);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value * b->value, {a, b}, [](Node* n) {
    const size_t size = n->grad.size();
    if (float* g = GradBuf(n->parents[0])) {
      kernels::MulAddInPlace(g, n->grad.data(), n->parents[1]->value.data(),
                             size);
    }
    if (float* g = GradBuf(n->parents[1])) {
      kernels::MulAddInPlace(g, n->grad.data(), n->parents[0]->value.data(),
                             size);
    }
  });
}

Var Scale(const Var& a, float s) {
  return MakeOp(a->value * s, {a}, [s](Node* n) {
    if (float* g = GradBuf(n->parents[0])) {
      kernels::AxpyInPlace(g, s, n->grad.data(), n->grad.size());
    }
  });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(a->value.MatMul(b->value), {a, b}, [](Node* n) {
    const Matrix& g = n->grad;
    const Matrix& av = n->parents[0]->value;
    const Matrix& bv = n->parents[1]->value;
    // dL/dA += g . B^T and dL/dB += A^T . g, both transpose-free and
    // accumulated straight into the parents' grad buffers.
    if (float* ga = GradBuf(n->parents[0])) {
      kernels::MatMulTransposedB(g.data(), bv.data(), ga, g.rows(), g.cols(),
                                 av.cols(), /*accumulate=*/true);
    }
    if (float* gb = GradBuf(n->parents[1])) {
      kernels::MatMulTransposedA(av.data(), g.data(), gb, av.rows(),
                                 av.cols(), g.cols(), /*accumulate=*/true);
    }
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  assert(bias->value.rows() == 1 && bias->value.cols() == a->value.cols());
  return MakeOp(a->value.AddRowBroadcast(bias->value), {a, bias}, [](Node* n) {
    const Matrix& g = n->grad;
    if (float* ga = GradBuf(n->parents[0])) {
      kernels::AddInPlace(ga, g.data(), g.size());
    }
    if (float* gb = GradBuf(n->parents[1])) {
      // Column sums, row-ascending — the fused form of grad.ColSum().
      for (size_t r = 0; r < g.rows(); ++r) {
        kernels::AddInPlace(gb, g.data() + r * g.cols(), g.cols());
      }
    }
  });
}

Var Relu(const Var& a) {
  // Shared with nn/layers.cc Infer and the MatMulBias kRelu epilogue: one
  // relu implementation per SIMD level keeps tape and tape-free bitwise.
  Matrix out = a->value;
  kernels::ReluInPlace(out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float* g = n->grad.data();
    const float* x = n->parents[0]->value.data();
    AccumulateEach(n->parents[0], n->grad.size(),
                   [g, x](size_t i) { return x[i] > 0.0f ? g[i] : 0.0f; });
  });
}

Var Sigmoid(const Var& a) {
  // Shared with nn/layers.cc Infer and the MatMulBias kSigmoid epilogue.
  Matrix out = a->value;
  kernels::SigmoidInPlace(out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](Node* n) {
    // d(sigmoid)/dx = s * (1 - s), computed from the forward output.
    const float* g = n->grad.data();
    const float* s = n->value.data();
    AccumulateEach(n->parents[0], n->grad.size(), [g, s](size_t i) {
      return g[i] * s[i] * (1.0f - s[i]);
    });
  });
}

Var Tanh(const Var& a) {
  Matrix out = a->value.Apply([](float v) { return std::tanh(v); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float* g = n->grad.data();
    const float* t = n->value.data();
    AccumulateEach(n->parents[0], n->grad.size(), [g, t](size_t i) {
      return g[i] * (1.0f - t[i] * t[i]);
    });
  });
}

Var Exp(const Var& a) {
  Matrix out = a->value;
  kernels::ExpTo(out.data(), out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](Node* n) {
    if (float* g = GradBuf(n->parents[0])) {
      kernels::MulAddInPlace(g, n->grad.data(), n->value.data(),
                             n->grad.size());
    }
  });
}

Var Log(const Var& a, float eps) {
  Matrix out = a->value.Apply(
      [eps](float v) { return std::log(std::max(v, eps)); });
  return MakeOp(std::move(out), {a}, [eps](Node* n) {
    const float* g = n->grad.data();
    const float* x = n->parents[0]->value.data();
    AccumulateEach(n->parents[0], n->grad.size(), [g, x, eps](size_t i) {
      return g[i] / std::max(x[i], eps);
    });
  });
}

Var Square(const Var& a) {
  Matrix out = a->value.Apply([](float v) { return v * v; });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float* g = n->grad.data();
    const float* x = n->parents[0]->value.data();
    AccumulateEach(n->parents[0], n->grad.size(),
                   [g, x](size_t i) { return g[i] * 2.0f * x[i]; });
  });
}

Var Abs(const Var& a) {
  Matrix out = a->value.Apply([](float v) { return std::fabs(v); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float* g = n->grad.data();
    const float* x = n->parents[0]->value.data();
    AccumulateEach(n->parents[0], n->grad.size(), [g, x](size_t i) {
      return g[i] * (x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f));
    });
  });
}

Var SmoothIndicator(const Var& a, float k, float eps) {
  Matrix out = a->value.Apply([k, eps](float v) {
    return 1.0f / (1.0f + std::exp(-k * (std::fabs(v) - eps)));
  });
  return MakeOp(std::move(out), {a}, [k](Node* n) {
    const float* g = n->grad.data();
    const float* x = n->parents[0]->value.data();
    const float* s = n->value.data();
    AccumulateEach(n->parents[0], n->grad.size(), [g, x, s, k](size_t i) {
      const float sign = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
      return g[i] * k * s[i] * (1.0f - s[i]) * sign;
    });
  });
}

Var TabularActivation(
    const Var& a,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  const Matrix& x = a->value;
  // Mark which columns belong to a softmax block.
  std::vector<uint8_t> in_softmax(x.cols(), 0);
  for (const auto& [offset, width] : softmax_blocks) {
    for (size_t j = 0; j < width; ++j) in_softmax[offset + j] = 1;
  }

  Matrix out(x.rows(), x.cols());
  kernels::TabularActivationForward(x.data(), out.data(), x.rows(), x.cols(),
                                    softmax_blocks, in_softmax);

  return MakeOp(std::move(out), {a},
                [softmax_blocks, in_softmax](Node* n) {
                  float* pg = GradBuf(n->parents[0]);
                  if (pg == nullptr) return;
                  const Matrix& s = n->value;
                  const Matrix& g = n->grad;
                  const size_t cols = s.cols();
                  // Rows are independent; accumulate into the parent's grad
                  // in place, one row per pass.
                  ParallelFor(0, s.rows(), 0, [&](size_t r0, size_t r1) {
                    for (size_t r = r0; r < r1; ++r) {
                      float* prow = pg + r * cols;
                      for (size_t c = 0; c < cols; ++c) {
                        if (!in_softmax[c]) {
                          // Sigmoid: ds/dx = s (1 - s).
                          prow[c] +=
                              g.at(r, c) * s.at(r, c) * (1.0f - s.at(r, c));
                        }
                      }
                      for (const auto& [offset, width] : softmax_blocks) {
                        // Softmax: dL/dx_j = s_j (g_j - sum_k g_k s_k).
                        float dot = 0.0f;
                        for (size_t j = 0; j < width; ++j) {
                          dot += g.at(r, offset + j) * s.at(r, offset + j);
                        }
                        for (size_t j = 0; j < width; ++j) {
                          prow[offset + j] +=
                              s.at(r, offset + j) * (g.at(r, offset + j) - dot);
                        }
                      }
                    }
                  });
                });
}

Var ConcatCols(const Var& a, const Var& b) {
  assert(a->value.rows() == b->value.rows());
  const size_t ca = a->value.cols();
  return MakeOp(a->value.ConcatCols(b->value), {a, b}, [ca](Node* n) {
    const Matrix& g = n->grad;
    const size_t cb = g.cols() - ca;
    if (float* ga = GradBuf(n->parents[0])) {
      for (size_t r = 0; r < g.rows(); ++r) {
        kernels::AddInPlace(ga + r * ca, g.data() + r * g.cols(), ca);
      }
    }
    if (float* gb = GradBuf(n->parents[1])) {
      for (size_t r = 0; r < g.rows(); ++r) {
        kernels::AddInPlace(gb + r * cb, g.data() + r * g.cols() + ca, cb);
      }
    }
  });
}

Var SliceCols(const Var& a, size_t begin, size_t end) {
  assert(begin <= end && end <= a->value.cols());
  return MakeOp(a->value.SliceCols(begin, end), {a}, [begin](Node* n) {
    if (float* pg = GradBuf(n->parents[0])) {
      const Matrix& g = n->grad;
      const size_t pcols = n->parents[0]->value.cols();
      for (size_t r = 0; r < g.rows(); ++r) {
        kernels::AddInPlace(pg + r * pcols + begin, g.data() + r * g.cols(),
                            g.cols());
      }
    }
  });
}

Var MulConstMask(const Var& a, const Matrix& mask) {
  assert(a->value.SameShape(mask));
  return MakeOp(a->value * mask, {a}, [mask](Node* n) {
    if (float* g = GradBuf(n->parents[0])) {
      kernels::MulAddInPlace(g, n->grad.data(), mask.data(), n->grad.size());
    }
  });
}

Var Sum(const Var& a) {
  Matrix out(1, 1);
  out.at(0, 0) = a->value.Sum();
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float g = n->grad.at(0, 0);
    AccumulateEach(n->parents[0], n->parents[0]->value.size(),
                   [g](size_t) { return g; });
  });
}

Var Mean(const Var& a) {
  const float inv = a->value.size() > 0
                        ? 1.0f / static_cast<float>(a->value.size())
                        : 0.0f;
  Matrix out(1, 1);
  out.at(0, 0) = a->value.Mean();
  return MakeOp(std::move(out), {a}, [inv](Node* n) {
    const float g = n->grad.at(0, 0) * inv;
    AccumulateEach(n->parents[0], n->parents[0]->value.size(),
                   [g](size_t) { return g; });
  });
}

Var RowSum(const Var& a) {
  return MakeOp(a->value.RowSum(), {a}, [](Node* n) {
    const Matrix& g = n->grad;
    const size_t cols = n->parents[0]->value.cols();
    AccumulateEach(n->parents[0], n->parents[0]->value.size(),
                   [&g, cols](size_t i) { return g[i / cols]; });
  });
}

Var ColMean(const Var& a) {
  assert(a->value.cols() == 1);
  return Mean(a);
}

void Backward(const Var& loss) {
  assert(loss->value.rows() == 1 && loss->value.cols() == 1 &&
         "Backward expects a scalar (1x1) loss");
  if (!loss->requires_grad) return;

  // Iterative post-order topological sort (graphs can be thousands of nodes
  // deep over a long training unroll; avoid recursion).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.get(), 0);
  visited.insert(loss.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  static metrics::Histogram* tape_nodes =
      metrics::GetHistogram("autodiff.tape.nodes");
  if (tape_nodes != nullptr) {
    tape_nodes->Record(static_cast<double>(order.size()));
  }

  loss->EnsureGrad();
  loss->grad.at(0, 0) = 1.0f;

  // Reverse topological order: every node's grad is complete before its
  // backward_fn distributes it to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(node);
    }
  }
}

void ZeroGrad(const std::vector<Var>& params) {
  for (const Var& p : params) {
    p->EnsureGrad();
    p->grad.Fill(0.0f);
  }
}

}  // namespace ag
}  // namespace cfx
