#include "src/tensor/autodiff.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace cfx {
namespace ag {

void Node::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
}

Var Param(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

Var Constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

namespace {

/// Creates an op node whose requires_grad is inherited from its parents.
Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(Node*)> backward_fn) {
  bool needs_grad = false;
  for (const Var& p : parents) needs_grad = needs_grad || p->requires_grad;
  auto node = std::make_shared<Node>(std::move(value), needs_grad);
  if (needs_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

/// Accumulates `delta` into p's grad if p participates in differentiation.
void Accumulate(const Var& p, const Matrix& delta) {
  if (!p->requires_grad) return;
  p->EnsureGrad();
  p->grad += delta;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value + b->value, {a, b}, [](Node* n) {
    Accumulate(n->parents[0], n->grad);
    Accumulate(n->parents[1], n->grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value - b->value, {a, b}, [](Node* n) {
    Accumulate(n->parents[0], n->grad);
    Accumulate(n->parents[1], n->grad * -1.0f);
  });
}

Var Mul(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  return MakeOp(a->value * b->value, {a, b}, [](Node* n) {
    Accumulate(n->parents[0], n->grad * n->parents[1]->value);
    Accumulate(n->parents[1], n->grad * n->parents[0]->value);
  });
}

Var Scale(const Var& a, float s) {
  return MakeOp(a->value * s, {a}, [s](Node* n) {
    Accumulate(n->parents[0], n->grad * s);
  });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(a->value.MatMul(b->value), {a, b}, [](Node* n) {
    const Matrix& g = n->grad;
    // dL/dA = g . B^T ; dL/dB = A^T . g
    Accumulate(n->parents[0], g.MatMul(n->parents[1]->value.Transposed()));
    Accumulate(n->parents[1], n->parents[0]->value.Transposed().MatMul(g));
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  assert(bias->value.rows() == 1 && bias->value.cols() == a->value.cols());
  return MakeOp(a->value.AddRowBroadcast(bias->value), {a, bias}, [](Node* n) {
    Accumulate(n->parents[0], n->grad);
    Accumulate(n->parents[1], n->grad.ColSum());
  });
}

Var Relu(const Var& a) {
  Matrix out = a->value.Map([](float v) { return v > 0.0f ? v : 0.0f; });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    Matrix d = n->grad;
    const Matrix& x = n->parents[0]->value;
    for (size_t i = 0; i < d.size(); ++i) {
      if (x[i] <= 0.0f) d[i] = 0.0f;
    }
    Accumulate(n->parents[0], d);
  });
}

Var Sigmoid(const Var& a) {
  Matrix out = a->value.Map(
      [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    // d(sigmoid)/dx = s * (1 - s), computed from the forward output.
    Matrix d = n->grad;
    const Matrix& s = n->value;
    for (size_t i = 0; i < d.size(); ++i) d[i] *= s[i] * (1.0f - s[i]);
    Accumulate(n->parents[0], d);
  });
}

Var Tanh(const Var& a) {
  Matrix out = a->value.Map([](float v) { return std::tanh(v); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    Matrix d = n->grad;
    const Matrix& t = n->value;
    for (size_t i = 0; i < d.size(); ++i) d[i] *= 1.0f - t[i] * t[i];
    Accumulate(n->parents[0], d);
  });
}

Var Exp(const Var& a) {
  Matrix out = a->value.Map([](float v) { return std::exp(v); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    Accumulate(n->parents[0], n->grad * n->value);
  });
}

Var Log(const Var& a, float eps) {
  Matrix out = a->value.Map(
      [eps](float v) { return std::log(std::max(v, eps)); });
  return MakeOp(std::move(out), {a}, [eps](Node* n) {
    Matrix d = n->grad;
    const Matrix& x = n->parents[0]->value;
    for (size_t i = 0; i < d.size(); ++i) d[i] /= std::max(x[i], eps);
    Accumulate(n->parents[0], d);
  });
}

Var Square(const Var& a) {
  Matrix out = a->value.Map([](float v) { return v * v; });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    Matrix d = n->grad;
    const Matrix& x = n->parents[0]->value;
    for (size_t i = 0; i < d.size(); ++i) d[i] *= 2.0f * x[i];
    Accumulate(n->parents[0], d);
  });
}

Var Abs(const Var& a) {
  Matrix out = a->value.Map([](float v) { return std::fabs(v); });
  return MakeOp(std::move(out), {a}, [](Node* n) {
    Matrix d = n->grad;
    const Matrix& x = n->parents[0]->value;
    for (size_t i = 0; i < d.size(); ++i) {
      d[i] *= x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
    }
    Accumulate(n->parents[0], d);
  });
}

Var SmoothIndicator(const Var& a, float k, float eps) {
  Matrix out = a->value.Map([k, eps](float v) {
    return 1.0f / (1.0f + std::exp(-k * (std::fabs(v) - eps)));
  });
  return MakeOp(std::move(out), {a}, [k](Node* n) {
    Matrix d = n->grad;
    const Matrix& x = n->parents[0]->value;
    const Matrix& s = n->value;
    for (size_t i = 0; i < d.size(); ++i) {
      float sign = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
      d[i] *= k * s[i] * (1.0f - s[i]) * sign;
    }
    Accumulate(n->parents[0], d);
  });
}

Var TabularActivation(
    const Var& a,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  const Matrix& x = a->value;
  // Mark which columns belong to a softmax block.
  std::vector<uint8_t> in_softmax(x.cols(), 0);
  for (const auto& [offset, width] : softmax_blocks) {
    for (size_t j = 0; j < width; ++j) in_softmax[offset + j] = 1;
  }

  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      if (!in_softmax[c]) {
        out.at(r, c) = 1.0f / (1.0f + std::exp(-x.at(r, c)));
      }
    }
    for (const auto& [offset, width] : softmax_blocks) {
      float max_v = x.at(r, offset);
      for (size_t j = 1; j < width; ++j) {
        max_v = std::max(max_v, x.at(r, offset + j));
      }
      float sum = 0.0f;
      for (size_t j = 0; j < width; ++j) {
        const float e = std::exp(x.at(r, offset + j) - max_v);
        out.at(r, offset + j) = e;
        sum += e;
      }
      for (size_t j = 0; j < width; ++j) out.at(r, offset + j) /= sum;
    }
  }

  return MakeOp(std::move(out), {a},
                [softmax_blocks, in_softmax](Node* n) {
                  const Matrix& s = n->value;
                  const Matrix& g = n->grad;
                  Matrix d(s.rows(), s.cols());
                  for (size_t r = 0; r < s.rows(); ++r) {
                    for (size_t c = 0; c < s.cols(); ++c) {
                      if (!in_softmax[c]) {
                        // Sigmoid: ds/dx = s (1 - s).
                        d.at(r, c) =
                            g.at(r, c) * s.at(r, c) * (1.0f - s.at(r, c));
                      }
                    }
                    for (const auto& [offset, width] : softmax_blocks) {
                      // Softmax: dL/dx_j = s_j (g_j - sum_k g_k s_k).
                      float dot = 0.0f;
                      for (size_t j = 0; j < width; ++j) {
                        dot += g.at(r, offset + j) * s.at(r, offset + j);
                      }
                      for (size_t j = 0; j < width; ++j) {
                        d.at(r, offset + j) =
                            s.at(r, offset + j) * (g.at(r, offset + j) - dot);
                      }
                    }
                  }
                  Accumulate(n->parents[0], d);
                });
}

Var ConcatCols(const Var& a, const Var& b) {
  assert(a->value.rows() == b->value.rows());
  const size_t ca = a->value.cols();
  return MakeOp(a->value.ConcatCols(b->value), {a, b}, [ca](Node* n) {
    Accumulate(n->parents[0], n->grad.SliceCols(0, ca));
    Accumulate(n->parents[1], n->grad.SliceCols(ca, n->grad.cols()));
  });
}

Var SliceCols(const Var& a, size_t begin, size_t end) {
  assert(begin <= end && end <= a->value.cols());
  return MakeOp(a->value.SliceCols(begin, end), {a}, [begin](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix d(x.rows(), x.cols());
    for (size_t r = 0; r < n->grad.rows(); ++r) {
      for (size_t c = 0; c < n->grad.cols(); ++c) {
        d.at(r, begin + c) = n->grad.at(r, c);
      }
    }
    Accumulate(n->parents[0], d);
  });
}

Var MulConstMask(const Var& a, const Matrix& mask) {
  assert(a->value.SameShape(mask));
  return MakeOp(a->value * mask, {a}, [mask](Node* n) {
    Accumulate(n->parents[0], n->grad * mask);
  });
}

Var Sum(const Var& a) {
  Matrix out(1, 1);
  out.at(0, 0) = a->value.Sum();
  return MakeOp(std::move(out), {a}, [](Node* n) {
    const float g = n->grad.at(0, 0);
    Matrix d(n->parents[0]->value.rows(), n->parents[0]->value.cols(), g);
    Accumulate(n->parents[0], d);
  });
}

Var Mean(const Var& a) {
  const float inv = a->value.size() > 0
                        ? 1.0f / static_cast<float>(a->value.size())
                        : 0.0f;
  Matrix out(1, 1);
  out.at(0, 0) = a->value.Mean();
  return MakeOp(std::move(out), {a}, [inv](Node* n) {
    const float g = n->grad.at(0, 0) * inv;
    Matrix d(n->parents[0]->value.rows(), n->parents[0]->value.cols(), g);
    Accumulate(n->parents[0], d);
  });
}

Var RowSum(const Var& a) {
  return MakeOp(a->value.RowSum(), {a}, [](Node* n) {
    const Matrix& x = n->parents[0]->value;
    Matrix d(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      const float g = n->grad.at(r, 0);
      for (size_t c = 0; c < x.cols(); ++c) d.at(r, c) = g;
    }
    Accumulate(n->parents[0], d);
  });
}

Var ColMean(const Var& a) {
  assert(a->value.cols() == 1);
  return Mean(a);
}

void Backward(const Var& loss) {
  assert(loss->value.rows() == 1 && loss->value.cols() == 1 &&
         "Backward expects a scalar (1x1) loss");
  if (!loss->requires_grad) return;

  // Iterative post-order topological sort (graphs can be thousands of nodes
  // deep over a long training unroll; avoid recursion).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.get(), 0);
  visited.insert(loss.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  loss->EnsureGrad();
  loss->grad.at(0, 0) = 1.0f;

  // Reverse topological order: every node's grad is complete before its
  // backward_fn distributes it to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(node);
    }
  }
}

void ZeroGrad(const std::vector<Var>& params) {
  for (const Var& p : params) {
    p->EnsureGrad();
    p->grad.Fill(0.0f);
  }
}

}  // namespace ag
}  // namespace cfx
