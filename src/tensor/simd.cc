#include "src/tensor/simd.h"

// GCC notes that passing/returning __m256 through the lane-op lambdas
// "changes the ABI" when the TU's base arch lacks AVX (-Wpsabi). Every such
// call site and callee live in the same target("avx2,fma") region of this
// one TU, so the ABI concern is moot; silence the note so -Werror builds
// stay clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/tensor/kernels.h"

#if CFX_SIMD_X86
#include <immintrin.h>
#endif
#if CFX_SIMD_NEON
#include <arm_neon.h>
#endif

namespace cfx {
namespace simd {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
    case Level::kUnknown: break;
  }
  return "unknown";
}

bool ParseLevelName(const std::string& name, Level* out, bool* is_auto) {
  const std::string lower = ToLower(name);
  *is_auto = false;
  if (lower == "auto") {
    *is_auto = true;
    return true;
  }
  if (lower == "scalar") {
    *out = Level::kScalar;
    return true;
  }
  if (lower == "avx2") {
    *out = Level::kAvx2;
    return true;
  }
  if (lower == "neon") {
    *out = Level::kNeon;
    return true;
  }
  return false;
}

Level DetectBest() {
#if CFX_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
#if CFX_SIMD_NEON
  return Level::kNeon;
#endif
  return Level::kScalar;
}

bool Supported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if CFX_SIMD_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kNeon:
#if CFX_SIMD_NEON
      return true;
#else
      return false;
#endif
    case Level::kUnknown:
      break;
  }
  return false;
}

Level ResolveFromEnv() {
  const Level best = DetectBest();
  const char* env = std::getenv("CFX_SIMD");
  if (env == nullptr) return best;
  Level requested = Level::kScalar;
  bool is_auto = false;
  if (!ParseLevelName(env, &requested, &is_auto)) {
    CFX_LOG(Warning) << "CFX_SIMD='" << env
                     << "' is not \"scalar\", \"avx2\", \"neon\" or "
                        "\"auto\"; using auto ("
                     << LevelName(best) << ")";
    return best;
  }
  if (is_auto) return best;
  if (!Supported(requested)) {
    CFX_LOG(Warning) << "CFX_SIMD='" << env
                     << "' is not supported on this CPU; using auto ("
                     << LevelName(best) << ")";
    return best;
  }
  return requested;
}

namespace internal {

std::atomic<int> g_active{0};

Level ResolveActive() {
  const Level level = ResolveFromEnv();
  // Benign race: concurrent first calls resolve the same environment to the
  // same value.
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

}  // namespace internal

bool SetActiveForTesting(Level level) {
  if (!Supported(level)) return false;
  internal::g_active.store(static_cast<int>(level),
                           std::memory_order_relaxed);
  return true;
}

// ============================ AVX2 =========================================
#if CFX_SIMD_X86
#pragma GCC push_options
#pragma GCC target("avx2,fma")

namespace {

/// Maskload/maskstore mask covering the first `tail` of 8 lanes.
inline __m256i TailMask(size_t tail) {
  alignas(32) static const int kMaskTable[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - tail));
}

/// Polynomial exp over 8 lanes (Cephes expf scheme: Cody–Waite range
/// reduction, degree-5 polynomial, exponent reassembly). ~1 ulp relative
/// error; inputs saturate at +-88.376 like expf. Deterministic per lane:
/// the result depends only on the lane's value.
inline __m256 ExpPs(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647949f);
  const __m256 kLo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 kHalf = _mm256_set1_ps(0.5f);
  const __m256 kOne = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, kHi);
  x = _mm256_max_ps(x, kLo);

  __m256 fx = _mm256_fmadd_ps(x, kLog2e, kHalf);
  __m256 tmp = _mm256_floor_ps(fx);
  // floor(fx) can overshoot fx by one after the +0.5 bias; pull it back.
  __m256 mask = _mm256_cmp_ps(tmp, fx, _CMP_GT_OS);
  mask = _mm256_and_ps(mask, kOne);
  fx = _mm256_sub_ps(tmp, mask);

  x = _mm256_fnmadd_ps(fx, kC1, x);
  x = _mm256_fnmadd_ps(fx, kC2, x);
  const __m256 z = _mm256_mul_ps(x, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, kOne);

  const __m256i emm0 = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(fx), _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(emm0));
}

/// Polynomial log over 8 lanes (Cephes logf scheme). Inputs are assumed
/// strictly positive — every call site shifts or clamps first.
inline __m256 LogPs(__m256 x) {
  const __m256 kMinNorm = _mm256_castsi256_ps(_mm256_set1_epi32(0x00800000));
  const __m256 kInvMant = _mm256_castsi256_ps(_mm256_set1_epi32(
      static_cast<int>(~0x7f800000u)));
  const __m256 kHalf = _mm256_set1_ps(0.5f);
  const __m256 kOne = _mm256_set1_ps(1.0f);
  const __m256 kSqrtHf = _mm256_set1_ps(0.707106781186547524f);

  x = _mm256_max_ps(x, kMinNorm);  // flush denormals/zero to the minimum
  __m256i emm0 = _mm256_srli_epi32(_mm256_castps_si256(x), 23);
  emm0 = _mm256_sub_epi32(emm0, _mm256_set1_epi32(0x7f));
  __m256 e = _mm256_cvtepi32_ps(emm0);

  x = _mm256_and_ps(x, kInvMant);
  x = _mm256_or_ps(x, kHalf);
  e = _mm256_add_ps(e, kOne);

  const __m256 mask = _mm256_cmp_ps(x, kSqrtHf, _CMP_LT_OS);
  __m256 tmp = _mm256_and_ps(x, mask);
  x = _mm256_sub_ps(x, kOne);
  e = _mm256_sub_ps(e, _mm256_and_ps(kOne, mask));
  x = _mm256_add_ps(x, tmp);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(7.0376836292e-2f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.1514610310e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.1676998740e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.2420140846e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.4249322787e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.6668057665e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.0000714765e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.4999993993e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.3333331174e-1f));
  y = _mm256_mul_ps(y, _mm256_mul_ps(x, z));

  y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.12194440e-4f), y);
  y = _mm256_fnmadd_ps(kHalf, z, y);
  x = _mm256_add_ps(x, y);
  return _mm256_fmadd_ps(e, _mm256_set1_ps(0.693359375f), x);
}

inline __m256 SigmoidPs(__m256 x) {
  const __m256 kOne = _mm256_set1_ps(1.0f);
  const __m256 e = ExpPs(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(kOne, _mm256_add_ps(kOne, e));
}

/// Runs `op` (an 8-lane __m256 -> __m256 transform) over a span with the
/// tail executed through the SAME vector code on a padded stack block, so
/// an element's bits never depend on its position within the span. This is
/// the keystone of the fused-vs-tape bitwise contract: the epilogue sees
/// per-row spans while the tape op sees whole-matrix spans.
template <typename Op>
inline void ForEachLane(float* dst, const float* src, size_t n, Op op) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, op(_mm256_loadu_ps(src + i)));
  }
  if (i < n) {
    alignas(32) float buf[8] = {0};
    const size_t tail = n - i;
    for (size_t t = 0; t < tail; ++t) buf[t] = src[i + t];
    _mm256_store_ps(buf, op(_mm256_load_ps(buf)));
    for (size_t t = 0; t < tail; ++t) dst[i + t] = buf[t];
  }
}

/// Two-operand variant: dst[i] = op(dst[i], src[i]).
template <typename Op>
inline void ForEachLane2(float* dst, const float* src, size_t n, Op op) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, op(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  if (i < n) {
    alignas(32) float d[8] = {0};
    alignas(32) float s[8] = {0};
    const size_t tail = n - i;
    for (size_t t = 0; t < tail; ++t) {
      d[t] = dst[i + t];
      s[t] = src[i + t];
    }
    _mm256_store_ps(d, op(_mm256_load_ps(d), _mm256_load_ps(s)));
    for (size_t t = 0; t < tail; ++t) dst[i + t] = d[t];
  }
}

/// Bias + activation over one freshly accumulated output row.
inline void BiasEpilogueRow(float* out_row, const float* bias, size_t m,
                            kernels::Epilogue epilogue) {
  switch (epilogue) {
    case kernels::Epilogue::kNone:
      ForEachLane2(out_row, bias, m,
                   [](__m256 v, __m256 b) { return _mm256_add_ps(v, b); });
      break;
    case kernels::Epilogue::kRelu:
      ForEachLane2(out_row, bias, m, [](__m256 v, __m256 b) {
        return _mm256_max_ps(_mm256_add_ps(v, b), _mm256_setzero_ps());
      });
      break;
    case kernels::Epilogue::kSigmoid:
      ForEachLane2(out_row, bias, m, [](__m256 v, __m256 b) {
        return SigmoidPs(_mm256_add_ps(v, b));
      });
      break;
  }
}

/// One output row of a(n,k).b(k,m): register-blocked accumulation, k
/// ascending per element, zero a-coefficients skipped (one-hot rows).
inline void MatMulRowAvx2(const float* a_row, const float* b, float* out_row,
                          size_t k, size_t m, size_t ldb, bool accumulate) {
  size_t j = 0;
  // 16-wide register block: two accumulators held across the k loop.
  for (; j + 16 <= m; j += 16) {
    __m256 acc0, acc1;
    if (accumulate) {
      acc0 = _mm256_loadu_ps(out_row + j);
      acc1 = _mm256_loadu_ps(out_row + j + 8);
    } else {
      acc0 = _mm256_setzero_ps();
      acc1 = _mm256_setzero_ps();
    }
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const __m256 va = _mm256_set1_ps(av);
      const float* b_row = b + kk * ldb + j;
      acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row), acc0);
      acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row + 8), acc1);
    }
    _mm256_storeu_ps(out_row + j, acc0);
    _mm256_storeu_ps(out_row + j + 8, acc1);
  }
  if (j + 8 <= m) {
    __m256 acc = accumulate ? _mm256_loadu_ps(out_row + j)
                            : _mm256_setzero_ps();
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                            _mm256_loadu_ps(b + kk * ldb + j), acc);
    }
    _mm256_storeu_ps(out_row + j, acc);
    j += 8;
  }
  if (j < m) {
    const __m256i mask = TailMask(m - j);
    __m256 acc = accumulate ? _mm256_maskload_ps(out_row + j, mask)
                            : _mm256_setzero_ps();
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                            _mm256_maskload_ps(b + kk * ldb + j, mask), acc);
    }
    _mm256_maskstore_ps(out_row + j, mask, acc);
  }
}

/// Two output rows at once: every loaded b row feeds four FMA chains
/// instead of two, halving load traffic on the k loop. Each output
/// element still sees its own k-ascending, zero-skipped FMA sequence, so
/// the bits match MatMulRowAvx2 exactly.
inline void MatMulRowPairAvx2(const float* a0, const float* a1,
                              const float* b, float* o0, float* o1, size_t k,
                              size_t m, size_t ldb, bool accumulate) {
  size_t j = 0;
  for (; j + 16 <= m; j += 16) {
    __m256 acc00, acc01, acc10, acc11;
    if (accumulate) {
      acc00 = _mm256_loadu_ps(o0 + j);
      acc01 = _mm256_loadu_ps(o0 + j + 8);
      acc10 = _mm256_loadu_ps(o1 + j);
      acc11 = _mm256_loadu_ps(o1 + j + 8);
    } else {
      acc00 = _mm256_setzero_ps();
      acc01 = _mm256_setzero_ps();
      acc10 = _mm256_setzero_ps();
      acc11 = _mm256_setzero_ps();
    }
    for (size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk];
      const float av1 = a1[kk];
      if (av0 == 0.0f && av1 == 0.0f) continue;
      const float* b_row = b + kk * ldb + j;
      const __m256 vb0 = _mm256_loadu_ps(b_row);
      const __m256 vb1 = _mm256_loadu_ps(b_row + 8);
      if (av0 != 0.0f) {
        const __m256 va = _mm256_set1_ps(av0);
        acc00 = _mm256_fmadd_ps(va, vb0, acc00);
        acc01 = _mm256_fmadd_ps(va, vb1, acc01);
      }
      if (av1 != 0.0f) {
        const __m256 va = _mm256_set1_ps(av1);
        acc10 = _mm256_fmadd_ps(va, vb0, acc10);
        acc11 = _mm256_fmadd_ps(va, vb1, acc11);
      }
    }
    _mm256_storeu_ps(o0 + j, acc00);
    _mm256_storeu_ps(o0 + j + 8, acc01);
    _mm256_storeu_ps(o1 + j, acc10);
    _mm256_storeu_ps(o1 + j + 8, acc11);
  }
  if (j + 8 <= m) {
    __m256 acc0 = accumulate ? _mm256_loadu_ps(o0 + j) : _mm256_setzero_ps();
    __m256 acc1 = accumulate ? _mm256_loadu_ps(o1 + j) : _mm256_setzero_ps();
    for (size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk];
      const float av1 = a1[kk];
      if (av0 == 0.0f && av1 == 0.0f) continue;
      const __m256 vb = _mm256_loadu_ps(b + kk * ldb + j);
      if (av0 != 0.0f) acc0 = _mm256_fmadd_ps(_mm256_set1_ps(av0), vb, acc0);
      if (av1 != 0.0f) acc1 = _mm256_fmadd_ps(_mm256_set1_ps(av1), vb, acc1);
    }
    _mm256_storeu_ps(o0 + j, acc0);
    _mm256_storeu_ps(o1 + j, acc1);
    j += 8;
  }
  if (j < m) {
    const __m256i mask = TailMask(m - j);
    __m256 acc0 = accumulate ? _mm256_maskload_ps(o0 + j, mask)
                             : _mm256_setzero_ps();
    __m256 acc1 = accumulate ? _mm256_maskload_ps(o1 + j, mask)
                             : _mm256_setzero_ps();
    for (size_t kk = 0; kk < k; ++kk) {
      const float av0 = a0[kk];
      const float av1 = a1[kk];
      if (av0 == 0.0f && av1 == 0.0f) continue;
      const __m256 vb = _mm256_maskload_ps(b + kk * ldb + j, mask);
      if (av0 != 0.0f) acc0 = _mm256_fmadd_ps(_mm256_set1_ps(av0), vb, acc0);
      if (av1 != 0.0f) acc1 = _mm256_fmadd_ps(_mm256_set1_ps(av1), vb, acc1);
    }
    _mm256_maskstore_ps(o0 + j, mask, acc0);
    _mm256_maskstore_ps(o1 + j, mask, acc1);
  }
}

/// Lane-summed dot product; the fixed reduction tree keeps it
/// deterministic for a given length.
inline float DotAvx2(const float* a, const float* b, size_t k) {
  __m256 acc = _mm256_setzero_ps();
  size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + c), _mm256_loadu_ps(b + c),
                          acc);
  }
  if (c < k) {
    const __m256i mask = TailMask(k - c);
    // Zero-padded lanes contribute exact zeros to the sum.
    acc = _mm256_fmadd_ps(_mm256_maskload_ps(a + c, mask),
                          _mm256_maskload_ps(b + c, mask), acc);
  }
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

}  // namespace

void MatMulRowsAvx2(const float* a, const float* b, float* out, size_t r0,
                    size_t r1, size_t k, size_t m, size_t lda, size_t ldb,
                    size_t ldc, bool accumulate) {
  size_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    MatMulRowPairAvx2(a + i * lda, a + (i + 1) * lda, b, out + i * ldc,
                      out + (i + 1) * ldc, k, m, ldb, accumulate);
  }
  for (; i < r1; ++i) {
    MatMulRowAvx2(a + i * lda, b, out + i * ldc, k, m, ldb, accumulate);
  }
}

void MatMulBiasRowsAvx2(const float* a, const float* b, const float* bias,
                        float* out, size_t r0, size_t r1, size_t k, size_t m,
                        size_t lda, size_t ldb, size_t ldc,
                        kernels::Epilogue epilogue) {
  size_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    float* out_row0 = out + i * ldc;
    float* out_row1 = out + (i + 1) * ldc;
    MatMulRowPairAvx2(a + i * lda, a + (i + 1) * lda, b, out_row0, out_row1,
                      k, m, ldb, /*accumulate=*/false);
    BiasEpilogueRow(out_row0, bias, m, epilogue);
    BiasEpilogueRow(out_row1, bias, m, epilogue);
  }
  for (; i < r1; ++i) {
    float* out_row = out + i * ldc;
    MatMulRowAvx2(a + i * lda, b, out_row, k, m, ldb, /*accumulate=*/false);
    BiasEpilogueRow(out_row, bias, m, epilogue);
  }
}

void MatMulTransposedBRowsAvx2(const float* a, const float* b, float* out,
                               size_t r0, size_t r1, size_t k, size_t m,
                               bool accumulate) {
  for (size_t i = r0; i < r1; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float s = DotAvx2(a_row, b + j * k, k);
      out_row[j] = accumulate ? out_row[j] + s : s;
    }
  }
}

void MatMulTransposedARowsAvx2(const float* a, const float* b, float* out,
                               size_t c0, size_t c1, size_t n, size_t k,
                               size_t m, bool accumulate) {
  // out(k,m): out[c][j] = sum_r a[r][c] * b[r][j], r ascending like the
  // scalar axpy loop; b rows stream vectorized.
  const size_t mv = m & ~size_t{7};
  const __m256i tail_mask = m > mv ? TailMask(m - mv) : _mm256_setzero_si256();
  for (size_t c = c0; c < c1; ++c) {
    float* out_row = out + c * m;
    if (!accumulate) {
      for (size_t j = 0; j < m; ++j) out_row[j] = 0.0f;
    }
    for (size_t r = 0; r < n; ++r) {
      const float av = a[r * k + c];
      if (av == 0.0f) continue;
      const __m256 va = _mm256_set1_ps(av);
      const float* b_row = b + r * m;
      size_t j = 0;
      for (; j < mv; j += 8) {
        const __m256 acc = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row + j),
                                           _mm256_loadu_ps(out_row + j));
        _mm256_storeu_ps(out_row + j, acc);
      }
      if (j < m) {
        const __m256 acc =
            _mm256_fmadd_ps(va, _mm256_maskload_ps(b_row + j, tail_mask),
                            _mm256_maskload_ps(out_row + j, tail_mask));
        _mm256_maskstore_ps(out_row + j, tail_mask, acc);
      }
    }
  }
}

void AddSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane2(dst, src, n,
               [](__m256 d, __m256 s) { return _mm256_add_ps(d, s); });
}

void SubSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane2(dst, src, n,
               [](__m256 d, __m256 s) { return _mm256_sub_ps(d, s); });
}

void MulSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane2(dst, src, n,
               [](__m256 d, __m256 s) { return _mm256_mul_ps(d, s); });
}

void AxpySpanAvx2(float* dst, float alpha, const float* src, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  ForEachLane2(dst, src, n, [va](__m256 d, __m256 s) {
    return _mm256_fmadd_ps(va, s, d);
  });
}

void ScaleSpanAvx2(float* dst, float alpha, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  ForEachLane(dst, dst, n,
              [va](__m256 v) { return _mm256_mul_ps(va, v); });
}

void MulAddSpanAvx2(float* dst, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 acc = _mm256_fmadd_ps(
        _mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
        _mm256_loadu_ps(dst + i));
    _mm256_storeu_ps(dst + i, acc);
  }
  if (i < n) {
    alignas(32) float da[8] = {0};
    alignas(32) float db[8] = {0};
    alignas(32) float dd[8] = {0};
    const size_t tail = n - i;
    for (size_t t = 0; t < tail; ++t) {
      da[t] = a[i + t];
      db[t] = b[i + t];
      dd[t] = dst[i + t];
    }
    _mm256_store_ps(dd, _mm256_fmadd_ps(_mm256_load_ps(da),
                                        _mm256_load_ps(db),
                                        _mm256_load_ps(dd)));
    for (size_t t = 0; t < tail; ++t) dst[i + t] = dd[t];
  }
}

void ReluSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane(dst, src, n, [](__m256 v) {
    return _mm256_max_ps(v, _mm256_setzero_ps());
  });
}

void SigmoidSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane(dst, src, n, [](__m256 v) { return SigmoidPs(v); });
}

void ExpSpanAvx2(float* dst, const float* src, size_t n) {
  ForEachLane(dst, src, n, [](__m256 v) { return ExpPs(v); });
}

void LogShiftSpanAvx2(float* dst, const float* src, size_t n, float shift) {
  const __m256 vs = _mm256_set1_ps(shift);
  ForEachLane(dst, src, n, [vs](__m256 v) {
    return LogPs(_mm256_add_ps(v, vs));
  });
}

void LogitSpanAvx2(float* dst, const float* src, size_t n, float lo,
                   float hi) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  const __m256 one = _mm256_set1_ps(1.0f);
  ForEachLane(dst, src, n, [vlo, vhi, one](__m256 v) {
    const __m256 c = _mm256_min_ps(_mm256_max_ps(v, vlo), vhi);
    return LogPs(_mm256_div_ps(c, _mm256_sub_ps(one, c)));
  });
}

void ClampSpanAvx2(float* dst, const float* src, size_t n, float lo,
                   float hi) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  ForEachLane(dst, src, n, [vlo, vhi](__m256 v) {
    return _mm256_min_ps(_mm256_max_ps(v, vlo), vhi);
  });
}

void AdamUpdateSpanAvx2(float* value, float* m, float* v, const float* grad,
                        size_t n, float beta1, float beta2, float lr,
                        float bc1, float bc2, float eps) {
  // Explicit mul/add intrinsics (never FMA) keep every lane's rounding
  // sequence identical to the scalar update; div/sqrt are IEEE-exact, so
  // the whole update is bitwise level-invariant. Per-element independence
  // makes a scalar tail equally exact.
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb1c = _mm256_set1_ps(1.0f - beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vb2c = _mm256_set1_ps(1.0f - beta2);
  const __m256 vbc1 = _mm256_set1_ps(bc1);
  const __m256 vbc2 = _mm256_set1_ps(bc2);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 veps = _mm256_set1_ps(eps);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gv = _mm256_loadu_ps(grad + i);
    const __m256 mv =
        _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_loadu_ps(m + i)),
                      _mm256_mul_ps(vb1c, gv));
    // ((1-beta2)*g)*g, matching the scalar expression's association.
    const __m256 vv =
        _mm256_add_ps(_mm256_mul_ps(vb2, _mm256_loadu_ps(v + i)),
                      _mm256_mul_ps(_mm256_mul_ps(vb2c, gv), gv));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 mhat = _mm256_div_ps(mv, vbc1);
    const __m256 vhat = _mm256_div_ps(vv, vbc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 update = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(value + i,
                     _mm256_sub_ps(_mm256_loadu_ps(value + i), update));
  }
  if (i < n) {
    // Tail through the same vector code via zero-padded buffers: a plain
    // scalar loop here would sit inside the FMA target region, where the
    // compiler may contract a*b + c*d and break bitwise parity with the
    // scalar kernel. The intrinsics are never contracted, and zero lanes
    // stay finite (denom == eps), so padding is safe.
    const size_t tail = n - i;
    alignas(32) float tg[8] = {0}, tm[8] = {0}, tv[8] = {0}, tval[8] = {0};
    std::memcpy(tg, grad + i, tail * sizeof(float));
    std::memcpy(tm, m + i, tail * sizeof(float));
    std::memcpy(tv, v + i, tail * sizeof(float));
    std::memcpy(tval, value + i, tail * sizeof(float));
    const __m256 gv = _mm256_load_ps(tg);
    const __m256 mv = _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_load_ps(tm)),
                                    _mm256_mul_ps(vb1c, gv));
    const __m256 vv = _mm256_add_ps(_mm256_mul_ps(vb2, _mm256_load_ps(tv)),
                                    _mm256_mul_ps(_mm256_mul_ps(vb2c, gv), gv));
    _mm256_store_ps(tm, mv);
    _mm256_store_ps(tv, vv);
    const __m256 mhat = _mm256_div_ps(mv, vbc1);
    const __m256 vhat = _mm256_div_ps(vv, vbc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 update = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_store_ps(tval, _mm256_sub_ps(_mm256_load_ps(tval), update));
    std::memcpy(m + i, tm, tail * sizeof(float));
    std::memcpy(v + i, tv, tail * sizeof(float));
    std::memcpy(value + i, tval, tail * sizeof(float));
  }
}

void TabularActivationRowsAvx2(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  // Sigmoid only the gaps between softmax blocks: block columns get their
  // own exp below, so running the (expensive) sigmoid polynomial across
  // them too would be pure waste. The span kernels are position-
  // independent, so splitting the row changes no bits. CategoricalBlock-
  // Ranges hands the blocks over in ascending offset order.
  std::vector<std::pair<size_t, size_t>> gaps;  // (start, len)
  size_t at = 0;
  for (const auto& [offset, width] : softmax_blocks) {
    if (offset > at) gaps.emplace_back(at, offset - at);
    at = offset + width;
  }
  if (at < cols) gaps.emplace_back(at, cols - at);
  for (size_t r = r0; r < r1; ++r) {
    const float* xr = x + r * cols;
    float* or_ = out + r * cols;
    for (const auto& [start, len] : gaps) {
      SigmoidSpanAvx2(or_ + start, xr + start, len);
    }
    for (const auto& [offset, width] : softmax_blocks) {
      float max_v = xr[offset];
      for (size_t j = 1; j < width; ++j) {
        max_v = std::max(max_v, xr[offset + j]);
      }
      const __m256 vmax = _mm256_set1_ps(max_v);
      ForEachLane(or_ + offset, xr + offset, width, [vmax](__m256 v) {
        return ExpPs(_mm256_sub_ps(v, vmax));
      });
      float sum = 0.0f;
      for (size_t j = 0; j < width; ++j) sum += or_[offset + j];
      for (size_t j = 0; j < width; ++j) or_[offset + j] /= sum;
    }
  }
}

void TabularActivationBatchAvx2(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  // The row kernel above burns most of its time on masked tiny-span work:
  // tabular blocks are 4-6 columns wide, so every sigmoid span, exp and
  // horizontal max/sum touches a fraction of a vector and pays full call
  // and mask overhead per row. Transposing the slice turns all of it into
  // full-lane vertical ops over 8 rows at a time. Bitwise parity with the
  // row kernel (and therefore with the batch-of-1 serve path) holds
  // because per lane the element-wise polynomials are the same code and
  // max/sum walk the block in the same ascending-j order; a +-0 max
  // discrepancy (std::max keeps the first equal operand, _mm256_max_ps
  // the second) cannot surface — x - (+-0) == x for every x, and
  // ExpPs(+0) == ExpPs(-0) == 1.
  const size_t rows = r1 - r0;
  const size_t rp = (rows + 7) & ~size_t{7};  // pad to full 8-row lanes
  thread_local std::vector<float> scratch;
  scratch.resize(rp * cols);
  float* cm = scratch.data();  // column-major: column c at cm + c * rp

  // Transpose in; tail-pad with zeros (padded lanes stay finite through
  // sigmoid/exp/div and are never copied back).
  for (size_t c = 0; c < cols; ++c) {
    float* col = cm + c * rp;
    for (size_t r = 0; r < rows; ++r) col[r] = x[(r0 + r) * cols + c];
    for (size_t r = rows; r < rp; ++r) col[r] = 0.0f;
  }

  // Sigmoid the gap columns between softmax blocks (ascending offsets).
  size_t at = 0;
  auto sigmoid_cols = [&](size_t start, size_t end) {
    for (size_t c = start; c < end; ++c) {
      float* col = cm + c * rp;
      for (size_t i = 0; i < rp; i += 8) {
        _mm256_storeu_ps(col + i, SigmoidPs(_mm256_loadu_ps(col + i)));
      }
    }
  };
  for (const auto& [offset, width] : softmax_blocks) {
    sigmoid_cols(at, offset);
    at = offset + width;
  }
  sigmoid_cols(at, cols);

  // Softmax blocks: per 8-row lane, vector max / shifted exp / ascending
  // sum / div across the block's columns.
  for (const auto& [offset, width] : softmax_blocks) {
    for (size_t i = 0; i < rp; i += 8) {
      __m256 vmax = _mm256_loadu_ps(cm + offset * rp + i);
      for (size_t j = 1; j < width; ++j) {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(cm + (offset + j) * rp + i));
      }
      __m256 vsum = _mm256_setzero_ps();
      for (size_t j = 0; j < width; ++j) {
        float* col = cm + (offset + j) * rp + i;
        const __m256 e = ExpPs(_mm256_sub_ps(_mm256_loadu_ps(col), vmax));
        _mm256_storeu_ps(col, e);
        vsum = _mm256_add_ps(vsum, e);
      }
      for (size_t j = 0; j < width; ++j) {
        float* col = cm + (offset + j) * rp + i;
        _mm256_storeu_ps(col, _mm256_div_ps(_mm256_loadu_ps(col), vsum));
      }
    }
  }

  // Transpose out.
  for (size_t c = 0; c < cols; ++c) {
    const float* col = cm + c * rp;
    for (size_t r = 0; r < rows; ++r) out[(r0 + r) * cols + c] = col[r];
  }
}

#pragma GCC pop_options
#endif  // CFX_SIMD_X86

// ============================ NEON =========================================
#if CFX_SIMD_NEON

namespace {

/// 4-lane exp, same Cephes scheme as the AVX2 version.
inline float32x4_t ExpQ(float32x4_t x) {
  const float32x4_t kOne = vdupq_n_f32(1.0f);
  x = vminq_f32(x, vdupq_n_f32(88.3762626647949f));
  x = vmaxq_f32(x, vdupq_n_f32(-88.3762626647949f));

  float32x4_t fx = vfmaq_f32(vdupq_n_f32(0.5f), x,
                             vdupq_n_f32(1.44269504088896341f));
  float32x4_t tmp = vrndmq_f32(fx);  // floor
  const uint32x4_t gt = vcgtq_f32(tmp, fx);
  fx = vsubq_f32(tmp, vbslq_f32(gt, kOne, vdupq_n_f32(0.0f)));

  x = vfmsq_f32(x, fx, vdupq_n_f32(0.693359375f));
  x = vfmsq_f32(x, fx, vdupq_n_f32(-2.12194440e-4f));
  const float32x4_t z = vmulq_f32(x, x);

  float32x4_t y = vdupq_n_f32(1.9875691500e-4f);
  y = vfmaq_f32(vdupq_n_f32(1.3981999507e-3f), y, x);
  y = vfmaq_f32(vdupq_n_f32(8.3334519073e-3f), y, x);
  y = vfmaq_f32(vdupq_n_f32(4.1665795894e-2f), y, x);
  y = vfmaq_f32(vdupq_n_f32(1.6666665459e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(5.0000001201e-1f), y, x);
  y = vfmaq_f32(x, y, z);
  y = vaddq_f32(y, kOne);

  const int32x4_t emm0 =
      vshlq_n_s32(vaddq_s32(vcvtnq_s32_f32(fx), vdupq_n_s32(0x7f)), 23);
  return vmulq_f32(y, vreinterpretq_f32_s32(emm0));
}

/// 4-lane log, same Cephes scheme as the AVX2 version; positive inputs.
inline float32x4_t LogQ(float32x4_t x) {
  const float32x4_t kOne = vdupq_n_f32(1.0f);
  const float32x4_t kHalf = vdupq_n_f32(0.5f);
  x = vmaxq_f32(x, vreinterpretq_f32_s32(vdupq_n_s32(0x00800000)));

  int32x4_t emm0 = vshrq_n_s32(vreinterpretq_s32_f32(x), 23);
  emm0 = vsubq_s32(emm0, vdupq_n_s32(0x7f));
  float32x4_t e = vcvtq_f32_s32(emm0);

  x = vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(x),
                                      vdupq_n_u32(~0x7f800000u)));
  x = vreinterpretq_f32_u32(vorrq_u32(vreinterpretq_u32_f32(x),
                                      vreinterpretq_u32_f32(kHalf)));
  e = vaddq_f32(e, kOne);

  const uint32x4_t lt = vcltq_f32(x, vdupq_n_f32(0.707106781186547524f));
  const float32x4_t tmp = vbslq_f32(lt, x, vdupq_n_f32(0.0f));
  x = vsubq_f32(x, kOne);
  e = vsubq_f32(e, vbslq_f32(lt, kOne, vdupq_n_f32(0.0f)));
  x = vaddq_f32(x, tmp);

  const float32x4_t z = vmulq_f32(x, x);
  float32x4_t y = vdupq_n_f32(7.0376836292e-2f);
  y = vfmaq_f32(vdupq_n_f32(-1.1514610310e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(1.1676998740e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(-1.2420140846e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(1.4249322787e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(-1.6668057665e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(2.0000714765e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(-2.4999993993e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(3.3333331174e-1f), y, x);
  y = vmulq_f32(y, vmulq_f32(x, z));

  y = vfmaq_f32(y, e, vdupq_n_f32(-2.12194440e-4f));
  y = vfmsq_f32(y, kHalf, z);
  x = vaddq_f32(x, y);
  return vfmaq_f32(x, e, vdupq_n_f32(0.693359375f));
}

inline float32x4_t SigmoidQ(float32x4_t x) {
  const float32x4_t kOne = vdupq_n_f32(1.0f);
  const float32x4_t e = ExpQ(vnegq_f32(x));
  return vdivq_f32(kOne, vaddq_f32(kOne, e));
}

template <typename Op>
inline void ForEachLaneNeon(float* dst, const float* src, size_t n, Op op) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, op(vld1q_f32(src + i)));
  }
  if (i < n) {
    alignas(16) float buf[4] = {0};
    const size_t tail = n - i;
    for (size_t t = 0; t < tail; ++t) buf[t] = src[i + t];
    vst1q_f32(buf, op(vld1q_f32(buf)));
    for (size_t t = 0; t < tail; ++t) dst[i + t] = buf[t];
  }
}

template <typename Op>
inline void ForEachLane2Neon(float* dst, const float* src, size_t n, Op op) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, op(vld1q_f32(dst + i), vld1q_f32(src + i)));
  }
  if (i < n) {
    alignas(16) float d[4] = {0};
    alignas(16) float s[4] = {0};
    const size_t tail = n - i;
    for (size_t t = 0; t < tail; ++t) {
      d[t] = dst[i + t];
      s[t] = src[i + t];
    }
    vst1q_f32(d, op(vld1q_f32(d), vld1q_f32(s)));
    for (size_t t = 0; t < tail; ++t) dst[i + t] = d[t];
  }
}

inline void MatMulRowNeon(const float* a_row, const float* b, float* out_row,
                          size_t k, size_t m, size_t ldb, bool accumulate) {
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    float32x4_t acc0, acc1;
    if (accumulate) {
      acc0 = vld1q_f32(out_row + j);
      acc1 = vld1q_f32(out_row + j + 4);
    } else {
      acc0 = vdupq_n_f32(0.0f);
      acc1 = vdupq_n_f32(0.0f);
    }
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float32x4_t va = vdupq_n_f32(av);
      const float* b_row = b + kk * ldb + j;
      acc0 = vfmaq_f32(acc0, va, vld1q_f32(b_row));
      acc1 = vfmaq_f32(acc1, va, vld1q_f32(b_row + 4));
    }
    vst1q_f32(out_row + j, acc0);
    vst1q_f32(out_row + j + 4, acc1);
  }
  for (; j < m; ++j) {
    float acc = accumulate ? out_row[j] : 0.0f;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      acc = std::fma(av, b[kk * ldb + j], acc);
    }
    out_row[j] = acc;
  }
}

inline void BiasEpilogueRowNeon(float* out_row, const float* bias, size_t m,
                                kernels::Epilogue epilogue) {
  switch (epilogue) {
    case kernels::Epilogue::kNone:
      ForEachLane2Neon(out_row, bias, m, [](float32x4_t v, float32x4_t b) {
        return vaddq_f32(v, b);
      });
      break;
    case kernels::Epilogue::kRelu:
      ForEachLane2Neon(out_row, bias, m, [](float32x4_t v, float32x4_t b) {
        return vmaxq_f32(vaddq_f32(v, b), vdupq_n_f32(0.0f));
      });
      break;
    case kernels::Epilogue::kSigmoid:
      ForEachLane2Neon(out_row, bias, m, [](float32x4_t v, float32x4_t b) {
        return SigmoidQ(vaddq_f32(v, b));
      });
      break;
  }
}

}  // namespace

void MatMulRowsNeon(const float* a, const float* b, float* out, size_t r0,
                    size_t r1, size_t k, size_t m, size_t lda, size_t ldb,
                    size_t ldc, bool accumulate) {
  for (size_t i = r0; i < r1; ++i) {
    MatMulRowNeon(a + i * lda, b, out + i * ldc, k, m, ldb, accumulate);
  }
}

void MatMulBiasRowsNeon(const float* a, const float* b, const float* bias,
                        float* out, size_t r0, size_t r1, size_t k, size_t m,
                        size_t lda, size_t ldb, size_t ldc,
                        kernels::Epilogue epilogue) {
  for (size_t i = r0; i < r1; ++i) {
    float* out_row = out + i * ldc;
    MatMulRowNeon(a + i * lda, b, out_row, k, m, ldb, /*accumulate=*/false);
    BiasEpilogueRowNeon(out_row, bias, m, epilogue);
  }
}

void MatMulTransposedBRowsNeon(const float* a, const float* b, float* out,
                               size_t r0, size_t r1, size_t k, size_t m,
                               bool accumulate) {
  for (size_t i = r0; i < r1; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* b_row = b + j * k;
      float32x4_t acc = vdupq_n_f32(0.0f);
      size_t c = 0;
      for (; c + 4 <= k; c += 4) {
        acc = vfmaq_f32(acc, vld1q_f32(a_row + c), vld1q_f32(b_row + c));
      }
      float s = vaddvq_f32(acc);
      for (; c < k; ++c) s = std::fma(a_row[c], b_row[c], s);
      out_row[j] = accumulate ? out_row[j] + s : s;
    }
  }
}

void MatMulTransposedARowsNeon(const float* a, const float* b, float* out,
                               size_t c0, size_t c1, size_t n, size_t k,
                               size_t m, bool accumulate) {
  for (size_t c = c0; c < c1; ++c) {
    float* out_row = out + c * m;
    if (!accumulate) {
      for (size_t j = 0; j < m; ++j) out_row[j] = 0.0f;
    }
    for (size_t r = 0; r < n; ++r) {
      const float av = a[r * k + c];
      if (av == 0.0f) continue;
      const float32x4_t va = vdupq_n_f32(av);
      const float* b_row = b + r * m;
      size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        vst1q_f32(out_row + j,
                  vfmaq_f32(vld1q_f32(out_row + j), va, vld1q_f32(b_row + j)));
      }
      for (; j < m; ++j) out_row[j] = std::fma(av, b_row[j], out_row[j]);
    }
  }
}

void AddSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLane2Neon(dst, src, n, [](float32x4_t d, float32x4_t s) {
    return vaddq_f32(d, s);
  });
}

void SubSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLane2Neon(dst, src, n, [](float32x4_t d, float32x4_t s) {
    return vsubq_f32(d, s);
  });
}

void MulSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLane2Neon(dst, src, n, [](float32x4_t d, float32x4_t s) {
    return vmulq_f32(d, s);
  });
}

void AxpySpanNeon(float* dst, float alpha, const float* src, size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  ForEachLane2Neon(dst, src, n, [va](float32x4_t d, float32x4_t s) {
    return vfmaq_f32(d, va, s);
  });
}

void ScaleSpanNeon(float* dst, float alpha, size_t n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  ForEachLaneNeon(dst, dst, n,
                  [va](float32x4_t v) { return vmulq_f32(va, v); });
}

void MulAddSpanNeon(float* dst, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i,
              vfmaq_f32(vld1q_f32(dst + i), vld1q_f32(a + i),
                        vld1q_f32(b + i)));
  }
  for (; i < n; ++i) dst[i] = std::fma(a[i], b[i], dst[i]);
}

void ReluSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLaneNeon(dst, src, n, [](float32x4_t v) {
    return vmaxq_f32(v, vdupq_n_f32(0.0f));
  });
}

void SigmoidSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLaneNeon(dst, src, n, [](float32x4_t v) { return SigmoidQ(v); });
}

void ExpSpanNeon(float* dst, const float* src, size_t n) {
  ForEachLaneNeon(dst, src, n, [](float32x4_t v) { return ExpQ(v); });
}

void LogShiftSpanNeon(float* dst, const float* src, size_t n, float shift) {
  const float32x4_t vs = vdupq_n_f32(shift);
  ForEachLaneNeon(dst, src, n, [vs](float32x4_t v) {
    return LogQ(vaddq_f32(v, vs));
  });
}

void LogitSpanNeon(float* dst, const float* src, size_t n, float lo,
                   float hi) {
  const float32x4_t vlo = vdupq_n_f32(lo);
  const float32x4_t vhi = vdupq_n_f32(hi);
  const float32x4_t one = vdupq_n_f32(1.0f);
  ForEachLaneNeon(dst, src, n, [vlo, vhi, one](float32x4_t v) {
    const float32x4_t c = vminq_f32(vmaxq_f32(v, vlo), vhi);
    return LogQ(vdivq_f32(c, vsubq_f32(one, c)));
  });
}

void ClampSpanNeon(float* dst, const float* src, size_t n, float lo,
                   float hi) {
  const float32x4_t vlo = vdupq_n_f32(lo);
  const float32x4_t vhi = vdupq_n_f32(hi);
  ForEachLaneNeon(dst, src, n, [vlo, vhi](float32x4_t v) {
    return vminq_f32(vmaxq_f32(v, vlo), vhi);
  });
}

void AdamUpdateSpanNeon(float* value, float* m, float* v, const float* grad,
                        size_t n, float beta1, float beta2, float lr,
                        float bc1, float bc2, float eps) {
  // Mirrors the AVX2 kernel: explicit mul/add (no fused multiply-add) plus
  // IEEE-exact div/sqrt keep the update bitwise identical to scalar.
  const float32x4_t vb1 = vdupq_n_f32(beta1);
  const float32x4_t vb1c = vdupq_n_f32(1.0f - beta1);
  const float32x4_t vb2 = vdupq_n_f32(beta2);
  const float32x4_t vb2c = vdupq_n_f32(1.0f - beta2);
  const float32x4_t vbc1 = vdupq_n_f32(bc1);
  const float32x4_t vbc2 = vdupq_n_f32(bc2);
  const float32x4_t vlr = vdupq_n_f32(lr);
  const float32x4_t veps = vdupq_n_f32(eps);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t gv = vld1q_f32(grad + i);
    const float32x4_t mv = vaddq_f32(vmulq_f32(vb1, vld1q_f32(m + i)),
                                     vmulq_f32(vb1c, gv));
    const float32x4_t vv = vaddq_f32(vmulq_f32(vb2, vld1q_f32(v + i)),
                                     vmulq_f32(vmulq_f32(vb2c, gv), gv));
    vst1q_f32(m + i, mv);
    vst1q_f32(v + i, vv);
    const float32x4_t mhat = vdivq_f32(mv, vbc1);
    const float32x4_t vhat = vdivq_f32(vv, vbc2);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(vhat), veps);
    const float32x4_t update = vdivq_f32(vmulq_f32(vlr, mhat), denom);
    vst1q_f32(value + i, vsubq_f32(vld1q_f32(value + i), update));
  }
  if (i < n) {
    // Tail via zero-padded buffers through the vector code, mirroring the
    // AVX2 kernel: keeps the tail out of any contraction-prone scalar
    // expression and stays finite on zero lanes (denom == eps).
    const size_t tail = n - i;
    alignas(16) float tg[4] = {0}, tm[4] = {0}, tv[4] = {0}, tval[4] = {0};
    std::memcpy(tg, grad + i, tail * sizeof(float));
    std::memcpy(tm, m + i, tail * sizeof(float));
    std::memcpy(tv, v + i, tail * sizeof(float));
    std::memcpy(tval, value + i, tail * sizeof(float));
    const float32x4_t gv = vld1q_f32(tg);
    const float32x4_t mv =
        vaddq_f32(vmulq_f32(vb1, vld1q_f32(tm)), vmulq_f32(vb1c, gv));
    const float32x4_t vv = vaddq_f32(vmulq_f32(vb2, vld1q_f32(tv)),
                                     vmulq_f32(vmulq_f32(vb2c, gv), gv));
    vst1q_f32(tm, mv);
    vst1q_f32(tv, vv);
    const float32x4_t mhat = vdivq_f32(mv, vbc1);
    const float32x4_t vhat = vdivq_f32(vv, vbc2);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(vhat), veps);
    const float32x4_t update = vdivq_f32(vmulq_f32(vlr, mhat), denom);
    vst1q_f32(tval, vsubq_f32(vld1q_f32(tval), update));
    std::memcpy(m + i, tm, tail * sizeof(float));
    std::memcpy(v + i, tv, tail * sizeof(float));
    std::memcpy(value + i, tval, tail * sizeof(float));
  }
}

void TabularActivationRowsNeon(
    const float* x, float* out, size_t r0, size_t r1, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks) {
  // Sigmoid only the gaps between softmax blocks — see the AVX2 variant.
  std::vector<std::pair<size_t, size_t>> gaps;  // (start, len)
  size_t at = 0;
  for (const auto& [offset, width] : softmax_blocks) {
    if (offset > at) gaps.emplace_back(at, offset - at);
    at = offset + width;
  }
  if (at < cols) gaps.emplace_back(at, cols - at);
  for (size_t r = r0; r < r1; ++r) {
    const float* xr = x + r * cols;
    float* or_ = out + r * cols;
    for (const auto& [start, len] : gaps) {
      SigmoidSpanNeon(or_ + start, xr + start, len);
    }
    for (const auto& [offset, width] : softmax_blocks) {
      float max_v = xr[offset];
      for (size_t j = 1; j < width; ++j) {
        max_v = std::max(max_v, xr[offset + j]);
      }
      const float32x4_t vmax = vdupq_n_f32(max_v);
      ForEachLaneNeon(or_ + offset, xr + offset, width, [vmax](float32x4_t v) {
        return ExpQ(vsubq_f32(v, vmax));
      });
      float sum = 0.0f;
      for (size_t j = 0; j < width; ++j) sum += or_[offset + j];
      for (size_t j = 0; j < width; ++j) or_[offset + j] /= sum;
    }
  }
}

#endif  // CFX_SIMD_NEON

}  // namespace simd
}  // namespace cfx
