// Allocation-lean compute kernels under Matrix and the autodiff tape.
//
// Design notes:
//  * Raw float* interfaces: Matrix routes its arithmetic here, and the
//    autodiff backward closures call them directly on grad buffers so hot
//    paths never allocate temporaries.
//  * MatMul variants parallelise over output rows through the global
//    ThreadPool. Each output element accumulates its k-terms in ascending
//    order inside a single lane, so results are bitwise identical for every
//    CFX_THREADS value (row partitioning never reorders a dot product).
//  * The transposed variants read B (or A) in its stored layout — no
//    Transposed() copy — which is what the MatMul backward pass wants:
//    dA = g . B^T and dB = A^T . g accumulate straight into the grad buffer.
//  * Elementwise kernels are templates over the functor (MapInPlace /
//    ZipInPlace): the functor inlines into the loop, unlike the historical
//    Matrix::Map(const std::function&) path. Keep bodies branch-light; they
//    parallelise only past kElementwiseGrain elements.
//  * Every named entry point dispatches on simd::Active() (see
//    src/tensor/simd.h): scalar keeps the historical loops bit-for-bit,
//    the vector levels run the AVX2/NEON targets. Within a level, fused and
//    unfused pipelines stay bitwise equal (position-independent span
//    kernels, k-ascending row-local matmuls), and everything below
//    kElementwiseGrain runs inline on the caller's thread.
#ifndef CFX_TENSOR_KERNELS_H_
#define CFX_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace cfx {
namespace kernels {

/// Below this many elements an elementwise kernel stays on the caller's
/// thread: dispatch overhead would dwarf the loop.
inline constexpr size_t kElementwiseGrain = size_t{1} << 15;

/// Row-block grain for the matmul family (rows per dispatched chunk are
/// chosen so a chunk covers at least ~kMatMulGrainFlops multiply-adds).
inline constexpr size_t kMatMulGrainFlops = size_t{1} << 16;

// ---- matmul family ----------------------------------------------------------

/// out = a(n,k) . b(k,m). `out` must not alias `a` or `b`; it is fully
/// overwritten.
void MatMul(const float* a, const float* b, float* out, size_t n, size_t k,
            size_t m);

/// MatMul with explicit leading dimensions (row strides) for padded-stride
/// buffers: row i of `a` starts at a + i*lda, etc. Padding never changes the
/// per-element operation sequence, so for any (lda, ldb, ldc) the written
/// elements are bitwise identical to the tight-stride MatMul at the same
/// SIMD level.
void MatMulEx(const float* a, const float* b, float* out, size_t n, size_t k,
              size_t m, size_t lda, size_t ldb, size_t ldc);

/// Post-matmul epilogue applied per element while the output row is still
/// hot in cache (see MatMulBias).
enum class Epilogue {
  kNone,     ///< bias add only
  kRelu,     ///< max(v, 0) after the bias add
  kSigmoid,  ///< 1 / (1 + exp(-v)) after the bias add
};

/// out = epilogue(a(n,k) . b(k,m) + bias(1,m)), fused into one pass: each
/// output element accumulates its k-terms in ascending order (identical to
/// MatMul), then receives exactly one bias add, then the activation — the
/// same value history as MatMul + AddInPlace + MapTo run separately, so the
/// result is bitwise identical to the unfused pipeline (and to the tape's
/// MatMul/AddRowBroadcast/Relu/Sigmoid ops) for every CFX_THREADS value.
void MatMulBias(const float* a, const float* b, const float* bias, float* out,
                size_t n, size_t k, size_t m, Epilogue epilogue);

/// out += a(n,k) . b(k,m).
void MatMulAccum(const float* a, const float* b, float* out, size_t n,
                 size_t k, size_t m);

/// out(n,m) (+)= a(n,k) . b(m,k)^T — b is read row-major as stored, so this
/// is the transpose-free form of `a . b^T`.
void MatMulTransposedB(const float* a, const float* b, float* out, size_t n,
                       size_t k, size_t m, bool accumulate);

/// out(k,m) (+)= a(n,k)^T . b(n,m) — a is read row-major as stored.
void MatMulTransposedA(const float* a, const float* b, float* out, size_t n,
                       size_t k, size_t m, bool accumulate);

// ---- fused elementwise ------------------------------------------------------

/// dst += src.
void AddInPlace(float* dst, const float* src, size_t n);

/// dst -= src.
void SubInPlace(float* dst, const float* src, size_t n);

/// dst *= src (Hadamard).
void MulInPlace(float* dst, const float* src, size_t n);

/// dst += alpha * src.
void AxpyInPlace(float* dst, float alpha, const float* src, size_t n);

/// dst *= alpha.
void ScaleInPlace(float* dst, float alpha, size_t n);

/// dst += a * b (elementwise product accumulate) — the Mul/Exp backward.
void MulAddInPlace(float* dst, const float* a, const float* b, size_t n);

/// dst[r*cols + c] += row[c] for every row — the bias broadcast. A single
/// IEEE add per element, so all SIMD levels produce identical bits.
void AddRowBroadcastInPlace(float* dst, const float* row, size_t rows,
                            size_t cols);

// ---- named activations / transforms -----------------------------------------
//
// One implementation per SIMD level, shared by the tape ops (autodiff.cc),
// the tape-free Infer path (nn/layers.cc), the fused MatMulBias epilogues
// and the columnar generator path — which is what keeps those pipelines
// bitwise-equal to each other within a level. The scalar bodies are the
// historical expressions verbatim.

/// dst[i] = max(src[i], 0).
void ReluTo(float* dst, const float* src, size_t n);
void ReluInPlace(float* dst, size_t n);

/// dst[i] = 1 / (1 + exp(-src[i])).
void SigmoidTo(float* dst, const float* src, size_t n);
void SigmoidInPlace(float* dst, size_t n);

/// dst[i] = exp(src[i]).
void ExpTo(float* dst, const float* src, size_t n);

/// dst[i] = log(src[i] + shift) — the copy-prior categorical bias; requires
/// src[i] + shift > 0.
void LogShiftTo(float* dst, const float* src, size_t n, float shift);

/// dst[i] = log(c / (1 - c)) with c = clamp(src[i], lo, hi) — the
/// copy-prior continuous/binary bias.
void LogitTo(float* dst, const float* src, size_t n, float lo, float hi);

/// dst[i] = clamp(src[i], lo, hi) (min/max are exact in every level).
void ClampTo(float* dst, const float* src, size_t n, float lo, float hi);

/// Fused Adam step over one parameter tensor: updates the first and second
/// moment estimates in place and applies the bias-corrected parameter
/// update. bc1/bc2 are the precomputed bias corrections (1 - beta^t).
/// Built from IEEE-exact ops only, so the result is bitwise identical
/// across dispatch levels.
void AdamUpdate(float* value, float* m, float* v, const float* grad,
                size_t n, float beta1, float beta2, float lr, float bc1,
                float bc2, float eps);

// ---- fused activation heads -------------------------------------------------

/// Mixed tabular activation over a (rows x cols) batch: max-shifted softmax
/// within each (offset, width) block of `softmax_blocks`, sigmoid on every
/// column where `in_softmax` is 0. `out` is fully overwritten; it must not
/// alias `x`. Rows are processed independently (parallel, disjoint writes),
/// so results are bitwise identical for every CFX_THREADS value. Shared by
/// the ag::TabularActivation tape op and the tape-free inference path —
/// keeping the two bitwise-equal by construction.
void TabularActivationForward(
    const float* x, float* out, size_t rows, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks,
    const std::vector<uint8_t>& in_softmax);

/// dst[i] = fn(dst[i]); fn must be pure (it may run on any pool lane).
template <typename Fn>
void MapInPlace(float* dst, size_t n, Fn&& fn) {
  if (n < kElementwiseGrain) {
    for (size_t i = 0; i < n; ++i) dst[i] = fn(dst[i]);
    return;
  }
  ParallelFor(0, n, kElementwiseGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) dst[i] = fn(dst[i]);
  });
}

/// dst[i] = fn(src[i]).
template <typename Fn>
void MapTo(float* dst, const float* src, size_t n, Fn&& fn) {
  if (n < kElementwiseGrain) {
    for (size_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
    return;
  }
  ParallelFor(0, n, kElementwiseGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) dst[i] = fn(src[i]);
  });
}

/// dst[i] = fn(dst[i], src[i]).
template <typename Fn>
void ZipInPlace(float* dst, const float* src, size_t n, Fn&& fn) {
  if (n < kElementwiseGrain) {
    for (size_t i = 0; i < n; ++i) dst[i] = fn(dst[i], src[i]);
    return;
  }
  ParallelFor(0, n, kElementwiseGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) dst[i] = fn(dst[i], src[i]);
  });
}

}  // namespace kernels
}  // namespace cfx

#endif  // CFX_TENSOR_KERNELS_H_
