// Reverse-mode automatic differentiation over Matrix values.
//
// cfx uses a dynamic tape at matrix granularity: every operation allocates a
// graph node holding its output value, a backward closure, and edges to its
// inputs. Calling Backward(loss) topologically sorts the graph reachable
// from `loss` and accumulates gradients into every node with
// requires_grad (leaf parameters as well as intermediates).
//
// The graph is rebuilt on every forward pass (define-by-run), which keeps
// control flow (dropout masks, per-batch constraint terms) trivially
// expressible in plain C++. Nodes are shared_ptr-managed; a training step
// drops the graph simply by letting the loss Var go out of scope, while
// parameter leaves survive inside their Module.
//
// Execution: backward closures are allocation-lean — they accumulate
// straight into their parents' grad buffers through the fused kernels in
// src/tensor/kernels.h (transpose-free matmul backward included), and grad
// buffers themselves are recycled through a pool when a graph is dropped,
// so steady-state training steps barely touch the allocator.
//
// Every op's gradient is validated against central finite differences in
// tests/tensor_autodiff_test.cc.
#ifndef CFX_TENSOR_AUTODIFF_H_
#define CFX_TENSOR_AUTODIFF_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/tensor/matrix.h"

namespace cfx {
namespace ag {

class Node;

/// Handle to an autodiff graph node. Cheap to copy.
using Var = std::shared_ptr<Node>;

/// One vertex of the dynamic computation graph.
class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value(std::move(value)), requires_grad(requires_grad) {}

  /// Returns the grad buffer to the recycling pool.
  ~Node();

  Matrix value;            ///< Forward result.
  Matrix grad;             ///< dLoss/dvalue; allocated lazily by Backward().
  bool requires_grad;      ///< False for pure constants: backward skips them.
  std::vector<Var> parents;                 ///< Inputs of the producing op.
  std::function<void(Node*)> backward_fn;   ///< Accumulates into parents' grads.

  /// Ensures grad is allocated (zero) with the value's shape.
  void EnsureGrad();
};

/// Leaf that participates in gradients (a trainable parameter or an input
/// being optimised, e.g. CEM's perturbation).
Var Param(Matrix value);

/// Leaf excluded from differentiation (data batches, masks, noise).
Var Constant(Matrix value);

// ---- arithmetic -------------------------------------------------------------

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
/// Elementwise product.
Var Mul(const Var& a, const Var& b);
Var Scale(const Var& a, float s);
Var Neg(const Var& a);
/// Matrix product a(n,k) x b(k,m).
Var MatMul(const Var& a, const Var& b);
/// Adds a 1 x c bias row to each row of a (n, c).
Var AddRowBroadcast(const Var& a, const Var& bias);

// ---- elementwise nonlinearities ---------------------------------------------

Var Relu(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
/// Natural log of max(a, eps) for numerical safety.
Var Log(const Var& a, float eps = 1e-12f);
Var Square(const Var& a);
/// |a| with subgradient 0 at 0.
Var Abs(const Var& a);
/// Smooth L0 surrogate per entry: sigmoid(k*(|a| - eps)); used by the
/// sparsity loss (paper §III-B / §III-C "g(x'-x)").
Var SmoothIndicator(const Var& a, float k, float eps);

/// Mixed activation head for tabular decoders: softmax within each
/// (offset, width) block of `softmax_blocks` (categorical features) and
/// sigmoid on every remaining column (continuous/binary). Keeping the
/// categorical mass on the simplex keeps the training-time representation
/// close to the hard one-hot rows the classifier was trained on.
Var TabularActivation(const Var& a,
                      const std::vector<std::pair<size_t, size_t>>&
                          softmax_blocks);

// ---- shape ops ---------------------------------------------------------------

/// Horizontal concat [a | b]; used for class-conditioning the VAE.
Var ConcatCols(const Var& a, const Var& b);
/// Columns [begin, end).
Var SliceCols(const Var& a, size_t begin, size_t end);
/// Elementwise multiply by a constant mask (dropout, immutability masks).
Var MulConstMask(const Var& a, const Matrix& mask);

// ---- reductions ---------------------------------------------------------------

/// Sum of all entries -> 1x1.
Var Sum(const Var& a);
/// Mean of all entries -> 1x1.
Var Mean(const Var& a);
/// Per-row sum -> (n, 1); used for per-sample norms.
Var RowSum(const Var& a);
/// Mean over rows of a (n,1) column -> 1x1.
Var ColMean(const Var& a);

// ---- backward -----------------------------------------------------------------

/// Runs reverse-mode accumulation from `loss` (must be 1x1). Gradients
/// accumulate: call ZeroGrad on parameters between steps.
void Backward(const Var& loss);

/// Zeroes the grads of the given leaves.
void ZeroGrad(const std::vector<Var>& params);

}  // namespace ag
}  // namespace cfx

#endif  // CFX_TENSOR_AUTODIFF_H_
