// Dense row-major float matrix with the kernels the rest of cfx builds on.
//
// Design notes:
//  * float storage — all models in the paper are tiny MLPs; float halves
//    memory traffic and is ample precision for SGD-trained networks.
//  * Shapes follow the (batch, features) convention everywhere: a batch of
//    n samples with d features is an n x d Matrix.
//  * Arithmetic routes through src/tensor/kernels.h. Matmul keeps the
//    cache-friendly i-k-j ordering but blocks over k (4-wide register
//    blocking with a per-coefficient zero skip for one-hot-sparse inputs)
//    and splits output rows across the global ThreadPool; the k-terms of
//    every output element still accumulate in ascending order, so results
//    are bitwise identical for every CFX_THREADS setting. The transposed
//    variant (MatMulTransposedB) reads the right operand in its stored
//    layout — the autodiff backward pass never materialises a transpose.
//  * Map(std::function) survives for convenience; hot elementwise paths use
//    the templated Apply/ApplyInPlace so the functor inlines into the loop.
#ifndef CFX_TENSOR_MATRIX_H_
#define CFX_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/rng.h"
#include "src/tensor/kernels.h"

namespace cfx {

/// Value-semantic dense matrix of float.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a row-major initialiser, e.g. Matrix::FromRows({{1,2},{3,4}}).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  /// n x n identity.
  static Matrix Identity(size_t n);

  /// rows x cols with i.i.d. N(mean, stddev) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, float mean,
                             float stddev, Rng* rng);

  /// rows x cols with i.i.d. U[lo, hi) entries.
  static Matrix RandomUniform(size_t rows, size_t cols, float lo, float hi,
                              Rng* rng);

  /// Adopts `storage` as the backing buffer (resized to rows * cols; reuses
  /// its capacity). The autodiff grad pool recycles buffers through this.
  static Matrix FromStorage(size_t rows, size_t cols, FloatBuffer storage);

  /// Surrenders the backing buffer, leaving a 0x0 matrix.
  FloatBuffer ReleaseStorage();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// True iff shapes match.
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // ---- shape ops -----------------------------------------------------------

  /// Transposed copy.
  Matrix Transposed() const;

  /// Returns rows [begin, end) as a new matrix.
  Matrix SliceRows(size_t begin, size_t end) const;

  /// Returns columns [begin, end) as a new matrix.
  Matrix SliceCols(size_t begin, size_t end) const;

  /// Returns the rows selected by `indices` (may repeat / reorder).
  Matrix GatherRows(const std::vector<size_t>& indices) const;

  /// Horizontal concatenation [this | other]; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;

  /// Vertical concatenation; column counts must match.
  Matrix ConcatRows(const Matrix& other) const;

  /// Single row r as a 1 x cols matrix.
  Matrix Row(size_t r) const;

  // ---- arithmetic ----------------------------------------------------------

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  /// Elementwise (Hadamard) product.
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(float scalar) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  /// Matrix product; this->cols() must equal other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// this(n,k) x other(m,k)^T -> (n,m) without materialising the transpose;
  /// this->cols() must equal other.cols().
  Matrix MatMulTransposedB(const Matrix& other) const;

  /// Adds a 1 x cols row vector to every row (bias broadcast).
  Matrix AddRowBroadcast(const Matrix& row) const;

  /// Elementwise map with an inlining functor — use this on hot paths.
  template <typename Fn>
  Matrix Apply(Fn&& fn) const {
    Matrix out = *this;
    kernels::MapInPlace(out.data(), out.size(), std::forward<Fn>(fn));
    return out;
  }

  /// In-place elementwise map.
  template <typename Fn>
  void ApplyInPlace(Fn&& fn) {
    kernels::MapInPlace(data(), size(), std::forward<Fn>(fn));
  }

  /// Elementwise map. Type-erased (std::function) convenience wrapper; hot
  /// paths should call Apply so the functor inlines.
  Matrix Map(const std::function<float(float)>& fn) const;

  // ---- reductions ----------------------------------------------------------

  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// 1 x cols matrix of per-column sums.
  Matrix ColSum() const;
  /// rows x 1 matrix of per-row sums.
  Matrix RowSum() const;

  /// Squared Frobenius norm.
  float SquaredNorm() const;

  /// True if all entries are finite.
  bool AllFinite() const;

  /// Fills every entry with `value`.
  void Fill(float value);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  /// Compact debug rendering, clipped to a few rows/cols for large matrices.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  /// 64-byte-aligned backing storage (tight row-major, stride == cols): a
  /// vector load of any row-0 element never straddles a cache line, and the
  /// SIMD kernels get aligned bases for free. Padded-leading-dimension
  /// layouts live in ColumnBatch (src/data/column_batch.h), not here — the
  /// tight layout is load-bearing for serialization and raw data() users.
  FloatBuffer data_;
};

/// scalar * M.
inline Matrix operator*(float scalar, const Matrix& m) { return m * scalar; }

}  // namespace cfx

#endif  // CFX_TENSOR_MATRIX_H_
