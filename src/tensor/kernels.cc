#include "src/tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "src/common/metrics.h"
#include "src/tensor/simd.h"

namespace cfx {
namespace kernels {
namespace {

/// Counter handles latched once at static-init time (CFX_METRICS comes from
/// the environment, so the verdict is already known before main). Plain
/// globals, not function-local statics: the matmul entry points are hot
/// enough at batch 1 that even the per-call static-guard check — and the
/// init-path code it drags into the function — costs measurable time.
metrics::Counter* const g_matmul_calls =
    metrics::GetCounter("kernels.matmul.calls");
metrics::Counter* const g_matmul_flops =
    metrics::GetCounter("kernels.matmul.flops");

/// Counts one matmul-family dispatch of n*k*m multiply-adds (2 flops each).
/// Every variant here (plain, bias-fused, accumulating, transposed) does the
/// same multiply-add volume for a given (n, k, m).
inline void CountMatMul(size_t n, size_t k, size_t m) {
  if (g_matmul_calls != nullptr) {
    g_matmul_calls->Add(1);
    g_matmul_flops->Add(static_cast<uint64_t>(2) * n * k * m);
  }
}

/// Rows per dispatched chunk so one chunk covers >= kMatMulGrainFlops
/// multiply-adds — below that, dispatch overhead beats the parallel win.
size_t RowGrain(size_t k, size_t m) {
  const size_t flops_per_row = std::max<size_t>(k * m, 1);
  return std::max<size_t>(1, kMatMulGrainFlops / flops_per_row);
}

/// out(rows r0..r1 of n,m) (+)= a . b with a(n,k), b(k,m) both row-major at
/// leading dimensions lda/ldb/ldc (tight callers pass k/m/m — the historical
/// layout; strides change addressing only, never the float op sequence).
/// Per output element the k-terms accumulate in ascending order — the 4-way
/// unroll issues its four adds in that same order — so the result is
/// identical however rows are partitioned across lanes.
template <bool kAccumulate>
void MatMulRows(const float* __restrict__ a, const float* __restrict__ b,
                float* __restrict__ out, size_t r0, size_t r1, size_t k,
                size_t m, size_t lda, size_t ldb, size_t ldc) {
  for (size_t i = r0; i < r1; ++i) {
    float* __restrict__ out_row = out + i * ldc;
    if (!kAccumulate) std::fill(out_row, out_row + m, 0.0f);
    const float* __restrict__ a_row = a + i * lda;
    size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = a_row[kk], a1 = a_row[kk + 1];
      const float a2 = a_row[kk + 2], a3 = a_row[kk + 3];
      const float* __restrict__ b0 = b + kk * ldb;
      const float* __restrict__ b1 = b0 + ldb;
      const float* __restrict__ b2 = b1 + ldb;
      const float* __restrict__ b3 = b2 + ldb;
      if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
        for (size_t j = 0; j < m; ++j) {
          float v = out_row[j];
          v += a0 * b0[j];
          v += a1 * b1[j];
          v += a2 * b2[j];
          v += a3 * b3[j];
          out_row[j] = v;
        }
      } else {
        // Sparse rows (one-hot encodings) skip their zero coefficients, as
        // the historical i-k-j kernel did.
        if (a0 != 0.0f) for (size_t j = 0; j < m; ++j) out_row[j] += a0 * b0[j];
        if (a1 != 0.0f) for (size_t j = 0; j < m; ++j) out_row[j] += a1 * b1[j];
        if (a2 != 0.0f) for (size_t j = 0; j < m; ++j) out_row[j] += a2 * b2[j];
        if (a3 != 0.0f) for (size_t j = 0; j < m; ++j) out_row[j] += a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* __restrict__ b_row = b + kk * ldb;
      for (size_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
}

/// Rows [r0, r1) of the plain matmul at the active SIMD level. `level` is
/// sampled once per entry point so a mid-call SetActiveForTesting can never
/// split one matmul across levels.
inline void MatMulRowsDispatch(simd::Level level, const float* a,
                               const float* b, float* out, size_t r0,
                               size_t r1, size_t k, size_t m, size_t lda,
                               size_t ldb, size_t ldc, bool accumulate) {
  switch (level) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      simd::MatMulRowsAvx2(a, b, out, r0, r1, k, m, lda, ldb, ldc,
                           accumulate);
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      simd::MatMulRowsNeon(a, b, out, r0, r1, k, m, lda, ldb, ldc,
                           accumulate);
      return;
#endif
    default:
      break;
  }
  if (accumulate) {
    MatMulRows<true>(a, b, out, r0, r1, k, m, lda, ldb, ldc);
  } else {
    MatMulRows<false>(a, b, out, r0, r1, k, m, lda, ldb, ldc);
  }
}

}  // namespace

void MatMul(const float* a, const float* b, float* out, size_t n, size_t k,
            size_t m) {
  MatMulEx(a, b, out, n, k, m, k, m, m);
}

void MatMulEx(const float* a, const float* b, float* out, size_t n, size_t k,
              size_t m, size_t lda, size_t ldb, size_t ldc) {
  CountMatMul(n, k, m);
  const simd::Level level = simd::Active();
  const size_t grain = RowGrain(k, m);
  if (n <= grain) {
    // Single-chunk batches skip the pool dispatch (and the std::function
    // round-trip it costs) — identical bits, the kernel is row-disjoint.
    MatMulRowsDispatch(level, a, b, out, 0, n, k, m, lda, ldb, ldc, false);
    return;
  }
  ParallelFor(0, n, grain, [&](size_t r0, size_t r1) {
    MatMulRowsDispatch(level, a, b, out, r0, r1, k, m, lda, ldb, ldc, false);
  });
}

namespace {

/// Rows r0..r1 of MatMulBias: matmul row, then the bias/activation epilogue
/// while the freshly accumulated row is still in L1.
void MatMulBiasRows(const float* a, const float* b, const float* bias,
                    float* out, size_t r0, size_t r1, size_t k, size_t m,
                    Epilogue epilogue) {
  for (size_t i = r0; i < r1; ++i) {
    MatMulRows<false>(a, b, out, i, i + 1, k, m, k, m, m);
    float* __restrict__ out_row = out + i * m;
    switch (epilogue) {
      case Epilogue::kNone:
        for (size_t j = 0; j < m; ++j) out_row[j] += bias[j];
        break;
      case Epilogue::kRelu:
        for (size_t j = 0; j < m; ++j) {
          const float v = out_row[j] + bias[j];
          out_row[j] = v > 0.0f ? v : 0.0f;
        }
        break;
      case Epilogue::kSigmoid:
        for (size_t j = 0; j < m; ++j) {
          const float v = out_row[j] + bias[j];
          out_row[j] = 1.0f / (1.0f + std::exp(-v));
        }
        break;
    }
  }
}

}  // namespace

namespace {

inline void MatMulBiasRowsDispatch(simd::Level level, const float* a,
                                   const float* b, const float* bias,
                                   float* out, size_t r0, size_t r1, size_t k,
                                   size_t m, Epilogue epilogue) {
  switch (level) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      simd::MatMulBiasRowsAvx2(a, b, bias, out, r0, r1, k, m, k, m, m,
                               epilogue);
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      simd::MatMulBiasRowsNeon(a, b, bias, out, r0, r1, k, m, k, m, m,
                               epilogue);
      return;
#endif
    default:
      break;
  }
  MatMulBiasRows(a, b, bias, out, r0, r1, k, m, epilogue);
}

}  // namespace

void MatMulBias(const float* a, const float* b, const float* bias, float* out,
                size_t n, size_t k, size_t m, Epilogue epilogue) {
  CountMatMul(n, k, m);
  const simd::Level level = simd::Active();
  const size_t grain = RowGrain(k, m);
  if (n <= grain) {
    MatMulBiasRowsDispatch(level, a, b, bias, out, 0, n, k, m, epilogue);
    return;
  }
  ParallelFor(0, n, grain, [&](size_t r0, size_t r1) {
    MatMulBiasRowsDispatch(level, a, b, bias, out, r0, r1, k, m, epilogue);
  });
}

void MatMulAccum(const float* a, const float* b, float* out, size_t n,
                 size_t k, size_t m) {
  CountMatMul(n, k, m);
  const simd::Level level = simd::Active();
  ParallelFor(0, n, RowGrain(k, m), [&](size_t r0, size_t r1) {
    MatMulRowsDispatch(level, a, b, out, r0, r1, k, m, k, m, m, true);
  });
}

namespace {

// out(n,m): out[i][j] = dot_k(a row i, b row j); b is read as stored.
// Four independent dot products share one pass over the a-row; each keeps
// its own accumulator, so every dot still sums k-ascending.
void MatMulTransposedBRowsScalar(const float* a, const float* b, float* out,
                                 size_t r0, size_t r1, size_t k, size_t m,
                                 bool accumulate) {
  for (size_t i = r0; i < r1; ++i) {
      const float* __restrict__ a_row = a + i * k;
      float* __restrict__ out_row = out + i * m;
      size_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const float* __restrict__ b0 = b + j * k;
        const float* __restrict__ b1 = b0 + k;
        const float* __restrict__ b2 = b1 + k;
        const float* __restrict__ b3 = b2 + k;
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (size_t c = 0; c < k; ++c) {
          const float av = a_row[c];
          s0 += av * b0[c];
          s1 += av * b1[c];
          s2 += av * b2[c];
          s3 += av * b3[c];
        }
        if (accumulate) {
          out_row[j] += s0;
          out_row[j + 1] += s1;
          out_row[j + 2] += s2;
          out_row[j + 3] += s3;
        } else {
          out_row[j] = s0;
          out_row[j + 1] = s1;
          out_row[j + 2] = s2;
          out_row[j + 3] = s3;
        }
      }
      for (; j < m; ++j) {
        const float* __restrict__ b_row = b + j * k;
        float s = 0.0f;
        for (size_t c = 0; c < k; ++c) s += a_row[c] * b_row[c];
        if (accumulate) {
          out_row[j] += s;
        } else {
          out_row[j] = s;
        }
      }
    }
}

// out(k,m): out[c][j] = sum_r a[r][c] * b[r][j]; a is read as stored.
// Parallel over output rows c; each lane streams all of b once, r
// ascending, so accumulation order matches the serial axpy loop.
void MatMulTransposedARowsScalar(const float* a, const float* b, float* out,
                                 size_t c0, size_t c1, size_t n, size_t k,
                                 size_t m, bool accumulate) {
  for (size_t c = c0; c < c1; ++c) {
    float* __restrict__ out_row = out + c * m;
    if (!accumulate) std::fill(out_row, out_row + m, 0.0f);
    for (size_t r = 0; r < n; ++r) {
      const float av = a[r * k + c];
      if (av == 0.0f) continue;
      const float* __restrict__ b_row = b + r * m;
      for (size_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
}

}  // namespace

void MatMulTransposedB(const float* a, const float* b, float* out, size_t n,
                       size_t k, size_t m, bool accumulate) {
  CountMatMul(n, k, m);
  const simd::Level level = simd::Active();
  ParallelFor(0, n, RowGrain(k, m), [&](size_t r0, size_t r1) {
    switch (level) {
#if CFX_SIMD_X86
      case simd::Level::kAvx2:
        simd::MatMulTransposedBRowsAvx2(a, b, out, r0, r1, k, m, accumulate);
        return;
#endif
#if CFX_SIMD_NEON
      case simd::Level::kNeon:
        simd::MatMulTransposedBRowsNeon(a, b, out, r0, r1, k, m, accumulate);
        return;
#endif
      default:
        break;
    }
    MatMulTransposedBRowsScalar(a, b, out, r0, r1, k, m, accumulate);
  });
}

void MatMulTransposedA(const float* a, const float* b, float* out, size_t n,
                       size_t k, size_t m, bool accumulate) {
  CountMatMul(n, k, m);
  const simd::Level level = simd::Active();
  ParallelFor(0, k, RowGrain(n, m), [&](size_t c0, size_t c1) {
    switch (level) {
#if CFX_SIMD_X86
      case simd::Level::kAvx2:
        simd::MatMulTransposedARowsAvx2(a, b, out, c0, c1, n, k, m,
                                        accumulate);
        return;
#endif
#if CFX_SIMD_NEON
      case simd::Level::kNeon:
        simd::MatMulTransposedARowsNeon(a, b, out, c0, c1, n, k, m,
                                        accumulate);
        return;
#endif
      default:
        break;
    }
    MatMulTransposedARowsScalar(a, b, out, c0, c1, n, k, m, accumulate);
  });
}

namespace {

/// Runs `span(offset, len)` over [0, n): inline on the caller's thread
/// below kElementwiseGrain (serve-sized batches skip pool dispatch
/// entirely), pooled in grain-sized chunks above. The span kernels are
/// position-independent, so chunking never changes bits.
template <typename SpanFn>
inline void ForSpan(size_t n, SpanFn&& span) {
  if (n < kElementwiseGrain) {
    span(size_t{0}, n);
    return;
  }
  ParallelFor(0, n, kElementwiseGrain, [&](size_t b, size_t e) {
    span(b, e - b);
  });
}

}  // namespace

// The two-operand in-place kernels dispatch per level, but every level is
// bitwise identical here: add/sub/mul and the fused-multiply-free scalar
// fallbacks are single correctly-rounded IEEE ops per element. (Axpy and
// MulAdd vector paths contract to FMA — deterministic within a level.)

void AddInPlace(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::AddSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::AddSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  ZipInPlace(dst, src, n, [](float d, float s) { return d + s; });
}

void SubInPlace(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::SubSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::SubSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  ZipInPlace(dst, src, n, [](float d, float s) { return d - s; });
}

void MulInPlace(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::MulSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::MulSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  ZipInPlace(dst, src, n, [](float d, float s) { return d * s; });
}

void AxpyInPlace(float* dst, float alpha, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::AxpySpanAvx2(dst + b, alpha, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::AxpySpanNeon(dst + b, alpha, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  ZipInPlace(dst, src, n, [alpha](float d, float s) { return d + alpha * s; });
}

void ScaleInPlace(float* dst, float alpha, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ScaleSpanAvx2(dst + b, alpha, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ScaleSpanNeon(dst + b, alpha, len);
      });
      return;
#endif
    default:
      break;
  }
  MapInPlace(dst, n, [alpha](float v) { return alpha * v; });
}

void MulAddInPlace(float* dst, const float* a, const float* b, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t off, size_t len) {
        simd::MulAddSpanAvx2(dst + off, a + off, b + off, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t off, size_t len) {
        simd::MulAddSpanNeon(dst + off, a + off, b + off, len);
      });
      return;
#endif
    default:
      break;
  }
  if (n < kElementwiseGrain) {
    for (size_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
    return;
  }
  ParallelFor(0, n, kElementwiseGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) dst[i] += a[i] * b[i];
  });
}

void AddRowBroadcastInPlace(float* dst, const float* row, size_t rows,
                            size_t cols) {
  const simd::Level level = simd::Active();
  auto rows_fn = [&, level](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* dr = dst + r * cols;
      switch (level) {
#if CFX_SIMD_X86
        case simd::Level::kAvx2:
          simd::AddSpanAvx2(dr, row, cols);
          continue;
#endif
#if CFX_SIMD_NEON
        case simd::Level::kNeon:
          simd::AddSpanNeon(dr, row, cols);
          continue;
#endif
        default:
          break;
      }
      for (size_t c = 0; c < cols; ++c) dr[c] += row[c];
    }
  };
  if (rows * cols < kElementwiseGrain) {
    rows_fn(0, rows);
    return;
  }
  ParallelFor(0, rows, std::max<size_t>(1, kElementwiseGrain / std::max<size_t>(cols, 1)),
              rows_fn);
}

void ReluTo(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ReluSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ReluSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [](float v) { return v > 0.0f ? v : 0.0f; });
}

void ReluInPlace(float* dst, size_t n) { ReluTo(dst, dst, n); }

void SigmoidTo(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::SigmoidSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::SigmoidSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

void SigmoidInPlace(float* dst, size_t n) { SigmoidTo(dst, dst, n); }

void ExpTo(float* dst, const float* src, size_t n) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ExpSpanAvx2(dst + b, src + b, len);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ExpSpanNeon(dst + b, src + b, len);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [](float v) { return std::exp(v); });
}

void LogShiftTo(float* dst, const float* src, size_t n, float shift) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::LogShiftSpanAvx2(dst + b, src + b, len, shift);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::LogShiftSpanNeon(dst + b, src + b, len, shift);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [shift](float v) { return std::log(v + shift); });
}

void LogitTo(float* dst, const float* src, size_t n, float lo, float hi) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::LogitSpanAvx2(dst + b, src + b, len, lo, hi);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::LogitSpanNeon(dst + b, src + b, len, lo, hi);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [lo, hi](float v) {
    const float c = std::min(std::max(v, lo), hi);
    return std::log(c / (1.0f - c));
  });
}

void ClampTo(float* dst, const float* src, size_t n, float lo, float hi) {
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ClampSpanAvx2(dst + b, src + b, len, lo, hi);
      });
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      ForSpan(n, [&](size_t b, size_t len) {
        simd::ClampSpanNeon(dst + b, src + b, len, lo, hi);
      });
      return;
#endif
    default:
      break;
  }
  MapTo(dst, src, n, [lo, hi](float v) {
    return std::min(std::max(v, lo), hi);
  });
}

void AdamUpdate(float* value, float* m, float* v, const float* grad,
                size_t n, float beta1, float beta2, float lr, float bc1,
                float bc2, float eps) {
  // Optimizer tensors are small (layer weights); no ParallelFor — the
  // vector kernel alone covers the win, and updates stay ordered.
  switch (simd::Active()) {
#if CFX_SIMD_X86
    case simd::Level::kAvx2:
      simd::AdamUpdateSpanAvx2(value, m, v, grad, n, beta1, beta2, lr, bc1,
                               bc2, eps);
      return;
#endif
#if CFX_SIMD_NEON
    case simd::Level::kNeon:
      simd::AdamUpdateSpanNeon(value, m, v, grad, n, beta1, beta2, lr, bc1,
                               bc2, eps);
      return;
#endif
    default:
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * grad[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * grad[i] * grad[i];
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    value[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void TabularActivationForward(
    const float* x, float* out, size_t rows, size_t cols,
    const std::vector<std::pair<size_t, size_t>>& softmax_blocks,
    const std::vector<uint8_t>& in_softmax) {
  const simd::Level level = simd::Active();
  auto rows_fn = [&, level](size_t r0, size_t r1) {
    switch (level) {
#if CFX_SIMD_X86
      case simd::Level::kAvx2:
        // Tall slices go columnar: the tabular blocks are only a few
        // columns wide, so the row kernel's masked spans waste most of
        // every vector. The two kernels are bitwise identical per row
        // (see TabularActivationBatchAvx2), so the cutover is pure
        // shape-based tuning — 16 rows is where the transpose pays for
        // itself.
        if (r1 - r0 >= 16) {
          simd::TabularActivationBatchAvx2(x, out, r0, r1, cols,
                                           softmax_blocks);
        } else {
          simd::TabularActivationRowsAvx2(x, out, r0, r1, cols,
                                          softmax_blocks);
        }
        return;
#endif
#if CFX_SIMD_NEON
      case simd::Level::kNeon:
        simd::TabularActivationRowsNeon(x, out, r0, r1, cols, softmax_blocks);
        return;
#endif
      default:
        break;
    }
    for (size_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* or_ = out + r * cols;
      for (size_t c = 0; c < cols; ++c) {
        if (!in_softmax[c]) or_[c] = 1.0f / (1.0f + std::exp(-xr[c]));
      }
      for (const auto& [offset, width] : softmax_blocks) {
        float max_v = xr[offset];
        for (size_t j = 1; j < width; ++j) {
          max_v = std::max(max_v, xr[offset + j]);
        }
        float sum = 0.0f;
        for (size_t j = 0; j < width; ++j) {
          const float e = std::exp(xr[offset + j] - max_v);
          or_[offset + j] = e;
          sum += e;
        }
        for (size_t j = 0; j < width; ++j) or_[offset + j] /= sum;
      }
    }
  };
  // Serve-sized batches run inline — rows are disjoint, so skipping the
  // pool dispatch never changes bits.
  if (rows * cols < kElementwiseGrain) {
    rows_fn(0, rows);
    return;
  }
  ParallelFor(0, rows, 0, rows_fn);
}

}  // namespace kernels
}  // namespace cfx
