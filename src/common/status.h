// Lightweight Status / StatusOr error-handling primitives, in the spirit of
// absl::Status.  cfx never throws across public API boundaries; fallible
// operations return Status or StatusOr<T> and callers decide how to react.
#ifndef CFX_COMMON_STATUS_H_
#define CFX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cfx {

/// Broad error taxonomy. Codes mirror the subset of absl/grpc codes the
/// library actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Converts a StatusCode to its canonical spelling ("OK", "INVALID_ARGUMENT"...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic result of a fallible operation: a code plus a human-readable
/// message. The default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or a non-OK Status. Accessing the value of a non-OK
/// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(runtime/explicit)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define CFX_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::cfx::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Asserts that a status-returning expression succeeded; aborts otherwise.
/// Intended for examples/benches where failure is unrecoverable.
#define CFX_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::cfx::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      ::cfx::internal::CheckOkFailed(__FILE__, __LINE__, _st.ToString()); \
    }                                                                   \
  } while (0)

namespace internal {
[[noreturn]] void CheckOkFailed(const char* file, int line,
                                const std::string& status);
}  // namespace internal

}  // namespace cfx

#endif  // CFX_COMMON_STATUS_H_
