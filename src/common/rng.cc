#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace cfx {
namespace {

// SplitMix64 step (Steele, Lea, Flood 2014).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) : state_(seed) {
  // Warm up so that small seeds (0, 1, 2, ...) diverge immediately.
  SplitMix64(&state_);
}

uint64_t Rng::NextU64() { return SplitMix64(&state_); }

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return z0;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::TruncatedNormal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  for (int i = 0; i < 64; ++i) {
    double v = Normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  double v = Normal(mean, stddev);
  return v < lo ? lo : (v > hi ? hi : v);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // r landed on the total due to rounding.
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Split(uint64_t salt) {
  uint64_t child_seed = NextU64() ^ (salt * 0xD2B74407B1CE6E93ULL);
  return Rng(child_seed);
}

}  // namespace cfx
