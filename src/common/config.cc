#include "src/common/config.h"

#include <cerrno>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cfx {

bool ParseUint64(const char* s, uint64_t* out) {
  // strtoull skips leading whitespace and accepts signs; require the value
  // to start with a digit so those are rejected too.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseScaleName(const std::string& name, Scale* out) {
  const std::string lower = ToLower(name);
  if (lower == "paper") {
    *out = Scale::kPaper;
    return true;
  }
  if (lower == "small") {
    *out = Scale::kSmall;
    return true;
  }
  return false;
}

Scale ParseScale(const std::string& name) {
  Scale scale = Scale::kSmall;
  (void)ParseScaleName(name, &scale);
  return scale;
}

Scale ScaleFromEnv() {
  const char* env = std::getenv("CFX_SCALE");
  if (env == nullptr) return Scale::kSmall;
  Scale scale = Scale::kSmall;
  if (!ParseScaleName(env, &scale)) {
    CFX_LOG(Warning) << "CFX_SCALE='" << env
                     << "' is not \"small\" or \"paper\"; using small";
  }
  return scale;
}

const char* ScaleName(Scale scale) {
  return scale == Scale::kPaper ? "paper" : "small";
}

RunConfig RunConfig::FromEnv() {
  RunConfig cfg;
  cfg.scale = ScaleFromEnv();
  if (const char* seed = std::getenv("CFX_SEED")) {
    uint64_t value = 0;
    if (ParseUint64(seed, &value)) {
      cfg.seed = value;
    } else {
      CFX_LOG(Warning) << "CFX_SEED='" << seed
                       << "' is not a base-10 unsigned integer; keeping "
                          "default "
                       << cfg.seed;
    }
  }
  if (const char* n = std::getenv("CFX_EVAL_N")) {
    uint64_t value = 0;
    if (ParseUint64(n, &value) && value >= 1) {
      cfg.eval_instances = static_cast<size_t>(value);
    } else {
      CFX_LOG(Warning) << "CFX_EVAL_N='" << n
                       << "' is not a positive base-10 integer; keeping "
                          "default "
                       << cfg.eval_instances;
    }
  }
  return cfg;
}

}  // namespace cfx
