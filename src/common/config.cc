#include "src/common/config.h"

#include <cstdlib>

#include "src/common/string_util.h"

namespace cfx {

Scale ParseScale(const std::string& name) {
  return ToLower(name) == "paper" ? Scale::kPaper : Scale::kSmall;
}

Scale ScaleFromEnv() {
  const char* env = std::getenv("CFX_SCALE");
  if (env == nullptr) return Scale::kSmall;
  return ParseScale(env);
}

const char* ScaleName(Scale scale) {
  return scale == Scale::kPaper ? "paper" : "small";
}

RunConfig RunConfig::FromEnv() {
  RunConfig cfg;
  cfg.scale = ScaleFromEnv();
  if (const char* seed = std::getenv("CFX_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* n = std::getenv("CFX_EVAL_N")) {
    cfg.eval_instances = std::strtoull(n, nullptr, 10);
  }
  return cfg;
}

}  // namespace cfx
