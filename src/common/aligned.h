// 64-byte-aligned storage for tensor buffers.
//
// The SIMD kernel layer (src/tensor/simd.h) loads rows with vector
// instructions; allocating every Matrix and ColumnBatch buffer on a cache
// line boundary means a vector load of element 0 never straddles two lines,
// and the padded ColumnBatch layout keeps every *column* start aligned too.
// The allocator is STL-compatible so the existing std::vector plumbing
// (grad-pool recycling, FromStorage/ReleaseStorage) keeps working with only
// a type change.
#ifndef CFX_COMMON_ALIGNED_H_
#define CFX_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace cfx {

/// Cache-line / AVX-512-friendly alignment for all tensor storage.
inline constexpr size_t kTensorAlignment = 64;

/// Minimal C++17 allocator handing out `Alignment`-aligned blocks.
template <typename T, size_t Alignment = kTensorAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    // Plain operator new plus manual alignment, NOT the aligned overload:
    // glibc serves aligned requests through _int_memalign, which bypasses
    // the per-thread tcache and costs ~4x a plain small allocation — and
    // tensor buffers (response rows, batch staging, activations) are
    // allocated on hot paths. Over-allocate by Alignment + one pointer,
    // align up, and stash the raw base just below the aligned block for
    // deallocate.
    void* raw = ::operator new(n * sizeof(T) + Alignment + sizeof(void*));
    uintptr_t base = reinterpret_cast<uintptr_t>(raw) + sizeof(void*);
    uintptr_t aligned = (base + (Alignment - 1)) & ~uintptr_t{Alignment - 1};
    reinterpret_cast<void**>(aligned)[-1] = raw;
    return reinterpret_cast<T*>(aligned);
  }

  void deallocate(T* p, size_t) noexcept {
    if (p == nullptr) return;
    ::operator delete(reinterpret_cast<void**>(p)[-1]);
  }

  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// Backing buffer type of Matrix / ColumnBatch / the autodiff grad pool.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

}  // namespace cfx

#endif  // CFX_COMMON_ALIGNED_H_
