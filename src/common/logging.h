// Minimal leveled logging for the library and its harnesses.
//
// Usage:
//   CFX_LOG(INFO) << "trained classifier, acc=" << acc;
//
// The global level defaults to kInfo and can be lowered for tests via
// SetLogLevel(LogLevel::kWarning) or the CFX_LOG_LEVEL env var
// (debug|info|warning|error|off) read at first use.
#ifndef CFX_COMMON_LOGGING_H_
#define CFX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cfx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level tag and timestamp) on
/// destruction. Not for direct use; see CFX_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cfx

#define CFX_LOG(severity)                                              \
  ::cfx::internal::LogMessage(::cfx::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // CFX_COMMON_LOGGING_H_
