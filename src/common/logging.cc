#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/common/status.h"

namespace cfx {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

void InitFromEnv() {
  const char* env = std::getenv("CFX_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = static_cast<int>(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) g_level = static_cast<int>(LogLevel::kInfo);
  else if (std::strcmp(env, "warning") == 0) g_level = static_cast<int>(LogLevel::kWarning);
  else if (std::strcmp(env, "error") == 0) g_level = static_cast<int>(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) g_level = static_cast<int>(LogLevel::kOff);
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_level.load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal

void internal::CheckOkFailed(const char* file, int line,
                             const std::string& status) {
  std::fprintf(stderr, "[F %s:%d] CFX_CHECK_OK failed: %s\n", file, line,
               status.c_str());
  std::abort();
}

}  // namespace cfx
