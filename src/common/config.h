// Experiment-scale configuration shared by benches, examples and tests.
//
// The paper trains on the full cleaned datasets (32 561 / 199 522 / 20 512
// rows). On the single-core harness machine benches default to a reduced
// scale that preserves every code path and the causal signal; exporting
// CFX_SCALE=paper reproduces the full sizes.
#ifndef CFX_COMMON_CONFIG_H_
#define CFX_COMMON_CONFIG_H_

#include <cstddef>
#include <string>

namespace cfx {

/// How large the synthetic datasets and evaluation sets should be.
enum class Scale {
  kSmall,  ///< Reduced row counts for fast single-core runs (default).
  kPaper,  ///< The paper's cleaned instance counts.
};

/// Reads CFX_SCALE from the environment ("small" | "paper"); defaults to
/// kSmall when unset or unrecognised.
Scale ScaleFromEnv();

/// Parses a scale name; returns kSmall for anything unrecognised.
Scale ParseScale(const std::string& name);

/// Strict variant: sets *out and returns true only when `name` is exactly
/// "small" or "paper" (case-insensitive).
bool ParseScaleName(const std::string& name, Scale* out);

/// Canonical name of a scale value.
const char* ScaleName(Scale scale);

/// Strict base-10 unsigned parse of the whole string. Rejects empty input,
/// signs, leading whitespace, trailing junk ("10k") and out-of-range
/// values — strtoull alone silently accepts all of those. Used for every
/// numeric CLI flag and env knob.
bool ParseUint64(const char* s, uint64_t* out);

/// Global run configuration derived from the environment.
struct RunConfig {
  Scale scale = Scale::kSmall;
  uint64_t seed = 42;          ///< Master seed; CFX_SEED overrides.
  size_t eval_instances = 200; ///< Max test instances per method evaluation.

  /// Builds the config from CFX_SCALE / CFX_SEED / CFX_EVAL_N.
  static RunConfig FromEnv();
};

}  // namespace cfx

#endif  // CFX_COMMON_CONFIG_H_
