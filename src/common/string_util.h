// Small string helpers shared across the library (CSV parsing, report
// formatting, config handling).
#ifndef CFX_COMMON_STRING_UTIL_H_
#define CFX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cfx {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters).
std::string JsonEscape(std::string_view s);

}  // namespace cfx

#endif  // CFX_COMMON_STRING_UTIL_H_
