// Bounded lock-free multi-producer ring queue — the submit path of the
// serving scheduler (src/serve/server.cc).
//
// The algorithm is the classic bounded sequence-number ring (Vyukov): every
// slot carries an atomic sequence counter that encodes, relative to the
// monotonically increasing head/tail positions, whether the slot is free,
// filled, or mid-transfer. Producers claim a slot by CAS on the tail and
// publish the value with a release store of the slot sequence; a consumer
// observes that store with an acquire load before touching the value, so
// the element's bytes (and everything the producer wrote before pushing)
// are fully visible without any lock.
//
// Memory-ordering contract:
//   * TryPush: claims a position with a relaxed CAS on tail_ (the claim
//     itself transfers no data), writes the value, then publishes with
//     slot.seq.store(pos + 1, release).
//   * TryPop: slot.seq.load(acquire) pairs with the producer's release
//     store — after it reads `pos + 1` the value is safe to move out. The
//     slot is recycled for the next lap with seq.store(pos + capacity,
//     release), which pairs with the acquire in a later TryPush claiming
//     the same slot.
//   * head_/tail_ themselves are only claim tickets; all value visibility
//     rides on the per-slot sequence, never on the shared indices.
//
// Pops also CAS the head, so draining from more than one thread is safe
// (the serving scheduler runs one worker in its hot configuration but
// supports several); the queue is wait-free for neither side but both
// paths are a handful of instructions with no syscalls and no blocking.
//
// Capacity is rounded up to a power of two so position -> slot mapping is
// a mask, and head/tail live on their own cache lines so producers hammer
// a different line than the consumer.
#ifndef CFX_COMMON_MPSC_QUEUE_H_
#define CFX_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace cfx {

/// One pause/yield hint for spin loops. On x86 this is `pause` (frees the
/// core's execution resources for the sibling hyperthread and tames the
/// memory-order-violation flush on spin exit); on AArch64 `yield`.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded lock-free ring queue. T must be default-constructible and
/// movable; a failed TryPush leaves the caller's value untouched.
template <typename T>
class MpscQueue {
 public:
  /// Rounds `min_capacity` up to the next power of two (minimum 2). The
  /// queue holds exactly capacity() elements before TryPush reports full.
  explicit MpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues `value`. Returns false (value untouched) when the ring is
  /// full. When `spins` is non-null it receives the number of CAS retries
  /// this call paid to competing producers (0 under no contention) — the
  /// scheduler surfaces the sum as the serve/submit_spins counter.
  bool TryPush(T&& value, uint32_t* spins = nullptr) {
    uint32_t retries = 0;
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & mask_];
      const uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
        ++retries;  // Lost the claim to another producer; pos was reloaded.
      } else if (dif < 0) {
        // The slot still holds the previous lap's element: the ring is full
        // (or a consumer is mid-pop on a ring that has lapped — either way
        // the bound is reached).
        if (spins != nullptr) *spins = retries;
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    if (spins != nullptr) *spins = retries;
    return true;
  }

  /// Dequeues into `*out`. Returns false when the ring is empty. Safe from
  /// multiple threads (head claims use CAS).
  bool TryPop(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & mask_];
      const uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // Empty (or the producer that claimed it not done).
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    // Move, don't reset: for the queue's payload types a moved-from value
    // is already resource-free (and for std::promise a fresh T() would
    // eagerly allocate shared state — a heap allocation per pop). A type
    // whose moved-from state pins real resources holds them only until the
    // slot's next lap.
    *out = std::move(slot->value);
    slot->seq.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Instantaneous element count. Racy by nature (both indices move
  /// concurrently) but never off by more than the in-flight operations;
  /// exact when producers and consumers are quiescent.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool Empty() const { return SizeApprox() == 0; }

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  /// Producers contend on tail_, the consumer walks head_; separate cache
  /// lines keep a push from invalidating the consumer's line and vice
  /// versa. 64 matches the destructive-interference size of every target
  /// this builds on (x86-64, AArch64).
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
};

}  // namespace cfx

#endif  // CFX_COMMON_MPSC_QUEUE_H_
