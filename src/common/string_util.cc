#include "src/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "src/common/status.h"

namespace cfx {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cfx
