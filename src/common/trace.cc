#include "src/common/trace.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/string_util.h"

namespace cfx {
namespace trace {

namespace {

/// Hard cap on buffered events (~100 MB worst case at long names; tens of
/// MB in practice). Overflow increments a counter instead of growing.
constexpr size_t kMaxEvents = size_t{1} << 20;

struct Event {
  std::string name;
  double ts_us;   // microseconds since the process anchor
  double dur_us;  // span duration in microseconds
  int tid;        // small dense thread id, assigned on first span per thread
};

struct EventBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::atomic<uint64_t> dropped{0};
};

EventBuffer& Buffer() {
  // Leaked on purpose: spans may close during static destruction.
  static EventBuffer* buffer = new EventBuffer();
  return *buffer;
}

std::atomic<int> g_forced{-1};

bool TruthyEnv(const char* value) {
  if (value == nullptr) return false;
  const std::string v = ToLower(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

bool EnvEnabled() {
  static const bool enabled = [] {
    const bool on = TruthyEnv(std::getenv("CFX_TRACE"));
    if (on) {
      std::atexit([] { (void)ExportIfEnabled(); });
    }
    return on;
  }();
  return enabled;
}

std::chrono::steady_clock::time_point Anchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double MicrosSince(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

bool Enabled() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EnvEnabled();
}

bool SpansActive() { return Enabled() || metrics::Enabled(); }

void internal::ForceEnabledForTest(int enabled) {
  g_forced.store(enabled, std::memory_order_relaxed);
}

void internal::ClearForTest() {
  EventBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.dropped.store(0, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::string name) {
  if (name.empty() || !SpansActive()) return;
  active_ = true;
  name_ = std::move(name);
  // Latch the process anchor no later than the first span's start so no
  // emitted event carries a negative timestamp.
  (void)Anchor();
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::ScopedSpan(const char* name)
    : ScopedSpan(std::string(name == nullptr ? "" : name)) {}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  if (Enabled()) {
    EventBuffer& buffer = Buffer();
    Event event;
    event.ts_us = MicrosSince(Anchor(), start_);
    event.dur_us = MicrosSince(start_, end);
    event.tid = ThreadId();
    std::lock_guard<std::mutex> lock(buffer.mu);
    if (buffer.events.size() < kMaxEvents) {
      event.name = name_;
      buffer.events.push_back(std::move(event));
    } else {
      buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (metrics::Enabled()) {
    metrics::Histogram* h = metrics::MetricsRegistry::Global().histogram(name_);
    h->Record(std::chrono::duration<double>(end - start_).count());
  }
}

size_t EventCount() {
  EventBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.events.size();
}

uint64_t DroppedEventCount() {
  return Buffer().dropped.load(std::memory_order_relaxed);
}

Status WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  EventBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  out << "{\n  \"traceEvents\": [";
  for (size_t i = 0; i < buffer.events.size(); ++i) {
    const Event& e = buffer.events[i];
    out << (i == 0 ? "\n" : ",\n");
    out << StrFormat(
        "    {\"name\": \"%s\", \"cat\": \"cfx\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
        JsonEscape(e.name).c_str(), e.ts_us, e.dur_us, e.tid);
  }
  out << (buffer.events.empty() ? "]" : "\n  ]");
  out << ",\n  \"displayTimeUnit\": \"ms\",\n";
  out << StrFormat("  \"otherData\": {\"dropped_events\": \"%llu\"}\n",
                   static_cast<unsigned long long>(
                       buffer.dropped.load(std::memory_order_relaxed)));
  out << "}\n";
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

std::string DefaultExportPath() {
  const char* env = std::getenv("CFX_TRACE");
  if (env != nullptr) {
    const std::string value = env;
    if (value.size() > 5 && value.rfind(".json") == value.size() - 5) {
      return value;
    }
  }
  return "trace.json";
}

Status ExportIfEnabled() {
  if (!Enabled()) return Status::OK();
  return WriteJson(DefaultExportPath());
}

}  // namespace trace
}  // namespace cfx
