#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "src/common/string_util.h"

namespace cfx {
namespace metrics {

namespace {

std::atomic<int> g_forced{-1};  // -1: follow env; 0/1: test override

/// CAS add — std::atomic<double>::fetch_add is C++20-optional on some
/// toolchains, so stay on compare_exchange.
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

bool TruthyEnv(const char* value) {
  if (value == nullptr) return false;
  const std::string v = ToLower(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

bool EnvEnabled() {
  static const bool enabled = [] {
    const bool on = TruthyEnv(std::getenv("CFX_METRICS"));
    if (on) {
      // Snapshot on clean exit so every instrumented binary leaves a
      // metrics.json behind without per-binary wiring. The registry is
      // leaked, so the hook never races static destruction.
      std::atexit([] { (void)ExportIfEnabled(); });
    }
    return on;
  }();
  return enabled;
}

/// Upper bound of bucket i.
double BucketBound(size_t i) {
  return Histogram::kMinBound *
         std::exp2(static_cast<double>(i) / 8.0);
}

size_t BucketIndex(double v) {
  if (!(v > Histogram::kMinBound)) return 0;  // also catches NaN
  const double pos = 8.0 * std::log2(v / Histogram::kMinBound);
  const double idx = std::ceil(pos);
  if (idx >= static_cast<double>(Histogram::kNumBuckets)) {
    return Histogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::string s = StrFormat("%.12g", v);
  // Bare JSON numbers must not be "inf"/"nan"; %g never emits them after
  // the isfinite guard above.
  return s;
}

}  // namespace

bool Enabled() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EnvEnabled();
}

void internal::ForceEnabledForTest(int enabled) {
  g_forced.store(enabled, std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::min() const {
  // The +-inf init sentinels can outlive a positive count: NaN records never
  // pass the AtomicMin/AtomicMax comparison, and a concurrent Record may have
  // bumped count_ before reaching the extremes. Never leak them to callers.
  const double v = min_.load(std::memory_order_relaxed);
  return (count() == 0 || !std::isfinite(v)) ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return (count() == 0 || !std::isfinite(v)) ? 0.0 : v;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lower = i == 0 ? 0.0 : BucketBound(i - 1);
      const double upper = BucketBound(i);
      const double frac =
          std::clamp((target - before) / static_cast<double>(counts[i]),
                     0.0, 1.0);
      const double estimate = lower + (upper - lower) * frac;
      // The exact extremes are known; clamping makes degenerate (single
      // value, single bucket) histograms exact. Ordered explicitly —
      // std::clamp is UB when lo > hi, which an all-NaN histogram (both
      // extremes still at their sentinels) used to trigger, returning +inf.
      const double lo = min();
      const double hi = max();
      return lo <= hi ? std::min(std::max(estimate, lo), hi) : estimate;
    }
  }
  return max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %s", JsonEscape(name).c_str(),
                     JsonNumber(g->value()).c_str());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}",
        JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h->count()),
        JsonNumber(h->sum()).c_str(), JsonNumber(h->min()).c_str(),
        JsonNumber(h->max()).c_str(), JsonNumber(h->mean()).c_str(),
        JsonNumber(h->Quantile(0.50)).c_str(),
        JsonNumber(h->Quantile(0.95)).c_str(),
        JsonNumber(h->Quantile(0.99)).c_str());
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << ToJson();
  return out.good() ? Status::OK()
                    : Status::Internal("write error on '" + path + "'");
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments may be touched from static destructors
  // and the atexit snapshot hook.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* GetCounter(const std::string& name) {
  if (!Enabled()) return nullptr;
  return MetricsRegistry::Global().counter(name);
}

Gauge* GetGauge(const std::string& name) {
  if (!Enabled()) return nullptr;
  return MetricsRegistry::Global().gauge(name);
}

Histogram* GetHistogram(const std::string& name) {
  if (!Enabled()) return nullptr;
  return MetricsRegistry::Global().histogram(name);
}

std::string DefaultExportPath() {
  const char* env = std::getenv("CFX_METRICS");
  if (env != nullptr) {
    const std::string value = env;
    if (value.size() > 5 && value.rfind(".json") == value.size() - 5) {
      return value;
    }
  }
  return "metrics.json";
}

Status ExportIfEnabled() {
  if (!Enabled()) return Status::OK();
  return MetricsRegistry::Global().WriteJson(DefaultExportPath());
}

}  // namespace metrics
}  // namespace cfx
