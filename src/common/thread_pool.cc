#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/metrics.h"

namespace cfx {

namespace {
thread_local bool tls_in_worker = false;
thread_local int tls_forced_serial = 0;
}  // namespace

ThreadPool::ScopedSerial::ScopedSerial() { ++tls_forced_serial; }
ThreadPool::ScopedSerial::~ScopedSerial() { --tls_forced_serial; }
bool ThreadPool::ScopedSerial::active() { return tls_forced_serial > 0; }

/// Shared state of one ParallelFor invocation. Lives on the caller's stack;
/// workers may only touch it between adopting it (under the pool mutex) and
/// dropping their ref, and the caller only destroys it once every ref is
/// gone and all chunks have completed.
struct ThreadPool::LoopState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t total_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<int> refs{0};
  /// Threads (caller or worker) that executed at least one chunk; feeds the
  /// threadpool.loop.utilization histogram.
  std::atomic<int> participants{0};

  std::mutex done_mu;
  std::condition_variable done_cv;

  std::mutex error_mu;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t threads) : threads_(std::max<size_t>(threads, 1)) {
  workers_.reserve(threads_ - 1);
  for (size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t n = 0;
    if (const char* env = std::getenv("CFX_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) n = static_cast<size_t>(v);
    }
    if (n == 0) {
      n = std::thread::hardware_concurrency();
      if (n == 0) n = 1;
    }
    // Leaked on purpose: workers outlive every static destructor this way.
    return new ThreadPool(n);
  }();
  return *pool;
}

size_t ThreadPool::GlobalThreads() { return Global().size(); }

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::WorkerMain() {
  tls_in_worker = true;
  // Generation guard, not a pointer comparison: successive LoopState stack
  // objects can land on the same address.
  unsigned long long seen_gen = 0;
  while (true) {
    LoopState* loop = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return shutdown_ || (active_loop_ != nullptr && loop_gen_ != seen_gen);
      });
      if (shutdown_) return;
      loop = active_loop_;
      seen_gen = loop_gen_;
      // Adopt under the pool mutex so the caller, which clears active_loop_
      // under the same mutex before waiting, always observes this ref.
      loop->refs.fetch_add(1, std::memory_order_relaxed);
    }
    DrainLoop(loop);
  }
}

void ThreadPool::DrainLoop(LoopState* loop) {
  size_t executed = 0;
  while (true) {
    const size_t chunk = loop->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= loop->total_chunks) break;
    const size_t b = loop->begin + chunk * loop->grain;
    const size_t e = std::min(b + loop->grain, loop->end);
    try {
      (*loop->body)(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop->error_mu);
      if (!loop->error) loop->error = std::current_exception();
    }
    ++executed;
    loop->done_chunks.fetch_add(1, std::memory_order_acq_rel);
  }
  if (executed > 0) {
    loop->participants.fetch_add(1, std::memory_order_relaxed);
    // "Steals": chunks a pool worker pulled off a loop some other thread
    // submitted, as opposed to chunks the submitting thread ran itself.
    static metrics::Counter* steals =
        metrics::GetCounter("threadpool.steals");
    if (steals != nullptr && tls_in_worker) steals->Add(executed);
  }
  const int remaining = loop->refs.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (remaining == 0 &&
      loop->done_chunks.load(std::memory_order_acquire) == loop->total_chunks) {
    std::lock_guard<std::mutex> lock(loop->done_mu);
    loop->done_cv.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  const size_t range = end - begin;
  size_t g = grain;
  if (g == 0) g = std::max<size_t>(1, range / (threads_ * 4));

  // Serial fallback: pool of one, a range that fits a single chunk, a
  // nested call from inside a worker, or a forced-serial scope — run inline
  // with no synchronisation.
  if (threads_ == 1 || range <= g || InWorker() || ScopedSerial::active()) {
    static metrics::Counter* inline_loops =
        metrics::GetCounter("threadpool.inline_loops");
    if (inline_loops != nullptr) inline_loops->Add(1);
    body(begin, end);
    return;
  }

  LoopState loop;
  loop.begin = begin;
  loop.end = end;
  loop.grain = g;
  loop.total_chunks = (range + g - 1) / g;
  loop.body = &body;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_loop_ != nullptr) {
      // Another top-level loop is in flight (concurrent callers): run inline
      // rather than queueing behind it.
      body(begin, end);
      return;
    }
    active_loop_ = &loop;
    ++loop_gen_;
    loop.refs.fetch_add(1, std::memory_order_relaxed);  // the caller's ref
  }
  static metrics::Counter* loops = metrics::GetCounter("threadpool.loops");
  static metrics::Counter* chunks = metrics::GetCounter("threadpool.chunks");
  if (loops != nullptr) loops->Add(1);
  if (chunks != nullptr) chunks->Add(loop.total_chunks);
  wake_.notify_all();

  DrainLoop(&loop);

  {
    // No new worker may adopt the loop from here on; every adopter so far
    // has its ref registered (both happen under mu_).
    std::lock_guard<std::mutex> lock(mu_);
    active_loop_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> lock(loop.done_mu);
    loop.done_cv.wait(lock, [&] {
      return loop.refs.load(std::memory_order_acquire) == 0 &&
             loop.done_chunks.load(std::memory_order_acquire) ==
                 loop.total_chunks;
    });
  }
  static metrics::Histogram* utilization =
      metrics::GetHistogram("threadpool.loop.utilization");
  if (utilization != nullptr) {
    utilization->Record(
        static_cast<double>(loop.participants.load(std::memory_order_relaxed)) /
        static_cast<double>(threads_));
  }
  if (loop.error) std::rethrow_exception(loop.error);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  ThreadPool::Global().ParallelFor(begin, end, grain, body);
}

double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& body) {
  if (end <= begin) return 0.0;
  const size_t range = end - begin;
  const size_t g = grain == 0 ? std::max<size_t>(1, range / 64) : grain;
  const size_t chunks = (range + g - 1) / g;
  // Chunk layout depends only on (range, grain): partials are combined in
  // chunk-index order below, so the sum is the same for every pool size.
  std::vector<double> partials(chunks, 0.0);
  ParallelFor(0, chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t b = begin + c * g;
      const size_t e = std::min(b + g, end);
      partials[c] = body(b, e);
    }
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace cfx
