// Scoped-span runtime tracer emitting Chrome trace_event JSON.
//
// Usage:
//   {
//     CFX_TRACE_SPAN("vae/epoch");
//     ... one epoch ...
//   }  // span closes here
//
// Each span records one Chrome "complete" ("ph":"X") event — name, start
// timestamp, duration, thread id — loadable in chrome://tracing or Perfetto.
// A span that closes while metrics collection is on (src/common/metrics.h)
// also records its duration, in seconds, into the latency histogram of the
// same name, so every span site doubles as a p50/p95/p99 source in
// metrics.json.
//
// Gating mirrors the metrics layer: CFX_TRACE enables event capture,
// latched on first use. A span whose construction finds both tracing and
// metrics disabled is inert — no clock reads, no allocation, no locking.
// Event capture appends to a bounded global buffer under a mutex; spans are
// deliberately coarse (epochs, phases, per-iteration at most), so the lock
// is uncontended in practice and events beyond the cap are counted and
// dropped rather than growing without bound.
//
// When CFX_TRACE is enabled a process-exit hook writes trace.json (or
// $CFX_TRACE itself when the value ends in ".json"); ExportIfEnabled()
// writes the same file on demand.
#ifndef CFX_COMMON_TRACE_H_
#define CFX_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace cfx {
namespace trace {

/// True when CFX_TRACE enables event capture (any value other than empty,
/// "0", "false", "off" or "no"). Latched on first call;
/// internal::ForceEnabledForTest overrides.
bool Enabled();

/// True when constructing a span does any work at all — event capture or
/// span-latency metrics. Callers building dynamic span names can skip the
/// string work entirely when this is false.
bool SpansActive();

/// RAII span. Construction with an empty name, or while SpansActive() is
/// false, yields an inert object.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Number of captured (not dropped) events currently buffered.
size_t EventCount();

/// Events dropped after the buffer cap was reached.
uint64_t DroppedEventCount();

/// Writes the buffered events as Chrome trace_event JSON:
///   {"traceEvents": [{"name": .., "cat": "cfx", "ph": "X", "ts": ..,
///                     "dur": .., "pid": 1, "tid": ..}, ...],
///    "displayTimeUnit": "ms"}
/// Timestamps/durations are microseconds since the first span.
Status WriteJson(const std::string& path);

/// Where ExportIfEnabled and the exit hook write: $CFX_TRACE when its value
/// ends in ".json", else "trace.json" in the CWD.
std::string DefaultExportPath();

/// Writes WriteJson(DefaultExportPath()). OK no-op when capture is disabled.
Status ExportIfEnabled();

namespace internal {
/// Test hooks: override the latched CFX_TRACE state (-1 restores the
/// environment latch) and clear the event buffer.
void ForceEnabledForTest(int enabled);
void ClearForTest();
}  // namespace internal

}  // namespace trace
}  // namespace cfx

#define CFX_TRACE_SPAN_CONCAT2(a, b) a##b
#define CFX_TRACE_SPAN_CONCAT(a, b) CFX_TRACE_SPAN_CONCAT2(a, b)
/// Opens a scoped span covering the rest of the enclosing block.
#define CFX_TRACE_SPAN(name) \
  ::cfx::trace::ScopedSpan CFX_TRACE_SPAN_CONCAT(cfx_trace_span_, __LINE__)(name)

#endif  // CFX_COMMON_TRACE_H_
