// Process-wide runtime metrics: monotonic counters, gauges and latency
// histograms with quantile snapshots.
//
// Design notes:
//  * Gated by the CFX_METRICS environment variable, latched on first use.
//    When disabled, GetCounter/GetGauge/GetHistogram return nullptr so an
//    instrumentation site costs one pointer load and branch:
//
//      static metrics::Counter* calls = metrics::GetCounter("matmul.calls");
//      if (calls != nullptr) calls->Add(1);
//
//    Call sites cache the handle in a function-local static — the registry
//    map is consulted once per site, never per event.
//  * Lock-cheap and CFX_THREADS-safe: registry lookups take a mutex (rare,
//    amortised by the static caching above); the event paths — Counter::Add,
//    Gauge::Set, Histogram::Record — are relaxed atomics only, safe from
//    inside any ParallelFor body.
//  * Histograms bucket values on an exponential grid (2^(1/8) growth, so a
//    quantile estimate is within ~9% of the true value) and additionally
//    track exact count/sum/min/max. Values are unit-agnostic doubles; span
//    timings record seconds.
//  * When CFX_METRICS enabled a process-exit hook snapshots the global
//    registry to metrics.json (or to $CFX_METRICS itself when the value
//    ends in ".json"); ExportIfEnabled() writes the same snapshot on
//    demand, e.g. from a bench main before shutdown.
#ifndef CFX_COMMON_METRICS_H_
#define CFX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace cfx {
namespace metrics {

/// True when CFX_METRICS enables collection (any value other than empty,
/// "0", "false", "off" or "no", case-insensitive). Latched from the
/// environment on first call; test code can override via
/// internal::ForceEnabledForTest.
bool Enabled();

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Concurrent latency/value histogram on an exponential bucket grid.
class Histogram {
 public:
  /// Bucket i covers (kMinBound * 2^((i-1)/8), kMinBound * 2^(i/8)];
  /// bucket 0 additionally absorbs everything <= kMinBound (including
  /// zero and negatives). 400 buckets reach from 1e-9 up to ~1.1e6.
  static constexpr size_t kNumBuckets = 400;
  static constexpr double kMinBound = 1e-9;

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when empty (or when only NaN
  /// values were recorded — NaN never beats the extreme sentinels).
  double min() const;
  double max() const;
  double mean() const;

  /// Quantile estimate for q in [0, 1] by linear interpolation inside the
  /// owning bucket, clamped to the observed [min, max]. Exact for
  /// single-valued histograms, within one bucket's relative width (~9%)
  /// otherwise. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named instrument registry. Instruments are created on first request and
/// live as long as the registry; returned pointers are stable.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// JSON snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count": .., "sum": .., "min": .., "max": ..,
  ///                            "mean": .., "p50": .., "p95": .., "p99": ..}}}
  /// Maps are name-sorted, so snapshots of the same state are byte-stable.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  /// The process-wide registry (leaked on purpose so exit hooks and static
  /// destructors can still record/read).
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Global-registry instrument handles; nullptr when collection is disabled.
/// Cache the result in a function-local static at the instrumentation site.
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

/// Where ExportIfEnabled and the exit hook write the snapshot: $CFX_METRICS
/// when its value ends in ".json", else "metrics.json" in the CWD.
std::string DefaultExportPath();

/// Snapshots the global registry to DefaultExportPath(). OK no-op when
/// collection is disabled.
Status ExportIfEnabled();

namespace internal {
/// Test hook: overrides the latched enabled state (no exit hook is
/// registered either way). Pass -1 to restore the environment latch.
void ForceEnabledForTest(int enabled);
}  // namespace internal

}  // namespace metrics
}  // namespace cfx

#endif  // CFX_COMMON_METRICS_H_
