// Execution layer: a reusable worker pool and data-parallel loop helpers.
//
// Design notes:
//  * One process-wide pool (ThreadPool::Global()) sized from the CFX_THREADS
//    environment variable, falling back to std::thread::hardware_concurrency.
//    Every parallel kernel in cfx dispatches through it, so the whole stack
//    (tensor kernels, autodiff backward, t-SNE, FACE graph construction) is
//    throttled by a single knob.
//  * ParallelFor splits [begin, end) into grain-sized chunks; worker threads
//    and the calling thread drain chunks from a shared atomic cursor. With a
//    pool of size 1 (or a range smaller than one grain) the body runs inline
//    on the caller — zero synchronisation, byte-for-byte the serial path.
//  * Determinism: chunk boundaries depend only on (range, grain), never on
//    the number of threads, and chunks write disjoint outputs. Reductions go
//    through ParallelReduce, which combines per-chunk partials in chunk-index
//    order — so results are identical for every CFX_THREADS value.
//  * Nested ParallelFor calls (a kernel invoked from inside a worker) run
//    inline on the worker instead of re-entering the pool: no deadlock, no
//    oversubscription.
//  * Exceptions thrown by a chunk are captured and rethrown on the calling
//    thread after the loop has quiesced.
#ifndef CFX_COMMON_THREAD_POOL_H_
#define CFX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfx {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the remaining
  /// lane). `threads == 1` creates no workers at all.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (workers + caller). Always >= 1.
  size_t size() const { return threads_; }

  /// The process-wide pool. Sized once, on first use, from CFX_THREADS (an
  /// integer >= 1) or hardware_concurrency when unset/invalid.
  static ThreadPool& Global();

  /// Lane count of the global pool without forcing its construction order
  /// elsewhere; equals Global().size().
  static size_t GlobalThreads();

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) in grain-sized
  /// chunks. Blocks until every chunk has run; rethrows the first chunk
  /// exception. `grain == 0` picks a grain targeting ~4 chunks per lane.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// True when called from inside one of this pool's workers (ParallelFor
  /// then runs inline; see header comment).
  static bool InWorker();

  /// RAII guard forcing every ParallelFor on the current thread to run
  /// inline and sequentially while alive. Chunk layouts are unchanged, so
  /// determinism tests can compare pooled against serial execution bitwise.
  class ScopedSerial {
   public:
    ScopedSerial();
    ~ScopedSerial();
    ScopedSerial(const ScopedSerial&) = delete;
    ScopedSerial& operator=(const ScopedSerial&) = delete;
    static bool active();
  };

 private:
  struct LoopState;

  void WorkerMain();
  /// Executes chunks of `loop` until its cursor is exhausted.
  static void DrainLoop(LoopState* loop);

  size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  LoopState* active_loop_ = nullptr;  // guarded by mu_
  unsigned long long loop_gen_ = 0;   // guarded by mu_; bumps per loop
  bool shutdown_ = false;             // guarded by mu_
};

/// ParallelFor on the global pool.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Deterministic parallel reduction: `body(chunk_begin, chunk_end)` returns a
/// partial double; partials are combined by summation in chunk-index order,
/// so the result is independent of the thread count (chunk layout depends
/// only on the range and grain). Uses the global pool.
double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& body);

}  // namespace cfx

#endif  // CFX_COMMON_THREAD_POOL_H_
