// Lock-free bloom filter over 64-bit keys — the mutex-skipping front of the
// sharded PredictionCache (src/baselines/method.cc).
//
// A fixed bit array (power-of-two size) with k probe positions per key,
// derived by double hashing from two splitmix64 finalizer passes. Add sets
// bits with relaxed fetch_or; MaybeContains reads with relaxed loads. The
// filter therefore guarantees only its classic one-sided property under
// concurrency:
//
//   * No false negatives for *observed* inserts: once a thread has seen
//     Add(k) complete (through any synchronizing operation), MaybeContains(k)
//     is true forever — bits are never cleared.
//   * A racing reader may miss an in-flight Add (relaxed ordering gives no
//     publication guarantee by itself). Callers must treat "false" as
//     "probably absent" and fall back to an authoritative, properly
//     synchronized structure — the PredictionCache re-checks its shard map
//     under the shard mutex before inserting, so a missed bit costs one
//     redundant model pass, never a wrong answer.
//   * False positives happen at the usual rate ~(1 - e^(-kn/m))^k; callers
//     fall through to the exact lookup.
//
// This mirrors the role of pixie's bloomfilter.h in front of its shared
// state: the common cold path pays a few relaxed loads instead of a mutex.
#ifndef CFX_COMMON_BLOOM_FILTER_H_
#define CFX_COMMON_BLOOM_FILTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfx {

class BloomFilter {
 public:
  /// 2^log2_bits bits (clamped to [6, 30] — 8 bytes to 128 MiB) and
  /// `num_probes` probe positions per key (clamped to [1, 16]). The
  /// defaults (2^16 bits = 8 KiB, 4 probes) keep the false-positive rate
  /// under 2e-4 up to ~2000 distinct keys.
  explicit BloomFilter(size_t log2_bits = 16, size_t num_probes = 4)
      : words_(size_t{1} << (Clamp(log2_bits, 6, 30) - 6)),
        bit_mask_((uint64_t{1} << Clamp(log2_bits, 6, 30)) - 1),
        probes_(Clamp(num_probes, 1, 16)) {}

  BloomFilter(const BloomFilter&) = delete;
  BloomFilter& operator=(const BloomFilter&) = delete;

  /// Marks `key` present. Safe from any thread; relaxed ordering (see the
  /// file comment for what that does and does not promise).
  void Add(uint64_t key) {
    uint64_t probe = Mix(key);
    const uint64_t step = Mix(key ^ kStepSalt) | 1;  // Odd: hits all bits.
    for (size_t i = 0; i < probes_; ++i) {
      const uint64_t bit = probe & bit_mask_;
      words_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                                std::memory_order_relaxed);
      probe += step;
    }
  }

  /// False: definitely never Add-ed (up to the relaxed-visibility caveat).
  /// True: probably present.
  bool MaybeContains(uint64_t key) const {
    uint64_t probe = Mix(key);
    const uint64_t step = Mix(key ^ kStepSalt) | 1;
    for (size_t i = 0; i < probes_; ++i) {
      const uint64_t bit = probe & bit_mask_;
      if ((words_[bit >> 6].load(std::memory_order_relaxed) &
           (uint64_t{1} << (bit & 63))) == 0) {
        return false;
      }
      probe += step;
    }
    return true;
  }

  size_t bit_count() const { return bit_mask_ + 1; }
  size_t num_probes() const { return probes_; }

 private:
  static constexpr uint64_t kStepSalt = 0x9e3779b97f4a7c15ULL;

  static size_t Clamp(size_t v, size_t lo, size_t hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  }

  /// splitmix64 finalizer: full-avalanche mix so sequential or low-entropy
  /// keys (e.g. FNV hashes of near-identical batches) spread evenly.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::vector<std::atomic<uint64_t>> words_;
  uint64_t bit_mask_;
  size_t probes_;
};

}  // namespace cfx

#endif  // CFX_COMMON_BLOOM_FILTER_H_
