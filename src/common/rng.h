// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of cfx (dataset synthesis, weight init, dropout,
// the reparameterisation trick, random-search baselines, t-SNE init) draw
// from Rng so that every experiment is reproducible from a single seed.
// The core generator is SplitMix64: tiny state, excellent statistical
// quality for simulation purposes, and trivially splittable.
#ifndef CFX_COMMON_RNG_H_
#define CFX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfx {

/// Deterministic 64-bit PRNG with convenience samplers. Copyable; copies
/// continue the same stream independently.
class Rng {
 public:
  /// Seeds the stream. Two Rngs with the same seed produce identical output.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached spare deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Normal truncated by resampling to [lo, hi]. Falls back to clamping
  /// after 64 rejections so pathological bounds cannot livelock.
  double TruncatedNormal(double mean, double stddev, double lo, double hi);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index according to (unnormalised, non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles indices [0, n) and returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child stream; deterministic in (state, salt).
  Rng Split(uint64_t salt);

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cfx

#endif  // CFX_COMMON_RNG_H_
