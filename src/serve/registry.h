// Multi-model serving: refcounted pipeline ownership and a bundle-keyed
// model registry with LRU residency — the multi-model half of ROADMAP
// item 1 (the single-model scheduler shipped in PR 7).
//
// Ownership model. A PipelineHandle owns one servable pipeline end to end:
// the Experiment (encoder + classifier + per-model sharded PredictionCache)
// plus the fitted generator and any extra CfMethods, with a per-handle
// method table resolved by key. Handles circulate as
// std::shared_ptr<PipelineHandle>: the registry holds one reference while
// the model is resident, and every queued request pins one more for as
// long as it is in flight — so eviction (the registry dropping its
// reference) can never tear down a pipeline a dispatch is still reading.
// The last reference, wherever it is, runs the teardown.
//
// Residency. ModelRegistry maps model id -> bundle path. Registration is
// cheap: a header-only probe (ProbePipelineBundle) validates magic,
// version, format and this build's schema fingerprint without reading a
// single weight byte. The pipeline itself is cold-started lazily on first
// Acquire via Experiment::Restore (~3.2 ms) and cached; an LRU cap bounds
// how many restored pipelines stay resident at once. Evicting a pinned
// model only unlinks it from the registry — in-flight requests finish on
// their pinned handle and the memory is reclaimed when the last pin drops.
//
// Metrics: registry/resident (gauge), registry/evictions (counter),
// registry/coldstart_ms (histogram over Restore + method warm-up).
#ifndef CFX_SERVE_REGISTRY_H_
#define CFX_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/method.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/artifact.h"

namespace cfx {
namespace serve {

/// One servable method slot in a pipeline's method table. Stable address
/// for the lifetime of its PipelineHandle — queued requests hold
/// PipelineMethod pointers (plus a handle pin that keeps them valid).
struct PipelineMethod {
  CfMethod* method = nullptr;
  std::string key;         ///< Registration key ("ours", "wachter", ...).
  /// Precomputed dispatch span/histogram name: "serve/dispatch/<key>" for
  /// the embedded (single-model) table, "serve/dispatch/<model>/<key>"
  /// for registry models — per-model latency series for free.
  std::string span_label;
  /// Rows dispatched through this slot, as a metrics series named
  /// span_label; null when metrics collection is disabled.
  metrics::Counter* dispatched = nullptr;
  bool batchable = false;
  size_t width = 0;  ///< Expected instance width (encoder output).
};

/// A refcounted, self-contained servable pipeline: model identity, the
/// owned Experiment + generator (for restored bundles), optional owned
/// extra methods, and the key -> method table.
///
/// Two flavours:
///   * owning — built from a RestoredPipeline; the handle owns experiment,
///     generator, and the per-model PredictionCache inside the experiment.
///   * embedded — CfServer's single-model compatibility table (empty model
///     id); methods are borrowed and must outlive the server, exactly the
///     PR 5 contract.
class PipelineHandle {
 public:
  /// Embedded table: no owned pipeline, methods borrowed via AddMethod.
  explicit PipelineHandle(std::string model_id = std::string())
      : model_id_(std::move(model_id)) {}

  /// Owning: adopts a restored pipeline. Call AddMethod (e.g. with
  /// generator()) to expose methods; RegisterDefaultMethods adds the
  /// restored generator under "ours".
  PipelineHandle(std::string model_id, RestoredPipeline restored)
      : model_id_(std::move(model_id)),
        experiment_(std::move(restored.experiment)),
        generator_(std::move(restored.generator)) {}

  PipelineHandle(const PipelineHandle&) = delete;
  PipelineHandle& operator=(const PipelineHandle&) = delete;

  const std::string& model_id() const { return model_id_; }
  Experiment* experiment() { return experiment_.get(); }
  FeasibleCfGenerator* generator() { return generator_.get(); }

  /// Registers `method` (borrowed; must outlive this handle) under `key`.
  /// Batchable methods are warmed with one throwaway single-row
  /// GenerateMany so lazily-built inference plans exist before concurrent
  /// workers touch them. Re-registration under the same key replaces the
  /// slot in place. Fails on a null method.
  Status AddMethod(const std::string& key, CfMethod* method);

  /// Same, transferring ownership of `method` to this handle.
  Status AddMethod(const std::string& key, std::unique_ptr<CfMethod> method);

  /// Adds the owned generator under "ours" — the default table for a
  /// restored bundle. Fails if this handle owns no generator.
  Status RegisterDefaultMethods();

  /// Key lookup. Linear scan — a pipeline exposes a handful of methods and
  /// this sits on the per-request submit path where a short SSO-string
  /// compare beats hashing.
  const PipelineMethod* FindMethod(const std::string& key) const;

  size_t num_methods() const { return methods_.size(); }

 private:
  std::string model_id_;
  std::unique_ptr<Experiment> experiment_;
  std::unique_ptr<FeasibleCfGenerator> generator_;
  std::vector<std::unique_ptr<CfMethod>> owned_methods_;
  /// Deque for address stability: queued requests hold PipelineMethod
  /// pointers across later AddMethod calls.
  std::deque<PipelineMethod> methods_;
};

/// Registry tuning knobs.
struct ModelRegistryConfig {
  /// Max pipelines kept resident at once (clamped to >= 1). Acquire beyond
  /// the cap evicts the least-recently-used resident model first.
  size_t max_resident = 4;
};

/// Aggregate registry accounting, for tests and ops. Snapshot semantics.
struct ModelRegistryStats {
  size_t registered = 0;  ///< Known model ids.
  size_t resident = 0;    ///< Cold-started pipelines currently cached.
  size_t coldstarts = 0;  ///< Restore runs (first Acquire or post-evict).
  size_t evictions = 0;   ///< Residency-cap evictions.
};

/// Thread-safe model id -> bundle path -> resident PipelineHandle map with
/// lazy cold start and LRU residency.
class ModelRegistry {
 public:
  /// Hook run once per cold start, after Restore, to populate the handle's
  /// method table. Runs under the registry lock — keep it to method
  /// registration (Fit-free baselines, generator aliases). When null,
  /// RegisterDefaultMethods() is applied.
  using MethodFactory = std::function<Status(PipelineHandle*)>;

  explicit ModelRegistry(const ModelRegistryConfig& config = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Admits `path` under `model_id` after a header-only probe: magic,
  /// version, format, dataset/scale names and this build's schema
  /// fingerprint are all validated without loading weights. No cold start
  /// happens here. Re-registering an id replaces the registration and
  /// drops any resident pipeline for it.
  Status Register(const std::string& model_id, const std::string& path,
                  MethodFactory factory = nullptr);

  /// The resident pipeline for `model_id`, cold-starting it on first use
  /// (Experiment::Restore + method warm-up, timed into
  /// registry/coldstart_ms) and evicting the LRU resident model when the
  /// residency cap would be exceeded. The returned shared_ptr is the
  /// caller's pin: the pipeline cannot be torn down while it is held, even
  /// if the registry evicts the model meanwhile.
  StatusOr<std::shared_ptr<PipelineHandle>> Acquire(
      const std::string& model_id);

  /// Probe metadata recorded at registration.
  StatusOr<PipelineBundleInfo> Info(const std::string& model_id) const;

  ModelRegistryStats stats() const;
  const ModelRegistryConfig& config() const { return config_; }

 private:
  struct Entry {
    std::string path;
    PipelineBundleInfo info;
    MethodFactory factory;
    /// Null while not resident. The registry's reference; requests pin
    /// their own copies.
    std::shared_ptr<PipelineHandle> handle;
    /// Global LRU clock value of the last Acquire (relaxed; an approximate
    /// order is enough for eviction choice).
    std::atomic<uint64_t> last_used{0};
  };

  /// Runs the cold start for `entry` (mu_ held exclusively).
  Status ColdStartLocked(const std::string& model_id, Entry* entry);
  /// Drops LRU residents until the cap holds, never evicting `keep`.
  /// Prefers unpinned residents (registry holds the only reference);
  /// evicting a pinned one only unlinks it — pins keep it alive.
  void EvictOverCapLocked(const Entry* keep);
  void UpdateResidentGaugeLocked();

  ModelRegistryConfig config_;
  /// Guards entries_ (structure and Entry::handle/factory). Acquire's hot
  /// path (already resident) takes it shared; cold starts and Register
  /// take it exclusive.
  mutable std::shared_mutex mu_;
  /// unique_ptr values so Entry addresses survive rehash.
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::atomic<uint64_t> tick_{0};  ///< LRU clock.

  std::atomic<size_t> coldstarts_{0};
  std::atomic<size_t> evictions_{0};
  size_t resident_ = 0;  ///< Guarded by mu_ (exclusive).

  /// Metric handles; null when metrics collection is disabled.
  metrics::Gauge* resident_gauge_ = nullptr;
  metrics::Counter* eviction_counter_ = nullptr;
  metrics::Histogram* coldstart_hist_ = nullptr;
};

}  // namespace serve
}  // namespace cfx

#endif  // CFX_SERVE_REGISTRY_H_
