// Micro-batching CF request scheduler — the serving front of ROADMAP's
// "production-scale serving" north star.
//
// Many producer threads Submit single-instance requests; a small pool of
// worker threads coalesces up to `max_batch` compatible requests (same
// model and registered method) that arrive within a `max_delay` window into
// ONE batched pass through the frozen classifier + VAE Infer path, then
// fans the per-row results back through per-request futures.
//
// Multi-model serving: constructed with a ModelRegistry, the server routes
// requests by CfRequest::model — the submit path Acquires the model's
// refcounted PipelineHandle (lazily cold-starting it from its .cfxb
// bundle) and pins it to the request, so a registry eviction can never
// tear down a pipeline with traffic in flight. Requests a batch leader
// pops for a different (model, method) than the one it is coalescing are
// parked in per-entry FIFO lanes; leaders seed new batches from the lanes
// round-robin before touching the ring, so one hot model cannot starve
// the rest. An empty model id resolves against the embedded single-model
// table fed by RegisterMethod — the PR 5 API, unchanged.
//
// The submit path is lock-free: producers push onto a bounded MPSC ring
// (src/common/mpsc_queue.h) — a CAS claim plus a release store, no mutex,
// no condvar, no syscall on the hot path. Workers drain the ring with a
// spin-then-park loop: a short bounded spin rides out inter-arrival gaps,
// then the worker registers itself in a wake-threshold word and sleeps on
// a condvar, so an idle server still costs zero CPU. Producers consult
// that single atomic after pushing and only take the park mutex when a
// sleeper actually needs waking — under sustained load the threshold reads
// SIZE_MAX and a submit never touches a lock.
//
// Contracts:
//   * Row results are bitwise identical to a single-request Generate on the
//     same method (the generation pass is row-local end to end); serve_test
//     pins CFX_THREADS=1 and proves it.
//   * The queue is bounded: a full ring rejects immediately with
//     ResourceExhausted — it never blocks the producer and never grows.
//     The bound is max_queue rounded up to the next power of two.
//   * A request whose deadline passes before dispatch resolves with
//     DeadlineExceeded instead of occupying batch rows.
//   * Shutdown stops intake, lets running workers drain the queue, and
//     cancels anything still pending (no workers) with Cancelled.
//   * Promise resolution is batched: a dispatch stages every row's response
//     in a contiguous arena, then fulfills the promises in submission order
//     in one tight loop after all scheduler state is released. A client
//     draining its futures oldest-first pays one futex wake per batch: by
//     the time it runs after the first set_value, the rest of the batch is
//     already resolved (set_value on a future nobody waits on is just an
//     atomic store — the fulfillment loop outpaces a thread wakeup).
//
// Batching is only applied to methods that opt in via
// CfMethod::SupportsBatchedGenerate; other methods fall back to the
// sequential GenerateMany path, serialised on a per-server mutex because
// their per-call state (RNG streams, member workspaces) is not
// concurrency-safe.
#ifndef CFX_SERVE_SERVER_H_
#define CFX_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/method.h"
#include "src/common/metrics.h"
#include "src/common/mpsc_queue.h"
#include "src/common/status.h"
#include "src/serve/registry.h"
#include "src/tensor/matrix.h"

namespace cfx {
namespace stream {
class StreamIngest;
}  // namespace stream

namespace serve {

/// Scheduler tuning knobs.
struct CfServerConfig {
  /// Max rows coalesced into one dispatched batch.
  size_t max_batch = 32;
  /// Bound on queued (not yet dispatched) requests, rounded up to the next
  /// power of two (the submit ring's capacity); Submit rejects with
  /// ResourceExhausted once reached.
  size_t max_queue = 256;
  /// Dispatcher threads spawned by Start(). 0 is legal (nothing dispatches
  /// until Start is called with workers, or ever — used by backpressure
  /// tests); 1 gives strict per-method FIFO dispatch order.
  size_t workers = 1;
  /// How long the batch leader waits for more same-method arrivals before
  /// dispatching a partial batch. A full batch dispatches immediately.
  std::chrono::microseconds max_delay{500};
};

/// One explanation request: a single encoded instance bound for a
/// registered method, with an optional absolute deadline.
struct CfRequest {
  Matrix instance;     ///< (1 x encoded_width) encoded row.
  std::string method;  ///< Method key within the model's table.
  /// Registry model id; empty routes to the embedded single-model table
  /// fed by RegisterMethod.
  std::string model;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Per-request result. `status` is OK on success; on error (timeout,
/// rejection, shutdown) the payload fields are empty/zero.
struct CfResponse {
  Status status = Status::OK();
  Matrix cf;       ///< (1 x d) projected counterfactual.
  Matrix cf_raw;   ///< (1 x d) unprojected generator output.
  int desired = 0;    ///< Desired (opposite) class.
  int predicted = 0;  ///< Black-box prediction on `cf`.
};

/// Scheduler counters, for tests and ops. Snapshot semantics.
struct CfServerStats {
  size_t submitted = 0;      ///< Requests accepted into the queue.
  size_t rejected_full = 0;  ///< Submits bounced with ResourceExhausted.
  size_t expired = 0;        ///< Requests resolved DeadlineExceeded.
  size_t cancelled = 0;      ///< Requests cancelled at shutdown.
  size_t completed = 0;      ///< Requests resolved OK.
  size_t batches = 0;        ///< Dispatched batches (any size).
  size_t batched_rows = 0;   ///< Rows across all dispatched batches.
};

/// Bounded lock-free-submit micro-batching scheduler over registered
/// CfMethods and (optionally) a ModelRegistry of servable pipelines.
///
/// Lifecycle: construct, RegisterMethod (all registration before Start),
/// Start, Submit from any thread, Shutdown (also run by the destructor).
/// Registry models need no per-server registration: Submit resolves them
/// through the registry at request time.
class CfServer {
 public:
  /// `registry` (borrowed, may be null, must outlive the server) backs
  /// requests that carry a model id; without one, only the embedded
  /// RegisterMethod table is servable.
  explicit CfServer(const CfServerConfig& config,
                    ModelRegistry* registry = nullptr);
  ~CfServer();

  CfServer(const CfServer&) = delete;
  CfServer& operator=(const CfServer&) = delete;

  /// Registers `method` under `key` in the embedded (empty-model-id)
  /// table. The method must outlive the server. Batchable methods are
  /// warmed with one throwaway single-row pass so lazily-built inference
  /// plans exist before concurrent workers touch them. Must be called
  /// before Start().
  void RegisterMethod(const std::string& key, CfMethod* method);

  /// Opt-in streaming ingest + drift re-scoring (ROADMAP item 2):
  /// `ingest` (borrowed, must outlive the server) is started by Start()
  /// and stopped by Shutdown(), and every OK dispatched row is offered to
  /// its drift reservoir. Detached servers pay exactly one null-pointer
  /// check per dispatched batch; the lock-free submit path is untouched
  /// either way. Must be called before Start().
  void AttachStreamIngest(stream::StreamIngest* ingest);

  /// Spawns the worker threads. Idempotent; a second call is a no-op.
  void Start();

  /// Enqueues a request. Always returns a future: on acceptance it resolves
  /// when a worker dispatches the batch; on rejection (unknown method, bad
  /// shape, full queue, stopped server) it is already resolved with the
  /// error status. Never blocks on a full queue, and never takes a lock
  /// unless a parked worker needs waking.
  std::future<CfResponse> Submit(CfRequest request);

  /// Stops intake, waits out in-flight submits, drains the queue through
  /// running workers, joins them, and cancels anything still pending with
  /// Cancelled. Idempotent.
  void Shutdown();

  CfServerStats stats() const;
  /// Queued-but-undispatched requests right now (ring + staged overflow).
  size_t queue_depth() const;
  const CfServerConfig& config() const { return config_; }

 private:
  /// A queued request: the promise rides along until resolution. Travels
  /// through the submit ring by value. `pin` keeps the owning
  /// PipelineHandle (and therefore `entry`) alive until the promise is
  /// resolved; it is empty for embedded-table requests, whose handle is
  /// owned by the server — the single-model hot path never bumps a shared
  /// refcount.
  struct Pending {
    Matrix row;
    const PipelineMethod* entry = nullptr;
    std::shared_ptr<PipelineHandle> pin;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::chrono::steady_clock::time_point enqueued;
    std::promise<CfResponse> promise;
  };

  /// Per-(model, method) FIFO of requests a batch leader popped from the
  /// ring while coalescing a different entry. A lane exists only while it
  /// holds at least one request (whose pin keeps `entry` valid); empty
  /// lanes are erased eagerly so no lane ever dangles past an eviction.
  struct Lane {
    const PipelineMethod* entry = nullptr;
    std::deque<Pending> fifo;
  };

  void WorkerLoop();
  /// Blocks (spin-then-park) until a request is available or the server is
  /// stopping with nothing left to drain; false means exit.
  bool NextPending(Pending* out);
  /// Non-blocking: moves same-entry requests from that entry's lane and
  /// the ring into `batch` up to max_batch. Expired requests are resolved
  /// in place; other entries' ring pops are parked in their lanes.
  void CollectMore(const PipelineMethod* entry, std::vector<Pending>* batch);
  /// Seeds a batch from the waiting lanes, round-robin: takes the front
  /// request of the first lane and rotates that lane to the back, so
  /// consecutive leaders serve different (model, method) entries before
  /// any entry is served twice. False when no lane holds work.
  bool TryTakeLaneAny(Pending* out);
  /// True when `entry`'s own lane holds queued work — the only staged work
  /// a window leader for `entry` can actually collect.
  bool LaneHasWorkFor(const PipelineMethod* entry) const;
  /// Resolves `p` with DeadlineExceeded if its deadline has passed.
  bool ResolveIfExpired(Pending* p);
  /// Runs one batch and resolves its promises through the response arena.
  void Dispatch(std::vector<Pending>* batch, nn::InferWorkspace* ws,
                std::vector<CfResponse>* arena);
  void CancelPending(Pending p);
  /// Re-derives wake_threshold_ from the parked-waiter bookkeeping.
  /// park_mu_ must be held.
  void RecomputeWakeThresholdLocked();
  void UpdateQueueGauge() const;
  /// Wakes parked workers if the queued depth satisfies the current wake
  /// threshold. Called by producers after a push and by Shutdown.
  void MaybeWakeWorkers();

  CfServerConfig config_;
  /// Multi-model routing table; null for embedded-only servers.
  ModelRegistry* registry_ = nullptr;
  /// Opt-in streaming ingest pipeline (borrowed); null when detached.
  /// Written only before Start() (AttachStreamIngest), read by dispatch
  /// workers — no synchronisation needed after the Start() fence.
  stream::StreamIngest* stream_ingest_ = nullptr;
  /// The embedded single-model method table (model id ""), fed by
  /// RegisterMethod. Heap-shared only so its PipelineMethod entries share
  /// the lane/pin machinery with registry handles; the server itself never
  /// hands out pins to it.
  std::shared_ptr<PipelineHandle> embedded_;

  /// Metric handles, resolved once at construction; all null when metrics
  /// collection is disabled, which keeps every instrumentation site at one
  /// pointer check (and skips the per-submit clock read that only feeds
  /// the wait histogram).
  metrics::Gauge* depth_gauge_ = nullptr;
  metrics::Histogram* batch_hist_ = nullptr;
  metrics::Histogram* wait_hist_ = nullptr;
  metrics::Counter* submit_spins_ = nullptr;
  metrics::Counter* park_count_ = nullptr;

  /// The lock-free submit path. Capacity = max_queue rounded to 2^k.
  MpscQueue<Pending> queue_;

  /// Per-entry overflow lanes for ring pops that belong to a different
  /// (model, method) than the batch being coalesced. Only workers touch
  /// this (producers never do), so its mutex is uncontended with one
  /// worker and lightly contended otherwise. Lane entries are older than
  /// anything in the ring, so workers drain the matching lane first —
  /// per-entry FIFO order is preserved — and seed new batches from the
  /// lanes round-robin, which is what makes cross-model dispatch fair.
  /// staged_count_ is the total across lanes.
  mutable std::mutex staged_mu_;
  std::list<Lane> lanes_;
  std::atomic<size_t> staged_count_{0};

  /// Parking lot. Workers that found the ring empty (after a bounded spin)
  /// sleep on park_cv_; batch leaders holding a partial batch nap here too,
  /// bounded by their delay window. wake_threshold_ is the producers' one
  /// cheap test: the smallest queued depth any sleeper is waiting for
  /// (1 for an idle worker, max_batch - collected for a window leader),
  /// SIZE_MAX when nobody sleeps. A stale threshold only delays a window
  /// leader until its delay expiry — it never strands an idle worker,
  /// because threshold 1 is satisfied by the push that just happened.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  size_t idle_parked_ = 0;          ///< Guarded by park_mu_.
  size_t window_waiters_ = 0;       ///< Guarded by park_mu_.
  size_t window_min_need_ = SIZE_MAX;  ///< Guarded by park_mu_.
  std::atomic<size_t> wake_threshold_{SIZE_MAX};

  /// Intake gate. Submit: ++inflight, check accepting_, push, --inflight.
  /// Shutdown: accepting_ = false, then spins until inflight drains — after
  /// that no push can race the final cancel sweep (all loads/stores
  /// seq_cst, so either the submit saw the closed gate or the shutdown
  /// waits out its push).
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> inflight_submits_{0};

  /// Lifecycle (Start/Shutdown) serialisation; never on the request path.
  std::mutex lifecycle_mu_;
  bool started_ = false;  ///< Guarded by lifecycle_mu_.
  std::vector<std::thread> workers_;  ///< Guarded by lifecycle_mu_.

  /// Stats are individually relaxed-atomic: producers and workers update
  /// disjoint counters without a shared lock; stats() is a racy-but-
  /// monotonic snapshot, exact once the server quiesces.
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> rejected_full_{0};
  std::atomic<size_t> expired_{0};
  std::atomic<size_t> cancelled_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> batches_{0};
  std::atomic<size_t> batched_rows_{0};

  /// Serialises sequential-fallback dispatches: non-batchable methods
  /// mutate per-call state, so only one worker may run one at a time.
  std::mutex sequential_mu_;
};

}  // namespace serve
}  // namespace cfx

#endif  // CFX_SERVE_SERVER_H_
