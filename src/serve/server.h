// Micro-batching CF request scheduler — the serving front of ROADMAP's
// "production-scale serving" north star.
//
// Many producer threads Submit single-instance requests; a small pool of
// worker threads coalesces up to `max_batch` compatible requests (same
// registered method) that arrive within a `max_delay` window into ONE
// batched pass through the frozen classifier + VAE Infer path, then fans
// the per-row results back through per-request futures.
//
// Contracts:
//   * Row results are bitwise identical to a single-request Generate on the
//     same method (the generation pass is row-local end to end); serve_test
//     pins CFX_THREADS=1 and proves it.
//   * The queue is bounded: a full queue rejects immediately with
//     ResourceExhausted — it never blocks the producer and never grows.
//   * A request whose deadline passes before dispatch resolves with
//     DeadlineExceeded instead of occupying batch rows.
//   * Shutdown stops intake, lets running workers drain the queue, and
//     cancels anything still pending (no workers) with Cancelled.
//
// Batching is only applied to methods that opt in via
// CfMethod::SupportsBatchedGenerate; other methods fall back to the
// sequential GenerateMany path, serialised on a per-server mutex because
// their per-call state (RNG streams, member workspaces) is not
// concurrency-safe.
#ifndef CFX_SERVE_SERVER_H_
#define CFX_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/baselines/method.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/tensor/matrix.h"

namespace cfx {
namespace serve {

/// Scheduler tuning knobs.
struct CfServerConfig {
  /// Max rows coalesced into one dispatched batch.
  size_t max_batch = 32;
  /// Bound on queued (not yet dispatched) requests; Submit rejects with
  /// ResourceExhausted once reached.
  size_t max_queue = 256;
  /// Dispatcher threads spawned by Start(). 0 is legal (nothing dispatches
  /// until Start is called with workers, or ever — used by backpressure
  /// tests); 1 gives strict per-method FIFO dispatch order.
  size_t workers = 1;
  /// How long the batch leader waits for more same-method arrivals before
  /// dispatching a partial batch. A full batch dispatches immediately.
  std::chrono::microseconds max_delay{500};
};

/// One explanation request: a single encoded instance bound for a
/// registered method, with an optional absolute deadline.
struct CfRequest {
  Matrix instance;     ///< (1 x encoded_width) encoded row.
  std::string method;  ///< Key passed to CfServer::RegisterMethod.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Per-request result. `status` is OK on success; on error (timeout,
/// rejection, shutdown) the payload fields are empty/zero.
struct CfResponse {
  Status status = Status::OK();
  Matrix cf;       ///< (1 x d) projected counterfactual.
  Matrix cf_raw;   ///< (1 x d) unprojected generator output.
  int desired = 0;    ///< Desired (opposite) class.
  int predicted = 0;  ///< Black-box prediction on `cf`.
};

/// Scheduler counters, for tests and ops. Snapshot semantics.
struct CfServerStats {
  size_t submitted = 0;      ///< Requests accepted into the queue.
  size_t rejected_full = 0;  ///< Submits bounced with ResourceExhausted.
  size_t expired = 0;        ///< Requests resolved DeadlineExceeded.
  size_t cancelled = 0;      ///< Requests cancelled at shutdown.
  size_t completed = 0;      ///< Requests resolved OK.
  size_t batches = 0;        ///< Dispatched batches (any size).
  size_t batched_rows = 0;   ///< Rows across all dispatched batches.
};

/// Bounded-queue micro-batching scheduler over registered CfMethods.
///
/// Lifecycle: construct, RegisterMethod (all registration before Start),
/// Start, Submit from any thread, Shutdown (also run by the destructor).
class CfServer {
 public:
  explicit CfServer(const CfServerConfig& config);
  ~CfServer();

  CfServer(const CfServer&) = delete;
  CfServer& operator=(const CfServer&) = delete;

  /// Registers `method` under `key`. The method must outlive the server.
  /// Batchable methods are warmed with one throwaway single-row pass so
  /// lazily-built inference plans exist before concurrent workers touch
  /// them. Must be called before Start().
  void RegisterMethod(const std::string& key, CfMethod* method);

  /// Spawns the worker threads. Idempotent; a second call is a no-op.
  void Start();

  /// Enqueues a request. Always returns a future: on acceptance it resolves
  /// when a worker dispatches the batch; on rejection (unknown method, bad
  /// shape, full queue, stopped server) it is already resolved with the
  /// error status. Never blocks on a full queue.
  std::future<CfResponse> Submit(CfRequest request);

  /// Stops intake, drains the queue through running workers, joins them,
  /// and cancels anything still pending with Cancelled. Idempotent.
  void Shutdown();

  CfServerStats stats() const;
  /// Queued-but-undispatched requests right now.
  size_t queue_depth() const;
  const CfServerConfig& config() const { return config_; }

 private:
  struct MethodEntry {
    CfMethod* method = nullptr;
    std::string key;       ///< Registration key, used in span names.
    bool batchable = false;
    size_t width = 0;  ///< Expected instance width (encoder output).
  };

  /// A queued request: the promise rides along until resolution.
  struct Pending {
    Matrix row;
    const MethodEntry* entry = nullptr;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<CfResponse> promise;
  };

  void WorkerLoop();
  /// Pulls same-method, unexpired requests out of queue_ into `batch`
  /// (mu_ must be held). Expired ones are resolved in place.
  void CollectLocked(const MethodEntry* entry, size_t limit,
                     std::vector<Pending>* batch);
  /// Runs one batch and resolves its promises. Returns the row count so the
  /// caller can fold the completed-counter update into its own relock.
  size_t Dispatch(std::vector<Pending> batch, nn::InferWorkspace* ws);
  /// Resolves every queued request with Cancelled (mu_ must be held).
  void CancelQueueLocked();
  void UpdateQueueGauge() const;

  CfServerConfig config_;
  std::unordered_map<std::string, MethodEntry> methods_;

  /// Metric handles, resolved once at construction; all null when metrics
  /// collection is disabled, which also skips the per-submit clock read
  /// that only feeds the wait histogram.
  metrics::Gauge* depth_gauge_ = nullptr;
  metrics::Histogram* batch_hist_ = nullptr;
  metrics::Histogram* wait_hist_ = nullptr;

  mutable std::mutex mu_;
  /// Idle workers wait here for any queued work; signalled per Submit.
  std::condition_variable cv_;
  /// A batch leader holding a partial batch waits here. Producers signal it
  /// only once the queue could fill the batch (`collect_need_`), so the
  /// leader is not woken — and the lock not bounced — on every arrival.
  std::condition_variable cv_batch_;
  /// Leaders currently window-waiting on cv_batch_ (guarded by mu_).
  size_t collecting_ = 0;
  /// Workers parked in the idle wait (guarded by mu_). Submit skips the
  /// cv_ signal entirely when nobody is parked — at high offered load the
  /// workers are always mid-dispatch and the queue feeds them on relock.
  size_t idle_waiters_ = 0;
  /// Smallest queue depth that would fill a waiting leader's batch; reset
  /// when no leader waits. A heuristic: a stale value only delays a wake
  /// until the leader's delay window expires, never loses a request.
  size_t collect_need_ = SIZE_MAX;
  std::deque<Pending> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  bool started_ = false;
  CfServerStats stats_;

  /// Serialises sequential-fallback dispatches: non-batchable methods
  /// mutate per-call state, so only one worker may run one at a time.
  std::mutex sequential_mu_;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace cfx

#endif  // CFX_SERVE_SERVER_H_
