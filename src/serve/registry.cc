#include "src/serve/registry.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"

namespace cfx {
namespace serve {

Status PipelineHandle::AddMethod(const std::string& key, CfMethod* method) {
  if (method == nullptr) {
    return Status::InvalidArgument("method '" + key + "' is null");
  }
  PipelineMethod entry;
  entry.method = method;
  entry.key = key;
  entry.span_label = model_id_.empty()
                         ? "serve/dispatch/" + key
                         : "serve/dispatch/" + model_id_ + "/" + key;
  entry.dispatched = metrics::GetCounter(entry.span_label);
  entry.batchable = method->SupportsBatchedGenerate();
  entry.width = method->context().encoder->encoded_width();
  if (entry.batchable) {
    // Warm-up: Sequential builds its inference plan (and the tabular head
    // its softmax layout) lazily on the first Infer — a mutation. Run one
    // throwaway row now so concurrent workers only ever read.
    Matrix probe(1, entry.width);
    nn::InferWorkspace ws;
    (void)method->GenerateMany(probe, &ws);
  }
  for (PipelineMethod& existing : methods_) {
    if (existing.key == key) {
      existing = std::move(entry);  // re-registration replaces in place
      return Status::OK();
    }
  }
  methods_.push_back(std::move(entry));
  return Status::OK();
}

Status PipelineHandle::AddMethod(const std::string& key,
                                 std::unique_ptr<CfMethod> method) {
  CFX_RETURN_IF_ERROR(AddMethod(key, method.get()));
  owned_methods_.push_back(std::move(method));
  return Status::OK();
}

Status PipelineHandle::RegisterDefaultMethods() {
  if (generator_ == nullptr) {
    return Status::FailedPrecondition(
        "pipeline '" + model_id_ + "' owns no generator to register");
  }
  return AddMethod("ours", generator_.get());
}

const PipelineMethod* PipelineHandle::FindMethod(const std::string& key) const {
  for (const PipelineMethod& entry : methods_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

ModelRegistry::ModelRegistry(const ModelRegistryConfig& config)
    : config_(config) {
  if (config_.max_resident == 0) config_.max_resident = 1;
  resident_gauge_ = metrics::GetGauge("registry/resident");
  eviction_counter_ = metrics::GetCounter("registry/evictions");
  coldstart_hist_ = metrics::GetHistogram("registry/coldstart_ms");
}

Status ModelRegistry::Register(const std::string& model_id,
                               const std::string& path,
                               MethodFactory factory) {
  if (model_id.empty()) {
    return Status::InvalidArgument("model id must be non-empty");
  }
  // The probe reads section headers only — admission costs microseconds
  // and never touches weight bytes, so a corrupt or skewed bundle is
  // rejected here instead of at first traffic.
  auto info = ProbePipelineBundle(path);
  if (!info.ok()) return info.status();

  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(model_id);
  if (it == entries_.end()) {
    it = entries_.emplace(model_id, std::make_unique<Entry>()).first;
  } else if (it->second->handle != nullptr) {
    // Re-registration points the id at a (possibly different) bundle: the
    // stale resident pipeline must not serve another request. In-flight
    // pins on it still finish safely.
    it->second->handle.reset();
    --resident_;
    UpdateResidentGaugeLocked();
  }
  Entry* entry = it->second.get();
  entry->path = path;
  entry->info = std::move(*info);
  entry->factory = std::move(factory);
  CFX_LOG(Info) << "registry: admitted model '" << model_id << "' ("
                << entry->info.dataset << " @ " << entry->info.scale
                << ", seed " << entry->info.seed << ") from '" << path << "'";
  return Status::OK();
}

StatusOr<std::shared_ptr<PipelineHandle>> ModelRegistry::Acquire(
    const std::string& model_id) {
  const uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    // Hot path: already resident. Shared lock, one map find, one relaxed
    // LRU stamp, one shared_ptr copy — concurrent submitters for resident
    // models never serialise on each other.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(model_id);
    if (it == entries_.end()) {
      return Status::NotFound("unknown model '" + model_id + "'");
    }
    if (it->second->handle != nullptr) {
      it->second->last_used.store(now, std::memory_order_relaxed);
      return it->second->handle;
    }
  }

  // Cold path: exclusive lock, double-checked (another thread may have
  // finished the same cold start while we waited for the lock).
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(model_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown model '" + model_id + "'");
  }
  Entry* entry = it->second.get();
  if (entry->handle == nullptr) {
    CFX_RETURN_IF_ERROR(ColdStartLocked(model_id, entry));
    ++resident_;
    EvictOverCapLocked(entry);
    UpdateResidentGaugeLocked();
  }
  entry->last_used.store(now, std::memory_order_relaxed);
  return entry->handle;
}

Status ModelRegistry::ColdStartLocked(const std::string& model_id,
                                      Entry* entry) {
  const auto start = std::chrono::steady_clock::now();
  auto restored = Experiment::Restore(entry->path);
  if (!restored.ok()) return restored.status();
  auto handle =
      std::make_shared<PipelineHandle>(model_id, std::move(*restored));
  if (entry->factory != nullptr) {
    CFX_RETURN_IF_ERROR(entry->factory(handle.get()));
  } else {
    CFX_RETURN_IF_ERROR(handle->RegisterDefaultMethods());
  }
  entry->handle = std::move(handle);
  coldstarts_.fetch_add(1, std::memory_order_relaxed);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (coldstart_hist_ != nullptr) coldstart_hist_->Record(ms);
  CFX_LOG(Info) << "registry: cold-started model '" << model_id << "' in "
                << ms << " ms";
  return Status::OK();
}

void ModelRegistry::EvictOverCapLocked(const Entry* keep) {
  while (resident_ > config_.max_resident) {
    // LRU victim among residents other than the one just loaded, preferring
    // models nobody is serving right now (use_count 1 == only our
    // reference). Evicting a pinned model is still safe — dropping the
    // registry reference only unlinks it; in-flight pins finish on the
    // still-live handle — but an unpinned victim frees memory immediately.
    Entry* victim = nullptr;
    bool victim_pinned = true;
    for (auto& [id, entry] : entries_) {
      if (entry->handle == nullptr || entry.get() == keep) continue;
      const bool pinned = entry->handle.use_count() > 1;
      const uint64_t used = entry->last_used.load(std::memory_order_relaxed);
      if (victim == nullptr || (victim_pinned && !pinned) ||
          (victim_pinned == pinned &&
           used < victim->last_used.load(std::memory_order_relaxed))) {
        victim = entry.get();
        victim_pinned = pinned;
      }
    }
    if (victim == nullptr) return;  // Only `keep` is resident; cap of 1.
    victim->handle.reset();
    --resident_;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (eviction_counter_ != nullptr) eviction_counter_->Add(1);
  }
}

void ModelRegistry::UpdateResidentGaugeLocked() {
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<double>(resident_));
  }
}

StatusOr<PipelineBundleInfo> ModelRegistry::Info(
    const std::string& model_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(model_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown model '" + model_id + "'");
  }
  return it->second->info;
}

ModelRegistryStats ModelRegistry::stats() const {
  ModelRegistryStats stats;
  std::shared_lock<std::shared_mutex> lock(mu_);
  stats.registered = entries_.size();
  stats.resident = resident_;
  stats.coldstarts = coldstarts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serve
}  // namespace cfx
