#include "src/serve/server.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/stream/ingest.h"

namespace cfx {
namespace serve {
namespace {

/// Iterations a worker burns re-polling an empty ring before it takes the
/// park mutex and sleeps. Short on purpose: it rides out the gap between
/// back-to-back submits from a running producer. On a single-hardware-
/// thread host the budget collapses to zero — no producer can make
/// progress while the worker holds the core, so every spin iteration is
/// pure delay.
const size_t kIdleSpinIterations =
    std::thread::hardware_concurrency() > 1 ? 64 : 0;

/// An already-resolved future carrying only an error status.
std::future<CfResponse> Rejected(Status status) {
  std::promise<CfResponse> promise;
  CfResponse response;
  response.status = std::move(status);
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

CfServer::CfServer(const CfServerConfig& config, ModelRegistry* registry)
    : config_(config),
      registry_(registry),
      embedded_(std::make_shared<PipelineHandle>()),
      queue_(config.max_batch == 0 || config.max_queue == 0
                 ? 2  // Placeholder; the abort below fires first.
                 : config.max_queue) {
  if (config_.max_batch == 0 || config_.max_queue == 0) {
    CFX_LOG(Error) << "CfServer: max_batch and max_queue must be positive";
    std::abort();
  }
  depth_gauge_ = metrics::GetGauge("serve/queue_depth");
  batch_hist_ = metrics::GetHistogram("serve/batch_size");
  wait_hist_ = metrics::GetHistogram("serve/wait_ms");
  submit_spins_ = metrics::GetCounter("serve/submit_spins");
  park_count_ = metrics::GetCounter("serve/park_count");
}

CfServer::~CfServer() { Shutdown(); }

void CfServer::RegisterMethod(const std::string& key, CfMethod* method) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) {
      CFX_LOG(Error) << "CfServer::RegisterMethod('" << key
                     << "') after Start(); register all methods first";
      std::abort();
    }
  }
  Status added = embedded_->AddMethod(key, method);
  if (!added.ok()) {
    CFX_LOG(Error) << "CfServer::RegisterMethod('" << key
                   << "'): " << added.message();
    std::abort();
  }
}

void CfServer::AttachStreamIngest(stream::StreamIngest* ingest) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    CFX_LOG(Error) << "CfServer::AttachStreamIngest after Start(); attach "
                      "before the workers exist";
    std::abort();
  }
  stream_ingest_ = ingest;
}

void CfServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopping_.load(std::memory_order_relaxed)) return;
  started_ = true;
  if (stream_ingest_ != nullptr) {
    const Status ingest_started = stream_ingest_->Start();
    if (!ingest_started.ok()) {
      CFX_LOG(Warning) << "CfServer: stream ingest did not start: "
                       << ingest_started.message();
    }
  }
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&CfServer::WorkerLoop, this);
  }
}

std::future<CfResponse> CfServer::Submit(CfRequest request) {
  // Resolve the (model, method) entry. Embedded table: immutable once
  // Start() has run (RegisterMethod aborts after), so the lookup needs no
  // lock — a linear scan over a handful of SSO keys on the single-model
  // hot path, no pin, no refcount traffic. Registry models: Acquire pins
  // the refcounted handle to this request (cold-starting the bundle on
  // this thread if it is not resident), so a registry eviction between
  // here and dispatch can never tear the pipeline down under us.
  const PipelineMethod* entry = nullptr;
  std::shared_ptr<PipelineHandle> pin;
  if (request.model.empty()) {
    entry = embedded_->FindMethod(request.method);
  } else {
    if (registry_ == nullptr) {
      return Rejected(Status::InvalidArgument(
          "model routing requires a registry; server has none"));
    }
    auto acquired = registry_->Acquire(request.model);
    if (!acquired.ok()) return Rejected(acquired.status());
    pin = std::move(*acquired);
    entry = pin->FindMethod(request.method);
  }
  if (entry == nullptr) {
    return Rejected(
        Status::InvalidArgument("unknown method '" + request.method + "'"));
  }
  if (request.instance.rows() != 1 ||
      request.instance.cols() != entry->width) {
    return Rejected(Status::InvalidArgument(
        "instance must be 1x" + std::to_string(entry->width) + ", got " +
        std::to_string(request.instance.rows()) + "x" +
        std::to_string(request.instance.cols())));
  }

  // Intake gate: the seq_cst increment-then-check pairs with Shutdown's
  // close-then-drain, so a submit either observes the closed gate here or
  // completes its push before Shutdown's cancel sweep runs.
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  if (!accepting_.load(std::memory_order_seq_cst)) {
    inflight_submits_.fetch_sub(1, std::memory_order_release);
    return Rejected(Status::FailedPrecondition("server is shut down"));
  }

  Pending pending;
  pending.row = std::move(request.instance);
  pending.entry = entry;
  pending.pin = std::move(pin);
  pending.deadline = request.deadline;
  if (wait_hist_ != nullptr) {
    pending.enqueued = std::chrono::steady_clock::now();
  }
  std::future<CfResponse> future = pending.promise.get_future();

  uint32_t spins = 0;
  if (!queue_.TryPush(std::move(pending), &spins)) {
    // Backpressure by rejection, never by blocking: the producer learns
    // immediately and the ring cannot grow past its bound. TryPush left
    // `pending` (and its promise) with us, so resolve it in place.
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    inflight_submits_.fetch_sub(1, std::memory_order_release);
    CfResponse response;
    response.status = Status::ResourceExhausted(
        "serve queue full (" + std::to_string(queue_.capacity()) + ")");
    pending.promise.set_value(std::move(response));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (submit_spins_ != nullptr && spins > 0) submit_spins_->Add(spins);
  if (depth_gauge_ != nullptr) UpdateQueueGauge();
  MaybeWakeWorkers();
  inflight_submits_.fetch_sub(1, std::memory_order_release);
  return future;
}

void CfServer::MaybeWakeWorkers() {
  // Publish the push before reading the sleeper threshold (a seq_cst
  // store-load barrier against a worker's register-then-recheck in
  // NextPending): either we observe the sleeper and wake it, or the
  // sleeper's post-registration recheck observes our push.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  size_t threshold = wake_threshold_.load(std::memory_order_relaxed);
  for (;;) {
    if (threshold == SIZE_MAX) return;  // Nobody sleeps: the common hot case.
    const size_t depth =
        queue_.SizeApprox() + staged_count_.load(std::memory_order_relaxed);
    if (depth < threshold) return;  // A window leader wants a fuller queue.
    // Claim the wake: the first producer through parks the threshold at
    // SIZE_MAX and pays the one syscall; a burst's remaining submits take
    // the SIZE_MAX fast path above instead of re-notifying a worker that
    // has not been scheduled yet. Sleepers re-arm the threshold themselves
    // (RecomputeWakeThresholdLocked) whenever they wake or re-park, so a
    // claimed wake can never strand a later sleeper.
    if (wake_threshold_.compare_exchange_weak(threshold, SIZE_MAX,
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(park_mu_);
  park_cv_.notify_all();
}

void CfServer::RecomputeWakeThresholdLocked() {
  size_t threshold = SIZE_MAX;
  if (idle_parked_ > 0) {
    threshold = 1;
  } else if (window_waiters_ > 0) {
    threshold = window_min_need_;
  }
  wake_threshold_.store(threshold, std::memory_order_relaxed);
}

bool CfServer::NextPending(Pending* out) {
  for (;;) {
    // Waiting lanes first: those requests pre-date everything now in the
    // ring (per-entry FIFO survives the detour), and the round-robin lane
    // rotation is what keeps dispatch fair — a leader whose model floods
    // the ring still hands the next batch to whichever entry has waited
    // longest in the lanes.
    while (TryTakeLaneAny(out)) {
      if (!ResolveIfExpired(out)) return true;
    }
    while (queue_.TryPop(out)) {
      if (depth_gauge_ != nullptr) UpdateQueueGauge();
      if (!ResolveIfExpired(out)) return true;
    }
    // Empty. Spin briefly — arrivals in the next few hundred cycles are
    // common under load and a park/unpark costs two futex syscalls.
    bool have_work = false;
    for (size_t i = 0; i < kIdleSpinIterations; ++i) {
      CpuRelax();
      if (!queue_.Empty() ||
          staged_count_.load(std::memory_order_relaxed) > 0) {
        have_work = true;
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) break;
    }
    if (have_work) continue;
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain-then-exit: only leave once both queues are truly empty (a
      // racing worker may still stage entries; loop re-checks).
      if (queue_.Empty() &&
          staged_count_.load(std::memory_order_relaxed) == 0) {
        return false;
      }
      continue;
    }
    // Park. Register in the wake threshold, then re-check emptiness: the
    // fence pairs with the producer-side fence in MaybeWakeWorkers, so a
    // push that missed our registration is visible to this recheck.
    std::unique_lock<std::mutex> lock(park_mu_);
    ++idle_parked_;
    RecomputeWakeThresholdLocked();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (queue_.Empty() &&
        staged_count_.load(std::memory_order_relaxed) == 0 &&
        !stopping_.load(std::memory_order_relaxed)) {
      if (park_count_ != nullptr) park_count_->Add(1);
      park_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               !queue_.Empty() ||
               staged_count_.load(std::memory_order_relaxed) > 0;
      });
    }
    --idle_parked_;
    RecomputeWakeThresholdLocked();
  }
}

bool CfServer::TryTakeLaneAny(Pending* out) {
  if (staged_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(staged_mu_);
  if (lanes_.empty()) return false;
  Lane& lane = lanes_.front();
  *out = std::move(lane.fifo.front());
  lane.fifo.pop_front();
  staged_count_.fetch_sub(1, std::memory_order_relaxed);
  if (lane.fifo.empty()) {
    lanes_.pop_front();
  } else {
    // Rotate the served lane to the back: the next seed comes from a
    // different entry, so every waiting (model, method) gets a batch
    // before any gets a second one.
    lanes_.splice(lanes_.end(), lanes_, lanes_.begin());
  }
  return true;
}

bool CfServer::LaneHasWorkFor(const PipelineMethod* entry) const {
  if (staged_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(staged_mu_);
  for (const Lane& lane : lanes_) {
    if (lane.entry == entry) return !lane.fifo.empty();
  }
  return false;
}

bool CfServer::ResolveIfExpired(Pending* p) {
  // The default deadline is time_point::max(): skip the clock read
  // entirely on the (overwhelmingly common) undeadlined path.
  if (p->deadline == std::chrono::steady_clock::time_point::max()) {
    return false;
  }
  if (p->deadline > std::chrono::steady_clock::now()) return false;
  expired_.fetch_add(1, std::memory_order_relaxed);
  CfResponse response;
  response.status =
      Status::DeadlineExceeded("request deadline passed before dispatch");
  p->promise.set_value(std::move(response));
  return true;
}

void CfServer::CollectMore(const PipelineMethod* entry,
                           std::vector<Pending>* batch) {
  // This entry's lane first (older than anything in the ring, so per-entry
  // FIFO is preserved). Entry identity is pointer identity: every Pending
  // in the lane pins the handle that owns `entry`, so the pointer can
  // neither dangle nor be reused while the lane is non-empty.
  if (staged_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(staged_mu_);
    for (auto lane = lanes_.begin(); lane != lanes_.end(); ++lane) {
      if (lane->entry != entry) continue;
      while (!lane->fifo.empty() && batch->size() < config_.max_batch) {
        Pending pending = std::move(lane->fifo.front());
        lane->fifo.pop_front();
        staged_count_.fetch_sub(1, std::memory_order_relaxed);
        if (!ResolveIfExpired(&pending)) {
          batch->push_back(std::move(pending));
        }
      }
      if (lane->fifo.empty()) lanes_.erase(lane);
      break;
    }
  }
  // Then the ring. Foreign-entry pops are parked in their lanes for the
  // next leader; they are not skipped in place (a ring has no erase).
  while (batch->size() < config_.max_batch) {
    Pending pending;
    if (!queue_.TryPop(&pending)) break;
    if (ResolveIfExpired(&pending)) continue;
    if (pending.entry == entry) {
      batch->push_back(std::move(pending));
    } else {
      std::lock_guard<std::mutex> lock(staged_mu_);
      Lane* lane = nullptr;
      for (Lane& candidate : lanes_) {
        if (candidate.entry == pending.entry) {
          lane = &candidate;
          break;
        }
      }
      if (lane == nullptr) {
        lanes_.emplace_back();
        lanes_.back().entry = pending.entry;
        lane = &lanes_.back();
      }
      lane->fifo.push_back(std::move(pending));
      staged_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (depth_gauge_ != nullptr) UpdateQueueGauge();
}

void CfServer::WorkerLoop() {
  // One workspace per worker: every batch-capable model entry point Resets
  // it before use, so classifier and VAE passes can share it. The batch
  // and response-arena buffers are reused across dispatches.
  nn::InferWorkspace ws;
  std::vector<Pending> batch;
  std::vector<CfResponse> arena;
  batch.reserve(config_.max_batch);
  arena.reserve(config_.max_batch);

  Pending first;
  while (NextPending(&first)) {
    const PipelineMethod* entry = first.entry;
    const auto window_end =
        std::chrono::steady_clock::now() + config_.max_delay;
    batch.clear();
    batch.push_back(std::move(first));
    CollectMore(entry, &batch);
    if (entry->batchable) {
      // Hold the partial batch open for late same-method arrivals until
      // the window closes, the batch fills, or shutdown begins. The nap is
      // wake-rationed: producers only notify once the queued depth could
      // fill the batch (wake_threshold_), so a burst costs one leader wake,
      // not one lock bounce per arrival; stragglers below the threshold
      // are swept up when the window expires.
      while (batch.size() < config_.max_batch &&
             !stopping_.load(std::memory_order_acquire)) {
        const size_t before = batch.size();
        CollectMore(entry, &batch);
        if (batch.size() >= config_.max_batch) break;
        if (batch.size() != before) continue;  // Still flowing; keep going.
        const size_t need = config_.max_batch - batch.size();
        // Re-check for collectable work before napping. This must be
        // same-entry work: lanes holding OTHER entries' requests are not
        // collectable by this leader, and treating them as arrivals would
        // spin this loop at 100% CPU for the whole window (they drain only
        // after this batch dispatches).
        if (LaneHasWorkFor(entry)) continue;
        std::cv_status wait_status = std::cv_status::no_timeout;
        {
          std::unique_lock<std::mutex> lock(park_mu_);
          if (!queue_.Empty()) {
            continue;  // An arrival raced the lock; collect it.
          }
          ++window_waiters_;
          if (need < window_min_need_) window_min_need_ = need;
          RecomputeWakeThresholdLocked();
          if (park_count_ != nullptr) park_count_->Add(1);
          wait_status = park_cv_.wait_until(lock, window_end);
          --window_waiters_;
          // Lazy min maintenance: when the last window waiter leaves the
          // min resets; a surviving stale (too-small) min only causes an
          // extra wake test, never a missed one.
          if (window_waiters_ == 0) window_min_need_ = SIZE_MAX;
          RecomputeWakeThresholdLocked();
        }
        const size_t at_wake = batch.size();
        CollectMore(entry, &batch);
        if (wait_status == std::cv_status::timeout) break;
        if (batch.size() == at_wake) {
          // Woken with depth satisfied but nothing for this method: the
          // backlog is other methods' work. Dispatch the partial batch now
          // rather than sitting on it until the window closes.
          break;
        }
      }
    }
    Dispatch(&batch, &ws, &arena);
  }
}

void CfServer::Dispatch(std::vector<Pending>* batch, nn::InferWorkspace* ws,
                        std::vector<CfResponse>* arena) {
  const PipelineMethod* entry = (*batch)[0].entry;
  // span_label is precomputed at method registration ("serve/dispatch/
  // <key>" for the embedded table, "serve/dispatch/<model>/<key>" for
  // registry models), so per-model latency series cost no per-dispatch
  // string assembly.
  trace::ScopedSpan span(trace::SpansActive() ? entry->span_label
                                              : std::string());

  const size_t rows = batch->size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(rows, std::memory_order_relaxed);
  if (entry->dispatched != nullptr) {
    entry->dispatched->Add(static_cast<uint64_t>(rows));
  }
  if (batch_hist_ != nullptr) {
    batch_hist_->Record(static_cast<double>(rows));
  }
  if (wait_hist_ != nullptr) {
    const auto now = std::chrono::steady_clock::now();
    for (const Pending& pending : *batch) {
      wait_hist_->Record(
          std::chrono::duration<double, std::milli>(now - pending.enqueued)
              .count());
    }
  }

  // Assemble the batch into one 64-byte-aligned row-major matrix: the rows
  // feed the dispatched matmul kernels directly, and GenerateMany's
  // projection/constraint stages transpose it once into a ColumnBatch.
  Matrix x(rows, entry->width);
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(x.data() + r * entry->width, (*batch)[r].row.data(),
                entry->width * sizeof(float));
  }

  CfResult result;
  if (entry->batchable) {
    result = entry->method->GenerateMany(x, ws);
  } else {
    // Sequential fallback mutates method state per call (RNG streams,
    // member workspaces): one dispatch at a time, FIFO preserved.
    std::lock_guard<std::mutex> sequential(sequential_mu_);
    result = entry->method->GenerateMany(x, nullptr);
  }

  // Batched resolution: stage every response in the contiguous arena first,
  // then fulfill the promises in one tight loop with no scheduler state
  // held (the arena is what lets the fulfillment happen lock-free; PR 5
  // resolved under the scheduler's own bookkeeping).
  //
  // The loop runs newest-first, and that order is load-bearing: a client
  // draining its futures oldest-first sleeps on the batch's OLDEST future,
  // so resolving newest-first means every set_value but the last finds no
  // waiter (a plain store on the shared state) and the batch costs exactly
  // one futex wake. Resolving oldest-first inverts that pathologically on a
  // single-core host: the first set_value wakes the client, wakeup
  // preemption schedules it ahead of this loop, it drains the one ready
  // future and blocks on the next — turning every remaining row into a
  // futex wait/wake pair plus two context switches (measured at ~3x the
  // whole dispatch cost).
  arena->clear();
  arena->resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    CfResponse& response = (*arena)[r];
    response.cf = result.cfs.Row(r);
    response.cf_raw = result.cfs_raw.Row(r);
    response.desired = result.desired[r];
    response.predicted = result.predicted[r];
  }
  // Opt-in drift tracking: offer the served triples to the stream ingest
  // reservoir before the arena's rows are moved into the promises. The
  // reservoir copies under its own mutex — contention only among dispatch
  // workers, never with the submit path.
  if (stream_ingest_ != nullptr) {
    for (size_t r = 0; r < rows; ++r) {
      stream_ingest_->ObserveServed((*batch)[r].row, (*arena)[r].cf,
                                    (*arena)[r].desired);
    }
  }
  completed_.fetch_add(rows, std::memory_order_relaxed);
  for (size_t r = rows; r-- > 0;) {
    (*batch)[r].promise.set_value(std::move((*arena)[r]));
  }
}

void CfServer::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  accepting_.store(false, std::memory_order_seq_cst);
  // Wait out submits that passed the gate before it closed; after this no
  // new ring entries can appear.
  while (inflight_submits_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  stopping_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> park(park_mu_);
    park_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // With workers the drain loop above leaves nothing behind; without (the
  // backpressure/no-worker configurations) cancel everything still queued.
  Pending pending;
  while (TryTakeLaneAny(&pending)) CancelPending(std::move(pending));
  while (queue_.TryPop(&pending)) CancelPending(std::move(pending));
  // Stop the ingest pipeline last: workers are gone, so this drains its
  // chunk queue and publishes the final drift gauges.
  if (stream_ingest_ != nullptr) stream_ingest_->Stop();
  UpdateQueueGauge();
}

void CfServer::CancelPending(Pending pending) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  CfResponse response;
  response.status = Status::Cancelled("server shut down before dispatch");
  pending.promise.set_value(std::move(response));
}

void CfServer::UpdateQueueGauge() const {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(
        queue_.SizeApprox() + staged_count_.load(std::memory_order_relaxed)));
  }
}

CfServerStats CfServer::stats() const {
  CfServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  return stats;
}

size_t CfServer::queue_depth() const {
  return queue_.SizeApprox() + staged_count_.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace cfx
