#include "src/serve/server.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace cfx {
namespace serve {
namespace {

/// An already-resolved future carrying only an error status.
std::future<CfResponse> Rejected(Status status) {
  std::promise<CfResponse> promise;
  CfResponse response;
  response.status = std::move(status);
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

CfServer::CfServer(const CfServerConfig& config) : config_(config) {
  if (config_.max_batch == 0 || config_.max_queue == 0) {
    CFX_LOG(Error) << "CfServer: max_batch and max_queue must be positive";
    std::abort();
  }
  depth_gauge_ = metrics::GetGauge("serve/queue_depth");
  batch_hist_ = metrics::GetHistogram("serve/batch_size");
  wait_hist_ = metrics::GetHistogram("serve/wait_ms");
}

CfServer::~CfServer() { Shutdown(); }

void CfServer::RegisterMethod(const std::string& key, CfMethod* method) {
  if (started_) {
    CFX_LOG(Error) << "CfServer::RegisterMethod('" << key
                   << "') after Start(); register all methods first";
    std::abort();
  }
  MethodEntry entry;
  entry.method = method;
  entry.key = key;
  entry.batchable = method->SupportsBatchedGenerate();
  entry.width = method->context().encoder->encoded_width();
  if (entry.batchable) {
    // Warm-up: Sequential builds its inference plan (and the tabular head
    // its softmax layout) lazily on the first Infer — a mutation. Run one
    // throwaway row now so concurrent workers only ever read.
    Matrix probe(1, entry.width);
    nn::InferWorkspace ws;
    (void)method->GenerateMany(probe, &ws);
  }
  methods_[key] = std::move(entry);
}

void CfServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&CfServer::WorkerLoop, this);
  }
}

std::future<CfResponse> CfServer::Submit(CfRequest request) {
  // methods_ is immutable once Start() has run (RegisterMethod aborts
  // after), so the lookup needs no lock.
  auto it = methods_.find(request.method);
  if (it == methods_.end()) {
    return Rejected(
        Status::InvalidArgument("unknown method '" + request.method + "'"));
  }
  const MethodEntry* entry = &it->second;
  if (request.instance.rows() != 1 ||
      request.instance.cols() != entry->width) {
    return Rejected(Status::InvalidArgument(
        "instance must be 1x" + std::to_string(entry->width) + ", got " +
        std::to_string(request.instance.rows()) + "x" +
        std::to_string(request.instance.cols())));
  }

  std::future<CfResponse> future;
  bool wake_idle = false;
  bool wake_leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      return Rejected(Status::FailedPrecondition("server is shut down"));
    }
    if (queue_.size() >= config_.max_queue) {
      // Backpressure by rejection, never by blocking: the producer learns
      // immediately and the queue cannot grow past its bound.
      ++stats_.rejected_full;
      return Rejected(Status::ResourceExhausted(
          "serve queue full (" + std::to_string(config_.max_queue) + ")"));
    }
    Pending pending;
    pending.row = std::move(request.instance);
    pending.entry = entry;
    pending.deadline = request.deadline;
    if (wait_hist_ != nullptr) {
      pending.enqueued = std::chrono::steady_clock::now();
    }
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    ++stats_.submitted;
    wake_idle = idle_waiters_ > 0;
    wake_leader = collecting_ > 0 && queue_.size() >= collect_need_;
    UpdateQueueGauge();
  }
  // Notify after unlocking: a woken worker grabs mu_ immediately, so
  // signalling under the lock forces an extra block/handoff per request.
  // Parked idle workers are woken per arrival (none are parked under
  // sustained load — they find the backlog when they relock after a
  // dispatch); a window-waiting batch leader is woken only once the queue
  // could fill its batch (otherwise its delay-window expiry sweeps the
  // stragglers), so a burst costs one leader wake, not one per request.
  if (wake_idle) cv_.notify_one();
  if (wake_leader) cv_batch_.notify_all();
  return future;
}

void CfServer::WorkerLoop() {
  // One workspace per worker: every batch-capable model entry point Resets
  // it before use, so classifier and VAE passes can share it.
  nn::InferWorkspace ws;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ++idle_waiters_;
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    --idle_waiters_;
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Leader election is implicit: whoever holds the lock takes the front
    // request's method and claims every compatible queued request.
    const MethodEntry* entry = queue_.front().entry;
    const auto window_end =
        std::chrono::steady_clock::now() + config_.max_delay;
    std::vector<Pending> batch;
    CollectLocked(entry, config_.max_batch, &batch);
    if (entry->batchable) {
      // Hold the partial batch open for late same-method arrivals until
      // the window closes, the batch fills, or shutdown begins. The wait
      // is on cv_batch_, which producers signal only when the queue could
      // *fill* the batch: waking (and bouncing the lock) on every single
      // arrival would dominate dispatch at high offered load. Partial
      // stragglers are swept up when the window expires.
      while (!batch.empty() && batch.size() < config_.max_batch &&
             !stopping_) {
        const size_t need = config_.max_batch - batch.size();
        ++collecting_;
        if (need < collect_need_) collect_need_ = need;
        const bool ready = cv_batch_.wait_until(lock, window_end, [&] {
          return stopping_ || queue_.size() >= need;
        });
        --collecting_;
        if (collecting_ == 0) collect_need_ = SIZE_MAX;
        const size_t before = batch.size();
        CollectLocked(entry, config_.max_batch, &batch);
        if (!ready) break;  // Window expired; dispatch what we have.
        if (batch.size() == before) {
          // The queue is deep enough but holds other methods' work (which
          // keeps the predicate true): dispatch the partial batch now
          // rather than spinning on it until the window closes.
          break;
        }
      }
    }
    if (batch.empty()) continue;  // Every claimed request had expired.
    ++stats_.batches;
    stats_.batched_rows += batch.size();
    lock.unlock();
    const size_t done = Dispatch(std::move(batch), &ws);
    lock.lock();
    stats_.completed += done;
  }
}

void CfServer::CollectLocked(const MethodEntry* entry, size_t limit,
                             std::vector<Pending>* batch) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < limit;) {
    if (it->entry != entry) {
      ++it;
      continue;
    }
    Pending pending = std::move(*it);
    it = queue_.erase(it);
    if (pending.deadline <= now) {
      ++stats_.expired;
      CfResponse response;
      response.status = Status::DeadlineExceeded(
          "request deadline passed before dispatch");
      pending.promise.set_value(std::move(response));
      continue;
    }
    batch->push_back(std::move(pending));
  }
  UpdateQueueGauge();
}

size_t CfServer::Dispatch(std::vector<Pending> batch, nn::InferWorkspace* ws) {
  const MethodEntry* entry = batch.front().entry;
  trace::ScopedSpan span(trace::SpansActive()
                             ? "serve/dispatch/" + entry->key
                             : std::string());

  if (batch_hist_ != nullptr) {
    batch_hist_->Record(static_cast<double>(batch.size()));
  }
  if (wait_hist_ != nullptr) {
    const auto now = std::chrono::steady_clock::now();
    for (const Pending& pending : batch) {
      wait_hist_->Record(
          std::chrono::duration<double, std::milli>(now - pending.enqueued)
              .count());
    }
  }

  // Assemble the batch into one 64-byte-aligned row-major matrix: the rows
  // feed the dispatched matmul kernels directly, and GenerateMany's
  // projection/constraint stages transpose it once into a ColumnBatch.
  Matrix x(batch.size(), entry->width);
  for (size_t r = 0; r < batch.size(); ++r) {
    std::memcpy(x.data() + r * entry->width, batch[r].row.data(),
                entry->width * sizeof(float));
  }

  CfResult result;
  if (entry->batchable) {
    result = entry->method->GenerateMany(x, ws);
  } else {
    // Sequential fallback mutates method state per call (RNG streams,
    // member workspaces): one dispatch at a time, FIFO preserved.
    std::lock_guard<std::mutex> sequential(sequential_mu_);
    result = entry->method->GenerateMany(x, nullptr);
  }

  // Resolve in reverse submission order: a client draining its futures
  // oldest-first then blocks only until the *last* promise of the batch
  // resolves — one futex wake per batch instead of one per row (set_value
  // on a future nobody waits on yet is just an atomic store).
  for (size_t i = batch.size(); i > 0; --i) {
    const size_t r = i - 1;
    CfResponse response;
    response.cf = result.cfs.Row(r);
    response.cf_raw = result.cfs_raw.Row(r);
    response.desired = result.desired[r];
    response.predicted = result.predicted[r];
    batch[r].promise.set_value(std::move(response));
  }
  return batch.size();
}

void CfServer::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  cv_batch_.notify_all();
  for (std::thread& worker : workers) worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  CancelQueueLocked();
}

void CfServer::CancelQueueLocked() {
  while (!queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.cancelled;
    CfResponse response;
    response.status = Status::Cancelled("server shut down before dispatch");
    pending.promise.set_value(std::move(response));
  }
  UpdateQueueGauge();
}

void CfServer::UpdateQueueGauge() const {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
}

CfServerStats CfServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t CfServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace serve
}  // namespace cfx
