#include "src/wire/crc32.h"

#include <array>

namespace cfx {
namespace wire {
namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace wire
}  // namespace cfx
