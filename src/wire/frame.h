// Length-prefixed, versioned binary wire frames (ROADMAP item 4).
//
// A frame is the unit of exchange between the sharded-evaluation
// coordinator and its workers (src/eval/): row batches, per-cell
// MethodMetrics, and control messages all travel as one frame each. The
// on-the-wire layout mirrors the `.cfxb` bundle trailer discipline —
// self-describing, versioned, and strict:
//
//   u32 body_len                      // bytes following this prefix
//   body:
//     magic 'CFXW'                    // 4 bytes
//     u32  version                    // kWireVersion; skew rejected
//     u8   frame type                 // FrameType; unknown rejected
//     u32  field count
//     per field:
//       u16 key_len, key bytes        // section key
//       u8  field type                // FieldType; unknown rejected
//       u64 payload_len, payload      // length validated before use
//     u32  crc32                      // trailer over body[0 .. crc)
//
// Strictness taxonomy (each rejected with a named error, matching the
// bundle reader): truncation at any prefix length, bad magic, version 0,
// version skew (newer than this build), unknown frame/field type, a lying
// field length that overruns the body, duplicate field keys, a CRC
// mismatch, and trailing garbage between the last field and the CRC
// trailer. A frame that decodes is bitwise round-trippable.
//
// FrameDecoder is the streaming half: it consumes arbitrary byte chunks
// (chunk boundaries carry no meaning — the property tests split frames at
// every offset), buffers at most one partial frame (bounded by
// max_frame_bytes, the StreamFramer discipline), emits complete frames
// through a sink, and latches the first error until Reset().
#ifndef CFX_WIRE_FRAME_H_
#define CFX_WIRE_FRAME_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/matrix.h"

namespace cfx {
namespace wire {

/// Bumped on incompatible layout changes; decoders reject newer frames
/// (version skew) and version 0 (never written).
constexpr uint32_t kWireVersion = 1;

/// Frame vocabulary of the sharded evaluation protocol, plus the row-batch
/// carrier. Unknown types are a decode error — the version gates the set.
enum class FrameType : uint8_t {
  kHello = 1,     ///< worker -> coordinator: protocol handshake.
  kAssign = 2,    ///< coordinator -> worker: one evaluation cell.
  kResult = 3,    ///< worker -> coordinator: per-cell MethodMetrics.
  kCellError = 4, ///< worker -> coordinator: cell failed, with its status.
  kShutdown = 5,  ///< coordinator -> worker: drain and exit.
  kRowBatch = 6,  ///< encoded row batch (matrix + labels).
};

/// True when `type` is a member of the version-1 vocabulary.
bool IsKnownFrameType(uint8_t type);

/// Typed field payloads, the section taxonomy of the format.
enum class FieldType : uint8_t {
  kU64 = 1,
  kF64 = 2,
  kString = 3,
  kF64Array = 4,
  kMatrix = 5,
};

/// Ordered key -> typed-value map carried by one frame. Keys are unique
/// (duplicates are a decode error and an encode-time abort via Status).
/// Getters are strict about both presence and type, like Bundle.
class FramePayload {
 public:
  void PutU64(const std::string& key, uint64_t value);
  void PutF64(const std::string& key, double value);
  void PutString(const std::string& key, std::string value);
  void PutF64Array(const std::string& key, const std::vector<double>& values);
  void PutMatrix(const std::string& key, const Matrix& m);

  StatusOr<uint64_t> GetU64(const std::string& key) const;
  StatusOr<double> GetF64(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<std::vector<double>> GetF64Array(const std::string& key) const;
  StatusOr<Matrix> GetMatrix(const std::string& key) const;

  bool Has(const std::string& key) const;
  size_t size() const { return fields_.size(); }

 private:
  friend std::string EncodeFrameBody(FrameType type,
                                     const FramePayload& payload);
  friend Status DecodeFrameBody(std::string_view body, struct Frame* out);

  struct Field {
    std::string key;
    FieldType type;
    std::string payload;
  };

  /// Appends or replaces; replacing keeps the original position so encode
  /// order stays deterministic.
  void Put(const std::string& key, FieldType type, std::string payload);
  const Field* Find(const std::string& key) const;

  std::vector<Field> fields_;  ///< Insertion-ordered; keys unique.
};

/// One decoded (or to-be-encoded) frame.
struct Frame {
  FrameType type = FrameType::kHello;
  FramePayload payload;
};

/// Serialises the frame: u32 length prefix + body (magic through CRC).
std::string EncodeFrame(const Frame& frame);

/// Body without the length prefix (the encoder's inner step; exposed so
/// tests can corrupt specific offsets).
std::string EncodeFrameBody(FrameType type, const FramePayload& payload);

/// Strict decode of one frame body (no length prefix). Every documented
/// corruption is rejected with a named InvalidArgument/FailedPrecondition.
Status DecodeFrameBody(std::string_view body, Frame* out);

/// Decoder tuning knobs.
struct FrameDecoderConfig {
  /// Hard cap on one frame's body bytes. A length prefix above it is
  /// rejected immediately — a lying prefix cannot make the decoder buffer
  /// without bound.
  size_t max_frame_bytes = 64u << 20;
};

/// Frame sink: called once per decoded frame. A non-OK return aborts
/// decoding with that status (latched like a decode error).
using FrameSink = std::function<Status(Frame&&)>;

/// Chunk-boundary-independent streaming frame decoder.
class FrameDecoder {
 public:
  FrameDecoder(FrameDecoderConfig config, FrameSink sink);

  /// Consumes `n` bytes. Complete frames are decoded and emitted
  /// immediately; a trailing partial frame is buffered for the next chunk.
  /// On error the decoder latches the status: every later Consume/Finish
  /// returns the same error until Reset().
  Status Consume(const char* data, size_t n);
  Status Consume(const std::string& chunk) {
    return Consume(chunk.data(), chunk.size());
  }

  /// Ends the stream: a buffered partial frame is a truncation error;
  /// a clean frame boundary is OK. Idempotent.
  Status Finish();

  /// Clears buffered bytes, the latched error and the counters.
  void Reset();

  size_t frames_decoded() const { return frames_decoded_; }
  size_t bytes_consumed() const { return bytes_consumed_; }
  /// Bytes currently buffered while waiting for the rest of a frame.
  size_t pending_bytes() const { return pending_.size(); }

 private:
  /// Decodes + emits one complete body.
  Status EmitBody(std::string_view body);

  FrameDecoderConfig config_;
  FrameSink sink_;
  std::string pending_;          ///< Partial frame carried across chunks.
  Status error_ = Status::OK();  ///< Latched first error.
  bool finished_ = false;
  size_t frames_decoded_ = 0;
  size_t bytes_consumed_ = 0;
};

}  // namespace wire
}  // namespace cfx

#endif  // CFX_WIRE_FRAME_H_
