// Socket transport for wire frames (ROADMAP item 4): Unix-domain and TCP
// loopback endpoints with explicit timeouts everywhere.
//
// Addresses are spelled "unix:<path>" or "tcp:<host>:<port>". The sharded
// evaluation harness defaults to a Unix socket (one machine, N worker
// processes); TCP exists for spreading workers across hosts and is covered
// by the same tests.
//
// Blocking discipline: every file descriptor is non-blocking at the OS
// level; Accept/Connect/SendFrame/ReceiveFrame bound their waits with
// poll(2) and return DeadlineExceeded when the timeout lapses — no call
// here can hang a coordinator on a dead worker. A Connection owns a
// FrameDecoder, so receive-side framing inherits the strict corruption
// taxonomy (a peer sending garbage latches an error on that connection,
// not a crash). Clean peer close at a frame boundary is Cancelled
// ("connection closed"); close mid-frame is an InvalidArgument truncation.
#ifndef CFX_WIRE_TRANSPORT_H_
#define CFX_WIRE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/wire/frame.h"

namespace cfx {
namespace wire {

/// Parsed endpoint.
struct WireAddr {
  bool is_unix = true;
  std::string path;  ///< Unix socket path.
  std::string host;  ///< TCP host (numeric, e.g. "127.0.0.1").
  uint16_t port = 0; ///< TCP port; 0 asks the OS to pick (Bind only).
};

/// Parses "unix:<path>" | "tcp:<host>:<port>". Strict: unknown schemes,
/// empty paths and non-numeric ports are InvalidArgument.
StatusOr<WireAddr> ParseWireAddr(const std::string& spec);

/// Canonical spelling (round-trips through ParseWireAddr).
std::string WireAddrToString(const WireAddr& addr);

/// One connected, message-framed peer. Move-only; closes its fd on
/// destruction.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd);
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes one encoded frame, waiting at most `timeout_ms` for the socket
  /// to drain. Partial progress resets the clock per poll round.
  Status SendFrame(const Frame& frame, int timeout_ms);

  /// Next complete frame, waiting at most `timeout_ms`. Frames already
  /// buffered by a previous Pump/Receive return immediately.
  Status ReceiveFrame(Frame* out, int timeout_ms);

  /// Non-blocking read pump for poll loops: drains whatever the socket has
  /// right now into the decoder. Returns OK whether or not new frames
  /// completed; Cancelled on clean peer close; decoder errors latch.
  Status Pump();

  /// True when a decoded frame is ready to pop without touching the socket.
  bool HasFrame() const { return ready_ != nullptr && !ready_->empty(); }
  Frame PopFrame();

 private:
  int fd_ = -1;
  std::unique_ptr<FrameDecoder> decoder_;
  /// Decoded, not yet popped. Heap-allocated so the decoder's sink can hold
  /// a pointer that stays valid when the Connection itself is moved.
  std::unique_ptr<std::deque<Frame>> ready_;
  Status error_ = Status::OK();   ///< Latched transport/decode error.
  bool peer_closed_ = false;

  void EnsureDecoder();
};

/// Listening endpoint with non-blocking accept.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens. Unix paths are unlinked first (stale socket files
  /// from a crashed run must not block a new one). TCP binds with
  /// SO_REUSEADDR; port 0 resolves to an OS-assigned port, readable from
  /// local_addr().
  static StatusOr<Listener> Bind(const WireAddr& addr, int backlog = 16);

  /// Accepts one connection, waiting at most `timeout_ms`.
  StatusOr<Connection> Accept(int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound address (TCP port filled in after a port-0 bind).
  const WireAddr& local_addr() const { return addr_; }
  void Close();

 private:
  int fd_ = -1;
  WireAddr addr_;
};

/// Connects to `addr`, waiting at most `timeout_ms` for the handshake.
/// A refused/absent endpoint is retried until the deadline (the worker may
/// start before the coordinator finishes binding).
StatusOr<Connection> ConnectWithRetry(const WireAddr& addr, int timeout_ms);

}  // namespace wire
}  // namespace cfx

#endif  // CFX_WIRE_TRANSPORT_H_
