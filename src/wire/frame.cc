#include "src/wire/frame.h"

#include <cstring>

#include "src/common/string_util.h"
#include "src/wire/crc32.h"

namespace cfx {
namespace wire {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'X', 'W'};

/// magic + version + type + field count + CRC trailer: the smallest legal
/// body (a frame with zero fields).
constexpr size_t kMinBodyBytes = 4 + 4 + 1 + 4 + 4;

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kU64: return "u64";
    case FieldType::kF64: return "f64";
    case FieldType::kString: return "string";
    case FieldType::kF64Array: return "f64 array";
    case FieldType::kMatrix: return "matrix";
  }
  return "unknown";
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  if (n == 0) return;  // Empty vectors hand over data() == nullptr.
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

/// Bounds-checked forward reader over one frame body.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Status Read(void* dst, size_t n) {
    if (n > data_.size() - pos_) {
      return Status::InvalidArgument("truncated wire frame");
    }
    if (n != 0) std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadValue(T* dst) {
    return Read(dst, sizeof(T));
  }

  Status ReadString(size_t n, std::string* dst) {
    if (n > data_.size() - pos_) {
      return Status::InvalidArgument(
          "wire frame field length overruns the frame body (lying length)");
    }
    dst->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kRowBatch);
}

void FramePayload::Put(const std::string& key, FieldType type,
                       std::string payload) {
  for (Field& f : fields_) {
    if (f.key == key) {
      f.type = type;
      f.payload = std::move(payload);
      return;
    }
  }
  fields_.push_back(Field{key, type, std::move(payload)});
}

const FramePayload::Field* FramePayload::Find(const std::string& key) const {
  for (const Field& f : fields_) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

bool FramePayload::Has(const std::string& key) const {
  return Find(key) != nullptr;
}

void FramePayload::PutU64(const std::string& key, uint64_t value) {
  std::string payload;
  AppendValue(&payload, value);
  Put(key, FieldType::kU64, std::move(payload));
}

void FramePayload::PutF64(const std::string& key, double value) {
  std::string payload;
  AppendValue(&payload, value);
  Put(key, FieldType::kF64, std::move(payload));
}

void FramePayload::PutString(const std::string& key, std::string value) {
  Put(key, FieldType::kString, std::move(value));
}

void FramePayload::PutF64Array(const std::string& key,
                               const std::vector<double>& values) {
  std::string payload;
  AppendValue<uint64_t>(&payload, values.size());
  AppendRaw(&payload, values.data(), values.size() * sizeof(double));
  Put(key, FieldType::kF64Array, std::move(payload));
}

void FramePayload::PutMatrix(const std::string& key, const Matrix& m) {
  std::string payload;
  AppendValue<uint64_t>(&payload, m.rows());
  AppendValue<uint64_t>(&payload, m.cols());
  AppendRaw(&payload, m.data(), m.size() * sizeof(float));
  Put(key, FieldType::kMatrix, std::move(payload));
}

StatusOr<uint64_t> FramePayload::GetU64(const std::string& key) const {
  const Field* f = Find(key);
  if (f == nullptr) return Status::NotFound("frame has no field '" + key + "'");
  if (f->type != FieldType::kU64 || f->payload.size() != sizeof(uint64_t)) {
    return Status::InvalidArgument(
        StrFormat("frame field '%s' is not a u64 (found %s, %zu bytes)",
                  key.c_str(), FieldTypeName(f->type), f->payload.size()));
  }
  uint64_t value = 0;
  std::memcpy(&value, f->payload.data(), sizeof(value));
  return value;
}

StatusOr<double> FramePayload::GetF64(const std::string& key) const {
  const Field* f = Find(key);
  if (f == nullptr) return Status::NotFound("frame has no field '" + key + "'");
  if (f->type != FieldType::kF64 || f->payload.size() != sizeof(double)) {
    return Status::InvalidArgument(
        StrFormat("frame field '%s' is not an f64 (found %s, %zu bytes)",
                  key.c_str(), FieldTypeName(f->type), f->payload.size()));
  }
  double value = 0.0;
  std::memcpy(&value, f->payload.data(), sizeof(value));
  return value;
}

StatusOr<std::string> FramePayload::GetString(const std::string& key) const {
  const Field* f = Find(key);
  if (f == nullptr) return Status::NotFound("frame has no field '" + key + "'");
  if (f->type != FieldType::kString) {
    return Status::InvalidArgument(
        StrFormat("frame field '%s' is not a string (found %s)", key.c_str(),
                  FieldTypeName(f->type)));
  }
  return f->payload;
}

StatusOr<std::vector<double>> FramePayload::GetF64Array(
    const std::string& key) const {
  const Field* f = Find(key);
  if (f == nullptr) return Status::NotFound("frame has no field '" + key + "'");
  if (f->type != FieldType::kF64Array) {
    return Status::InvalidArgument(
        StrFormat("frame field '%s' is not an f64 array (found %s)",
                  key.c_str(), FieldTypeName(f->type)));
  }
  const std::string& payload = f->payload;
  if (payload.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("malformed f64 array field '" + key + "'");
  }
  uint64_t n = 0;
  std::memcpy(&n, payload.data(), sizeof(n));
  if (payload.size() != sizeof(uint64_t) + n * sizeof(double)) {
    return Status::InvalidArgument("malformed f64 array field '" + key + "'");
  }
  std::vector<double> values(n);
  if (n != 0) {
    std::memcpy(values.data(), payload.data() + sizeof(uint64_t),
                n * sizeof(double));
  }
  return values;
}

StatusOr<Matrix> FramePayload::GetMatrix(const std::string& key) const {
  const Field* f = Find(key);
  if (f == nullptr) return Status::NotFound("frame has no field '" + key + "'");
  if (f->type != FieldType::kMatrix) {
    return Status::InvalidArgument(
        StrFormat("frame field '%s' is not a matrix (found %s)", key.c_str(),
                  FieldTypeName(f->type)));
  }
  const std::string& payload = f->payload;
  if (payload.size() < 2 * sizeof(uint64_t)) {
    return Status::InvalidArgument("malformed matrix field '" + key + "'");
  }
  uint64_t rows = 0, cols = 0;
  std::memcpy(&rows, payload.data(), sizeof(rows));
  std::memcpy(&cols, payload.data() + sizeof(rows), sizeof(cols));
  // Guard the multiplication before it can size an allocation.
  if (rows > 0 && cols > (payload.size() / sizeof(float)) / rows) {
    return Status::InvalidArgument("malformed matrix field '" + key + "'");
  }
  if (payload.size() !=
      2 * sizeof(uint64_t) + rows * cols * sizeof(float)) {
    return Status::InvalidArgument("malformed matrix field '" + key + "'");
  }
  Matrix m(rows, cols);
  if (m.size() != 0) {
    std::memcpy(m.data(), payload.data() + 2 * sizeof(uint64_t),
                m.size() * sizeof(float));
  }
  return m;
}

std::string EncodeFrameBody(FrameType type, const FramePayload& payload) {
  std::string body;
  AppendRaw(&body, kMagic, sizeof(kMagic));
  AppendValue<uint32_t>(&body, kWireVersion);
  AppendValue<uint8_t>(&body, static_cast<uint8_t>(type));
  AppendValue<uint32_t>(&body, static_cast<uint32_t>(payload.fields_.size()));
  for (const FramePayload::Field& f : payload.fields_) {
    AppendValue<uint16_t>(&body, static_cast<uint16_t>(f.key.size()));
    AppendRaw(&body, f.key.data(), f.key.size());
    AppendValue<uint8_t>(&body, static_cast<uint8_t>(f.type));
    AppendValue<uint64_t>(&body, f.payload.size());
    AppendRaw(&body, f.payload.data(), f.payload.size());
  }
  AppendValue<uint32_t>(&body, Crc32(body.data(), body.size()));
  return body;
}

std::string EncodeFrame(const Frame& frame) {
  std::string body = EncodeFrameBody(frame.type, frame.payload);
  std::string out;
  AppendValue<uint32_t>(&out, static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

Status DecodeFrameBody(std::string_view body, Frame* out) {
  if (body.size() < kMinBodyBytes) {
    return Status::InvalidArgument("truncated wire frame");
  }

  Cursor cursor(body);
  char magic[4];
  CFX_RETURN_IF_ERROR(cursor.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a cfx wire frame (bad magic)");
  }

  uint32_t version = 0;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&version));
  if (version == 0) {
    return Status::InvalidArgument("wire frame has invalid version 0");
  }
  if (version > kWireVersion) {
    return Status::FailedPrecondition(
        StrFormat("wire frame has format version %u; this build reads <= %u "
                  "(version skew)",
                  version, kWireVersion));
  }

  uint8_t type = 0;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&type));
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("unknown wire frame type %u", type));
  }
  out->type = static_cast<FrameType>(type);
  out->payload = FramePayload();

  uint32_t count = 0;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&count));
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t key_len = 0;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&key_len));
    std::string key;
    CFX_RETURN_IF_ERROR(cursor.ReadString(key_len, &key));
    uint8_t field_type = 0;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&field_type));
    if (field_type < static_cast<uint8_t>(FieldType::kU64) ||
        field_type > static_cast<uint8_t>(FieldType::kMatrix)) {
      return Status::InvalidArgument(StrFormat(
          "wire frame field '%s' has unknown type %u", key.c_str(),
          field_type));
    }
    uint64_t payload_len = 0;
    CFX_RETURN_IF_ERROR(cursor.ReadValue(&payload_len));
    // The CRC trailer is not field payload: a length that reaches into (or
    // past) the final 4 bytes is lying about the field's extent.
    if (payload_len > body.size() - cursor.pos() ||
        body.size() - cursor.pos() - payload_len < sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "wire frame field length overruns the frame body (lying length)");
    }
    if (out->payload.Has(key)) {
      return Status::InvalidArgument("wire frame repeats field '" + key +
                                     "'");
    }
    std::string payload;
    CFX_RETURN_IF_ERROR(cursor.ReadString(payload_len, &payload));
    out->payload.Put(key, static_cast<FieldType>(field_type),
                     std::move(payload));
  }

  if (cursor.remaining() != sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "wire frame has trailing garbage before the CRC trailer");
  }
  uint32_t stored_crc = 0;
  CFX_RETURN_IF_ERROR(cursor.ReadValue(&stored_crc));
  const uint32_t computed =
      Crc32(body.data(), body.size() - sizeof(uint32_t));
  if (stored_crc != computed) {
    return Status::InvalidArgument(
        StrFormat("wire frame CRC mismatch (stored %08x, computed %08x)",
                  stored_crc, computed));
  }
  return Status::OK();
}

FrameDecoder::FrameDecoder(FrameDecoderConfig config, FrameSink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.max_frame_bytes < kMinBodyBytes) {
    config_.max_frame_bytes = kMinBodyBytes;
  }
}

Status FrameDecoder::EmitBody(std::string_view body) {
  Frame frame;
  CFX_RETURN_IF_ERROR(DecodeFrameBody(body, &frame));
  ++frames_decoded_;
  return sink_(std::move(frame));
}

Status FrameDecoder::Consume(const char* data, size_t n) {
  if (!error_.ok()) return error_;
  if (finished_) {
    error_ = Status::FailedPrecondition("Consume after Finish");
    return error_;
  }
  bytes_consumed_ += n;
  pending_.append(data, n);

  size_t pos = 0;
  for (;;) {
    const size_t avail = pending_.size() - pos;
    if (avail < sizeof(uint32_t)) break;
    uint32_t body_len = 0;
    std::memcpy(&body_len, pending_.data() + pos, sizeof(body_len));
    if (body_len > config_.max_frame_bytes) {
      error_ = Status::InvalidArgument(
          StrFormat("wire frame length %u exceeds the %zu-byte cap",
                    body_len, config_.max_frame_bytes));
      return error_;
    }
    if (body_len < kMinBodyBytes) {
      error_ = Status::InvalidArgument("truncated wire frame");
      return error_;
    }
    if (avail - sizeof(uint32_t) < body_len) break;  // Wait for the rest.
    const std::string_view body(pending_.data() + pos + sizeof(uint32_t),
                                body_len);
    const Status emitted = EmitBody(body);
    if (!emitted.ok()) {
      error_ = emitted;
      return error_;
    }
    pos += sizeof(uint32_t) + body_len;
  }
  pending_.erase(0, pos);
  return Status::OK();
}

Status FrameDecoder::Finish() {
  if (!error_.ok()) return error_;
  finished_ = true;
  if (!pending_.empty()) {
    error_ = Status::InvalidArgument(StrFormat(
        "wire stream ended mid-frame (%zu buffered bytes)", pending_.size()));
    return error_;
  }
  return Status::OK();
}

void FrameDecoder::Reset() {
  pending_.clear();
  error_ = Status::OK();
  finished_ = false;
  frames_decoded_ = 0;
  bytes_consumed_ = 0;
}

}  // namespace wire
}  // namespace cfx
