// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// trailer of the wire frame format (src/wire/frame.h). Table-driven,
// incremental: Crc32Update lets the encoder checksum a frame as it appends
// sections without a second pass over the bytes.
#ifndef CFX_WIRE_CRC32_H_
#define CFX_WIRE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cfx {
namespace wire {

/// Extends a running CRC-32 with `n` more bytes. Seed with kCrc32Init and
/// finish with Crc32Final (the standard init/final-xor convention).
constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, const void* data, size_t n);
inline uint32_t Crc32Final(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// One-shot convenience over a whole buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Final(Crc32Update(kCrc32Init, data, n));
}

}  // namespace wire
}  // namespace cfx

#endif  // CFX_WIRE_CRC32_H_
