#include "src/wire/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstddef>
#include <cstring>
#include <ctime>
#include <utility>

#include "src/common/string_util.h"

namespace cfx {
namespace wire {
namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StrFormat("fcntl(O_NONBLOCK): %s",
                                      std::strerror(errno)));
  }
  return Status::OK();
}

/// Waits for `events` on `fd` for at most `timeout_ms` (<0 = forever).
/// Returns OK when ready, DeadlineExceeded on timeout.
Status PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("wire transport timeout");
    if (errno == EINTR) continue;
    return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
  }
}

/// Builds the sockaddr for `addr`. Unix paths longer than sun_path are
/// rejected up front instead of silently truncated.
Status FillSockaddr(const WireAddr& addr, sockaddr_storage* storage,
                    socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (addr.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    if (addr.path.size() >= sizeof(sun->sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     addr.path + "'");
    }
    sun->sun_family = AF_UNIX;
    std::memcpy(sun->sun_path, addr.path.data(), addr.path.size());
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.path.size() + 1);
    return Status::OK();
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host '" + addr.host +
                                   "' (numeric IPv4 expected)");
  }
  *len = sizeof(sockaddr_in);
  return Status::OK();
}

}  // namespace

StatusOr<WireAddr> ParseWireAddr(const std::string& spec) {
  WireAddr addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + spec +
                                     "'");
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    addr.is_unix = false;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("expected tcp:<host>:<port> in '" +
                                     spec + "'");
    }
    addr.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    uint64_t port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad tcp port '" + port_str + "' in '" +
                                       spec + "'");
      }
      port = port * 10 + static_cast<uint64_t>(c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("tcp port out of range in '" + spec +
                                       "'");
      }
    }
    addr.port = static_cast<uint16_t>(port);
    return addr;
  }
  return Status::InvalidArgument(
      "wire address must be unix:<path> or tcp:<host>:<port>, got '" + spec +
      "'");
}

std::string WireAddrToString(const WireAddr& addr) {
  if (addr.is_unix) return "unix:" + addr.path;
  return StrFormat("tcp:%s:%u", addr.host.c_str(), addr.port);
}

// ---- Connection -------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) { EnsureDecoder(); }

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      ready_(std::move(other.ready_)),
      error_(std::move(other.error_)),
      peer_closed_(other.peer_closed_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    ready_ = std::move(other.ready_);
    error_ = std::move(other.error_);
    peer_closed_ = other.peer_closed_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::EnsureDecoder() {
  if (decoder_ != nullptr) return;
  ready_ = std::make_unique<std::deque<Frame>>();
  // The sink must capture the deque, not `this`: a Connection is moved out
  // of Accept/ConnectWithRetry, and a `this` capture would keep pushing
  // frames into the moved-from shell. The deque's heap address is stable
  // because its unique_ptr moves along with the decoder.
  std::deque<Frame>* ready = ready_.get();
  decoder_ = std::make_unique<FrameDecoder>(
      FrameDecoderConfig(), [ready](Frame&& frame) {
        ready->push_back(std::move(frame));
        return Status::OK();
      });
}

Status Connection::SendFrame(const Frame& frame, int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed connection");
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  const int64_t deadline = NowMs() + timeout_ms;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int64_t left = deadline - NowMs();
      if (left <= 0) {
        return Status::DeadlineExceeded("SendFrame timed out");
      }
      CFX_RETURN_IF_ERROR(PollOne(fd_, POLLOUT, static_cast<int>(left)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Cancelled("connection closed by peer during send");
    }
    return Status::Internal(StrFormat("send: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Connection::Pump() {
  if (fd_ < 0) return Status::FailedPrecondition("pump on closed connection");
  if (!error_.ok()) return error_;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      const Status consumed = decoder_->Consume(buf, static_cast<size_t>(n));
      if (!consumed.ok()) {
        error_ = consumed;
        return error_;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return Status::OK();
      continue;  // Possibly more queued; drain without blocking.
    }
    if (n == 0) {
      peer_closed_ = true;
      // A close mid-frame is a truncation; at a boundary it is the normal
      // end-of-conversation signal.
      const Status finished = decoder_->Finish();
      if (!finished.ok()) {
        error_ = finished;
        return error_;
      }
      error_ = Status::Cancelled("connection closed by peer");
      return error_;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      peer_closed_ = true;
      error_ = Status::Cancelled("connection reset by peer");
      return error_;
    }
    error_ = Status::Internal(StrFormat("recv: %s", std::strerror(errno)));
    return error_;
  }
}

Status Connection::ReceiveFrame(Frame* out, int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    if (HasFrame()) {
      *out = PopFrame();
      return Status::OK();
    }
    if (!error_.ok()) return error_;
    const int64_t left = deadline - NowMs();
    if (left <= 0) return Status::DeadlineExceeded("ReceiveFrame timed out");
    CFX_RETURN_IF_ERROR(PollOne(fd_, POLLIN, static_cast<int>(left)));
    const Status pumped = Pump();
    // A pump error (including clean close) still surfaces any frame that
    // completed before it — callers drain, then see the error.
    if (!pumped.ok() && !HasFrame()) return pumped;
  }
}

Frame Connection::PopFrame() {
  Frame frame = std::move(ready_->front());
  ready_->pop_front();
  return frame;
}

// ---- Listener ---------------------------------------------------------------

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), addr_(std::move(other.addr_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    addr_ = std::move(other.addr_);
    other.fd_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (addr_.is_unix) ::unlink(addr_.path.c_str());
  }
}

StatusOr<Listener> Listener::Bind(const WireAddr& addr, int backlog) {
  const int domain = addr.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  Listener listener;
  listener.fd_ = fd;  // Owns the fd from here; Close() on any error path.
  listener.addr_ = addr;

  if (addr.is_unix) {
    ::unlink(addr.path.c_str());  // Stale socket from a crashed run.
  } else {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }

  sockaddr_storage storage;
  socklen_t len = 0;
  Status filled = FillSockaddr(addr, &storage, &len);
  if (!filled.ok()) return filled;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
    return Status::Internal(StrFormat("bind %s: %s",
                                      WireAddrToString(addr).c_str(),
                                      std::strerror(errno)));
  }
  if (!addr.is_unix && addr.port == 0) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
        0) {
      return Status::Internal(
          StrFormat("getsockname: %s", std::strerror(errno)));
    }
    listener.addr_.port = ntohs(bound.sin_port);
  }
  if (::listen(fd, backlog) < 0) {
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }
  CFX_RETURN_IF_ERROR(SetNonBlocking(fd));
  return listener;
}

StatusOr<Connection> Listener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed listener");
  const int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      CFX_RETURN_IF_ERROR(SetNonBlocking(client));
      if (!addr_.is_unix) {
        const int one = 1;
        (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
      }
      return Connection(client);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int64_t left = deadline - NowMs();
      if (left <= 0) return Status::DeadlineExceeded("Accept timed out");
      CFX_RETURN_IF_ERROR(PollOne(fd_, POLLIN, static_cast<int>(left)));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Status::Internal(StrFormat("accept: %s", std::strerror(errno)));
  }
}

// ---- Connect ----------------------------------------------------------------

namespace {

/// One non-blocking connect attempt bounded by `timeout_ms`.
StatusOr<Connection> ConnectOnce(const WireAddr& addr, int timeout_ms) {
  const int domain = addr.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  Connection conn(fd);  // Owns the fd; destructor closes on error paths.
  Status nonblock = SetNonBlocking(fd);
  if (!nonblock.ok()) return nonblock;

  sockaddr_storage storage;
  socklen_t len = 0;
  Status filled = FillSockaddr(addr, &storage, &len);
  if (!filled.ok()) return filled;

  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return Status::Internal(StrFormat("connect %s: %s",
                                        WireAddrToString(addr).c_str(),
                                        std::strerror(errno)));
    }
    CFX_RETURN_IF_ERROR(PollOne(fd, POLLOUT, timeout_ms));
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) < 0 ||
        so_error != 0) {
      return Status::Internal(
          StrFormat("connect %s: %s", WireAddrToString(addr).c_str(),
                    std::strerror(so_error != 0 ? so_error : errno)));
    }
  }
  if (!addr.is_unix) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return conn;
}

}  // namespace

StatusOr<Connection> ConnectWithRetry(const WireAddr& addr, int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const int64_t left = deadline - NowMs();
    if (left <= 0) {
      return Status::DeadlineExceeded("connect to " + WireAddrToString(addr) +
                                      " timed out");
    }
    auto conn = ConnectOnce(addr, static_cast<int>(left));
    if (conn.ok()) return conn;
    if (conn.status().code() == StatusCode::kInvalidArgument) {
      return conn.status();  // A bad address never becomes good.
    }
    // Refused / not-yet-bound: back off briefly and retry until deadline.
    struct timespec ts = {0, 20 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
}

}  // namespace wire
}  // namespace cfx
