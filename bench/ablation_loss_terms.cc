// Ablation study (DESIGN.md §3): drop or swap individual terms of the
// four-part loss on the Adult dataset and report the §IV-D metrics for each
// variant. Not a paper table — it justifies the loss design:
//   * full            — the paper's configuration (binary constraint model);
//   * no_sparsity     — Mahajan-style objective (sparsity rises);
//   * no_feasibility  — plain CF objective (feasibility collapses);
//   * no_validity     — reconstruction only (validity collapses);
//   * linear_binary   — the paper's c1/c2 linear relaxation instead of the
//                       implication hinge;
//   * no_copy_prior   — absolute decoder instead of the copy-prior head
//                       (sparsity and proximity degrade).
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/metrics/report.h"

namespace cfx {
namespace {

struct Variant {
  const char* name;
  void (*tweak)(GeneratorConfig*);
};

const Variant kVariants[] = {
    {"full", [](GeneratorConfig*) {}},
    {"no_sparsity",
     [](GeneratorConfig* c) { c->loss.sparsity_weight = 0.0f; }},
    {"no_feasibility",
     [](GeneratorConfig* c) { c->loss.feasibility_weight = 0.0f; }},
    {"no_validity",
     [](GeneratorConfig* c) { c->loss.validity_weight = 0.0f; }},
    {"linear_binary",
     [](GeneratorConfig* c) {
       c->loss.use_linear_binary = true;
       c->loss.linear_c1 = 0.0f;
       c->loss.linear_c2 = 0.6f;
     }},
    {"no_copy_prior", [](GeneratorConfig* c) { c->copy_prior = false; }},
};

}  // namespace
}  // namespace cfx

int main() {
  using namespace cfx;
  RunConfig config = RunConfig::FromEnv();
  auto experiment = Experiment::Create(DatasetId::kAdult, config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& exp = **experiment;
  Matrix x_eval = exp.TestSubset(config.eval_instances);

  std::vector<MetricsRow> rows;
  for (const Variant& variant : kVariants) {
    GeneratorConfig gen_config =
        GeneratorConfig::FromDataset(exp.info(), ConstraintMode::kBinary);
    variant.tweak(&gen_config);
    if (gen_config.loss.validity_weight == 0.0f) {
      // Without a validity objective restarts would always trigger.
      gen_config.max_restarts = 0;
    }
    FeasibleCfGenerator generator(exp.method_context(), gen_config);
    CFX_CHECK_OK(generator.Fit(exp.x_train(), exp.y_train()));
    CfResult result = generator.Generate(x_eval);
    MethodMetrics metrics =
        EvaluateMethod(variant.name, exp.encoder(), exp.info(), result);
    rows.push_back({metrics, /*show_unary=*/true, /*show_binary=*/true});
  }
  std::printf("%s\n",
              RenderMetricsTable(
                  "Ablation — four-part loss variants (Adult, binary "
                  "constraint model)",
                  rows)
                  .c_str());
  return 0;
}
