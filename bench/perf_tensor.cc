// Microbenchmarks for the tensor substrate: matmul, elementwise kernels and
// a full autodiff forward+backward of an MLP-shaped graph.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/nn/layers.h"
#include "src/nn/losses.h"

namespace cfx {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, n, 0.0f, 1.0f, &rng);
  Matrix b = Matrix::RandomNormal(n, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    Matrix c = a.MatMul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchLinearForward(benchmark::State& state) {
  // The shape the experiments actually run: batch x 120 census input.
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Matrix x = Matrix::RandomUniform(batch, 120, 0.0f, 1.0f, &rng);
  Matrix w = Matrix::RandomNormal(120, 20, 0.0f, 0.1f, &rng);
  for (auto _ : state) {
    Matrix h = x.MatMul(w);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchLinearForward)->Arg(256)->Arg(2048);

void BM_ElementwiseMap(benchmark::State& state) {
  Rng rng(3);
  Matrix x = Matrix::RandomNormal(512, 512, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    Matrix y = x.Map([](float v) { return v > 0.0f ? v : 0.0f; });
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_ElementwiseMap);

void BM_AutodiffMlpStep(benchmark::State& state) {
  // Forward + backward + (no step) of a Table II-sized network on one batch.
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(4);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Linear>(29, 20, &rng));
  net.Add(std::make_unique<nn::ReluLayer>());
  net.Add(std::make_unique<nn::Linear>(20, 16, &rng));
  net.Add(std::make_unique<nn::ReluLayer>());
  net.Add(std::make_unique<nn::Linear>(16, 1, &rng));
  Matrix x = Matrix::RandomUniform(batch, 29, 0.0f, 1.0f, &rng);
  Matrix y(batch, 1);
  for (size_t i = 0; i < batch; ++i) y.at(i, 0) = static_cast<float>(i % 2);
  std::vector<ag::Var> params = net.Parameters();
  for (auto _ : state) {
    ag::Var loss = nn::BceWithLogits(net.Forward(ag::Constant(x)), y);
    ag::ZeroGrad(params);
    ag::Backward(loss);
    benchmark::DoNotOptimize(params[0]->grad.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AutodiffMlpStep)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_tensor");
