// Shared main() for the perf_* google-benchmark binaries.
//
// Every run leaves a machine-readable trace next to the binary's working
// directory: unless the caller passed --benchmark_out explicitly, results
// are mirrored to BENCH_<name>.json (benchmark names, wall-clock times,
// iteration counts) with the effective cfx thread count recorded in the
// JSON context — so perf runs under different CFX_THREADS settings are
// directly diffable.
#ifndef CFX_BENCH_BENCH_MAIN_H_
#define CFX_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"

/// Build-type provenance, baked in by bench/CMakeLists.txt from
/// CMAKE_BUILD_TYPE (lowercased). "unspecified" means the binary came from a
/// configure with no build type at all — treat its numbers as garbage.
#ifndef CFX_BUILD_TYPE
#define CFX_BUILD_TYPE "unspecified"
#endif

#define CFX_BENCHMARK_MAIN(name)                                             \
  int main(int argc, char** argv) {                                          \
    std::vector<char*> args(argv, argv + argc);                              \
    bool has_out = false;                                                    \
    for (int i = 1; i < argc; ++i) {                                         \
      if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true; \
    }                                                                        \
    std::string out_flag = "--benchmark_out=BENCH_" name ".json";            \
    std::string fmt_flag = "--benchmark_out_format=json";                    \
    if (!has_out) {                                                          \
      args.push_back(out_flag.data());                                       \
      args.push_back(fmt_flag.data());                                       \
    }                                                                        \
    benchmark::AddCustomContext(                                             \
        "cfx_threads", std::to_string(cfx::ThreadPool::GlobalThreads()));    \
    benchmark::AddCustomContext("cfx_build_type", CFX_BUILD_TYPE);           \
    /* The driving preset (tools/ci.sh exports CFX_BENCH_PRESET) so a     */ \
    /* committed JSON names the exact configuration that produced it.     */ \
    const char* cfx_preset = std::getenv("CFX_BENCH_PRESET");                \
    benchmark::AddCustomContext("cfx_build_preset",                          \
                                cfx_preset != nullptr ? cfx_preset           \
                                                      : "unspecified");      \
    int effective_argc = static_cast<int>(args.size());                      \
    benchmark::Initialize(&effective_argc, args.data());                     \
    if (benchmark::ReportUnrecognizedArguments(effective_argc,               \
                                               args.data())) {               \
      return 1;                                                              \
    }                                                                        \
    benchmark::RunSpecifiedBenchmarks();                                     \
    benchmark::Shutdown();                                                   \
    /* Explicit snapshot (the atexit hook also fires, but this surfaces */   \
    /* write errors while the bench can still report them). */               \
    if (!cfx::metrics::ExportIfEnabled().ok() ||                             \
        !cfx::trace::ExportIfEnabled().ok()) {                               \
      return 1;                                                              \
    }                                                                        \
    return 0;                                                                \
  }

#endif  // CFX_BENCH_BENCH_MAIN_H_
