// Microbenchmarks for model training: classifier epochs, VAE ELBO epochs and
// one four-part-loss step of the CF generator, at the experiment's shapes.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/core/experiment.h"
#include "src/core/generator.h"

namespace cfx {
namespace {

/// Shared experiment (Adult, small scale) built once.
Experiment* GetExperiment() {
  static Experiment* experiment = [] {
    RunConfig config;
    config.scale = Scale::kSmall;
    config.seed = 3;
    auto exp = Experiment::Create(DatasetId::kAdult, config);
    CFX_CHECK_OK(exp.status());
    return std::move(*exp).release();
  }();
  return experiment;
}

void BM_ClassifierTrainEpoch(benchmark::State& state) {
  Experiment* exp = GetExperiment();
  Rng rng(7);
  ClassifierConfig config;
  config.epochs = 1;
  for (auto _ : state) {
    BlackBoxClassifier clf(exp->encoder().encoded_width(), config, &rng);
    TrainStats stats = clf.Train(exp->x_train(), exp->y_train(), &rng);
    benchmark::DoNotOptimize(stats.final_loss);
  }
  state.SetItemsProcessed(state.iterations() * exp->x_train().rows());
}
BENCHMARK(BM_ClassifierTrainEpoch)->Unit(benchmark::kMillisecond);

void BM_VaeElboEpoch(benchmark::State& state) {
  Experiment* exp = GetExperiment();
  Rng rng(8);
  VaeConfig config;
  config.input_dim = exp->encoder().encoded_width();
  config.condition_dim = 0;
  Vae vae(config, &rng);
  VaeTrainConfig train;
  train.epochs = 1;
  for (auto _ : state) {
    TrainStats stats = vae.TrainElbo(exp->x_train(), Matrix(), train, &rng);
    benchmark::DoNotOptimize(stats.final_loss);
  }
  state.SetItemsProcessed(state.iterations() * exp->x_train().rows());
}
BENCHMARK(BM_VaeElboEpoch)->Unit(benchmark::kMillisecond);

void BM_GeneratorFitEpoch(benchmark::State& state) {
  Experiment* exp = GetExperiment();
  for (auto _ : state) {
    GeneratorConfig config =
        GeneratorConfig::FromDataset(exp->info(), ConstraintMode::kBinary);
    config.epochs = 1;
    config.max_restarts = 0;
    FeasibleCfGenerator generator(exp->method_context(), config);
    CFX_CHECK_OK(generator.Fit(exp->x_train(), exp->y_train()));
    benchmark::DoNotOptimize(generator.last_epoch_terms().data());
  }
  state.SetItemsProcessed(state.iterations() * exp->x_train().rows());
}
BENCHMARK(BM_GeneratorFitEpoch)->Unit(benchmark::kMillisecond);

void BM_GeneratorGenerate(benchmark::State& state) {
  Experiment* exp = GetExperiment();
  GeneratorConfig config =
      GeneratorConfig::FromDataset(exp->info(), ConstraintMode::kUnary);
  config.epochs = 3;
  config.max_restarts = 0;
  FeasibleCfGenerator generator(exp->method_context(), config);
  CFX_CHECK_OK(generator.Fit(exp->x_train(), exp->y_train()));
  Matrix x = exp->TestSubset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    CfResult result = generator.Generate(x);
    benchmark::DoNotOptimize(result.cfs.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_GeneratorGenerate)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_training");
