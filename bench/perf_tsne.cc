// Microbenchmarks for the t-SNE engines behind Figure 6: the exact-vs-
// Barnes–Hut N sweep (the asymptotic win lifting the manifold pipeline to
// full datasets), the quadtree build/traverse primitives, the per-row
// perplexity calibration and the kNN index strategies.
#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/manifold/knn.h"
#include "src/manifold/quadtree.h"
#include "src/manifold/tsne.h"

namespace cfx {
namespace {

/// Shared sweep configuration: enough iterations for the gradient engines
/// to dominate setup, few enough that the exact O(N^2) arm stays runnable
/// at N=8000.
TsneConfig SweepConfig(TsneAlgorithm algorithm) {
  TsneConfig config;
  config.iterations = 60;
  config.exaggeration_iters = 20;
  config.momentum_switch_iter = 30;
  config.algorithm = algorithm;
  config.theta = 0.5;
  return config;
}

void RunTsneSweep(benchmark::State& state, TsneAlgorithm algorithm) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix x = Matrix::RandomNormal(n, 10, 0.0f, 1.0f, &rng);
  const TsneConfig config = SweepConfig(algorithm);
  for (auto _ : state) {
    Rng tsne_rng(2);
    Matrix y = RunTsne(x, config, &tsne_rng);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Per-N entries land in BENCH_perf_tsne.json as BM_TsneExact/500 … and
// BM_TsneBarnesHut/8000; the 8000-point pair is the ISSUE-2 acceptance
// measurement (Barnes–Hut >= 5x over exact at θ=0.5). Single-shot timing:
// the exact arm at N=8000 walks ~2 GB of O(N^2) buffers per run.
void BM_TsneExact(benchmark::State& state) {
  RunTsneSweep(state, TsneAlgorithm::kExact);
}
BENCHMARK(BM_TsneExact)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_TsneBarnesHut(benchmark::State& state) {
  RunTsneSweep(state, TsneAlgorithm::kBarnesHut);
}
BENCHMARK(BM_TsneBarnesHut)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// ---- quadtree primitives --------------------------------------------------

std::vector<double> RandomPlanePoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pts(2 * n);
  for (double& v : pts) v = rng.Normal(0.0, 5.0);
  return pts;
}

void BM_QuadtreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> pts = RandomPlanePoints(n, 11);
  for (auto _ : state) {
    Quadtree tree(pts.data(), n);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuadtreeBuild)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_QuadtreeTraverse(benchmark::State& state) {
  // Full repulsion pass at θ=0.5: one θ-walk per point.
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> pts = RandomPlanePoints(n, 13);
  const Quadtree tree(pts.data(), n);
  for (auto _ : state) {
    double z_total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double fx = 0.0, fy = 0.0, z = 0.0;
      tree.Repulsion(i, 0.5, &fx, &fy, &z);
      z_total += z;
    }
    benchmark::DoNotOptimize(z_total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuadtreeTraverse)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_SparseAffinities(benchmark::State& state) {
  // The kNN + calibration + symmetrisation front half of the BH pipeline.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17);
  Matrix x = Matrix::RandomNormal(n, 10, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    Rng knn_rng(18);
    internal::SparseAffinities aff =
        internal::BuildSparseAffinities(x, 30.0, &knn_rng);
    benchmark::DoNotOptimize(aff.offsets.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SparseAffinities)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// ---- calibration / kNN ----------------------------------------------------

void BM_PerplexityCalibration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> sq(n);
  for (double& v : sq) v = rng.Uniform(0.1, 10.0);
  sq[0] = 0.0;
  std::vector<double> row;
  for (auto _ : state) {
    internal::CalibrateRow(sq, 0, 30.0, &row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PerplexityCalibration)->Arg(350)->Arg(1000);

void BM_KnnIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix data = Matrix::RandomUniform(n, 28, 0.0f, 1.0f, &rng);
  KnnIndex index(data, &rng);
  Matrix query = Matrix::RandomUniform(1, 28, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    auto hits = index.Query(query, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnIndexQuery)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_KnnBruteForceQuery(benchmark::State& state) {
  // Baseline the VP-tree is judged against.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix data = Matrix::RandomUniform(n, 28, 0.0f, 1.0f, &rng);
  Matrix query = Matrix::RandomUniform(1, 28, 0.0f, 1.0f, &rng);
  std::vector<float> dists(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (size_t c = 0; c < 28; ++c) {
        const float d = query.at(0, c) - data.at(i, c);
        acc += d * d;
      }
      dists[i] = acc;
    }
    std::partial_sort(dists.begin(), dists.begin() + 8, dists.end());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnBruteForceQuery)->Arg(1000)->Arg(5000)->Arg(20000);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_tsne");
