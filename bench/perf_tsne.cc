// Microbenchmarks for the exact t-SNE implementation (Figure 6's workhorse):
// scaling in point count and the per-row perplexity calibration.
#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/manifold/knn.h"
#include "src/manifold/tsne.h"

namespace cfx {
namespace {

void BM_TsneFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix x = Matrix::RandomNormal(n, 10, 0.0f, 1.0f, &rng);
  TsneConfig config;
  config.iterations = 100;
  for (auto _ : state) {
    Rng tsne_rng(2);
    Matrix y = RunTsne(x, config, &tsne_rng);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TsneFull)->Arg(100)->Arg(250)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_PerplexityCalibration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> sq(n);
  for (double& v : sq) v = rng.Uniform(0.1, 10.0);
  sq[0] = 0.0;
  std::vector<double> row;
  for (auto _ : state) {
    internal::CalibrateRow(sq, 0, 30.0, &row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PerplexityCalibration)->Arg(350)->Arg(1000);

void BM_KnnIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Matrix data = Matrix::RandomUniform(n, 28, 0.0f, 1.0f, &rng);
  KnnIndex index(data, &rng);
  Matrix query = Matrix::RandomUniform(1, 28, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    auto hits = index.Query(query, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnIndexQuery)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_KnnBruteForceQuery(benchmark::State& state) {
  // Baseline the VP-tree is judged against.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix data = Matrix::RandomUniform(n, 28, 0.0f, 1.0f, &rng);
  Matrix query = Matrix::RandomUniform(1, 28, 0.0f, 1.0f, &rng);
  std::vector<float> dists(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (size_t c = 0; c < 28; ++c) {
        const float d = query.at(0, c) - data.at(i, c);
        acc += d * d;
      }
      dists[i] = acc;
    }
    std::partial_sort(dists.begin(), dists.begin() + 8, dists.end());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnBruteForceQuery)->Arg(1000)->Arg(5000)->Arg(20000);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_tsne");
