// Microbenchmarks for the tape-free inference path: classifier Predict and
// generator Generate via the autodiff tape vs Module::Infer across batch
// sizes 1..4096, plus pipeline-bundle save/load cold-start cost. Each
// tape/infer pair is asserted bitwise identical before timing — the speedup
// numbers only count if the outputs are the same bits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_main.h"

#include "src/core/artifact.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/tensor/autodiff.h"

namespace cfx {
namespace {

/// Shared experiment (Adult, small scale) built once.
Experiment* GetExperiment() {
  static Experiment* experiment = [] {
    RunConfig config;
    config.scale = Scale::kSmall;
    config.seed = 3;
    auto exp = Experiment::Create(DatasetId::kAdult, config);
    CFX_CHECK_OK(exp.status());
    return std::move(*exp).release();
  }();
  return experiment;
}

/// Shared fitted generator against the shared experiment.
FeasibleCfGenerator* GetGenerator() {
  static FeasibleCfGenerator* generator = [] {
    Experiment* exp = GetExperiment();
    GeneratorConfig config =
        GeneratorConfig::FromDataset(exp->info(), ConstraintMode::kUnary);
    config.epochs = 3;
    config.max_restarts = 0;
    auto* gen = new FeasibleCfGenerator(exp->method_context(), config);
    CFX_CHECK_OK(gen->Fit(exp->x_train(), exp->y_train()));
    return gen;
  }();
  return generator;
}

/// Tiles test rows cyclically into a batch of exactly `rows` rows, so the
/// sweep can exceed the test-split size.
Matrix TiledBatch(size_t rows) {
  const Matrix& src = GetExperiment()->x_test();
  Matrix out(rows, src.cols());
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * out.cols(),
                src.data() + (r % src.rows()) * src.cols(),
                src.cols() * sizeof(float));
  }
  return out;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void RequireBitwise(const Matrix& a, const Matrix& b, const char* what) {
  if (!BitwiseEqual(a, b)) {
    std::fprintf(stderr, "FATAL: %s tape/infer outputs differ bitwise\n",
                 what);
    std::abort();
  }
}

void BM_PredictTape(benchmark::State& state) {
  BlackBoxClassifier* clf = GetExperiment()->classifier();
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    // The pre-refactor Predict: build the tape, read the root value.
    ag::Var logits = clf->LogitsVar(ag::Constant(x));
    std::vector<int> pred(x.rows());
    for (size_t r = 0; r < x.rows(); ++r) {
      pred[r] = logits->value.at(r, 0) > 0.0f ? 1 : 0;
    }
    benchmark::DoNotOptimize(pred.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_PredictTape)
    ->RangeMultiplier(4)
    ->Range(1, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_PredictInfer(benchmark::State& state) {
  BlackBoxClassifier* clf = GetExperiment()->classifier();
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  // Contract check: the two paths must agree bit for bit.
  RequireBitwise(clf->LogitsVar(ag::Constant(x))->value, clf->Logits(x),
                 "Predict");
  for (auto _ : state) {
    std::vector<int> pred = clf->Predict(x);
    benchmark::DoNotOptimize(pred.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_PredictInfer)
    ->RangeMultiplier(4)
    ->Range(1, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_GenerateTape(benchmark::State& state) {
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    CfResult result = gen->GenerateTape(x);
    benchmark::DoNotOptimize(result.cfs.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_GenerateTape)
    ->RangeMultiplier(8)
    ->Range(1, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_GenerateInfer(benchmark::State& state) {
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  CfResult tape = gen->GenerateTape(x);
  CfResult infer = gen->Generate(x);
  RequireBitwise(tape.cfs_raw, infer.cfs_raw, "Generate raw");
  RequireBitwise(tape.cfs, infer.cfs, "Generate");
  for (auto _ : state) {
    CfResult result = gen->Generate(x);
    benchmark::DoNotOptimize(result.cfs.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_GenerateInfer)
    ->RangeMultiplier(8)
    ->Range(1, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_VaeReconstructTape(benchmark::State& state) {
  FeasibleCfGenerator* gen = GetGenerator();
  Vae* vae = gen->vae();
  vae->SetTraining(false);
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  Matrix cond(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) cond.at(r, 0) = 1.0f;
  Rng noise(1);
  for (auto _ : state) {
    Vae::Output out =
        vae->Forward(ag::Constant(x), cond, &noise, /*sample=*/false);
    benchmark::DoNotOptimize(out.x_hat->value.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_VaeReconstructTape)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_VaeReconstructInfer(benchmark::State& state) {
  FeasibleCfGenerator* gen = GetGenerator();
  Vae* vae = gen->vae();
  vae->SetTraining(false);
  Matrix x = TiledBatch(static_cast<size_t>(state.range(0)));
  Matrix cond(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) cond.at(r, 0) = 1.0f;
  for (auto _ : state) {
    Matrix out = vae->Reconstruct(x, cond);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_VaeReconstructInfer)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_BundleSave(benchmark::State& state) {
  Experiment* exp = GetExperiment();
  FeasibleCfGenerator* gen = GetGenerator();
  const std::string path = "perf_inference_pipeline.cfxb";
  for (auto _ : state) {
    CFX_CHECK_OK(SavePipelineBundle(path, exp, gen));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BundleSave)->Unit(benchmark::kMillisecond);

void BM_BundleLoad(benchmark::State& state) {
  // Cold-start cost: parse + deterministic dataset regeneration + warm
  // weight load, i.e. everything Experiment::Restore does instead of
  // retraining.
  Experiment* exp = GetExperiment();
  FeasibleCfGenerator* gen = GetGenerator();
  const std::string path = "perf_inference_pipeline.cfxb";
  CFX_CHECK_OK(SavePipelineBundle(path, exp, gen));
  for (auto _ : state) {
    auto restored = Experiment::Restore(path);
    CFX_CHECK_OK(restored.status());
    benchmark::DoNotOptimize(restored->generator.get());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BundleLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_inference");
