// Reproduces Table IV(b): all nine CF methods on the KDD Census-Income
// dataset.
//
// Paper reference values (shape targets): our method reaches validity 100
// with feasibility 94.10 (unary) / 80.84 (binary); C-CHVAE's validity
// collapses (48.44); CEM again wins sparsity (0.51) with high feasibility
// because it barely changes anything.
#include <cstdio>

#include "src/core/table_four.h"

int main() {
  cfx::RunConfig config = cfx::RunConfig::FromEnv();
  auto result = cfx::RunTableFour(cfx::DatasetId::kCensus, config);
  if (!result.ok()) {
    std::fprintf(stderr, "table4_census failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->rendered.c_str());
  return 0;
}
