// Microbenchmarks for the dispatched SIMD kernels, swept across dispatch
// levels: the first benchmark argument selects the simd::Level (1 = scalar,
// 2 = avx2, 3 = neon), so one run measures the scalar fallback and the
// native vector path side by side. Levels the hardware cannot run are
// skipped, not failed. Shapes mirror the hot paths: the Table II MLP
// matmuls, encoder-width elementwise spans, and optimizer updates.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/data/column_batch.h"
#include "src/tensor/kernels.h"
#include "src/tensor/matrix.h"
#include "src/tensor/simd.h"

namespace cfx {
namespace {

/// Applies the requested level for the benchmark body; skips the benchmark
/// when the hardware cannot run it (e.g. the NEON leg on x86).
bool ApplyLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  if (!simd::SetActiveForTesting(level)) {
    state.SkipWithError("level unsupported on this machine");
    return false;
  }
  state.SetLabel(simd::LevelName(level));
  return true;
}

void LevelSweep(benchmark::internal::Benchmark* b) {
  b->ArgNames({"level"});
  for (simd::Level level : {simd::Level::kScalar, simd::DetectBest()}) {
    b->Arg(static_cast<int>(level));
  }
}

void LevelSizeSweep(benchmark::internal::Benchmark* b) {
  b->ArgNames({"level", "n"});
  for (simd::Level level : {simd::Level::kScalar, simd::DetectBest()}) {
    for (int n : {64, 256, 2048}) {
      b->Args({static_cast<int>(level), n});
    }
  }
}

// The classifier's first layer on a census batch: (batch x 120) x (120 x 20).
void BM_KernelMatMul(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t batch = static_cast<size_t>(state.range(1));
  Rng rng(1);
  Matrix a = Matrix::RandomUniform(batch, 120, 0.0f, 1.0f, &rng);
  Matrix b = Matrix::RandomNormal(120, 20, 0.0f, 0.1f, &rng);
  Matrix c(batch, 20);
  for (auto _ : state) {
    kernels::MatMul(a.data(), b.data(), c.data(), batch, 120, 20);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 120 * 20);
}
BENCHMARK(BM_KernelMatMul)->Apply(LevelSizeSweep);

// Fused linear layer: matmul + bias + sigmoid epilogue in one pass.
void BM_KernelMatMulBiasSigmoid(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t batch = static_cast<size_t>(state.range(1));
  Rng rng(2);
  Matrix a = Matrix::RandomUniform(batch, 120, 0.0f, 1.0f, &rng);
  Matrix b = Matrix::RandomNormal(120, 20, 0.0f, 0.1f, &rng);
  Matrix bias = Matrix::RandomNormal(1, 20, 0.0f, 0.1f, &rng);
  Matrix c(batch, 20);
  for (auto _ : state) {
    kernels::MatMulBias(a.data(), b.data(), bias.data(), c.data(), batch, 120,
                        20, kernels::Epilogue::kSigmoid);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 120 * 20);
}
BENCHMARK(BM_KernelMatMulBiasSigmoid)->Apply(LevelSizeSweep);

void BM_KernelSigmoid(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(3);
  Matrix src = Matrix::RandomNormal(1, n, 0.0f, 2.0f, &rng);
  Matrix dst(1, n);
  for (auto _ : state) {
    kernels::SigmoidTo(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelSigmoid)->Apply(LevelSizeSweep);

void BM_KernelAxpy(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(4);
  Matrix src = Matrix::RandomNormal(1, n, 0.0f, 1.0f, &rng);
  Matrix dst = Matrix::RandomNormal(1, n, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    kernels::AxpyInPlace(dst.data(), 0.37f, src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelAxpy)->Apply(LevelSizeSweep);

// One Adam step over a Table II-sized parameter tensor (120 x 20 weights).
void BM_KernelAdamUpdate(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t n = 120 * 20;
  Rng rng(5);
  Matrix value = Matrix::RandomNormal(1, n, 0.0f, 0.1f, &rng);
  Matrix m(1, n);
  Matrix v(1, n);
  Matrix grad = Matrix::RandomNormal(1, n, 0.0f, 0.01f, &rng);
  for (auto _ : state) {
    kernels::AdamUpdate(value.data(), m.data(), v.data(), grad.data(), n,
                        0.9f, 0.999f, 1e-3f, 0.271f, 0.0487f, 1e-8f);
    benchmark::DoNotOptimize(value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelAdamUpdate)->Apply(LevelSweep);

// The columnar pivot GenerateMany pays once per batch (level-independent,
// but recorded alongside the kernels it feeds).
void BM_ColumnBatchRoundTrip(benchmark::State& state) {
  if (!ApplyLevel(state)) return;
  const size_t rows = static_cast<size_t>(state.range(1));
  Rng rng(6);
  Matrix x = Matrix::RandomUniform(rows, 120, 0.0f, 1.0f, &rng);
  Matrix back(rows, 120);
  for (auto _ : state) {
    ColumnBatch cols = ColumnBatch::FromMatrix(x);
    cols.ToRowMajor(back.data());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ColumnBatchRoundTrip)->Apply(LevelSizeSweep);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_kernels")
