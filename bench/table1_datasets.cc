// Reproduces Table I: datasets overview — total instances, cleaned
// instances, attribute counts by type, and target class.
//
// This bench always reports the paper-scale numbers (cleaning is verified by
// actually generating + cleaning at small scale and asserting the configured
// ratio; generating 299k census rows takes a few seconds when
// CFX_SCALE=paper).
#include <cstdio>

#include "src/common/string_util.h"
#include "src/core/experiment.h"
#include "src/metrics/report.h"

int main() {
  using namespace cfx;
  RunConfig config = RunConfig::FromEnv();

  TablePrinter printer({"Datasets", "# Instances", "# Instances (cleaned)",
                        "# Attributes*", "Target class"});
  for (DatasetId id :
       {DatasetId::kAdult, DatasetId::kCensus, DatasetId::kLaw}) {
    auto generator = CreateGenerator(id);
    const DatasetInfo& info = generator->info();
    Schema schema = generator->MakeSchema();
    TypeCounts counts = schema.CountByType();

    // Verify the generator + cleaning pipeline hits the configured counts
    // at the active scale before quoting the paper-scale numbers.
    Rng rng(config.seed);
    Table raw = generator->GenerateAtScale(config.scale, &rng);
    CleaningReport report;
    DropMissingRows(raw, &report);
    if (report.rows_after != info.CleanInstances(config.scale)) {
      std::fprintf(stderr, "%s: cleaning produced %zu rows, expected %zu\n",
                   info.name.c_str(), report.rows_after,
                   info.CleanInstances(config.scale));
      return 1;
    }

    printer.AddRow({info.name, StrFormat("%zu", info.paper_total_instances),
                    StrFormat("%zu", info.paper_clean_instances),
                    StrFormat("%zu/%zu/%zu", counts.categorical, counts.binary,
                              counts.continuous),
                    info.target_class});
  }
  std::printf("Table I — Datasets: an overview\n%s", printer.Render().c_str());
  std::printf("*Number of Categorical/Binary/Numerical attributes.\n");
  std::printf("(cleaning pipeline verified at scale=%s)\n",
              ScaleName(config.scale));
  return 0;
}
