// Serving-path throughput: the cost of one request through the CfServer
// scheduler (submit, coalesce, dispatch, fan out) versus micro-batched
// dispatch at batch 8/32, and the raw GenerateMany pass those batches ride
// on. The served single-request response is asserted bitwise identical to a
// direct Generate before timing — the speedup only counts if the bits match.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_main.h"

#include "src/core/artifact.h"
#include "src/core/experiment.h"
#include "src/core/generator.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace cfx {
namespace {

/// Shared experiment (Adult, small scale) built once.
Experiment* GetExperiment() {
  static Experiment* experiment = [] {
    RunConfig config;
    config.scale = Scale::kSmall;
    config.seed = 3;
    auto exp = Experiment::Create(DatasetId::kAdult, config);
    CFX_CHECK_OK(exp.status());
    return std::move(*exp).release();
  }();
  return experiment;
}

/// Shared fitted generator against the shared experiment.
FeasibleCfGenerator* GetGenerator() {
  static FeasibleCfGenerator* generator = [] {
    Experiment* exp = GetExperiment();
    GeneratorConfig config =
        GeneratorConfig::FromDataset(exp->info(), ConstraintMode::kUnary);
    config.epochs = 3;
    config.max_restarts = 0;
    auto* gen = new FeasibleCfGenerator(exp->method_context(), config);
    CFX_CHECK_OK(gen->Fit(exp->x_train(), exp->y_train()));
    return gen;
  }();
  return generator;
}

/// Tiles rows of `src` cyclically into a batch of exactly `rows` rows.
Matrix TiledFrom(const Matrix& src, size_t rows) {
  Matrix out(rows, src.cols());
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * out.cols(),
                src.data() + (r % src.rows()) * src.cols(),
                src.cols() * sizeof(float));
  }
  return out;
}

/// Tiles test rows cyclically into a batch of exactly `rows` rows.
Matrix TiledBatch(size_t rows) {
  return TiledFrom(GetExperiment()->x_test(), rows);
}

constexpr size_t kMaxBenchModels = 4;

/// Bundle paths for the multi-model arms: four law pipelines (small scale,
/// two generator epochs, distinct seeds) trained and saved once for the
/// whole binary. Cold restore of one of these is ~3ms, so residency churn
/// is measurable without minutes of setup cost.
const std::vector<std::string>& BenchBundles() {
  static const std::vector<std::string>* paths = [] {
    auto* out = new std::vector<std::string>;
    for (size_t m = 0; m < kMaxBenchModels; ++m) {
      std::string path =
          "/tmp/cfx_perf_serve_m" + std::to_string(m) + ".cfxb";
      RunConfig run_config;
      run_config.scale = Scale::kSmall;
      run_config.seed = 71 + m;
      auto experiment = Experiment::Create(DatasetId::kLaw, run_config);
      CFX_CHECK_OK(experiment.status());
      GeneratorConfig gen_config = GeneratorConfig::FromDataset(
          (*experiment)->info(), ConstraintMode::kUnary);
      gen_config.epochs = 2;
      gen_config.max_restarts = 0;
      gen_config.min_probe_validity = 0.0;
      gen_config.min_probe_feasibility = 0.0;
      FeasibleCfGenerator generator((*experiment)->method_context(),
                                    gen_config);
      CFX_CHECK_OK(generator.Fit((*experiment)->x_train(),
                                 (*experiment)->y_train()));
      CFX_CHECK_OK(SavePipelineBundle(path, experiment->get(), &generator));
      out->push_back(std::move(path));
    }
    return out;
  }();
  return *paths;
}

void RequireBitwise(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "FATAL: %s served/direct outputs differ bitwise\n",
                 what);
    std::abort();
  }
}

serve::CfServerConfig MakeConfig(size_t max_batch) {
  serve::CfServerConfig config;
  config.max_batch = max_batch;
  config.max_queue = 4096;
  config.workers = 1;
  config.max_delay = std::chrono::microseconds(200);
  return config;
}

serve::CfRequest MakeRequest(const Matrix& x, size_t row) {
  serve::CfRequest request;
  request.instance = x.SliceRows(row, row + 1);
  request.method = "ours";
  return request;
}

void BM_ServeSingleRequest(benchmark::State& state) {
  // max_batch 1: no coalescing, no delay window — the pure per-request
  // scheduling cost (submit, wake, dispatch of one row, fan out). Cycles
  // the same instance set as the batched arms so the two differ only in
  // coalescing, not in input diversity.
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(64);
  serve::CfServer server(MakeConfig(1));
  server.RegisterMethod("ours", gen);
  server.Start();

  // Contract check before timing: served bits == direct Generate bits.
  serve::CfResponse first = server.Submit(MakeRequest(x, 0)).get();
  CFX_CHECK_OK(first.status);
  CfResult direct = gen->Generate(x.SliceRows(0, 1));
  RequireBitwise(first.cf, direct.cfs, "single-request cf");
  RequireBitwise(first.cf_raw, direct.cfs_raw, "single-request cf_raw");

  size_t r = 0;
  for (auto _ : state) {
    serve::CfResponse response = server.Submit(MakeRequest(x, r)).get();
    benchmark::DoNotOptimize(response.predicted);
    r = (r + 1) % x.rows();
  }
  server.Shutdown();
  state.SetItemsProcessed(state.iterations());
}
// Real time, not CPU time: the dispatch work happens on the worker thread
// while the producer blocks, so producer CPU time would flatter the
// scheduler enormously.
BENCHMARK(BM_ServeSingleRequest)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ServeBatched(benchmark::State& state) {
  // Sustained offered load: several batches' worth of requests stay in
  // flight, so the worker collects each full batch from backlog and
  // dispatches back-to-back while the producer submits and drains
  // concurrently — the steady state of a loaded server, where coalescing
  // actually amortises the per-request scheduling cost. A full batch
  // dispatches immediately; the 200us window only pads the final stragglers.
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kInflightBatches = 2;
  const size_t total = n * kInflightBatches;
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(total);
  serve::CfServer server(MakeConfig(n));
  server.RegisterMethod("ours", gen);
  server.Start();

  std::vector<std::future<serve::CfResponse>> futures;
  futures.reserve(total);
  for (auto _ : state) {
    futures.clear();
    for (size_t r = 0; r < total; ++r) {
      futures.push_back(server.Submit(MakeRequest(x, r)));
    }
    for (std::future<serve::CfResponse>& future : futures) {
      serve::CfResponse response = future.get();
      benchmark::DoNotOptimize(response.predicted);
    }
  }
  serve::CfServerStats stats = server.stats();
  server.Shutdown();
  state.SetItemsProcessed(state.iterations() * total);
  // Coalescing health: should sit at ~n. Falling well below means bursts
  // split into partial dispatches and the scheduler is paying per-batch
  // overhead more often than intended.
  if (stats.batches > 0) {
    state.counters["avg_batch"] =
        static_cast<double>(stats.batched_rows) /
        static_cast<double>(stats.batches);
  }
}
BENCHMARK(BM_ServeBatched)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ServeMultiProducer(benchmark::State& state) {
  // The lock-free submit path under real producer contention: `p` threads
  // submit concurrently against one worker coalescing batches of `n`. The
  // interesting axis is submit-side scaling — with the MPSC ring, adding
  // producers costs CAS retries (surfaced as serve/submit_spins), never a
  // mutex convoy. Thread spawn cost is amortised over 64 requests per
  // producer per iteration.
  const size_t producers = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  constexpr size_t kPerProducer = 64;
  const size_t total = producers * kPerProducer;
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(total);
  serve::CfServer server(MakeConfig(n));
  server.RegisterMethod("ours", gen);
  server.Start();

  std::vector<std::vector<std::future<serve::CfResponse>>> futures(producers);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (size_t p = 0; p < producers; ++p) {
      futures[p].clear();
      futures[p].reserve(kPerProducer);
      threads.emplace_back([&, p] {
        for (size_t i = 0; i < kPerProducer; ++i) {
          futures[p].push_back(
              server.Submit(MakeRequest(x, p * kPerProducer + i)));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t p = 0; p < producers; ++p) {
      for (std::future<serve::CfResponse>& future : futures[p]) {
        serve::CfResponse response = future.get();
        benchmark::DoNotOptimize(response.predicted);
      }
    }
  }
  serve::CfServerStats stats = server.stats();
  server.Shutdown();
  state.SetItemsProcessed(state.iterations() * total);
  if (stats.rejected_full > 0) {
    state.counters["rejected"] = static_cast<double>(stats.rejected_full);
  }
  if (stats.batches > 0) {
    state.counters["avg_batch"] =
        static_cast<double>(stats.batched_rows) /
        static_cast<double>(stats.batches);
  }
}
BENCHMARK(BM_ServeMultiProducer)
    ->ArgsProduct({{1, 2, 4}, {1, 8, 32}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

serve::CfRequest MakeModelRequest(const Matrix& x, size_t row,
                                  const std::string& model) {
  serve::CfRequest request = MakeRequest(x, row);
  request.model = model;
  return request;
}

void BM_ServeMultiModel(benchmark::State& state) {
  // `m` registered bundles served through one scheduler at batch `n`,
  // requests interleaved round-robin across models so every window sees
  // multi-lane traffic. The registry cap (default 4) keeps all arms
  // resident: this measures per-model lane bookkeeping and fair dispatch,
  // not cold-start churn — BM_ServeEvictionChurn covers that.
  const size_t models = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  constexpr size_t kInflightBatches = 2;
  const size_t total = models * n * kInflightBatches;
  const std::vector<std::string>& bundles = BenchBundles();
  serve::ModelRegistry registry;
  for (size_t m = 0; m < models; ++m) {
    CFX_CHECK_OK(registry.Register("m" + std::to_string(m), bundles[m]));
  }
  serve::CfServer server(MakeConfig(n), &registry);
  server.Start();

  // All models share the law schema, so one instance pool (model m0's test
  // split) feeds every lane. Contract check before timing: the routed
  // response is bitwise identical to the pinned pipeline's own dispatch.
  auto pin = registry.Acquire("m0");
  CFX_CHECK_OK(pin.status());
  const Matrix x = TiledFrom((*pin)->experiment()->x_test(), total);
  serve::CfResponse first =
      server.Submit(MakeModelRequest(x, 0, "m0")).get();
  CFX_CHECK_OK(first.status);
  nn::InferWorkspace check_ws;
  CfResult direct = (*pin)->FindMethod("ours")->method->GenerateMany(
      x.SliceRows(0, 1), &check_ws);
  RequireBitwise(first.cf, direct.cfs, "multi-model cf");
  pin->reset();

  std::vector<std::future<serve::CfResponse>> futures;
  futures.reserve(total);
  for (auto _ : state) {
    futures.clear();
    for (size_t r = 0; r < total; ++r) {
      futures.push_back(server.Submit(
          MakeModelRequest(x, r, "m" + std::to_string(r % models))));
    }
    for (std::future<serve::CfResponse>& future : futures) {
      serve::CfResponse response = future.get();
      benchmark::DoNotOptimize(response.predicted);
    }
  }
  serve::CfServerStats stats = server.stats();
  serve::ModelRegistryStats reg_stats = registry.stats();
  server.Shutdown();
  state.SetItemsProcessed(state.iterations() * total);
  if (stats.batches > 0) {
    state.counters["avg_batch"] =
        static_cast<double>(stats.batched_rows) /
        static_cast<double>(stats.batches);
  }
  state.counters["resident"] = static_cast<double>(reg_stats.resident);
  state.counters["coldstarts"] = static_cast<double>(reg_stats.coldstarts);
}
BENCHMARK(BM_ServeMultiModel)
    ->ArgsProduct({{1, 2, 4}, {1, 8, 32}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ServeEvictionChurn(benchmark::State& state) {
  // Worst-case residency pressure: two models through a cap-1 registry.
  // Requests arrive in model-sized blocks (a block per model per batch), so
  // every block's Acquire evicts the other model and pays a cold start.
  // The measured throughput is the floor a mis-sized cap costs; the
  // evictions counter proves the churn was real, and completion proves
  // eviction never tears a pipeline out from under its in-flight batch.
  constexpr size_t kModels = 2;
  constexpr size_t n = 8;
  constexpr size_t kBlocksPerModel = 2;
  const size_t total = kModels * n * kBlocksPerModel;
  const std::vector<std::string>& bundles = BenchBundles();
  serve::ModelRegistryConfig reg_config;
  reg_config.max_resident = 1;
  serve::ModelRegistry registry(reg_config);
  for (size_t m = 0; m < kModels; ++m) {
    CFX_CHECK_OK(registry.Register("m" + std::to_string(m), bundles[m]));
  }
  serve::CfServer server(MakeConfig(n), &registry);
  server.Start();

  auto pin = registry.Acquire("m0");
  CFX_CHECK_OK(pin.status());
  const Matrix x = TiledFrom((*pin)->experiment()->x_test(), total);
  pin->reset();

  const uint64_t coldstarts_before = registry.stats().coldstarts;
  std::vector<std::future<serve::CfResponse>> futures;
  futures.reserve(total);
  for (auto _ : state) {
    futures.clear();
    for (size_t r = 0; r < total; ++r) {
      futures.push_back(server.Submit(
          MakeModelRequest(x, r, "m" + std::to_string((r / n) % kModels))));
    }
    for (std::future<serve::CfResponse>& future : futures) {
      serve::CfResponse response = future.get();
      CFX_CHECK_OK(response.status);
      benchmark::DoNotOptimize(response.predicted);
    }
  }
  serve::ModelRegistryStats reg_stats = registry.stats();
  server.Shutdown();
  state.SetItemsProcessed(state.iterations() * total);
  state.counters["evictions"] = static_cast<double>(reg_stats.evictions);
  state.counters["coldstarts_per_iter"] =
      static_cast<double>(reg_stats.coldstarts - coldstarts_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ServeEvictionChurn)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_GenerateManyDirect(benchmark::State& state) {
  // The floor the scheduler builds on: the same coalesced pass without any
  // queueing — what a dispatch costs once a batch exists.
  const size_t n = static_cast<size_t>(state.range(0));
  FeasibleCfGenerator* gen = GetGenerator();
  Matrix x = TiledBatch(n);
  nn::InferWorkspace ws;
  for (auto _ : state) {
    CfResult result = gen->GenerateMany(x, &ws);
    benchmark::DoNotOptimize(result.cfs.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenerateManyDirect)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cfx

CFX_BENCHMARK_MAIN("perf_serve");
